// Model workbench: the design-time side of the paper in one tool.
//
//   $ ./model_workbench [path/to/system.dsl]
//
// Parses a system description (a built-in demo if no file is given), runs
// the verification engine (Sec. 2.2), asks the explorer for a deployment
// (Sec. 2.3), and emits the generated artifacts (Sec. 2.2 "generate code
// stubs, configurations for communication stacks"): the middleware config
// table and a C++ skeleton per application.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dse/exploration.hpp"
#include "dse/schedulability.hpp"
#include "model/codegen.hpp"
#include "model/parser.hpp"
#include "model/verifier.hpp"

using namespace dynaplat;

namespace {

const char* kDemoModel = R"(
network Backbone kind=tsn bitrate=1G
ecu Central mips=8000 cores=2 memory=1G crypto=yes asil=D network=Backbone
ecu Zone mips=600 memory=128M asil=D network=Backbone

interface ObjectList paradigm=event payload=512 period=40ms max_latency=20ms version=2
interface PathPlan paradigm=event payload=256 period=40ms max_latency=20ms

app Perception class=deterministic asil=D memory=128M
  task detect period=40ms wcet=40M priority=1
  provides ObjectList

app Planner class=deterministic asil=D memory=64M
  task plan period=40ms wcet=24M priority=1
  provides PathPlan
  consumes ObjectList@2

deploy Perception -> Central | Zone
deploy Planner -> Central | Zone
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemoModel;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  model::ParsedSystem parsed;
  try {
    parsed = model::parse_system(text);
  } catch (const model::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("== model: %zu networks, %zu ECUs, %zu interfaces, %zu apps\n\n",
              parsed.model.networks().size(), parsed.model.ecus().size(),
              parsed.model.interfaces().size(), parsed.model.apps().size());

  // Verification engine with exact schedulability analysis attached.
  model::Verifier verifier;
  verifier.set_schedulability_hook(dse::make_verifier_hook());
  const auto violations = verifier.verify(parsed.model, parsed.deployment);
  std::printf("== verification: %zu finding(s)\n", violations.size());
  for (const auto& violation : violations) {
    std::printf("  [%s] %-28s %s: %s\n",
                violation.severity == model::Severity::kError ? "ERROR"
                                                              : "warn ",
                violation.rule.c_str(), violation.subject.c_str(),
                violation.message.c_str());
  }

  // Deployment suggestion.
  dse::Explorer explorer(parsed.model);
  const auto exploration = explorer.simulated_annealing(3'000, 1);
  std::printf("\n== explorer (%s): cost %.1f, feasible=%s\n",
              exploration.strategy.c_str(), exploration.cost,
              exploration.feasible ? "yes" : "no");
  for (const auto& [app, hosts] : exploration.assignment.placement) {
    std::printf("  %-16s -> %s\n", app.c_str(), hosts.front().c_str());
  }

  // Generated artifacts.
  std::printf("\n== middleware configuration\n%s",
              model::generate_middleware_config(parsed.model).c_str());
  if (!parsed.model.apps().empty()) {
    std::printf("\n== generated skeleton for '%s'\n%s",
                parsed.model.apps().front().name.c_str(),
                model::generate_app_skeleton(parsed.model,
                                             parsed.model.apps().front())
                    .c_str());
  }
  std::printf("\n(canonical DSL round-trip available via model::to_dsl)\n");
  return 0;
}
