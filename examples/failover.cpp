// Fail-operational redundancy scenario (paper Sec. 3.3).
//
// An autonomous-driving "Pilot" function runs replicated on two of three
// ECUs. At t = 2 s the primary ECU dies on the highway; the standby detects
// the heartbeat loss, restores the last synchronized state and takes over
// publishing steering commands — the vehicle keeps operating instead of
// shutting down.
#include <cstdio>
#include <memory>

#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=tsn bitrate=1G
ecu Front mips=3000 memory=512M asil=D network=Backbone
ecu Rear mips=3000 memory=512M asil=D network=Backbone
ecu Gateway mips=1000 memory=128M asil=D network=Backbone

interface Steering paradigm=event payload=16 period=10ms max_latency=5ms

app Pilot class=deterministic asil=D memory=64M replicas=2
  task plan period=10ms wcet=2M priority=1
  provides Steering

deploy Pilot -> Front | Rear
)";

class PilotApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++plan_step_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    writer.f64(0.02 * static_cast<double>(plan_step_ % 100));  // curvature
    context_.comm->publish(context_.service_id("Steering"), 1,
                           writer.take(),
                           context_.priority_of("Steering"));
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    middleware::PayloadReader reader(state);
    plan_step_ = reader.u64();
  }

 private:
  std::uint64_t plan_step_ = 0;
};

}  // namespace

int main() {
  std::printf("== fail-operational pilot with 2 replicas ==\n\n");

  model::ParsedSystem parsed = model::parse_system(kModel);
  sim::Simulator simulator;
  sim::Trace trace;
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});
  os::EcuConfig front_config{.name = "Front", .cpu = {.mips = 3000}};
  os::EcuConfig rear_config{.name = "Rear", .cpu = {.mips = 3000}};
  os::EcuConfig gw_config{.name = "Gateway", .cpu = {.mips = 1000}};
  os::Ecu front(simulator, front_config, &backbone, 1, &trace);
  os::Ecu rear(simulator, rear_config, &backbone, 2, &trace);
  os::Ecu gateway(simulator, gw_config, &backbone, 3, &trace);

  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(front);
  dp.add_node(rear);
  dp.add_node(gateway);
  dp.register_app("Pilot", [] { return std::make_unique<PilotApp>(); });
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }

  platform::RedundancyConfig redundancy_config;
  redundancy_config.heartbeat_period = 10 * sim::kMillisecond;
  redundancy_config.missed_for_failover = 3;
  platform::RedundancyManager redundancy(dp, "Pilot", redundancy_config);
  redundancy.engage();

  // A steering actuator on the gateway consumes the commands and tracks
  // continuity of the command stream.
  std::uint64_t commands = 0;
  std::uint64_t last_step = 0;
  sim::Time last_rx = 0;
  sim::Duration worst_gap = 0;
  dp.node("Gateway")->comm().subscribe(
      dp.service_id("Steering"), 1,
      [&](std::vector<std::uint8_t> data, net::NodeId) {
        middleware::PayloadReader reader(data);
        last_step = reader.u64();
        ++commands;
        if (last_rx != 0) {
          worst_gap = std::max(worst_gap, simulator.now() - last_rx);
        }
        last_rx = simulator.now();
      });

  // Highway driving; primary dies at t = 2 s.
  simulator.schedule_at(sim::seconds(2), [&] {
    std::printf("t=2.000s: !! Front ECU hard fault (primary dies)\n");
    front.fail();
  });

  simulator.run_until(sim::seconds(2));
  std::printf("t=2.000s: primary=%s, %llu steering cmds so far, step=%llu\n",
              redundancy.current_primary().c_str(),
              static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(last_step));

  simulator.run_until(sim::seconds(5));
  std::printf("t=5.000s: primary=%s, %llu steering cmds, step=%llu\n",
              redundancy.current_primary().c_str(),
              static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(last_step));

  if (redundancy.failovers().empty()) {
    std::printf("no failover happened -- unexpected\n");
    return 1;
  }
  const auto& failover = redundancy.failovers().front();
  std::printf("\nfailover: promoted node %u at t=%.3fs, outage %.1f ms\n",
              failover.new_primary, sim::to_s(failover.promoted_at),
              sim::to_ms(failover.outage));
  std::printf("worst steering-command gap: %.1f ms (nominal 10 ms)\n",
              sim::to_ms(worst_gap));
  std::printf(
      "plan counter continued monotonically (state was heartbeat-synced): "
      "%s\n",
      last_step > 400 ? "yes" : "NO");
  std::printf("\nThe vehicle kept steering through the ECU loss -- "
              "fail-operational, not fail-stop.\n");
  return 0;
}
