// Legacy integration scenario (paper Fig. 1): today's vehicles are "highly
// diverse" — a classic CAN body domain must coexist with the new
// Ethernet-backbone dynamic platform during the transition years.
//
// A legacy wheel-speed sensor broadcasts raw 8-byte signals on 500 kbit/s
// CAN (no middleware, no services — bit-offset signals, as Sec. 2 laments).
// A gateway ECU forwards the matching CAN flows onto the TSN backbone with
// priority remapping; a platform adapter app re-publishes them as a proper
// service-oriented interface, so modern consumers subscribe as if the
// sensor were a native platform app.
#include <cstdio>
#include <memory>

#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/can_bus.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"

using namespace dynaplat;

namespace {

constexpr std::uint32_t kWheelSpeedCanId = 0x120;

const char* kModel = R"(
network Backbone kind=tsn bitrate=1G
ecu Central mips=5000 memory=512M asil=D network=Backbone
ecu GatewayEcu mips=400 memory=64M asil=D network=Backbone

interface WheelSpeed paradigm=event payload=8 period=20ms

# The adapter app owns the modern interface; the raw CAN signal feeds it.
app CanAdapter class=deterministic asil=B memory=2M
  task poll period=20ms wcet=20K priority=1
  provides WheelSpeed

app Stability class=deterministic asil=B memory=8M
  task control period=20ms wcet=400K priority=1
  consumes WheelSpeed

deploy CanAdapter -> GatewayEcu
deploy Stability -> Central
)";

/// Bridges raw CAN frames (delivered to the gateway ECU via the Router)
/// into the service-oriented world.
class CanAdapterApp final : public platform::Application {
 public:
  void on_raw_frame(const net::Frame& frame) {
    if (frame.payload.size() >= 2) {
      latest_raw_ = static_cast<std::uint16_t>(frame.payload[0] |
                                               (frame.payload[1] << 8));
      ++frames_seen_;
    }
  }
  void on_task(const std::string&) override {
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.f64(static_cast<double>(latest_raw_) * 0.01);  // raw -> m/s
    context_.comm->publish(context_.service_id("WheelSpeed"), 1,
                           writer.take(),
                           context_.priority_of("WheelSpeed"));
  }
  std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  std::uint16_t latest_raw_ = 0;
  std::uint64_t frames_seen_ = 0;
};

}  // namespace

int main() {
  std::printf("== legacy CAN domain behind a gateway ==\n\n");
  model::ParsedSystem parsed = model::parse_system(kModel);

  sim::Simulator simulator;
  net::CanBus body_can(simulator, "body_can", net::CanBusConfig{});
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});

  os::EcuConfig central_config{.name = "Central", .cpu = {.mips = 5000}};
  os::EcuConfig gw_config{.name = "GatewayEcu", .cpu = {.mips = 400}};
  os::Ecu central(simulator, central_config, &backbone, 1);
  os::Ecu gateway_ecu(simulator, gw_config, &backbone, 2);

  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(central);
  dp.add_node(gateway_ecu);

  CanAdapterApp* adapter = nullptr;
  dp.register_app("CanAdapter", [&adapter] {
    auto app = std::make_unique<CanAdapterApp>();
    adapter = app.get();
    return app;
  });
  dp.register_app("Stability",
                  [] { return std::make_unique<platform::Application>(); });
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }

  // The gateway ECU's second network interface: its CAN controller. Raw
  // frames with the wheel-speed CAN id land in the adapter app; everything
  // else is filtered. Reception costs gateway CPU (the 400 MIPS core).
  // (For pure frame-level forwarding between media without an adapter app,
  // net::Router does the same declaratively — see extensions_test.cpp.)
  body_can.attach(20, [&](const net::Frame& frame) {
    if (frame.flow_id == kWheelSpeedCanId && adapter != nullptr) {
      gateway_ecu.processor().submit(
          "can_rx", 2'000, 5, os::TaskClass::kNonDeterministic,
          [&, frame] { adapter->on_raw_frame(frame); });
    }
  });

  // The legacy sensor: broadcasts every 20 ms, plus unrelated body chatter.
  std::uint16_t raw_speed = 0;
  simulator.schedule_every(sim::kMillisecond, 20 * sim::kMillisecond, [&] {
    net::Frame frame;
    frame.flow_id = kWheelSpeedCanId;
    frame.src = 21;
    frame.priority = 1;
    raw_speed = static_cast<std::uint16_t>(raw_speed + 7);
    frame.payload = {static_cast<std::uint8_t>(raw_speed),
                     static_cast<std::uint8_t>(raw_speed >> 8),
                     0, 0, 0, 0, 0, 0};
    body_can.send(std::move(frame));
  });
  simulator.schedule_every(500 * sim::kMicrosecond, sim::kMillisecond, [&] {
    net::Frame chatter;
    chatter.flow_id = 0x300;  // door module noise, filtered at the gateway
    chatter.src = 22;
    chatter.priority = 6;
    chatter.payload.assign(8, 0x00);
    body_can.send(std::move(chatter));
  });

  // Modern consumer on the backbone.
  std::uint64_t modern_events = 0;
  double last_speed = 0.0;
  dp.node("Central")->comm().subscribe(
      dp.service_id("WheelSpeed"), 1,
      [&](std::vector<std::uint8_t> data, net::NodeId) {
        middleware::PayloadReader reader(data);
        last_speed = reader.f64();
        ++modern_events;
      });

  simulator.run_until(sim::seconds(10));

  std::printf("after 10 s simulated:\n");
  std::printf("  CAN frames on the body bus: %llu (incl. chatter)\n",
              static_cast<unsigned long long>(body_can.frames_delivered()));
  std::printf("  wheel-speed frames seen by the adapter: %llu\n",
              static_cast<unsigned long long>(adapter->frames_seen()));
  std::printf("  service-oriented WheelSpeed events at Central: %llu "
              "(last %.2f m/s)\n",
              static_cast<unsigned long long>(modern_events), last_speed);
  std::printf("\nThe gateway + adapter pattern lets the dynamic platform "
              "consume legacy\nsignals as first-class services during the "
              "architecture transition.\n");
  return 0;
}
