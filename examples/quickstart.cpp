// Quickstart: model a two-ECU vehicle slice in the DSL, verify it, bring up
// the dynamic platform and watch a deterministic producer feed a consumer
// over the service-oriented middleware.
//
//   $ ./quickstart
//
// Walks through the core dynaplat workflow:
//   1. describe hardware + apps + deployment in the DSL (Sec. 2.2),
//   2. run the verification engine,
//   3. instantiate simulated ECUs and the platform,
//   4. install & start the deployed apps,
//   5. simulate and read back timing statistics.
#include <cstdio>
#include <memory>

#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
# Hardware: a central computer and a zone controller on a TSN backbone.
network Backbone kind=tsn bitrate=1G
ecu Central mips=5000 memory=512M mmu=yes crypto=yes asil=D os=rtos network=Backbone
ecu Zone mips=400 memory=64M mmu=yes asil=D os=rtos network=Backbone

# Interfaces: a 100 Hz wheel-speed event with a 5 ms latency budget.
interface WheelSpeed paradigm=event payload=8 period=10ms max_latency=5ms

# Apps: a deterministic sensor app and a consumer.
app WheelSensor class=deterministic asil=C memory=2M
  task sample period=10ms wcet=40K priority=1
  provides WheelSpeed

app StabilityControl class=deterministic asil=C memory=8M
  task control period=10ms wcet=400K priority=1
  consumes WheelSpeed

deploy WheelSensor -> Zone
deploy StabilityControl -> Central
)";

/// The sensor: publishes a monotonically increasing wheel speed.
class WheelSensorApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.f64(12.3 + 0.01 * static_cast<double>(ticks_++));
    context_.comm->publish(context_.service_id("WheelSpeed"), 1,
                           writer.take(),
                           context_.priority_of("WheelSpeed"));
  }

 private:
  std::uint64_t ticks_ = 0;
};

/// The consumer: tracks how many samples arrived and the last value.
class StabilityControlApp final : public platform::Application {
 public:
  void on_start(const platform::AppContext& context) override {
    Application::on_start(context);
    context_.comm->subscribe(
        context_.service_id("WheelSpeed"), 1,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          middleware::PayloadReader reader(data);
          last_speed_ = reader.f64();
          ++samples_;
        });
  }
  std::uint64_t samples() const { return samples_; }
  double last_speed() const { return last_speed_; }

 private:
  std::uint64_t samples_ = 0;
  double last_speed_ = 0.0;
};

}  // namespace

int main() {
  std::printf("== dynaplat quickstart ==\n\n");

  // 1. Parse the system description.
  model::ParsedSystem parsed = model::parse_system(kModel);
  std::printf("model: %zu ECUs, %zu apps, %zu interfaces\n",
              parsed.model.ecus().size(), parsed.model.apps().size(),
              parsed.model.interfaces().size());

  // 2. Verify it (the platform will re-check at install time too).
  model::Verifier verifier;
  const auto violations = verifier.verify(parsed.model, parsed.deployment);
  std::printf("verification: %zu finding(s)\n", violations.size());
  for (const auto& violation : violations) {
    std::printf("  [%s] %s %s: %s\n",
                violation.severity == model::Severity::kError ? "ERROR"
                                                              : "warn",
                violation.rule.c_str(), violation.subject.c_str(),
                violation.message.c_str());
  }

  // 3. Instantiate the simulated hardware.
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});
  os::EcuConfig central_config{.name = "Central", .cpu = {.mips = 5000}};
  os::EcuConfig zone_config{.name = "Zone", .cpu = {.mips = 400}};
  os::Ecu central(simulator, central_config, &backbone, 1);
  os::Ecu zone(simulator, zone_config, &backbone, 2);

  // 4. Bring up the platform and install the deployment.
  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(central);
  dp.add_node(zone);
  dp.register_app("WheelSensor",
                  [] { return std::make_unique<WheelSensorApp>(); });
  StabilityControlApp* control = nullptr;
  dp.register_app("StabilityControl", [&control] {
    auto app = std::make_unique<StabilityControlApp>();
    control = app.get();
    return app;
  });
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }
  std::printf("\nplatform up: apps installed and started\n");

  // 5. Simulate five seconds of vehicle time.
  simulator.run_until(sim::seconds(5));

  std::printf("\nafter %.1f s simulated:\n", sim::to_s(simulator.now()));
  std::printf("  StabilityControl received %llu samples (last speed %.2f)\n",
              static_cast<unsigned long long>(control->samples()),
              control->last_speed());
  auto& cpu = central.processor();
  for (os::TaskId id : cpu.task_ids()) {
    const auto& stats = cpu.stats(id);
    if (stats.completions == 0) continue;
    std::printf("  task %-28s completions=%llu misses=%llu resp(mean)=%.0f us\n",
                cpu.config(id).name.c_str(),
                static_cast<unsigned long long>(stats.completions),
                static_cast<unsigned long long>(stats.deadline_misses),
                sim::to_us(static_cast<sim::Duration>(
                    stats.response_time.mean())));
  }
  std::printf("  backbone frames delivered: %llu (mean latency %.1f us)\n",
              static_cast<unsigned long long>(backbone.frames_delivered()),
              backbone.latency_stats().mean() / 1000.0);
  std::printf("\ndone.\n");
  return 0;
}
