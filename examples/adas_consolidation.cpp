// ECU consolidation scenario (paper Sec. 1, Fig. 2): mixed-criticality
// applications — deterministic ADAS/chassis functions next to
// non-deterministic infotainment — consolidated onto a central computer.
//
// Demonstrates:
//   * design space exploration picking the deployment (Sec. 2.3),
//   * the platform's freedom-from-interference enforcement: the same
//     consolidated workload run twice, once with the time-triggered
//     platform layer, once on a naive fair scheduler (the ablation of E1).
#include <cstdio>
#include <memory>

#include "dse/exploration.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "platform/platform.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=tsn bitrate=1G
ecu Central mips=2000 memory=1G mmu=yes crypto=yes asil=D os=rtos network=Backbone
ecu Aux mips=2000 memory=512M mmu=yes asil=D os=rtos network=Backbone

interface LaneModel paradigm=event payload=256 period=20ms max_latency=10ms
interface ObjectList paradigm=event payload=512 period=40ms max_latency=20ms
interface SteerCmd paradigm=event payload=16 period=10ms max_latency=5ms
interface MediaStream paradigm=stream payload=1400 bandwidth=20M

app LaneKeeping class=deterministic asil=D memory=32M
  task perceive period=20ms wcet=4M priority=1
  task actuate period=10ms wcet=1M priority=0
  provides SteerCmd LaneModel

app ObjectFusion class=deterministic asil=D memory=64M
  task fuse period=40ms wcet=8M priority=2
  provides ObjectList

app EmergencyBrake class=deterministic asil=D memory=16M
  task watch period=10ms wcet=800K priority=0
  consumes ObjectList

app Infotainment class=nondeterministic asil=QM memory=256M
  task render period=16ms wcet=6M priority=10
  provides MediaStream

app VoiceAssistant class=nondeterministic asil=QM memory=128M
  task listen period=50ms wcet=10M priority=12

deploy LaneKeeping -> Central | Aux
deploy ObjectFusion -> Central | Aux
deploy EmergencyBrake -> Central | Aux
deploy Infotainment -> Central | Aux
deploy VoiceAssistant -> Central | Aux
)";

class StubApp final : public platform::Application {};

struct RunStats {
  std::uint64_t da_misses = 0;
  std::uint64_t da_completions = 0;
  std::uint64_t nda_completions = 0;
  double worst_da_response_ms = 0.0;
};

RunStats run_consolidated(const model::ParsedSystem& parsed,
                          const model::DeploymentDef& deployment,
                          bool platform_isolation) {
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId node_id = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.memory_bytes = ecu_def.memory_bytes;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             node_id++));
  }
  platform::DynamicPlatform dp(simulator, parsed.model, deployment);
  platform::NodeConfig node_config;
  node_config.time_triggered = platform_isolation;
  for (auto& ecu : ecus) {
    if (!platform_isolation) {
      // Naive consolidation: one fair scheduler for everything.
      ecu->processor().set_scheduler(os::make_fair(sim::kMillisecond));
    }
    dp.add_node(*ecu, node_config);
  }
  for (const auto& app : parsed.model.apps()) {
    dp.register_app(app.name, [] { return std::make_unique<StubApp>(); });
  }
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("  install failed: %s\n", reason.c_str());
    return {};
  }
  simulator.run_until(sim::seconds(10));

  RunStats stats;
  for (auto& ecu : ecus) {
    auto& cpu = ecu->processor();
    for (os::TaskId id : cpu.task_ids()) {
      const auto& task_stats = cpu.stats(id);
      if (cpu.config(id).task_class == os::TaskClass::kDeterministic) {
        stats.da_misses += task_stats.deadline_misses;
        stats.da_completions += task_stats.completions;
        stats.worst_da_response_ms =
            std::max(stats.worst_da_response_ms,
                     task_stats.response_time.max() / 1e6);
      } else {
        stats.nda_completions += task_stats.completions;
      }
    }
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("== ADAS + infotainment consolidation ==\n\n");
  model::ParsedSystem parsed = model::parse_system(kModel);

  // Let the explorer choose the concrete deployment among the variants.
  dse::Explorer explorer(parsed.model);
  const auto exploration = explorer.simulated_annealing(5'000, 1);
  std::printf("DSE (%s): cost %.1f after %llu candidates, feasible=%s\n",
              exploration.strategy.c_str(), exploration.cost,
              static_cast<unsigned long long>(
                  exploration.candidates_evaluated),
              exploration.feasible ? "yes" : "no");
  model::DeploymentDef deployment;
  for (const auto& [app, hosts] : exploration.assignment.placement) {
    deployment.bindings.push_back({app, hosts});
    std::printf("  %-16s -> %s\n", app.c_str(), hosts.front().c_str());
  }

  std::printf("\n-- with dynamic-platform isolation (TT windows) --\n");
  const RunStats isolated = run_consolidated(parsed, deployment, true);
  std::printf("  DA: %llu completions, %llu deadline misses, worst resp %.2f ms\n",
              static_cast<unsigned long long>(isolated.da_completions),
              static_cast<unsigned long long>(isolated.da_misses),
              isolated.worst_da_response_ms);
  std::printf("  NDA: %llu completions\n",
              static_cast<unsigned long long>(isolated.nda_completions));

  std::printf("\n-- naive consolidation (fair scheduler, no platform) --\n");
  const RunStats naive = run_consolidated(parsed, deployment, false);
  std::printf("  DA: %llu completions, %llu deadline misses, worst resp %.2f ms\n",
              static_cast<unsigned long long>(naive.da_completions),
              static_cast<unsigned long long>(naive.da_misses),
              naive.worst_da_response_ms);
  std::printf("  NDA: %llu completions\n",
              static_cast<unsigned long long>(naive.nda_completions));

  std::printf(
      "\nThe platform's time-triggered enforcement keeps the safety-critical "
      "tasks'\ndeadlines intact under infotainment load; naive consolidation "
      "does not.\n");
  return 0;
}
