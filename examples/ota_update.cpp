// Over-the-air update scenario (paper Sec. 3.2 + 4.1).
//
// A signed package arrives for a deterministic app. The weak target ECU
// delegates signature verification to an update master on the central
// computer (Sec. 4.1), then the platform performs the 4-phase staged update
// — start parallel, sync state, redirect, stop old — while the app's
// subscribers keep receiving. A stop-restart update of the same app is run
// afterwards for contrast.
#include <cstdio>
#include <memory>

#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/export.hpp"
#include "platform/platform.hpp"
#include "platform/update.hpp"
#include "security/package.hpp"
#include "security/update_master.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=ethernet bitrate=100M
ecu Central mips=5000 memory=512M crypto=yes asil=D network=Backbone
ecu Door mips=50 memory=16M asil=B network=Backbone

interface LockState paradigm=event payload=8 period=20ms

app DoorLock class=deterministic asil=B memory=2M
  task poll period=20ms wcet=20K priority=1
  provides LockState

deploy DoorLock -> Door
)";

class DoorLockApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++cycles_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(cycles_);
    context_.comm->publish(context_.service_id("LockState"), 1,
                           writer.take(),
                           context_.priority_of("LockState"));
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(cycles_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    middleware::PayloadReader reader(state);
    cycles_ = reader.u64();
  }

 private:
  std::uint64_t cycles_ = 0;
};

}  // namespace

int main() {
  std::printf("== OTA update with update-master delegation ==\n\n");

  model::ParsedSystem parsed = model::parse_system(kModel);
  sim::Simulator simulator;
  sim::Trace trace;  // vehicle-wide observability sink
  net::EthernetSwitch backbone(simulator, "backbone", {});
  os::EcuConfig central_config{
      .name = "Central",
      .cpu = {.mips = 5000, .crypto_accelerator = true}};
  os::EcuConfig door_config{.name = "Door", .cpu = {.mips = 50}};
  os::Ecu central(simulator, central_config, &backbone, 1, &trace);
  os::Ecu door(simulator, door_config, &backbone, 2, &trace);

  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(central);
  dp.add_node(door);
  dp.register_app("DoorLock",
                  [] { return std::make_unique<DoorLockApp>(); });
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }

  // --- Package security: OEM signs, weak ECU delegates verification. ------
  sim::Random rng(2017);
  const auto oem_key = crypto::RsaKeyPair::generate(768, rng);
  security::PackageSigner signer(oem_key);
  const auto package = signer.sign(
      "DoorLock", 2, std::vector<std::uint8_t>(96 * 1024, 0x42));
  std::printf("backend signed DoorLock v2 (%zu KiB, sig %zu bytes)\n",
              package.binary.size() / 1024, package.signature.size());

  security::UpdateMasterService master(dp.node("Central")->comm(),
                                       oem_key.pub);
  security::UpdateMasterClient client(dp.node("Door")->comm());

  // Subscriber that watches for service gaps during the update.
  std::uint64_t last_cycle = 0;
  std::uint64_t received = 0;
  sim::Time last_rx = 0;
  sim::Duration worst_gap = 0;
  dp.node("Central")->comm().subscribe(
      dp.service_id("LockState"), 1,
      [&](std::vector<std::uint8_t> data, net::NodeId) {
        middleware::PayloadReader reader(data);
        last_cycle = reader.u64();
        ++received;
        if (last_rx != 0) {
          worst_gap = std::max(worst_gap, simulator.now() - last_rx);
        }
        last_rx = simulator.now();
      });

  simulator.run_until(sim::seconds(1));
  std::printf("t=1s: %llu LockState events received, counter at %llu\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(last_cycle));

  // --- Verify on the weak ECU via the master, then staged-update. ---------
  platform::UpdateManager updates(dp);
  model::AppDef v2 = *parsed.model.app("DoorLock");
  v2.version = 2;

  bool verified = false;
  platform::UpdateReport staged_report;
  client.verify(package, [&](bool ok) {
    verified = ok;
    std::printf("t=%.3fs: update master verdict: %s\n",
                sim::to_s(simulator.now()), ok ? "AUTHENTIC" : "REJECTED");
    if (!ok) return;
    updates.staged_update(
        *dp.node("Door"), "DoorLock", v2,
        [] { return std::make_unique<DoorLockApp>(); },
        platform::UpdateConfig{},
        [&](platform::UpdateReport report) { staged_report = report; });
  });

  simulator.run_until(sim::seconds(3));
  if (!verified || !staged_report.success) {
    std::printf("update failed: %s\n", staged_report.reason.c_str());
    return 1;
  }
  std::printf(
      "t=%.3fs: staged update done (phase %d), serving=%s, ownership gap=%lld"
      " ns\n",
      sim::to_s(staged_report.finished), staged_report.phase_reached,
      staged_report.serving_label.c_str(),
      static_cast<long long>(staged_report.ownership_gap));
  std::printf("  counter continued at %llu (state carried to v2)\n",
              static_cast<unsigned long long>(last_cycle));
  std::printf("  worst inter-event gap so far: %.1f ms (nominal 20 ms)\n",
              sim::to_ms(worst_gap));

  // --- Contrast: stop-restart of the same app to v3. ----------------------
  const sim::Duration gap_before = worst_gap;
  model::AppDef v3 = v2;
  v3.version = 3;
  platform::UpdateReport restart_report;
  updates.stop_restart_update(
      *dp.node("Door"), staged_report.serving_label, v3,
      [] { return std::make_unique<DoorLockApp>(); },
      platform::UpdateConfig{},
      [&](platform::UpdateReport report) { restart_report = report; });
  simulator.run_until(sim::seconds(6));
  std::printf(
      "\nstop-restart to v3: ownership gap %.1f ms (vs %.1f ms staged)\n",
      sim::to_ms(restart_report.ownership_gap),
      sim::to_ms(staged_report.ownership_gap));
  std::printf("  worst inter-event gap grew from %.1f to %.1f ms\n",
              sim::to_ms(gap_before), sim::to_ms(worst_gap));
  std::printf(
      "\nThe staged protocol hides the update behind the running version; "
      "the\nstop-restart baseline exposes verification + restart time as "
      "outage.\n");

  // Export the whole run as a Chrome trace-event file: open ota_trace.json
  // in Perfetto (ui.perfetto.dev) or chrome://tracing to see task
  // executions, frame transmissions and the update phases on a timeline.
  if (obs::write_chrome_trace_file(trace.buffer(), "ota_trace.json")) {
    std::printf("\nwrote ota_trace.json (%zu trace events, load it in "
                "Perfetto)\n",
                trace.buffer().size());
  }
  return 0;
}
