// Fleet backend outage drill (paper Sec. 2.3: the schedule synthesis
// backend as shared infrastructure, and what vehicles do when it is gone).
//
// Part 1 walks one vehicle's BackendClient through the full circuit
// breaker arc against a backend that crashes mid-conversation: warm
// synthesis, crash, timeouts + capped jittered retries, breaker opens,
// stale-cache fallback keeps the vehicle safe-degraded, restart,
// half-open probe revalidates the stale artifact, breaker closes.
//
// Part 2 runs a 200-vehicle fleet against one FleetScheduleService,
// injects a fault wave (half the fleet loses an ECU inside 500 ms) on top
// of a full 3-second backend crash, and then machine-checks the headline:
// no vehicle stayed stranded unsafe, and every recovery completed within
// a bound of the backend healing.
//
// Part 3 shards the same fleet across TWO backend regions (home region =
// session id mod 2) and crashes region 0 over the wave. Vehicles homed on
// the dead region time out, their breakers open, and instead of falling
// back to degraded local mode they fail over to the sibling region and
// get FRESH synthesis from its cold cache: zero vehicles stranded, zero
// exhausted fallback ladders.
//
// Usage: fleet_backend
#include <cstdio>

#include "backend/client.hpp"
#include "backend/fleet.hpp"
#include "backend/service.hpp"
#include "fault/invariants.hpp"

using namespace dynaplat;

namespace {

double ms(sim::Time t) { return static_cast<double>(t) / 1e6; }

std::vector<dse::AnalysisTask> demo_tasks() {
  std::vector<dse::AnalysisTask> tasks;
  dse::AnalysisTask brake;
  brake.name = "brake.ctl";
  brake.period = 10 * sim::kMillisecond;
  brake.deadline = brake.period;
  brake.wcet = 1 * sim::kMillisecond;
  brake.priority = 1;
  brake.deterministic = true;
  tasks.push_back(brake);
  dse::AnalysisTask maps;
  maps.name = "maps.tiles";
  maps.period = 40 * sim::kMillisecond;
  maps.deadline = maps.period;
  maps.wcet = 2 * sim::kMillisecond;
  maps.priority = 5;
  tasks.push_back(maps);
  return tasks;
}

void breaker_walkthrough() {
  std::printf("== one vehicle, one breaker ==\n");
  sim::Simulator simulator;
  backend::FleetScheduleService service(simulator);
  backend::ClientConfig config;
  config.request_timeout = 50 * sim::kMillisecond;
  config.backoff_base = 25 * sim::kMillisecond;
  config.breaker_open_for = 300 * sim::kMillisecond;
  backend::BackendClient client(simulator, config);
  client.connect(&service);
  client.add_listener([&simulator](backend::BreakerState from,
                                   backend::BreakerState to) {
    std::printf("  [%8.1f ms] breaker %s -> %s\n", ms(simulator.now()),
                backend::to_string(from), backend::to_string(to));
  });

  const auto request = [&client](backend::Criticality criticality) {
    backend::SynthesisRequest req;
    req.criticality = criticality;
    req.tasks = demo_tasks();
    return req;
  };
  const auto report = [&simulator](const char* what) {
    return [&simulator, what](const backend::BackendOutcome& outcome) {
      std::printf("  [%8.1f ms] %s: source=%s ok=%d stale=%d\n",
                  ms(simulator.now()), what,
                  backend::to_string(outcome.source), outcome.ok,
                  outcome.stale);
    };
  };

  // Warm the artifact cache while the backend is healthy.
  client.request(request(backend::Criticality::kOta), report("warm synth"));
  // Crash the backend, then ask for recovery synthesis: every attempt
  // times out, the breaker opens, and the stale artifact keeps us safe.
  simulator.schedule_at(100 * sim::kMillisecond, [&] { service.crash(); });
  simulator.schedule_at(120 * sim::kMillisecond, [&] {
    client.request(request(backend::Criticality::kRecovery),
                   report("recovery during outage"));
  });
  // Heal. The next request probes half-open, revalidates the stale cache
  // entry, and closes the breaker.
  simulator.schedule_at(900 * sim::kMillisecond, [&] { service.restart(); });
  simulator.schedule_at(1'300 * sim::kMillisecond, [&] {
    client.request(request(backend::Criticality::kRecovery),
                   report("recovery after heal"));
  });
  simulator.run_until(2 * sim::kSecond);
  std::printf("  attempts=%llu timeouts=%llu stale_served=%llu "
              "revalidated=%llu\n\n",
              static_cast<unsigned long long>(client.attempts()),
              static_cast<unsigned long long>(client.timeouts()),
              static_cast<unsigned long long>(client.stale_served()),
              static_cast<unsigned long long>(client.revalidated()));
}

int fleet_drill() {
  std::printf("== 200-vehicle fleet, fault wave on top of a dead backend "
              "==\n");
  sim::Simulator simulator;
  backend::FleetScheduleService service(simulator);
  backend::FleetConfig config;
  config.sessions = 200;
  config.topology_classes = 16;
  config.seed = 7;
  config.horizon = 12 * sim::kSecond;
  config.wave_at = 5 * sim::kSecond;
  config.wave_fraction = 0.5;
  config.outage_at = 4'500 * sim::kMillisecond;
  config.outage_duration = 3 * sim::kSecond;
  backend::FleetDriver driver(simulator, service, config);
  driver.run();

  std::printf("  wave hit %zu vehicles at peak; longest unsafe window "
              "%.1f ms\n",
              driver.peak_unsafe(), ms(driver.max_unsafe_duration()));
  std::printf("  fallbacks: stale cache=%llu local admission=%llu "
              "none=%llu\n",
              static_cast<unsigned long long>(driver.fallback_cache()),
              static_cast<unsigned long long>(driver.fallback_local()),
              static_cast<unsigned long long>(driver.fallback_none()));
  std::printf("  backend: %llu synthesis runs served %llu requests "
              "(cache hits %llu), shed %llu, breaker opened %llu times\n",
              static_cast<unsigned long long>(service.synthesis_runs()),
              static_cast<unsigned long long>(service.requests_total()),
              static_cast<unsigned long long>(service.cache_hits()),
              static_cast<unsigned long long>(service.shed_total()),
              static_cast<unsigned long long>(driver.client_breaker_opens()));
  std::printf("  recoveries completed=%llu, last at %.1f ms (heal at "
              "%.1f ms)\n",
              static_cast<unsigned long long>(driver.recoveries_completed()),
              ms(driver.last_recovery_completed()), ms(driver.heal_time()));

  fault::InvariantChecker checker;
  checker.require_backend_drained(service);
  checker.require_no_stranded_vehicles(driver, 2 * sim::kSecond);
  checker.require_fleet_recovery_bounded(driver, 4 * sim::kSecond);
  const fault::InvariantReport report = checker.run();
  std::printf("\n%s\n", report.summary().c_str());
  return report.passed ? 0 : 1;
}

int region_failover_drill() {
  std::printf("\n== 200-vehicle fleet, two regions, region 0 dies over the "
              "wave ==\n");
  sim::Simulator simulator;
  backend::FleetScheduleService region0(simulator);
  backend::FleetScheduleService region1(simulator);
  region0.set_name("region0");
  region1.set_name("region1");
  backend::FleetConfig config;
  config.sessions = 200;
  config.topology_classes = 16;
  config.seed = 7;
  config.horizon = 12 * sim::kSecond;
  config.wave_at = 5 * sim::kSecond;
  config.wave_fraction = 0.5;
  // Same outage as part 2 -- but now it only takes out region 0, the home
  // region of the even-numbered sessions.
  config.outage_at = 4'500 * sim::kMillisecond;
  config.outage_duration = 3 * sim::kSecond;
  backend::FleetDriver driver(simulator, {&region0, &region1}, config);
  driver.run();

  std::printf("  regions=%zu, failovers=%llu (home breaker opens, traffic "
              "shifts to the sibling)\n",
              driver.regions(),
              static_cast<unsigned long long>(driver.failovers()));
  std::printf("  region0: %llu requests, %llu synthesis runs, crashed %llu "
              "times\n",
              static_cast<unsigned long long>(region0.requests_total()),
              static_cast<unsigned long long>(region0.synthesis_runs()),
              static_cast<unsigned long long>(region0.crashes()));
  std::printf("  region1: %llu requests, %llu synthesis runs (cold-cache "
              "synthesis for the refugees)\n",
              static_cast<unsigned long long>(region1.requests_total()),
              static_cast<unsigned long long>(region1.synthesis_runs()));
  std::printf("  fallbacks: stale cache=%llu local=%llu none=%llu -- with a "
              "sibling region the ladder is barely touched\n",
              static_cast<unsigned long long>(driver.fallback_cache()),
              static_cast<unsigned long long>(driver.fallback_local()),
              static_cast<unsigned long long>(driver.fallback_none()));
  std::printf("  longest unsafe window %.1f ms, recoveries completed=%llu\n",
              ms(driver.max_unsafe_duration()),
              static_cast<unsigned long long>(driver.recoveries_completed()));

  fault::InvariantChecker checker;
  checker.require_no_stranded_vehicles(driver, 2 * sim::kSecond);
  checker.require_fleet_recovery_bounded(driver, 4 * sim::kSecond);
  const fault::InvariantReport report = checker.run();
  std::printf("\n%s\n", report.summary().c_str());
  const bool failed_over = driver.failovers() > 0;
  if (!failed_over) {
    std::printf("FAIL: expected breaker-driven failover to region 1\n");
  }
  return (report.passed && failed_over) ? 0 : 1;
}

}  // namespace

int main() {
  breaker_walkthrough();
  const int drill = fleet_drill();
  const int failover = region_failover_drill();
  return drill != 0 ? drill : failover;
}
