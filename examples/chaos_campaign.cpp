// Deterministic chaos campaign against a fail-operational vehicle platform
// (paper Sec. 2.4 "testing against uncertainty", Sec. 3.3/3.4).
//
// A replicated "Pilot" function steers from Front/Rear while an
// infotainment app rides along on the Cabin ECU. A seed-driven fault
// campaign then spends four seconds kicking the platform: ECU crashes,
// network partitions, babbling idiots, bursty loss, corruption, memory
// pressure — plus one scripted task overrun in the infotainment stack.
// The middleware runs its reliable transport (CRC32 + ack/retry), the
// redundancy manager keeps a primary alive, and the degradation manager
// sheds the misbehaving NDA app.
//
// The same seed reproduces the identical campaign bit for bit (the
// fingerprint printed at the end is the proof), and an invariant checker
// verifies the fail-operational properties afterwards:
//   * every failover stayed under the outage bound,
//   * deterministic tasks missed zero deadlines,
//   * every injected primary crash / overrun was detected,
//   * no reassembly buffers were left stranded.
//
// Usage: chaos_campaign [seed]     (default seed 7)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/export.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=ethernet bitrate=1G
ecu Front mips=3000 memory=256M asil=D network=Backbone
ecu Rear mips=3000 memory=256M asil=D network=Backbone
ecu Cabin mips=2000 memory=256M asil=D network=Backbone

interface Steering paradigm=event payload=16 period=10ms max_latency=5ms

app Pilot class=deterministic asil=D memory=32M replicas=2
  task plan period=10ms wcet=2M priority=1
  provides Steering

app Infotain class=nondeterministic asil=QM memory=16M
  task ui period=20ms wcet=100K priority=8
  consumes Steering

deploy Pilot -> Front | Rear
deploy Infotain -> Cabin
)";

class PilotApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++plan_step_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    context_.comm->publish(context_.service_id("Steering"), 1, writer.take(),
                           context_.priority_of("Steering"));
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    try {
      middleware::PayloadReader reader(state);
      plan_step_ = reader.u64();
    } catch (const std::out_of_range&) {
    }
  }

 private:
  std::uint64_t plan_step_ = 0;
};

class InfotainApp final : public platform::Application {};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("== chaos campaign, seed %llu ==\n\n",
              static_cast<unsigned long long>(seed));

  model::ParsedSystem parsed = model::parse_system(kModel);
  sim::Simulator simulator;
  sim::Trace trace;
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});
  os::EcuConfig front_config{.name = "Front", .cpu = {.mips = 3000}};
  os::EcuConfig rear_config{.name = "Rear", .cpu = {.mips = 3000}};
  os::EcuConfig cabin_config{.name = "Cabin", .cpu = {.mips = 2000}};
  os::Ecu front(simulator, front_config, &backbone, 1, &trace);
  os::Ecu rear(simulator, rear_config, &backbone, 2, &trace);
  os::Ecu cabin(simulator, cabin_config, &backbone, 3, &trace);

  platform::NodeConfig node_config;
  node_config.middleware.transport.reliable = true;  // survive lossy episodes

  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  dp.add_node(front, node_config);
  dp.add_node(rear, node_config);
  dp.add_node(cabin, node_config);
  dp.register_app("Pilot", [] { return std::make_unique<PilotApp>(); });
  dp.register_app("Infotain", [] { return std::make_unique<InfotainApp>(); });
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }

  platform::RedundancyManager redundancy(dp, "Pilot");
  redundancy.engage();
  platform::DegradationManager degradation(dp);
  degradation.engage();

  // --- The campaign: generated episodes + one scripted overrun ---------------
  fault::CampaignConfig campaign_config;
  campaign_config.seed = seed;
  campaign_config.start = 500 * sim::kMillisecond;  // let discovery settle
  campaign_config.horizon = 4 * sim::kSecond;
  campaign_config.episodes = 8;
  // Generated overruns (1.5-4x) would not push the 0.05 ms ui task past its
  // 20 ms deadline; the scripted 600x episode below covers that family with
  // a guaranteed-detectable magnitude instead.
  campaign_config.weight_overrun = 0.0;
  fault::FaultCampaign campaign(simulator, campaign_config);
  campaign.set_trace(&trace);
  // Crash/memory pool: the Pilot replicas only. Cabin stays up so its
  // overrun target (a raw task handle) can never dangle across a restart.
  campaign.add_ecu(front);
  campaign.add_ecu(rear);
  campaign.add_medium(backbone);
  const platform::AppInstance* infotain =
      dp.node("Cabin")->instance("Infotain");
  campaign.add_overrun_target("Cabin/ui",
                              cabin.processor(infotain->core),
                              infotain->tasks[0]);
  campaign.generate();
  {
    // Scripted on top of the generated plan: the infotainment ui task wedges
    // at 600x its budget (0.05 ms -> 30 ms against a 20 ms deadline), and the
    // degradation manager is expected to shed it.
    fault::FaultEvent overrun;
    overrun.at = 2200 * sim::kMillisecond;
    overrun.kind = fault::FaultKind::kTaskOverrun;
    overrun.target = "Cabin/ui";
    overrun.magnitude = 600.0;
    campaign.schedule(overrun);
    fault::FaultEvent overrun_end;
    overrun_end.at = 2600 * sim::kMillisecond;
    overrun_end.kind = fault::FaultKind::kTaskOverrunEnd;
    overrun_end.target = "Cabin/ui";
    campaign.schedule(overrun_end);
  }
  campaign.arm();

  std::printf("campaign plan (%zu events):\n", campaign.plan().size());
  for (const fault::FaultEvent& event : campaign.plan()) {
    std::printf("  t=%7.3fs  %-18s %-10s magnitude=%.2f\n",
                sim::to_s(event.at), fault::to_string(event.kind),
                event.target.c_str(), event.magnitude);
  }

  simulator.run_until(6 * sim::kSecond);

  // --- What happened ----------------------------------------------------------
  std::printf("\nfailovers: %zu\n", redundancy.failovers().size());
  for (const platform::FailoverEvent& event : redundancy.failovers()) {
    std::printf("  t=%7.3fs  node %u promoted, outage %.1f ms\n",
                sim::to_s(event.promoted_at), event.new_primary,
                sim::to_ms(event.outage));
  }
  std::printf("final primary: %s\n", redundancy.current_primary().c_str());

  std::printf("\ndegradation transitions: %zu (shed %zu, restored %zu)\n",
              degradation.transitions().size(), degradation.apps_shed(),
              degradation.apps_restored());
  for (const platform::HealthTransition& event : degradation.transitions()) {
    std::printf("  t=%7.3fs  %-6s %s -> %s (%s)\n", sim::to_s(event.at),
                event.ecu.c_str(), platform::to_string(event.from),
                platform::to_string(event.to), event.cause.c_str());
  }

  std::printf("\nreliable transport:\n");
  for (const char* name : {"Front", "Rear", "Cabin"}) {
    const middleware::Transport& transport = dp.node(name)->comm().transport();
    std::printf(
        "  %-6s retries=%llu crc_failures=%llu dup_suppressed=%llu "
        "evictions=%llu delivery_failures=%llu\n",
        name, static_cast<unsigned long long>(transport.retries()),
        static_cast<unsigned long long>(transport.crc_failures()),
        static_cast<unsigned long long>(transport.duplicates_suppressed()),
        static_cast<unsigned long long>(transport.reassembly_evictions()),
        static_cast<unsigned long long>(transport.delivery_failures()));
  }

  // --- Verify the fail-operational properties --------------------------------
  fault::InvariantChecker checker;
  checker.require_failover_outage_below(redundancy, 300 * sim::kMillisecond);
  checker.require_no_da_deadline_misses(dp);
  // Crash blips shorter than the failover detection limit (3 missed 10 ms
  // heartbeats + one supervisor tick) legitimately cause no failover.
  checker.require_faults_detected(campaign, dp, &redundancy,
                                  40 * sim::kMillisecond);
  checker.require_no_stranded_reassembly(dp);
  // Arm the flight recorder: the first violated invariant dumps one bundle
  // (trace tail + metrics + coverage + this seed) for off-line triage.
  fault::FlightRecorderConfig recorder;
  recorder.trace = &trace;
  recorder.seed = seed;
  recorder.path = "chaos_postmortem.json";
  checker.set_flight_recorder(recorder);
  const fault::InvariantReport report = checker.run();
  std::printf("\ninvariants: %s\n", report.summary().c_str());
  if (!report.bundle_path.empty()) {
    std::printf("post-mortem bundle: %s\n", report.bundle_path.c_str());
  }

  std::printf("\ncampaign fingerprint: %016llx (%zu events injected)\n",
              static_cast<unsigned long long>(campaign.fingerprint()),
              campaign.injected().size());
  std::printf("re-run with the same seed to reproduce this exact timeline.\n");

  if (obs::write_chrome_trace_file(trace.buffer(), "chaos_trace.json")) {
    std::printf("wrote chaos_trace.json (fault lane included)\n");
  }
  return report.passed ? 0 : 1;
}
