// Deterministic chaos campaign against a fail-operational vehicle platform
// (paper Sec. 2.4 "testing against uncertainty", Sec. 3.3/3.4).
//
// A replicated "Pilot" function steers from Front/Rear while an
// infotainment app rides along on the Cabin ECU. A seed-driven fault
// campaign then spends four seconds kicking the platform: ECU crashes,
// network partitions, babbling idiots, bursty loss, corruption, memory
// pressure — plus one scripted task overrun in the infotainment stack.
// The middleware runs its reliable transport (CRC32 + ack/retry), the
// redundancy manager keeps a primary alive, and the degradation manager
// sheds the misbehaving NDA app.
//
// The same seed reproduces the identical campaign bit for bit (the
// fingerprint printed at the end is the proof), and an invariant checker
// verifies the fail-operational properties afterwards:
//   * every failover stayed under the outage bound,
//   * deterministic tasks missed zero deadlines,
//   * every injected primary crash / overrun was detected,
//   * no reassembly buffers were left stranded.
//
// Usage:
//   chaos_campaign [seed]            single campaign (default seed 7)
//   chaos_campaign --fuzz [mseed]    coverage-guided search over campaign
//                                    configs (fault::FuzzScheduler); writes
//                                    chaos_fuzz_journal.json, and minimizes
//                                    any invariant violation it finds into
//                                    chaos_repro.json
//   chaos_campaign --minimize [seed] shrink the seed's campaign against a
//                                    tight failover-outage bound into a
//                                    minimal replayable repro
//                                    (chaos_repro.json), then verify the
//                                    repro re-trips the same invariant
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "fault/campaign.hpp"
#include "fault/fuzz.hpp"
#include "fault/invariants.hpp"
#include "fault/minimize.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/export.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/redundancy.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=ethernet bitrate=1G
ecu Front mips=3000 memory=256M asil=D network=Backbone
ecu Rear mips=3000 memory=256M asil=D network=Backbone
ecu Cabin mips=2000 memory=256M asil=D network=Backbone

interface Steering paradigm=event payload=16 period=10ms max_latency=5ms

app Pilot class=deterministic asil=D memory=32M replicas=2
  task plan period=10ms wcet=2M priority=1
  provides Steering

app Infotain class=nondeterministic asil=QM memory=16M
  task ui period=20ms wcet=100K priority=8
  consumes Steering

deploy Pilot -> Front | Rear
deploy Infotain -> Cabin
)";

class PilotApp final : public platform::Application {
 public:
  void on_task(const std::string&) override {
    ++plan_step_;
    if (!active()) return;
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    context_.comm->publish(context_.service_id("Steering"), 1, writer.take(),
                           context_.priority_of("Steering"));
  }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(plan_step_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    try {
      middleware::PayloadReader reader(state);
      plan_step_ = reader.u64();
    } catch (const std::out_of_range&) {
    }
  }

 private:
  std::uint64_t plan_step_ = 0;
};

class InfotainApp final : public platform::Application {};

/// The demo platform, built fresh per scenario so every run — interactive,
/// fuzzed, or a minimizer probe — is a pure function of its campaign.
struct Rig {
  sim::Simulator& simulator;
  sim::Trace trace;
  model::ParsedSystem parsed;
  std::unique_ptr<net::EthernetSwitch> backbone;
  std::unique_ptr<os::Ecu> front, rear, cabin;
  std::unique_ptr<platform::DynamicPlatform> dp;
  std::unique_ptr<platform::RedundancyManager> redundancy;
  std::unique_ptr<platform::DegradationManager> degradation;
  bool ok = false;

  explicit Rig(sim::Simulator& sim) : simulator(sim) {
    parsed = model::parse_system(kModel);
    backbone = std::make_unique<net::EthernetSwitch>(
        simulator, "backbone", net::EthernetConfig{.link_bps = 1'000'000'000});
    os::EcuConfig front_config{.name = "Front", .cpu = {.mips = 3000}};
    os::EcuConfig rear_config{.name = "Rear", .cpu = {.mips = 3000}};
    os::EcuConfig cabin_config{.name = "Cabin", .cpu = {.mips = 2000}};
    front = std::make_unique<os::Ecu>(simulator, front_config, backbone.get(),
                                      1, &trace);
    rear = std::make_unique<os::Ecu>(simulator, rear_config, backbone.get(),
                                     2, &trace);
    cabin = std::make_unique<os::Ecu>(simulator, cabin_config, backbone.get(),
                                      3, &trace);
    platform::NodeConfig node_config;
    node_config.middleware.transport.reliable = true;  // survive lossy episodes
    dp = std::make_unique<platform::DynamicPlatform>(simulator, parsed.model,
                                                     parsed.deployment);
    dp->add_node(*front, node_config);
    dp->add_node(*rear, node_config);
    dp->add_node(*cabin, node_config);
    dp->register_app("Pilot", [] { return std::make_unique<PilotApp>(); });
    dp->register_app("Infotain", [] { return std::make_unique<InfotainApp>(); });
    if (!dp->install_all()) return;
    redundancy = std::make_unique<platform::RedundancyManager>(*dp, "Pilot");
    redundancy->engage();
    degradation = std::make_unique<platform::DegradationManager>(*dp);
    degradation->engage();
    ok = true;
  }

  /// Crash/memory pool: the Pilot replicas only. Cabin stays up so its
  /// overrun target (a raw task handle) can never dangle across a restart.
  void add_targets(fault::FaultCampaign& campaign) {
    campaign.set_trace(&trace);
    campaign.add_ecu(*front);
    campaign.add_ecu(*rear);
    campaign.add_medium(*backbone);
    const platform::AppInstance* infotain =
        dp->node("Cabin")->instance("Infotain");
    campaign.add_overrun_target("Cabin/ui", cabin->processor(infotain->core),
                                infotain->tasks[0]);
  }
};

fault::CampaignConfig base_config(std::uint64_t seed) {
  fault::CampaignConfig config;
  config.seed = seed;
  config.start = 500 * sim::kMillisecond;  // let discovery settle
  config.horizon = 4 * sim::kSecond;
  config.episodes = 8;
  // Generated overruns (1.5-4x) would not push the 0.05 ms ui task past its
  // 20 ms deadline; the single-campaign mode scripts a 600x episode to cover
  // that family with a guaranteed-detectable magnitude instead.
  config.weight_overrun = 0.0;
  return config;
}

// --- Fuzz mode ----------------------------------------------------------------

/// One fuzzed scenario: fresh rig, campaign from the mutated config, the
/// guaranteed invariant subset (loose 1 s outage bound — a violation is a
/// real bug, not a bound artifact), coverage out.
fault::FuzzRunResult run_fuzz_scenario(const fault::CampaignConfig& config) {
  sim::Simulator simulator;
  Rig rig(simulator);
  fault::FuzzRunResult result;
  if (!rig.ok) return result;
  fault::FaultCampaign campaign(simulator, config);
  rig.add_targets(campaign);
  campaign.generate();
  campaign.arm();
  simulator.run_until(config.start + config.horizon + 1 * sim::kSecond);
  fault::InvariantChecker checker;
  checker.require_failover_outage_below(*rig.redundancy, 1 * sim::kSecond);
  checker.require_no_da_deadline_misses(*rig.dp);
  checker.require_no_stranded_reassembly(*rig.dp);
  fault::FlightRecorderConfig recorder;
  recorder.trace = &rig.trace;
  recorder.seed = config.seed;
  recorder.path.clear();  // coverage verdicts only, no bundle
  checker.set_flight_recorder(recorder);
  const fault::InvariantReport report = checker.run();
  result.invariants_passed = report.passed;
  for (const fault::InvariantResult& r : report.results) {
    if (!r.passed) {
      result.violated = r.name;
      result.detail = r.detail;
      break;
    }
  }
  result.fingerprint = campaign.fingerprint();
  result.coverage.merge_from(rig.trace.coverage());
  return result;
}

/// Minimizer probe: replay an explicit plan against a tight outage bound
/// (1 ms — any failover violates), horizon as absolute end time.
fault::ProbeVerdict run_tight_probe(const std::vector<fault::FaultEvent>& plan,
                                    sim::Duration horizon) {
  sim::Simulator simulator;
  Rig rig(simulator);
  fault::ProbeVerdict verdict;
  if (!rig.ok) return verdict;
  fault::FaultCampaign campaign(simulator, fault::CampaignConfig{});
  rig.add_targets(campaign);
  for (const fault::FaultEvent& event : plan) campaign.schedule(event);
  campaign.arm();
  simulator.run_until(horizon);
  fault::InvariantChecker checker;
  checker.require_failover_outage_below(*rig.redundancy,
                                        1 * sim::kMillisecond);
  const fault::InvariantReport report = checker.run();
  for (const fault::InvariantResult& r : report.results) {
    if (!r.passed) {
      verdict.violated = true;
      verdict.invariant = r.name;
      verdict.detail = r.detail;
      break;
    }
  }
  return verdict;
}

int fuzz_mode(std::uint64_t master_seed) {
  std::printf("== coverage-guided chaos fuzz, master seed %llu ==\n\n",
              static_cast<unsigned long long>(master_seed));
  fault::FuzzConfig config;
  config.master_seed = master_seed;
  config.base = base_config(1);
  config.rounds = 6;
  config.batch = 6;
  fault::FuzzScheduler fuzzer(config, run_fuzz_scenario);
  fuzzer.run();

  std::printf("executed %zu scenarios over %d rounds\n", fuzzer.executed(),
              fuzzer.rounds_completed());
  std::printf("unique coverage keys: %zu\n", fuzzer.unique_keys());
  std::printf("corpus (%zu entries):\n", fuzzer.corpus().size());
  for (std::size_t i = 0; i < fuzzer.corpus().size(); ++i) {
    const fault::CorpusEntry& entry = fuzzer.corpus()[i];
    std::printf("  [%2zu] round %2d  op %-12s  +%zu edges  seed %016llx\n", i,
                entry.round, fault::to_string(entry.op), entry.new_edges,
                static_cast<unsigned long long>(entry.config.seed));
  }

  std::FILE* f = std::fopen("chaos_fuzz_journal.json", "w");
  if (f != nullptr) {
    const std::string journal = fuzzer.journal_json();
    std::fwrite(journal.data(), 1, journal.size(), f);
    std::fclose(f);
    std::printf("wrote chaos_fuzz_journal.json (replay record)\n");
  }

  if (fuzzer.failures().empty()) {
    std::printf("\nno invariant violations found — the platform held.\n");
    return 0;
  }
  // A violation under the guaranteed invariants is a real finding: shrink
  // it to a minimal repro before reporting.
  const fault::FuzzFailure& failure = fuzzer.failures()[0];
  std::printf("\nVIOLATION: %s (%s)\nminimizing...\n",
              failure.violated.c_str(), failure.detail.c_str());
  std::vector<fault::FaultEvent> plan;
  {
    sim::Simulator simulator;
    Rig rig(simulator);
    fault::FaultCampaign campaign(simulator, failure.config);
    rig.add_targets(campaign);
    campaign.generate();
    plan = campaign.plan();
  }
  const sim::Duration horizon =
      failure.config.start + failure.config.horizon + 1 * sim::kSecond;
  // Probe with the same guaranteed invariants the fuzzer used.
  auto probe = [&](const std::vector<fault::FaultEvent>& p,
                   sim::Duration h) -> fault::ProbeVerdict {
    sim::Simulator simulator;
    Rig rig(simulator);
    fault::ProbeVerdict verdict;
    if (!rig.ok) return verdict;
    fault::FaultCampaign campaign(simulator, fault::CampaignConfig{});
    rig.add_targets(campaign);
    for (const fault::FaultEvent& event : p) campaign.schedule(event);
    campaign.arm();
    simulator.run_until(h);
    fault::InvariantChecker checker;
    checker.require_failover_outage_below(*rig.redundancy, 1 * sim::kSecond);
    checker.require_no_da_deadline_misses(*rig.dp);
    checker.require_no_stranded_reassembly(*rig.dp);
    const fault::InvariantReport report = checker.run();
    for (const fault::InvariantResult& res : report.results) {
      if (!res.passed) {
        verdict.violated = true;
        verdict.invariant = res.name;
        verdict.detail = res.detail;
        break;
      }
    }
    return verdict;
  };
  fault::Minimizer minimizer({}, probe);
  fault::Repro repro =
      minimizer.minimize(plan, horizon, failure.violated);
  repro.seed = failure.config.seed;
  if (repro.failing && fault::write_repro_file(repro, "chaos_repro.json")) {
    std::printf("minimized %zu events -> %zu (%zu probes); wrote "
                "chaos_repro.json\n", repro.original_events,
                repro.plan.size(), repro.runs_used);
  }
  return 1;
}

int minimize_mode(std::uint64_t seed) {
  std::printf("== minimize campaign seed %llu against tight outage bound ==\n\n",
              static_cast<unsigned long long>(seed));
  fault::CampaignConfig config = base_config(seed);
  config.episodes = 10;
  std::vector<fault::FaultEvent> plan;
  {
    sim::Simulator simulator;
    Rig rig(simulator);
    if (!rig.ok) {
      std::printf("platform install failed\n");
      return 1;
    }
    fault::FaultCampaign campaign(simulator, config);
    rig.add_targets(campaign);
    campaign.generate();
    plan = campaign.plan();
  }
  const sim::Duration horizon =
      config.start + config.horizon + 1 * sim::kSecond;
  std::printf("input: %zu events, horizon %.2fs\n", plan.size(),
              sim::to_s(horizon));

  fault::Minimizer minimizer({}, run_tight_probe);
  fault::Repro repro = minimizer.minimize(plan, horizon);
  repro.seed = seed;
  if (!repro.failing) {
    std::printf("campaign does not violate the tight bound (no failover "
                "occurred) — nothing to minimize; try another seed.\n");
    return 0;
  }
  std::printf("minimal repro: %zu events, horizon %.2fs, invariant %s "
              "(%zu probe runs)\n", repro.plan.size(), sim::to_s(repro.horizon),
              repro.invariant.c_str(), repro.runs_used);
  for (const fault::FaultEvent& event : repro.plan) {
    std::printf("  t=%7.3fs  %-18s %-10s magnitude=%.2f\n",
                sim::to_s(event.at), fault::to_string(event.kind),
                event.target.c_str(), event.magnitude);
  }
  if (!fault::write_repro_file(repro, "chaos_repro.json")) {
    std::printf("cannot write chaos_repro.json\n");
    return 1;
  }

  // Round-trip proof: reload the JSON and replay it — the serialized repro
  // alone must trip the same invariant.
  std::string text = fault::repro_json(repro);
  fault::Repro loaded;
  if (!fault::load_repro(text, &loaded)) {
    std::printf("repro round-trip parse failed\n");
    return 1;
  }
  const fault::ProbeVerdict verdict =
      run_tight_probe(loaded.plan, loaded.horizon);
  std::printf("replayed chaos_repro.json: %s\n",
              verdict.violated && verdict.invariant == repro.invariant
                  ? "re-trips the same invariant"
                  : "DOES NOT reproduce (bug!)");
  return verdict.violated && verdict.invariant == repro.invariant ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--fuzz") == 0) {
    return fuzz_mode(argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "--minimize") == 0) {
    return minimize_mode(argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7);
  }
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("== chaos campaign, seed %llu ==\n\n",
              static_cast<unsigned long long>(seed));

  sim::Simulator simulator;
  Rig rig(simulator);
  if (!rig.ok) {
    std::printf("install failed\n");
    return 1;
  }

  // --- The campaign: generated episodes + one scripted overrun ---------------
  fault::CampaignConfig campaign_config = base_config(seed);
  fault::FaultCampaign campaign(simulator, campaign_config);
  rig.add_targets(campaign);
  campaign.generate();
  {
    // Scripted on top of the generated plan: the infotainment ui task wedges
    // at 600x its budget (0.05 ms -> 30 ms against a 20 ms deadline), and the
    // degradation manager is expected to shed it.
    fault::FaultEvent overrun;
    overrun.at = 2200 * sim::kMillisecond;
    overrun.kind = fault::FaultKind::kTaskOverrun;
    overrun.target = "Cabin/ui";
    overrun.magnitude = 600.0;
    campaign.schedule(overrun);
    fault::FaultEvent overrun_end;
    overrun_end.at = 2600 * sim::kMillisecond;
    overrun_end.kind = fault::FaultKind::kTaskOverrunEnd;
    overrun_end.target = "Cabin/ui";
    campaign.schedule(overrun_end);
  }
  campaign.arm();

  std::printf("campaign plan (%zu events):\n", campaign.plan().size());
  for (const fault::FaultEvent& event : campaign.plan()) {
    std::printf("  t=%7.3fs  %-18s %-10s magnitude=%.2f\n",
                sim::to_s(event.at), fault::to_string(event.kind),
                event.target.c_str(), event.magnitude);
  }

  simulator.run_until(6 * sim::kSecond);

  // --- What happened ----------------------------------------------------------
  std::printf("\nfailovers: %zu\n", rig.redundancy->failovers().size());
  for (const platform::FailoverEvent& event : rig.redundancy->failovers()) {
    std::printf("  t=%7.3fs  node %u promoted, outage %.1f ms\n",
                sim::to_s(event.promoted_at), event.new_primary,
                sim::to_ms(event.outage));
  }
  std::printf("final primary: %s\n", rig.redundancy->current_primary().c_str());

  std::printf("\ndegradation transitions: %zu (shed %zu, restored %zu)\n",
              rig.degradation->transitions().size(),
              rig.degradation->apps_shed(), rig.degradation->apps_restored());
  for (const platform::HealthTransition& event :
       rig.degradation->transitions()) {
    std::printf("  t=%7.3fs  %-6s %s -> %s (%s)\n", sim::to_s(event.at),
                event.ecu.c_str(), platform::to_string(event.from),
                platform::to_string(event.to), event.cause.c_str());
  }

  std::printf("\nreliable transport:\n");
  for (const char* name : {"Front", "Rear", "Cabin"}) {
    const middleware::Transport& transport =
        rig.dp->node(name)->comm().transport();
    std::printf(
        "  %-6s retries=%llu crc_failures=%llu dup_suppressed=%llu "
        "evictions=%llu delivery_failures=%llu\n",
        name, static_cast<unsigned long long>(transport.retries()),
        static_cast<unsigned long long>(transport.crc_failures()),
        static_cast<unsigned long long>(transport.duplicates_suppressed()),
        static_cast<unsigned long long>(transport.reassembly_evictions()),
        static_cast<unsigned long long>(transport.delivery_failures()));
  }

  // --- Verify the fail-operational properties --------------------------------
  fault::InvariantChecker checker;
  checker.require_failover_outage_below(*rig.redundancy,
                                        300 * sim::kMillisecond);
  checker.require_no_da_deadline_misses(*rig.dp);
  // Crash blips shorter than the failover detection limit (3 missed 10 ms
  // heartbeats + one supervisor tick) legitimately cause no failover.
  checker.require_faults_detected(campaign, *rig.dp, rig.redundancy.get(),
                                  40 * sim::kMillisecond);
  checker.require_no_stranded_reassembly(*rig.dp);
  // Arm the flight recorder: the first violated invariant dumps one bundle
  // (trace tail + metrics + coverage + this seed) for off-line triage.
  fault::FlightRecorderConfig recorder;
  recorder.trace = &rig.trace;
  recorder.seed = seed;
  recorder.path = "chaos_postmortem.json";
  checker.set_flight_recorder(recorder);
  const fault::InvariantReport report = checker.run();
  std::printf("\ninvariants: %s\n", report.summary().c_str());
  if (!report.bundle_path.empty()) {
    std::printf("post-mortem bundle: %s\n", report.bundle_path.c_str());
  }

  std::printf("\ncampaign fingerprint: %016llx (%zu events injected)\n",
              static_cast<unsigned long long>(campaign.fingerprint()),
              campaign.injected().size());
  std::printf("re-run with the same seed to reproduce this exact timeline.\n");

  if (obs::write_chrome_trace_file(rig.trace.buffer(), "chaos_trace.json")) {
    std::printf("wrote chaos_trace.json (fault lane included)\n");
  }
  return report.passed ? 0 : 1;
}
