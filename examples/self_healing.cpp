// Transactional self-healing after a double ECU loss (paper Sec. 2.3 +
// 3.3: "the final mapping might only be applied in the vehicle on the
// road").
//
// A four-ECU vehicle drives along with two deterministic control apps and
// two best-effort companions. A scripted fault campaign then kills both
// front ECUs 20 ms apart. The RecoveryOrchestrator detects the loss,
// snapshots the surviving topology, asks the DSE explorer for a
// whole-vehicle remap, admission-checks every target, and applies the
// steps deterministic-first; the plan soaks under the runtime monitor
// before it commits. The example prints every plan with its steps and
// verifies the transactional properties (atomicity, bounded recovery
// latency, zero DA deadline misses among the survivors) afterwards.
//
// The full timeline — fault lane, per-step recovery spans, task execution
// — is exported to recovery_trace.json (chrome://tracing / Perfetto).
//
// Usage: self_healing
#include <cstdio>
#include <memory>

#include "fault/campaign.hpp"
#include "fault/invariants.hpp"
#include "middleware/payload.hpp"
#include "model/parser.hpp"
#include "net/ethernet.hpp"
#include "obs/export.hpp"
#include "platform/degradation.hpp"
#include "platform/platform.hpp"
#include "platform/recovery.hpp"

using namespace dynaplat;

namespace {

const char* kModel = R"(
network Backbone kind=ethernet bitrate=1G
ecu FrontLeft mips=2000 memory=128M asil=D network=Backbone
ecu FrontRight mips=2000 memory=128M asil=D network=Backbone
ecu RearLeft mips=2000 memory=128M asil=D network=Backbone
ecu RearRight mips=2000 memory=128M asil=D network=Backbone

app Brake class=deterministic asil=D memory=16M
  task ctl period=10ms wcet=400K priority=1

app Steer class=deterministic asil=C memory=16M
  task ctl period=10ms wcet=300K priority=1

app Maps class=nondeterministic asil=QM memory=32M
  task tiles period=40ms wcet=800K priority=5

app Infotain class=nondeterministic asil=QM memory=32M
  task ui period=20ms wcet=200K priority=6

deploy Brake -> FrontLeft | RearLeft | RearRight
deploy Steer -> FrontRight | RearLeft | RearRight
deploy Maps -> FrontLeft | RearLeft | RearRight
deploy Infotain -> FrontRight | RearLeft | RearRight
)";

// Counts its own activations; the counter travels with the app when the
// orchestrator re-hosts it (serialize/restore through the journal).
class CountingApp final : public platform::Application {
 public:
  void on_task(const std::string&) override { ++ticks_; }
  std::vector<std::uint8_t> serialize_state() override {
    middleware::PayloadWriter writer;
    writer.u64(ticks_);
    return writer.take();
  }
  void restore_state(const std::vector<std::uint8_t>& state) override {
    try {
      middleware::PayloadReader reader(state);
      ticks_ = reader.u64();
    } catch (const std::out_of_range&) {
    }
  }
  std::uint64_t ticks() const { return ticks_; }

 private:
  std::uint64_t ticks_ = 0;
};

}  // namespace

int main() {
  std::printf("== transactional self-healing: double ECU loss ==\n\n");

  model::ParsedSystem parsed = model::parse_system(kModel);
  sim::Simulator simulator;
  sim::Trace trace;
  net::EthernetSwitch backbone(simulator, "backbone",
                               net::EthernetConfig{.link_bps = 1'000'000'000});
  std::vector<std::unique_ptr<os::Ecu>> ecus;
  net::NodeId node_id = 1;
  for (const auto& ecu_def : parsed.model.ecus()) {
    os::EcuConfig config;
    config.name = ecu_def.name;
    config.cpu.mips = ecu_def.mips;
    config.cores = ecu_def.cores;
    config.memory_bytes = ecu_def.memory_bytes;
    ecus.push_back(std::make_unique<os::Ecu>(simulator, config, &backbone,
                                             node_id++, &trace));
  }

  platform::DynamicPlatform dp(simulator, parsed.model, parsed.deployment);
  for (auto& ecu : ecus) dp.add_node(*ecu);
  for (const auto& app : parsed.model.apps()) {
    dp.register_app(app.name, [] { return std::make_unique<CountingApp>(); });
  }
  std::string reason;
  if (!dp.install_all(&reason)) {
    std::printf("install failed: %s\n", reason.c_str());
    return 1;
  }

  platform::DegradationManager degradation(dp);
  degradation.engage();
  platform::RecoveryOrchestrator recovery(dp);
  recovery.set_degradation(&degradation);
  recovery.engage();

  // --- The incident: both front ECUs die 20 ms apart -------------------------
  fault::FaultCampaign campaign(simulator, {});
  campaign.set_trace(&trace);
  campaign.add_ecu(*ecus[0]);  // FrontLeft
  campaign.add_ecu(*ecus[1]);  // FrontRight
  for (int i = 0; i < 2; ++i) {
    fault::FaultEvent crash;
    crash.at = 500 * sim::kMillisecond + i * 20 * sim::kMillisecond;
    crash.kind = fault::FaultKind::kEcuCrash;
    crash.target = parsed.model.ecus()[i].name;
    campaign.schedule(crash);
  }
  campaign.arm();

  simulator.run_until(3 * sim::kSecond);

  // --- What happened ----------------------------------------------------------
  std::printf("recovery plans: %zu\n", recovery.plans().size());
  for (const platform::RecoveryPlan& plan : recovery.plans()) {
    std::printf(
        "  plan#%d %-11s detected t=%.3fs finished t=%.3fs (%s)\n", plan.id,
        platform::to_string(plan.status), sim::to_s(plan.fault_detected_at),
        sim::to_s(plan.finished_at), plan.reason.c_str());
    for (const platform::RecoveryStep& step : plan.steps) {
      std::printf("    %-10s %-8s %s -> %s%s\n",
                  step.kind == platform::StepKind::kColdStart ? "cold-start"
                                                              : "migration",
                  step.app.c_str(), step.from_ecu.c_str(),
                  step.to_ecu.c_str(), step.applied ? "" : " (not applied)");
    }
  }

  std::printf("\nsurviving deployment (live nodes):\n");
  for (const auto& entry : platform::RecoveryOrchestrator::snapshot(dp).entries) {
    platform::PlatformNode* node = dp.node(entry.ecu);
    if (node == nullptr || node->ecu().failed()) continue;
    std::printf("  %-10s %-8s %s\n", entry.ecu.c_str(), entry.label.c_str(),
                entry.running ? "running" : "stopped");
  }

  std::printf("\ndegradation transitions: %zu\n",
              degradation.transitions().size());
  for (const platform::HealthTransition& event : degradation.transitions()) {
    std::printf("  t=%7.3fs  %-10s %s -> %s (%s)\n", sim::to_s(event.at),
                event.ecu.c_str(), platform::to_string(event.from),
                platform::to_string(event.to), event.cause.c_str());
  }

  // --- Verify the transactional properties -----------------------------------
  fault::InvariantChecker checker;
  checker.require_plan_atomicity(recovery);
  checker.require_recovery_latency_below(recovery, 500 * sim::kMillisecond);
  const fault::InvariantReport report = checker.run();
  std::printf("\ninvariants: %s\n", report.summary().c_str());

  if (obs::write_chrome_trace_file(trace.buffer(), "recovery_trace.json")) {
    std::printf("wrote recovery_trace.json (recovery + fault lanes)\n");
  }
  return report.passed ? 0 : 1;
}
