#include "sim/timer_wheel.hpp"

#include <utility>

namespace dynaplat::sim {

namespace {
/// Smallest multiple of `w` strictly greater than `t`.
Time ceil_boundary(Time t, Duration w) { return (t / w + 1) * w; }
}  // namespace

TimerWheel::TimerWheel(Simulator& sim, Config config)
    : sim_(sim), config_(config) {
  if (config_.slots < 2) config_.slots = 2;
  if (config_.levels < 1) config_.levels = 1;
  if (config_.levels > 4) config_.levels = 4;
  if (config_.granularity < 1) config_.granularity = 1;
  far_.resize(config_.levels - 1);
  for (auto& level : far_) level.assign(config_.slots, List{});
  // One cascade recurrence per far level, firing on that level's slot
  // boundaries. Scheduled at construction so its kernel sequence number
  // precedes any timer payloads: at a boundary instant the cascade runs
  // before the instant events it creates for that window.
  for (std::size_t k = 1; k < config_.levels; ++k) {
    const Duration w = width(k);
    cascade_events_.push_back(sim_.schedule_every(
        ceil_boundary(sim_.now(), w), w, [this, k] { cascade(k); }));
  }
}

TimerWheel::~TimerWheel() {
  for (EventId id : cascade_events_) sim_.cancel(id);
  for (auto& [due, group] : near_) sim_.cancel(group.event);
}

Duration TimerWheel::width(std::size_t level) const {
  Duration w = config_.granularity;
  for (std::size_t k = 0; k < level; ++k) {
    w *= static_cast<Duration>(config_.slots);
  }
  return w;
}

std::uint32_t TimerWheel::alloc_entry() {
  if (free_head_ != kNpos) {
    const std::uint32_t idx = free_head_;
    free_head_ = entries_[idx].next;
    entries_[idx].next = kNpos;
    return idx;
  }
  entries_.emplace_back();
  return static_cast<std::uint32_t>(entries_.size() - 1);
}

void TimerWheel::free_entry(std::uint32_t idx) {
  Entry& e = entries_[idx];
  e.fn.reset();
  e.cancelled = false;
  ++e.gen;
  if (e.gen == 0) e.gen = 1;
  e.next = free_head_;
  free_head_ = idx;
}

TimerWheel::TimerId TimerWheel::schedule_at(Time at, InlineFunction fn) {
  return arm(at, 0, std::move(fn));
}

TimerWheel::TimerId TimerWheel::schedule_in(Duration delay, InlineFunction fn) {
  if (delay < 0) delay = 0;
  return arm(sim_.now() + delay, 0, std::move(fn));
}

TimerWheel::TimerId TimerWheel::schedule_every(Time first, Duration period,
                                               InlineFunction fn) {
  return arm(first, period, std::move(fn));
}

TimerWheel::TimerId TimerWheel::arm(Time due, Duration period,
                                    InlineFunction fn) {
  const std::uint32_t idx = alloc_entry();
  Entry& e = entries_[idx];
  e.due = due;
  e.seq = next_seq_++;
  e.period = period;
  e.fn = std::move(fn);
  ++live_;
  place(idx);
  return TimerId{(static_cast<std::uint64_t>(idx) + 1) << 32 |
                 entries_[idx].gen};
}

bool TimerWheel::cancel(TimerId id) {
  if (!id.valid()) return false;
  const std::uint64_t slot = (id.value >> 32) - 1;
  if (slot >= entries_.size()) return false;
  Entry& e = entries_[slot];
  if (e.gen != static_cast<std::uint32_t>(id.value) || e.cancelled) {
    return false;
  }
  // O(1): tombstone now, unlink whenever the slot or instant is next
  // visited. Drop the callback eagerly so a cancelled timer pins nothing.
  e.cancelled = true;
  e.fn.reset();
  --live_;
  return true;
}

void TimerWheel::place(std::uint32_t idx) {
  const Time now = sim_.now();
  Entry& e = entries_[idx];
  if (e.due < now) e.due = now;
  if (config_.levels == 1) {
    add_near(idx);
    return;
  }
  if (e.due < ceil_boundary(now, width(1))) {
    add_near(idx);
    return;
  }
  std::size_t level = config_.levels - 1;
  for (std::size_t k = 1; k + 1 < config_.levels; ++k) {
    if (e.due < ceil_boundary(now, width(k + 1))) {
      level = k;
      break;
    }
  }
  List& list = far_[level - 1][static_cast<std::size_t>(
      (e.due / width(level)) % static_cast<Duration>(config_.slots))];
  e.next = kNpos;
  if (list.head == kNpos) {
    list.head = idx;
  } else {
    entries_[list.tail].next = idx;
  }
  list.tail = idx;
}

void TimerWheel::add_near(std::uint32_t idx) {
  const Time due = entries_[idx].due;
  auto [it, inserted] = near_.try_emplace(due);
  Group& group = it->second;
  if (inserted) {
    group.event = sim_.schedule_at(due, [this, due] { fire_instant(due); });
    ++instant_events_;
  }
  entries_[idx].next = kNpos;
  if (group.list.head == kNpos) {
    group.list.head = idx;
  } else {
    entries_[group.list.tail].next = idx;
  }
  group.list.tail = idx;
}

void TimerWheel::fire_instant(Time due) {
  auto it = near_.find(due);
  if (it == near_.end()) return;
  // Detach first: callbacks may arm new timers for this same (== now)
  // instant, which then get a fresh group + kernel event later this step.
  List list = it->second.list;
  near_.erase(it);
  std::uint64_t batch = 0;
  std::uint32_t idx = list.head;
  while (idx != kNpos) {
    const std::uint32_t next = entries_[idx].next;
    if (entries_[idx].cancelled) {
      free_entry(idx);
      idx = next;
      continue;
    }
    if (entries_[idx].period > 0) {
      // Re-arm before invoking, mirroring the kernel's recurrence
      // semantics (the callback may cancel its own recurrence).
      entries_[idx].due += entries_[idx].period;
      entries_[idx].seq = next_seq_++;
      place(idx);
      // Invoke outside the slab: the callback may arm timers and grow
      // entries_, so the resident function is moved to the stack first.
      InlineFunction fn = std::move(entries_[idx].fn);
      ++fired_;
      ++batch;
      fn();
      Entry& e = entries_[idx];
      if (!e.cancelled) e.fn = std::move(fn);
    } else {
      InlineFunction fn = std::move(entries_[idx].fn);
      --live_;
      free_entry(idx);
      ++fired_;
      ++batch;
      fn();
    }
    idx = next;
  }
  if (batch > max_coalesced_) max_coalesced_ = batch;
}

void TimerWheel::cascade(std::size_t level) {
  const Time now = sim_.now();
  const Duration w = width(level);
  List& slot = far_[level - 1][static_cast<std::size_t>(
      (now / w) % static_cast<Duration>(config_.slots))];
  List pending = slot;
  slot = List{};
  const Time window_end = now + w;
  std::uint32_t idx = pending.head;
  while (idx != kNpos) {
    const std::uint32_t next = entries_[idx].next;
    if (entries_[idx].cancelled) {
      free_entry(idx);
    } else if (entries_[idx].due < window_end) {
      ++cascaded_;
      place(idx);  // lands near or at a lower far level
    } else {
      // Wrapped: due a full revolution (or more) later; re-append in order.
      List& back = far_[level - 1][static_cast<std::size_t>(
          (entries_[idx].due / w) % static_cast<Duration>(config_.slots))];
      entries_[idx].next = kNpos;
      if (back.head == kNpos) {
        back.head = idx;
      } else {
        entries_[back.tail].next = idx;
      }
      back.tail = idx;
    }
    idx = next;
  }
}

}  // namespace dynaplat::sim
