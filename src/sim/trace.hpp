// Structured event tracing.
//
// Subsystems append typed records; tests and benches query them afterwards.
// The trace is the "flight recorder" substrate the paper's runtime
// monitoring (Sec. 3.4) stores fault conditions into.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dynaplat::sim {

enum class TraceCategory : std::uint8_t {
  kTask,      // task activation / completion / deadline events
  kNetwork,   // frame transmission / reception
  kService,   // middleware events (offer, subscribe, call)
  kPlatform,  // lifecycle: install, start, stop, update phases
  kFault,     // injected or detected faults
  kSecurity,  // auth, verification outcomes
};

struct TraceRecord {
  Time at = 0;
  TraceCategory category = TraceCategory::kTask;
  std::string source;  // e.g. "ecu0/task:brake_ctl" or "bus:can0"
  std::string event;   // e.g. "deadline_miss", "tx_start"
  std::int64_t value = 0;
};

class Trace {
 public:
  /// When disabled, record() is a cheap no-op (overhead ablation, E10).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Time at, TraceCategory cat, std::string source,
              std::string event, std::int64_t value = 0);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of records matching category + event name.
  std::size_t count(TraceCategory cat, const std::string& event) const;

  /// All records matching a predicate.
  std::vector<TraceRecord> filter(
      const std::function<bool(const TraceRecord&)>& pred) const;

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace dynaplat::sim
