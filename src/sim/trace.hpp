// Structured event tracing — facade over the obs:: observability layer.
//
// Subsystems append typed records; tests and benches query them afterwards.
// The trace is the "flight recorder" substrate the paper's runtime
// monitoring (Sec. 3.4) stores fault conditions into.
//
// Since trace v2 the storage lives in obs::TraceBuffer: interned string
// ids, an optional ring-buffer bound, and per-category enable masks. This
// facade keeps the original string-based record API for cold paths and
// existing call sites; hot paths (os/processor, net buses) pre-intern ids
// and write through buffer() directly. Each Trace also owns the vehicle's
// obs::MetricsRegistry, so passing a sim::Trace* around wires up both
// tracing and metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace dynaplat::sim {

using TraceCategory = obs::Category;

/// A materialized (string-valued) view of one obs::Event. Produced on
/// demand by records()/tail()/filter(); not the storage format.
struct TraceRecord {
  Time at = 0;
  TraceCategory category = TraceCategory::kTask;
  std::string source;  // e.g. "ecu0/task:brake_ctl" or "bus:can0"
  std::string event;   // e.g. "deadline_miss", "tx_start"
  std::int64_t value = 0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(obs::TraceBufferConfig config) : buffer_(config) {}

  /// When disabled, record() is a cheap no-op (overhead ablation, E10).
  void set_enabled(bool on) { buffer_.set_enabled(on); }
  bool enabled() const { return buffer_.enabled(); }
  /// Per-category check — call sites use this to skip building the source /
  /// event strings entirely when the category is masked off.
  bool enabled(TraceCategory cat) const { return buffer_.enabled(cat); }

  void record(Time at, TraceCategory cat, std::string_view source,
              std::string_view event, std::int64_t value = 0,
              obs::EventType type = obs::EventType::kInstant);

  /// Retained records, oldest first, materialized with their strings.
  std::vector<TraceRecord> records() const;
  /// The newest `n` retained records (the flight-recorder read path).
  std::vector<TraceRecord> tail(std::size_t n) const;
  void clear() { buffer_.clear(); }

  /// Number of retained records matching category + event name.
  std::size_t count(TraceCategory cat, const std::string& event) const {
    return buffer_.count(cat, event);
  }

  /// All retained records matching a predicate.
  std::vector<TraceRecord> filter(
      const std::function<bool(const TraceRecord&)>& pred) const;

  /// The underlying event buffer, for pre-interning hot paths, ring-bound
  /// configuration and the Chrome trace exporter.
  obs::TraceBuffer& buffer() { return buffer_; }
  const obs::TraceBuffer& buffer() const { return buffer_; }

  /// The vehicle-wide metrics registry riding along with the trace.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// State-coverage counters riding along with the trace (degradation
  /// transitions, recovery phases, transport edge paths, ...).
  obs::CoverageMap& coverage() { return coverage_; }
  const obs::CoverageMap& coverage() const { return coverage_; }

  /// Publishes the obs layer's own health into the metrics registry:
  /// trace-ring retained/dropped/recorded, interner size, coverage keys.
  void refresh_self_metrics();

 private:
  TraceRecord materialize(const obs::Event& event) const;

  obs::TraceBuffer buffer_;
  obs::MetricsRegistry metrics_;
  obs::CoverageMap coverage_;
};

}  // namespace dynaplat::sim
