// Simulated-time primitives shared by every dynaplat subsystem.
//
// All timing in dynaplat is expressed as signed 64-bit nanosecond counts on a
// single global simulated clock owned by sim::Simulator. A signed type is
// used deliberately: time *differences* (jitter, lateness) are first-class
// values and may be negative.
#pragma once

#include <cstdint>

namespace dynaplat::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

/// A duration in nanoseconds. Same representation as Time; separate alias
/// for documentation purposes.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeNever = INT64_MAX;

constexpr Duration microseconds(std::int64_t us) { return us * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * kMillisecond; }
constexpr Duration seconds(std::int64_t s) { return s * kSecond; }

/// Converts a simulated duration to fractional milliseconds (reporting only).
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }
/// Converts a simulated duration to fractional microseconds (reporting only).
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }
/// Converts a simulated duration to fractional seconds (reporting only).
constexpr double to_s(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace dynaplat::sim
