#include "sim/sweep.hpp"

#include <algorithm>

#include "concurrency/thread_pool.hpp"

namespace dynaplat::sim {

ScenarioSweep::ScenarioSweep(SweepConfig config) : config_(config) {
  if (config_.threads > 0) {
    pool_ = std::make_unique<concurrency::ThreadPool>(config_.threads);
  }
}

ScenarioSweep::~ScenarioSweep() = default;

std::size_t ScenarioSweep::threads() const {
  return pool_ ? pool_->size() : 0;
}

void ScenarioSweep::for_each(std::size_t n,
                             const std::function<void(ScenarioRun&)>& body) {
  const std::size_t grain = std::max<std::size_t>(1, config_.grain);
  concurrency::parallel_for(pool_.get(), 0, n, grain, [&](std::size_t i) {
    ScenarioRun run;
    run.index = i;
    run.family_seed = config_.seed;
    run.rng = Random::stream(config_.seed, i);
    body(run);
  });
}

std::uint64_t ScenarioSweep::merge_fingerprints(
    const std::vector<std::uint64_t>& fingerprints) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(fingerprints.size());
  for (std::uint64_t fp : fingerprints) mix(fp);
  return h;
}

obs::CoverageMap ScenarioSweep::merge_coverage(
    const std::vector<obs::CoverageMap>& shards) {
  obs::CoverageMap merged;
  for (const obs::CoverageMap& shard : shards) merged.merge_from(shard);
  return merged;
}

}  // namespace dynaplat::sim
