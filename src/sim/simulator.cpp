#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace dynaplat::sim {

EventId Simulator::enqueue(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint64_t id = next_id_++;
  queue_.push(QueueEntry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  return enqueue(at, std::move(fn));
}

EventId Simulator::schedule_in(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return enqueue(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_every(Time first, Duration period,
                                  std::function<void()> fn) {
  assert(period > 0);
  const EventId id = enqueue(first, std::move(fn));
  recurrences_.emplace(id.value, Recurrence{period});
  return id;
}

bool Simulator::cancel(EventId id) {
  // The queue entry stays behind as a tombstone; fire() skips ids whose
  // callback is gone. This keeps cancel O(1).
  recurrences_.erase(id.value);
  return callbacks_.erase(id.value) > 0;
}

void Simulator::fire(std::uint64_t id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // cancelled -> tombstone
  ++events_executed_;
  auto rec = recurrences_.find(id);
  if (rec != recurrences_.end()) {
    // Re-arm before invoking so the callback may cancel its own recurrence.
    queue_.push(QueueEntry{now_ + rec->second.period, next_seq_++, id});
    // Invoke a copy: the callback may cancel() itself, which erases the
    // stored function while it is executing.
    auto fn = it->second;
    fn();
  } else {
    // Move the callback out so it may safely schedule/cancel anything.
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
  }
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();  // tombstone
      continue;
    }
    queue_.pop();
    now_ = entry.at;
    fire(entry.id);
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past tombstones to find the next live event.
    while (!queue_.empty() &&
           callbacks_.find(queue_.top().id) == callbacks_.end()) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace dynaplat::sim
