#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace dynaplat::sim {

// --- Slab -------------------------------------------------------------------

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ == kNpos) {
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    Node* chunk = chunks_.back().get();
    // Thread the fresh nodes onto the free list so low slots pop first.
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      chunk[i].next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t slot = free_head_;
  free_head_ = node(slot).next_free;
  return slot;
}

void Simulator::free_slot(std::uint32_t slot) {
  Node& n = node(slot);
  n.fn.reset();
  ++n.gen;  // all outstanding handles to this slot go stale
  n.heap_pos = kNpos;
  n.next_free = free_head_;
  free_head_ = slot;
}

// --- Indexed 4-ary min-heap -------------------------------------------------

void Simulator::sift_up(std::uint32_t pos, HeapEntry entry) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!heap_less(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    node(heap_[pos].slot).heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  node(entry.slot).heap_pos = pos;
}

void Simulator::sift_down(std::uint32_t pos, HeapEntry entry) {
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first_child = (pos << 2) + 1;
    if (first_child >= size) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < size ? first_child + 3 : size - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (heap_less(heap_[c], heap_[best])) best = c;
    }
    if (!heap_less(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    node(heap_[pos].slot).heap_pos = pos;
    pos = best;
  }
  heap_[pos] = entry;
  node(entry.slot).heap_pos = pos;
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);  // placeholder; sift_up writes the final position
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1), entry);
}

void Simulator::heap_remove(std::uint32_t pos) {
  node(heap_[pos].slot).heap_pos = kNpos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  if (pos > 0 && heap_less(last, heap_[(pos - 1) >> 2])) {
    sift_up(pos, last);
  } else {
    sift_down(pos, last);
  }
}

// --- Scheduling API ---------------------------------------------------------

EventId Simulator::enqueue(Time at, Duration period, InlineFunction fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = alloc_slot();
  Node& n = node(slot);
  n.at = at;
  n.seq = next_seq_++;
  n.period = period;
  n.fn = std::move(fn);
  heap_push(HeapEntry{at, n.seq, slot});
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slot) + 1) << 32 | n.gen};
}

EventId Simulator::schedule_in(Duration delay, InlineFunction fn) {
  assert(delay >= 0);
  return enqueue(now_ + delay, 0, std::move(fn));
}

EventId Simulator::schedule_every(Time first, Duration period,
                                  InlineFunction fn) {
  assert(period > 0);
  return enqueue(first, period, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value);
  if (slot >= slab_capacity()) return false;
  Node& n = node(slot);
  if (n.gen != gen) return false;  // already fired, cancelled, or slot reused
  if (n.heap_pos != kNpos) {
    heap_remove(n.heap_pos);
  } else if (slot != firing_) {
    return false;  // not queued and not firing: nothing to cancel
  }
  --live_;
  if (slot == firing_) {
    // A recurrence callback cancelled itself mid-fire: its callable is the
    // one executing right now, so invalidate the handle immediately but
    // defer destroying the callable until step() regains control.
    firing_cancelled_ = true;
    ++n.gen;
  } else {
    free_slot(slot);
  }
  return true;
}

// --- Execution --------------------------------------------------------------

bool Simulator::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0].slot;
  Node& n = node(slot);
  now_ = n.at;
  ++events_executed_;
  if (n.period > 0) {
    // Re-arm in place before invoking (zero callback copies) so the
    // callback may cancel its own recurrence.
    n.at += n.period;
    n.seq = next_seq_++;
    sift_down(0, HeapEntry{n.at, n.seq, slot});
    firing_ = slot;
    firing_cancelled_ = false;
    n.fn();
    firing_ = kNpos;
    if (firing_cancelled_) {
      // cancel() already unqueued the node and bumped the generation; now
      // that the callable finished executing, reclaim its storage.
      n.fn.reset();
      n.heap_pos = kNpos;
      n.next_free = free_head_;
      free_head_ = slot;
    }
  } else {
    heap_remove(0);
    --live_;
    // Move the callback out and release the slot before invoking, so the
    // callback may safely schedule/cancel anything (including reusing this
    // very slot).
    InlineFunction fn = std::move(n.fn);
    free_slot(slot);
    fn();
  }
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_[0].at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace dynaplat::sim
