#include "sim/random.hpp"

#include <cmath>
#include <initializer_list>

namespace dynaplat::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Random::Random(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Random::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Random::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Debiased modulo (Lemire-style rejection kept simple): retry on the
  // biased tail. Expected retries < 1 for all bounds.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Random::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Random::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Random::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Random::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Random::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

bool Random::chance(double p) { return uniform01() < p; }

Random Random::fork() { return Random(next_u64()); }

Random Random::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // FNV-1a over the little-endian bytes of the (seed, stream_id) pair,
  // then a splitmix64 scramble (the Random constructor runs its own
  // splitmix chain on top, so stream(s, 0) also differs from Random(s)
  // and from fork()s of it). The offset basis is distinct from the
  // campaign-fingerprint fold, so stream derivation and log hashing can
  // never alias. Hashing the pair jointly replaces the old additive
  // golden-ratio stride, which collided for *related* seeds:
  // seed + γ·(i+1) made stream(s + γ, i) identical to stream(s, i + 1) —
  // exactly the family the fuzzer's seed splicing walks through.
  constexpr std::uint64_t kStreamFnvOffset = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kStreamFnvPrime = 0x100000001B3ULL;
  std::uint64_t h = kStreamFnvOffset;
  for (const std::uint64_t word : {seed, stream_id}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xFF;
      h *= kStreamFnvPrime;
    }
  }
  return Random(splitmix64(h));
}

}  // namespace dynaplat::sim
