// Hierarchical calendar/timing wheel layered over the event kernel.
//
// The Simulator's binary heap is the right structure for a few thousand
// irregular events, but a fleet driver arming one cadence tick and one retry
// timer per session puts *millions* of timers in flight: every insert and
// cancel pays O(log n) on a heap whose hot set is much smaller than n, and
// co-scheduled ticks (thousands of sessions sharing a phase instant) each
// occupy their own heap node. TimerWheel fixes both costs:
//
//  - Timers due soon live in a "near" calendar keyed by exact due instant.
//    All timers sharing an instant share ONE kernel event; firing that event
//    runs the whole batch, so a cadence tick is O(timers-due), not
//    O(log total-timers) each.
//  - Timers due far out sit in hierarchical coarse slots (levels of
//    granularity g·S^k) that cost O(1) to insert and are only touched again
//    when their window cascades down — never per-tick.
//  - cancel() is O(1): a generation-checked tombstone; the entry is reclaimed
//    when its slot or instant is next visited. The captured callback is
//    destroyed eagerly so cancelled timers hold no resources.
//
// Determinism contract: timers fire at their exact due instant (never
// quantized to a slot boundary), and timers sharing an instant fire in
// wheel-insertion order (monotonic sequence, re-assigned when a periodic
// re-arms — mirroring the kernel's re-arm-before-invoke semantics). The
// relative order of a wheel batch and a *foreign* kernel event at the very
// same nanosecond may differ from scheduling each timer on the heap
// directly, because the batch occupies a single kernel slot; callers who
// need heap-exact interleaving must avoid exact-tie instants across the two
// populations (see DESIGN.md §15).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dynaplat::sim {

class TimerWheel {
 public:
  struct Config {
    /// Width of a level-1 slot is granularity * slots; the near calendar
    /// covers at most one level-1 slot of exact instants.
    Duration granularity = kMillisecond;
    /// Slots per hierarchical level.
    std::size_t slots = 256;
    /// Total levels including the near calendar (>= 1, <= 4). Level k >= 1
    /// holds timers due within granularity * slots^(k+1).
    std::size_t levels = 3;
  };

  /// Generation-checked handle; safe to cancel() after the timer fired.
  struct TimerId {
    std::uint64_t value = 0;
    bool valid() const { return value != 0; }
  };

  explicit TimerWheel(Simulator& sim) : TimerWheel(sim, Config()) {}
  TimerWheel(Simulator& sim, Config config);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `fn` at absolute instant `at` (clamped to now()).
  TimerId schedule_at(Time at, InlineFunction fn);

  /// Arms `fn` `delay` nanoseconds from now (clamped to >= 0).
  TimerId schedule_in(Duration delay, InlineFunction fn);

  /// Arms `fn` every `period` (> 0) starting at `first`. The returned id
  /// stays valid across firings, like Simulator::schedule_every.
  TimerId schedule_every(Time first, Duration period, InlineFunction fn);

  /// Cancels a pending timer or recurrence in O(1). Stale ids no-op.
  bool cancel(TimerId id);

  /// Timers currently armed (cancelled-but-unreclaimed entries excluded).
  std::size_t pending() const { return live_; }

  /// Callbacks actually invoked.
  std::uint64_t fired() const { return fired_; }
  /// Kernel events created for near instants (the coalescing denominator:
  /// fired() / instant_events() is the mean batch size).
  std::uint64_t instant_events() const { return instant_events_; }
  /// Entries moved down a level by a cascade.
  std::uint64_t cascaded() const { return cascaded_; }
  /// Largest number of timers run by a single instant event.
  std::uint64_t max_coalesced() const { return max_coalesced_; }

 private:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  struct Entry {
    Time due = 0;
    std::uint64_t seq = 0;  // wheel insertion order; re-assigned on re-arm
    Duration period = 0;    // 0 => one-shot
    std::uint32_t gen = 1;
    std::uint32_t next = kNpos;  // intrusive list link (slot or instant)
    bool cancelled = false;
    InlineFunction fn;
  };

  struct List {
    std::uint32_t head = kNpos;
    std::uint32_t tail = kNpos;
  };

  /// All timers sharing one exact due instant, plus their kernel event.
  struct Group {
    List list;
    EventId event;
  };

  Duration width(std::size_t level) const;  // slot width of far level k >= 1
  std::uint32_t alloc_entry();
  void free_entry(std::uint32_t idx);
  TimerId arm(Time due, Duration period, InlineFunction fn);
  void place(std::uint32_t idx);
  void add_near(std::uint32_t idx);
  void fire_instant(Time due);
  void cascade(std::size_t level);

  Simulator& sim_;
  Config config_;

  std::vector<Entry> entries_;
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  /// Exact-instant calendar for the near window.
  std::map<Time, Group> near_;
  /// far_[k - 1][slot] for far level k: timers due (due / width(k)) % slots.
  std::vector<std::vector<List>> far_;
  std::vector<EventId> cascade_events_;

  std::uint64_t fired_ = 0;
  std::uint64_t instant_events_ = 0;
  std::uint64_t cascaded_ = 0;
  std::uint64_t max_coalesced_ = 0;
};

}  // namespace dynaplat::sim
