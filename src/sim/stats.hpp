// Measurement accumulators used by experiments and runtime monitoring.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dynaplat::sim {

/// Streaming summary statistics (Welford) plus exact percentiles over the
/// retained sample vector. Samples are doubles; callers pick the unit.
class Stats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double sum() const { return sum_; }

  /// Exact percentile via nearest-rank on the sorted sample set.
  /// p in [0, 100]. Returns 0 for an empty accumulator.
  double percentile(double p) const;

  /// "min=.. mean=.. p99=.. max=.. (n=..)" one-line summary.
  std::string summary() const;

  void clear();

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily rebuilt percentile cache
  mutable bool sorted_valid_ = false;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram for latency distributions, log or linear spaced.
class Histogram {
 public:
  /// Linear buckets: [lo, hi) split into `buckets` equal cells plus
  /// underflow/overflow cells.
  static Histogram linear(double lo, double hi, std::size_t buckets);
  /// Log2 buckets starting at `lo` (> 0), doubling `buckets` times.
  static Histogram log2(double lo, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  /// Bucket count including under/overflow (index 0 and size()-1).
  std::size_t size() const { return counts_.size(); }
  std::uint64_t count_at(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i (i in [1, size()-1)); bucket 0 is underflow.
  double edge(std::size_t i) const { return edges_[i]; }
  std::string render(std::size_t width = 40) const;

 private:
  Histogram() = default;
  std::vector<double> edges_;  // edges_[i] = lower edge of bucket i
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dynaplat::sim
