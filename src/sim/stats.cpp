#include "sim/stats.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace dynaplat::sim {

void Stats::add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  sorted_valid_ = false;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Stats::min() const { return samples_.empty() ? 0.0 : min_; }
double Stats::max() const { return samples_.empty() ? 0.0 : max_; }
double Stats::mean() const { return samples_.empty() ? 0.0 : mean_; }

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string Stats::summary() const {
  std::ostringstream os;
  os << "min=" << min() << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max=" << max() << " (n=" << count()
     << ")";
  return os.str();
}

void Stats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  mean_ = m2_ = sum_ = min_ = max_ = 0.0;
}

Histogram Histogram::linear(double lo, double hi, std::size_t buckets) {
  Histogram h;
  h.edges_.resize(buckets + 2);
  h.counts_.assign(buckets + 2, 0);
  h.edges_[0] = -std::numeric_limits<double>::infinity();
  const double step = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 0; i <= buckets; ++i) {
    h.edges_[i + 1] = lo + step * static_cast<double>(i);
  }
  return h;
}

Histogram Histogram::log2(double lo, std::size_t buckets) {
  Histogram h;
  h.edges_.resize(buckets + 2);
  h.counts_.assign(buckets + 2, 0);
  h.edges_[0] = -std::numeric_limits<double>::infinity();
  double edge = lo;
  for (std::size_t i = 0; i <= buckets; ++i) {
    h.edges_[i + 1] = edge;
    edge *= 2.0;
  }
  return h;
}

void Histogram::add(double x) {
  ++total_;
  // edges_[i] is the lower edge of bucket i; find the last bucket whose lower
  // edge is <= x.
  std::size_t i = counts_.size() - 1;
  while (i > 0 && edges_[i] > x) --i;
  ++counts_[i];
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 1; i + 1 < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    os << edges_[i] << "\t" << counts_[i] << "\t" << std::string(bar, '#')
       << "\n";
  }
  return os.str();
}

}  // namespace dynaplat::sim
