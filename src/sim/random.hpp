// Deterministic pseudo-random source for simulations.
//
// dynaplat requires bit-identical re-execution of a scenario given the same
// seed (DESIGN.md "deterministic simulation"): the backend validates a
// schedule by simulating it against the installing vehicle's configuration,
// which is only meaningful if the simulation is reproducible. We therefore
// avoid std::default_random_engine (implementation-defined) and carry our own
// xoshiro256** generator.
#pragma once

#include <cstdint>

namespace dynaplat::sim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64. Deterministic across platforms and toolchains.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normal-distributed value (Box-Muller; consumes two uniforms per pair).
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Forks an independent generator whose stream does not overlap with this
  /// one for any realistic draw count (distinct splitmix64 seed chain).
  Random fork();

  /// Derives the `stream_id`-th independent generator of a seed family
  /// without consuming state anywhere: stream(s, i) is a pure function of
  /// (s, i). Parallel workers each take their own stream so results stay
  /// reproducible regardless of thread count or scheduling (the seed-
  /// splitting scheme of the concurrency subsystem, see DESIGN.md).
  /// The pair is hashed jointly (FNV-1a, distinct offset basis), so
  /// streams stay decorrelated even across related seeds — e.g. the
  /// spliced seeds the chaos fuzzer derives from corpus parents.
  static Random stream(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace dynaplat::sim
