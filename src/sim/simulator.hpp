// Discrete-event simulation kernel.
//
// The Simulator owns the single simulated clock and an ordered event queue.
// Every other dynaplat subsystem (network media, ECU schedulers, middleware
// timers, fault injectors) expresses behaviour as events scheduled here, so a
// whole-vehicle scenario executes as one deterministic event-driven program.
//
// Determinism contract: two events at the same timestamp fire in scheduling
// order (FIFO tie-break by a monotonically increasing sequence number). This
// makes a scenario a pure function of (models, seed), which DESIGN.md relies
// on for backend schedule validation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace dynaplat::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  EventId schedule_in(Duration delay, std::function<void()> fn);

  /// Schedules `fn` every `period` starting at `first`. The callback runs
  /// until cancelled. Returns the id of the *recurrence*, which stays valid
  /// across firings.
  EventId schedule_every(Time first, Duration period, std::function<void()> fn);

  /// Cancels a pending event or recurrence. Cancelling an already-fired or
  /// unknown id is a no-op. Returns true if something was cancelled.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` (even if the queue drained earlier).
  void run_until(Time until);

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Requests `run()` / `run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and cost accounting).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return callbacks_.size(); }

 private:
  struct QueueEntry {
    Time at;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const QueueEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  struct Recurrence {
    Duration period;
  };

  EventId enqueue(Time at, std::function<void()> fn);
  void fire(std::uint64_t id);

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
  std::unordered_map<std::uint64_t, Recurrence> recurrences_;
};

}  // namespace dynaplat::sim
