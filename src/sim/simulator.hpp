// Discrete-event simulation kernel.
//
// The Simulator owns the single simulated clock and an ordered event queue.
// Every other dynaplat subsystem (network media, ECU schedulers, middleware
// timers, fault injectors) expresses behaviour as events scheduled here, so a
// whole-vehicle scenario executes as one deterministic event-driven program.
//
// Determinism contract: two events at the same timestamp fire in scheduling
// order (FIFO tie-break by a monotonically increasing sequence number). This
// makes a scenario a pure function of (models, seed), which DESIGN.md relies
// on for backend schedule validation.
//
// Internals (DESIGN.md §10): events live as slab-allocated nodes in a
// chunked free-list pool — node addresses are stable, callbacks up to
// InlineFunction::kInlineCapacity bytes are stored inline in the node, and
// steady-state scheduling performs no heap allocation. Ordering is an
// index-tracked 4-ary min-heap of slot indices over the slab, so cancel()
// removes the event immediately in O(log n): no tombstones, no lazy-deletion
// scans in step()/run_until(), and a cancel-heavy workload (acked retry
// timers) cannot grow the queue. EventIds carry a per-slot generation
// counter, so a stale handle — to an event that already fired, was
// cancelled, or whose slot was reused — is detected and cancel() safely
// no-ops. Recurrences re-arm in place with zero callback copies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace dynaplat::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Generation-checked: a handle outliving its event stays safe to cancel().
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, InlineFunction fn) {
    return enqueue(at, 0, std::move(fn));
  }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  EventId schedule_in(Duration delay, InlineFunction fn);

  /// Schedules `fn` every `period` starting at `first`. The callback runs
  /// until cancelled. Returns the id of the *recurrence*, which stays valid
  /// across firings.
  EventId schedule_every(Time first, Duration period, InlineFunction fn);

  /// Cancels a pending event or recurrence. Cancelling an already-fired or
  /// unknown id is a no-op. Returns true if something was cancelled.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` (even if the queue drained earlier).
  void run_until(Time until);

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Requests `run()` / `run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and cost accounting).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return live_; }

  /// Total event-node capacity the slab has allocated (for tests/benches:
  /// a cancel-heavy workload must not grow this without bound).
  std::size_t slab_capacity() const { return chunks_.size() * kChunkSize; }

 private:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkSize = 256;

  struct Node {
    Time at = 0;
    std::uint64_t seq = 0;
    Duration period = 0;            // 0 => one-shot
    std::uint32_t gen = 1;          // bumped on every slot release
    std::uint32_t heap_pos = kNpos; // kNpos when not queued
    std::uint32_t next_free = kNpos;
    InlineFunction fn;
  };

  Node& node(std::uint32_t slot) {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }
  const Node& node(std::uint32_t slot) const {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }

  // Heap entries carry the (at, seq) ordering key alongside the slot index,
  // so sift comparisons scan the contiguous heap array and never chase into
  // the slab; the slab node is only touched to maintain heap_pos.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool heap_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  EventId enqueue(Time at, Duration period, InlineFunction fn);
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);

  void heap_push(HeapEntry entry);
  void heap_remove(std::uint32_t pos);
  void sift_up(std::uint32_t pos, HeapEntry entry);
  void sift_down(std::uint32_t pos, HeapEntry entry);

  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;

  // Slab: chunked so node addresses stay stable while a resident callback
  // executes (a callback scheduling new events may grow the pool).
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t free_head_ = kNpos;

  // 4-ary min-heap ordered by (at, seq); each slab node tracks its heap
  // position for O(log n) arbitrary removal.
  std::vector<HeapEntry> heap_;

  // Slot whose recurrence callback is executing right now; if it cancels
  // itself mid-fire, reclamation is deferred until the callback returns.
  std::uint32_t firing_ = kNpos;
  bool firing_cancelled_ = false;
};

}  // namespace dynaplat::sim
