#include "sim/trace.hpp"

namespace dynaplat::sim {

void Trace::record(Time at, TraceCategory cat, std::string source,
                   std::string event, std::int64_t value) {
  if (!enabled_) return;
  records_.push_back(
      TraceRecord{at, cat, std::move(source), std::move(event), value});
}

std::size_t Trace::count(TraceCategory cat, const std::string& event) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == cat && r.event == event) ++n;
  }
  return n;
}

std::vector<TraceRecord> Trace::filter(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

}  // namespace dynaplat::sim
