#include "sim/trace.hpp"

namespace dynaplat::sim {

void Trace::record(Time at, TraceCategory cat, std::string_view source,
                   std::string_view event, std::int64_t value,
                   obs::EventType type) {
  if (!buffer_.enabled(cat)) return;
  buffer_.record(at, cat, source, event, value, type);
}

TraceRecord Trace::materialize(const obs::Event& event) const {
  return TraceRecord{event.at, event.category, buffer_.name_of(event.source),
                     buffer_.name_of(event.name), event.value};
}

std::vector<TraceRecord> Trace::records() const {
  std::vector<TraceRecord> out;
  out.reserve(buffer_.size());
  buffer_.for_each(
      [&](const obs::Event& event) { out.push_back(materialize(event)); });
  return out;
}

std::vector<TraceRecord> Trace::tail(std::size_t n) const {
  const std::size_t total = buffer_.size();
  const std::size_t skip = total > n ? total - n : 0;
  std::vector<TraceRecord> out;
  out.reserve(total - skip);
  std::size_t i = 0;
  buffer_.for_each([&](const obs::Event& event) {
    if (i++ >= skip) out.push_back(materialize(event));
  });
  return out;
}

void Trace::refresh_self_metrics() {
  metrics_.gauge("obs.trace.retained")
      .set(static_cast<double>(buffer_.size()));
  metrics_.gauge("obs.trace.dropped")
      .set(static_cast<double>(buffer_.dropped()));
  metrics_.gauge("obs.trace.recorded")
      .set(static_cast<double>(buffer_.recorded()));
  metrics_.gauge("obs.interner.size")
      .set(static_cast<double>(buffer_.interner().size()));
  metrics_.gauge("obs.coverage.keys")
      .set(static_cast<double>(coverage_.size()));
}

std::vector<TraceRecord> Trace::filter(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::vector<TraceRecord> out;
  buffer_.for_each([&](const obs::Event& event) {
    TraceRecord record = materialize(event);
    if (pred(record)) out.push_back(std::move(record));
  });
  return out;
}

}  // namespace dynaplat::sim
