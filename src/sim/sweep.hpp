// Parallel scenario-sweep driver.
//
// A sweep runs N independent simulations — fault-campaign seeds, XiL
// parameter grids, DSE candidate validations — on the deterministic
// concurrency thread pool. Each scenario gets its own Simulator (the kernel
// is single-threaded by design) and its own Random derived via
// Random::stream(seed, index), so no state is shared between runs and the
// per-scenario outcome is a pure function of (family seed, index).
// Results land in index-addressed slots and fingerprints merge in index
// order, so the sweep's aggregate output is bit-identical at any thread
// count (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/coverage.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::concurrency {
class ThreadPool;
}

namespace dynaplat::sim {

struct SweepConfig {
  /// Family seed; scenario i draws from Random::stream(seed, i).
  std::uint64_t seed = 1;
  /// Worker threads. 0 runs every scenario inline on the calling thread —
  /// the same code path, so 0 vs N threads is a pure determinism A/B.
  std::size_t threads = 0;
  /// Scenarios claimed per worker grab (larger amortizes queue traffic for
  /// short scenarios; results are index-addressed either way).
  std::size_t grain = 1;
};

/// Everything one scenario owns: its index in the sweep, the family seed,
/// a private RNG stream, and a fresh simulator.
struct ScenarioRun {
  std::size_t index = 0;
  std::uint64_t family_seed = 0;
  Random rng;
  Simulator simulator;

  ScenarioRun() = default;
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;
};

class ScenarioSweep {
 public:
  explicit ScenarioSweep(SweepConfig config = {});
  ~ScenarioSweep();

  ScenarioSweep(const ScenarioSweep&) = delete;
  ScenarioSweep& operator=(const ScenarioSweep&) = delete;

  /// Worker threads actually running (0 = inline serial).
  std::size_t threads() const;

  /// Runs body(run) for every scenario index in [0, n). Blocks until all
  /// scenarios finished; an exception from the lowest-index failing
  /// scenario is rethrown on the calling thread.
  void for_each(std::size_t n, const std::function<void(ScenarioRun&)>& body);

  /// Runs body over [0, n) and collects the outcomes in index order.
  /// Outcome must be default-constructible and assignable.
  template <typename Outcome>
  std::vector<Outcome> run(std::size_t n,
                           const std::function<Outcome(ScenarioRun&)>& body) {
    std::vector<Outcome> results(n);
    for_each(n, [&](ScenarioRun& r) { results[r.index] = body(r); });
    return results;
  }

  /// Folds per-scenario fingerprints into one sweep fingerprint (FNV-1a in
  /// index order — thread-count independent by construction).
  static std::uint64_t merge_fingerprints(
      const std::vector<std::uint64_t>& fingerprints);

  /// Folds per-scenario coverage maps into one sweep-wide map, merging in
  /// index order so the aggregate (including its interning order, and hence
  /// its snapshot_json()) is bit-identical at any thread count.
  static obs::CoverageMap merge_coverage(
      const std::vector<obs::CoverageMap>& shards);

 private:
  SweepConfig config_;
  std::unique_ptr<concurrency::ThreadPool> pool_;
};

}  // namespace dynaplat::sim
