// Small-buffer-optimized move-only callable, the event kernel's callback
// type.
//
// std::function heap-allocates any callable bigger than ~2 pointers and
// demands copyability; the event kernel schedules millions of lambdas that
// capture a handful of pointers and values, so both costs land on the
// hottest path in the whole codebase. InlineFunction stores callables up to
// kInlineCapacity bytes directly inside the event slab node (no allocation,
// no pointer chase on invoke) and falls back to the heap only for oversized
// captures. Move-only: the kernel never copies a callback — recurrences
// re-arm in place (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dynaplat::sim {

class InlineFunction {
 public:
  /// Captures up to this many bytes live inline in the event node. Sized so
  /// a typical kernel callback — a `this` pointer plus a few ids/values —
  /// never allocates.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      manage_ = [](Op op, void* s, void* dst) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(s));
        if (op == Op::kMove) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      manage_ = [](Op op, void* s, void* dst) {
        Fn** slot = std::launder(reinterpret_cast<Fn**>(s));
        if (op == Op::kMove) {
          ::new (dst) Fn*(*slot);  // steal the heap object
        } else {
          delete *slot;
        }
        // the pointer itself is trivially destructible
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  /// True when a callable of type F would be stored without allocating.
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineCapacity &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  enum class Op { kMove, kDestroy };

  void move_from(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other.storage_, storage_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void* src, void* move_dst) = nullptr;
};

}  // namespace dynaplat::sim
