#include "concurrency/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

namespace dynaplat::concurrency {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: only exit once the queue is empty, so every
      // submitted task runs even when the pool is destroyed right away.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

namespace {

/// Shared claim/err/rendezvous state of one parallel_for call. Heap-held via
/// shared_ptr so late worker wakeups never touch a dead frame.
struct ParallelForState {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t active = 0;  ///< workers (incl. caller) still inside run()
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

void run_chunks(ParallelForState& state) {
  for (;;) {
    const std::size_t lo = state.next.fetch_add(state.grain);
    if (lo >= state.end) return;
    const std::size_t hi = std::min(lo + state.grain, state.end);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        (*state.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (i < state.error_index) {
          state.error_index = i;
          state.error = std::current_exception();
        }
        // Stop claiming further chunks; in-flight chunks finish on their own.
        state.next.store(state.end);
        return;
      }
    }
  }
}

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(1, grain);

  if (pool == nullptr || pool->size() == 0) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->next.store(begin);
  state->end = end;
  state->grain = grain;
  state->body = &body;
  state->active = pool->size() + 1;  // workers + calling thread

  for (std::size_t w = 0; w < pool->size(); ++w) {
    pool->post([state] {
      run_chunks(*state);
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->active == 0) state->done_cv.notify_all();
    });
  }

  run_chunks(*state);
  std::unique_lock<std::mutex> lock(state->mutex);
  if (--state->active > 0) {
    state->done_cv.wait(lock, [&] { return state->active == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace dynaplat::concurrency
