// Deterministic-by-construction thread pool for CPU-bound analysis work
// (DSE fitness evaluation, Monte-Carlo security analysis, XiL campaigns).
//
// Design rules (DESIGN.md "DSE performance & threading model"):
//  * No work stealing and no completion-order-dependent results: helpers
//    like parallel_for hand every index a dedicated result slot, so callers
//    merge in index order and the outcome is independent of thread count
//    and scheduling.
//  * Randomized workers never share a generator: derive one stream per task
//    index via sim::Random::stream(seed, index).
//  * The pool is a dumb executor; determinism is owned by the call sites.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dynaplat::concurrency {

/// Fixed-size FIFO thread pool. Tasks start in submission order; the
/// destructor drains the queue (every submitted task runs) before joining.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Exceptions escaping `task` terminate
  /// the process (as with std::thread); use submit() to transport them.
  void post(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result; an exception thrown
  /// by `fn` is rethrown from future::get().
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Threads the host exposes to this process (>= 1).
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for every i in [begin, end) on the pool's workers plus the
/// calling thread, blocking until all iterations finished. Indices are
/// claimed in contiguous chunks of `grain`; callers must write results into
/// index-addressed slots so the outcome is schedule-independent.
///
/// pool == nullptr (or an empty pool) degrades to an inline serial loop —
/// the zero-thread configuration exercises the exact same code path.
///
/// If one or more iterations throw, the exception of the lowest-index
/// failing iteration is rethrown on the calling thread after all in-flight
/// work drained; remaining unclaimed iterations are skipped.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body);

}  // namespace dynaplat::concurrency
