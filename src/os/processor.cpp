#include "os/processor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dynaplat::os {

Processor::Processor(sim::Simulator& simulator, std::string name,
                     CpuModel cpu, std::unique_ptr<Scheduler> scheduler,
                     sim::Trace* trace, std::uint64_t seed)
    : sim_(simulator),
      name_(std::move(name)),
      cpu_(cpu),
      scheduler_(std::move(scheduler)),
      trace_(trace),
      rng_(seed),
      // A context switch costs ~1000 instructions on a typical automotive
      // microcontroller; expressed through the CPU model so slow ECUs pay
      // proportionally more.
      context_switch_cost_(cpu.duration_for(1000)) {
  assert(scheduler_ != nullptr);
  if (trace_ != nullptr) {
    auto& buffer = trace_->buffer();
    ev_release_ = buffer.intern("release");
    ev_run_ = buffer.intern("run");
    ev_complete_ = buffer.intern("complete");
    ev_deadline_miss_ = buffer.intern("deadline_miss");
    ev_preempt_ = buffer.intern("preempt");
  }
}

Processor::~Processor() { halt(); }

void Processor::trace_event(std::uint32_t source, std::uint32_t name,
                            std::int64_t value, obs::EventType type) {
  if (trace_ != nullptr) {
    trace_->buffer().record(sim_.now(), sim::TraceCategory::kTask, source,
                            name, value, type);
  }
}

TaskId Processor::add_task(TaskConfig config, JobBody body) {
  const TaskId id = next_task_id_++;
  TaskState state;
  state.config = std::move(config);
  state.body = std::move(body);
  // Lane id interned once per task registration; per-job records then avoid
  // all string work. Skipped while task tracing is masked off.
  if (trace_ != nullptr && trace_->enabled(sim::TraceCategory::kTask)) {
    state.trace_source =
        trace_->buffer().intern(name_ + "/" + state.config.name);
  }
  tasks_.emplace(id, std::move(state));
  if (started_ && !halted_ && tasks_[id].config.period > 0) {
    auto& ts = tasks_[id];
    const sim::Duration period = ts.config.period;
    sim::Time first = ts.config.offset;
    if (first < sim_.now()) {
      const sim::Time k = (sim_.now() - ts.config.offset + period - 1) / period;
      first = ts.config.offset + k * period;
    }
    ts.recurrence =
        sim_.schedule_every(first, period, [this, id] { on_release(id); });
  }
  return id;
}

void Processor::remove_task(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  if (it->second.recurrence.valid()) sim_.cancel(it->second.recurrence);
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [id](const ReadyJob& j) { return j.task == id; }),
               ready_.end());
  if (running_ && running_->job.task == id) {
    sim_.cancel(running_->completion);
    trace_event(running_->trace_source, ev_run_, 0, obs::EventType::kEnd);
    running_.reset();
    tasks_.erase(it);
    reevaluate();
    return;
  }
  tasks_.erase(it);
}

void Processor::start() {
  if (started_) return;
  started_ = true;
  started_at_ = sim_.now();
  for (auto& [id, task] : tasks_) {
    if (task.config.period <= 0 || task.recurrence.valid()) continue;
    const sim::Duration period = task.config.period;
    sim::Time first = task.config.offset;
    if (first < sim_.now()) {
      const sim::Time k =
          (sim_.now() - task.config.offset + period - 1) / period;
      first = task.config.offset + k * period;
    }
    const TaskId tid = id;
    task.recurrence =
        sim_.schedule_every(first, period, [this, tid] { on_release(tid); });
  }
}

void Processor::halt() {
  halted_ = true;
  for (auto& [id, task] : tasks_) {
    if (task.recurrence.valid()) {
      sim_.cancel(task.recurrence);
      task.recurrence = {};
    }
  }
  ready_.clear();
  if (running_) {
    sim_.cancel(running_->completion);
    trace_event(running_->trace_source, ev_run_, 0, obs::EventType::kEnd);
    running_.reset();
  }
  if (kick_.valid()) {
    sim_.cancel(kick_);
    kick_ = {};
  }
}

void Processor::release(TaskId id) {
  if (!halted_) on_release(id);
}

void Processor::submit(std::string name, std::uint64_t instructions,
                       int priority, TaskClass task_class,
                       JobBody on_complete) {
  if (halted_) return;
  TaskConfig config;
  config.name = std::move(name);
  config.task_class = task_class;
  config.period = 0;
  config.instructions = instructions;
  config.priority = priority;
  const TaskId id = add_task(std::move(config), std::move(on_complete));
  tasks_[id].one_shot = true;
  on_release(id);
}

void Processor::inject_overrun(TaskId id, double scale) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.overrun_scale = scale > 0.0 ? scale : 1.0;
}

void Processor::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  assert(scheduler != nullptr);
  scheduler_ = std::move(scheduler);
  if (!halted_) reevaluate();
}

sim::Duration Processor::sample_execution_time(const TaskState& task) {
  double factor = task.overrun_scale;
  const double jitter = task.config.execution_jitter;
  if (jitter > 0.0) factor += rng_.uniform(-jitter, jitter);
  const auto instructions = static_cast<std::uint64_t>(
      static_cast<double>(task.config.instructions) * factor);
  return cpu_.duration_for(std::max<std::uint64_t>(instructions, 1));
}

void Processor::on_release(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end() || halted_) return;
  TaskState& task = it->second;
  ++task.stats.releases;
  ++task.release_count;

  ReadyJob job;
  job.task = id;
  job.task_class = task.config.task_class;
  job.priority = task.config.priority;
  job.release = sim_.now();
  const sim::Duration deadline = task.config.effective_deadline();
  job.absolute_deadline =
      deadline > 0 ? sim_.now() + deadline : sim::kTimeNever;
  job.remaining = sample_execution_time(task);
  job.sequence = next_job_sequence_++;
  ready_.push_back(job);
  trace_event(task.trace_source, ev_release_);
  reevaluate();
}

void Processor::on_complete() {
  assert(running_.has_value());
  RunningJob done = *running_;
  running_.reset();
  busy_time_ += sim_.now() - done.started;
  // Close the execution slice opened at dispatch.
  trace_event(done.trace_source, ev_run_, 0, obs::EventType::kEnd);

  auto it = tasks_.find(done.job.task);
  if (it != tasks_.end()) {
    TaskState& task = it->second;
    instructions_retired_ += task.config.instructions;
    ++task.stats.completions;
    const sim::Duration response = sim_.now() - done.job.release;
    task.stats.response_time.add(static_cast<double>(response));
    if (task.config.period > 0) {
      task.stats.completion_jitter.add(
          static_cast<double>((sim_.now() - done.job.release) %
                              task.config.period));
    }
    auto first_cpu = first_cpu_at_.find(done.job.task);
    if (first_cpu != first_cpu_at_.end()) {
      task.stats.activation_jitter.add(
          static_cast<double>(first_cpu->second - done.job.release));
      first_cpu_at_.erase(first_cpu);
    }
    const bool missed = done.job.absolute_deadline != sim::kTimeNever &&
                        sim_.now() > done.job.absolute_deadline;
    if (missed) {
      ++task.stats.deadline_misses;
      trace_event(task.trace_source, ev_deadline_miss_,
                  sim_.now() - done.job.absolute_deadline);
    }
    trace_event(task.trace_source, ev_complete_,
                static_cast<std::int64_t>(response));
    // Copy the body out: one-shot removal below invalidates `task`.
    JobBody body = task.body;
    const bool one_shot = task.one_shot;
    if (one_shot) tasks_.erase(it);
    if (body) body();
  }
  reevaluate();
}

void Processor::reevaluate() {
  if (halted_) return;
  // Freeze the running job (if preemption is allowed) so the scheduler sees
  // a uniform ready list. The frozen identity lets the dispatch below tell a
  // genuine switch from a resume of the same job, so execution-slice spans
  // only split on real preemptions.
  bool had_frozen = false;
  std::uint64_t frozen_sequence = 0;
  std::uint32_t frozen_source = 0;
  if (running_) {
    if (!scheduler_->preemptive()) return;
    sim_.cancel(running_->completion);
    ReadyJob job = running_->job;
    const sim::Duration ran = sim_.now() - running_->started;
    busy_time_ += ran;
    job.remaining -= ran;
    if (job.remaining < 1) job.remaining = 1;  // completion races the kick
    had_frozen = true;
    frozen_sequence = job.sequence;
    frozen_source = running_->trace_source;
    ready_.push_back(job);
    running_.reset();
  }
  if (kick_.valid()) {
    sim_.cancel(kick_);
    kick_ = {};
  }

  const int selected = scheduler_->select(ready_, sim_.now());
  if (selected >= 0) {
    const auto idx = static_cast<std::size_t>(selected);
    RunningJob run;
    run.job = ready_[idx];
    ready_.erase(ready_.begin() + static_cast<long>(idx));

    if (last_dispatched_ != run.job.task &&
        last_dispatched_ != kInvalidTask) {
      run.job.remaining += context_switch_cost_;
    }
    // Preemption accounting: a job re-dispatched after losing the CPU.
    auto task_it = tasks_.find(run.job.task);
    if (task_it != tasks_.end()) {
      auto& task = task_it->second;
      run.trace_source = task.trace_source;
      if (first_cpu_at_.count(run.job.task) == 0) {
        first_cpu_at_[run.job.task] = sim_.now();
      } else if (last_dispatched_ != run.job.task) {
        ++task.stats.preemptions;
      }
    }
    const bool resumed_same = had_frozen && frozen_sequence == run.job.sequence;
    if (!resumed_same) {
      if (had_frozen) {
        trace_event(frozen_source, ev_run_, 0, obs::EventType::kEnd);
        trace_event(frozen_source, ev_preempt_);
      }
      trace_event(run.trace_source, ev_run_, 0, obs::EventType::kBegin);
    }
    last_dispatched_ = run.job.task;
    run.started = sim_.now();
    run.completion =
        sim_.schedule_in(run.job.remaining, [this] { on_complete(); });
    running_ = run;
  } else if (had_frozen) {
    // Frozen but nothing dispatchable (e.g. outside a TT window): the slice
    // ends here and a new one begins when the job is re-selected.
    trace_event(frozen_source, ev_run_, 0, obs::EventType::kEnd);
  }

  // Wake up at the next scheduler-internal decision point (TT window edge,
  // RR quantum expiry) if it precedes the running job's completion.
  const sim::Time decision = scheduler_->next_decision_point(sim_.now());
  if (decision != sim::kTimeNever) {
    const sim::Time completion_at =
        running_ ? running_->started + running_->job.remaining
                 : sim::kTimeNever;
    const bool has_waiting_work = !ready_.empty() || running_.has_value();
    if (decision < completion_at && has_waiting_work) {
      kick_ = sim_.schedule_at(decision, [this] {
        kick_ = {};
        reevaluate();
      });
    }
  }
}

const TaskStats& Processor::stats(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::out_of_range("unknown task");
  return it->second.stats;
}

const TaskConfig& Processor::config(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) throw std::out_of_range("unknown task");
  return it->second.config;
}

std::vector<TaskId> Processor::task_ids() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) ids.push_back(id);
  return ids;
}

double Processor::utilization() const {
  double u = 0.0;
  for (const auto& [id, task] : tasks_) {
    if (task.config.period > 0) {
      u += static_cast<double>(cpu_.duration_for(task.config.instructions)) /
           static_cast<double>(task.config.period);
    }
  }
  return u;
}

double Processor::busy_fraction() const {
  const sim::Duration elapsed = sim_.now() - started_at_;
  if (elapsed <= 0) return 0.0;
  sim::Duration busy = busy_time_;
  if (running_) busy += sim_.now() - running_->started;
  return static_cast<double>(busy) / static_cast<double>(elapsed);
}

}  // namespace dynaplat::os
