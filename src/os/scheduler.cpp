#include "os/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace dynaplat::os {

int FixedPriorityScheduler::select(const std::vector<ReadyJob>& ready,
                                   sim::Time /*now*/) {
  int best = -1;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const ReadyJob& b = ready[static_cast<std::size_t>(best)];
    if (ready[i].priority < b.priority ||
        (ready[i].priority == b.priority && ready[i].sequence < b.sequence)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int EdfScheduler::select(const std::vector<ReadyJob>& ready,
                         sim::Time /*now*/) {
  int best = -1;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const ReadyJob& b = ready[static_cast<std::size_t>(best)];
    if (ready[i].absolute_deadline < b.absolute_deadline ||
        (ready[i].absolute_deadline == b.absolute_deadline &&
         ready[i].sequence < b.sequence)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int FairScheduler::select(const std::vector<ReadyJob>& ready, sim::Time now) {
  if (ready.empty()) return -1;
  // Rotate through ready jobs; the cursor advances every quantum expiry.
  const auto idx = static_cast<std::size_t>(rr_cursor_ % ready.size());
  if (now >= slice_end_) {
    ++rr_cursor_;
    slice_end_ = now + quantum_;
    return static_cast<int>(rr_cursor_ % ready.size());
  }
  return static_cast<int>(idx);
}

sim::Time FairScheduler::next_decision_point(sim::Time now) const {
  return std::max(slice_end_, now + 1);
}

TimeTriggeredScheduler::TimeTriggeredScheduler(sim::Duration cycle,
                                               std::vector<TtWindow> table)
    : cycle_(cycle) {
  install_table(cycle, std::move(table));
}

void TimeTriggeredScheduler::install_table(sim::Duration cycle,
                                           std::vector<TtWindow> table) {
  assert(cycle > 0);
  cycle_ = cycle;
  table_ = std::move(table);
  std::sort(table_.begin(), table_.end(),
            [](const TtWindow& a, const TtWindow& b) {
              return a.offset < b.offset;
            });
  for (const auto& w : table_) {
    assert(w.offset + w.length <= cycle_ && "window exceeds cycle");
    (void)w;
  }
}

const TtWindow* TimeTriggeredScheduler::active_window(sim::Time now) const {
  const sim::Duration phase = now % cycle_;
  for (const auto& w : table_) {
    if (phase >= w.offset && phase < w.offset + w.length) return &w;
  }
  return nullptr;
}

int TimeTriggeredScheduler::select(const std::vector<ReadyJob>& ready,
                                   sim::Time now) {
  const TtWindow* window = active_window(now);
  if (window != nullptr) {
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (ready[i].task == window->task) return static_cast<int>(i);
    }
    // Window owner not ready: the window stays reserved (no background
    // stealing inside DA windows keeps DA activation latency independent of
    // queue state; the cost is some idle time).
    return -1;
  }
  // Outside any window: background jobs in fixed-priority order, but never a
  // task that owns a window (it runs only in its slots).
  int best = -1;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    bool owns_window = false;
    for (const auto& w : table_) {
      if (w.task == ready[i].task) {
        owns_window = true;
        break;
      }
    }
    if (owns_window) continue;
    if (best < 0 ||
        ready[i].priority < ready[static_cast<std::size_t>(best)].priority) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

sim::Time TimeTriggeredScheduler::next_decision_point(sim::Time now) const {
  // Next window edge (start or end) strictly after `now`.
  const sim::Time cycle_start = (now / cycle_) * cycle_;
  sim::Time next = cycle_start + cycle_;  // next cycle boundary
  for (int k = 0; k < 2; ++k) {
    const sim::Time base = cycle_start + k * cycle_;
    for (const auto& w : table_) {
      const sim::Time edges[2] = {base + w.offset, base + w.offset + w.length};
      for (sim::Time e : edges) {
        if (e > now) next = std::min(next, e);
      }
    }
  }
  return next;
}

std::unique_ptr<Scheduler> make_fixed_priority() {
  return std::make_unique<FixedPriorityScheduler>();
}
std::unique_ptr<Scheduler> make_edf() {
  return std::make_unique<EdfScheduler>();
}
std::unique_ptr<Scheduler> make_fair(sim::Duration quantum) {
  return std::make_unique<FairScheduler>(quantum);
}

}  // namespace dynaplat::os
