#include "os/ecu.hpp"

#include <algorithm>

namespace dynaplat::os {

std::unique_ptr<Scheduler> default_scheduler_for(OsKind os) {
  switch (os) {
    case OsKind::kRtos:
      return make_fixed_priority();
    case OsKind::kGeneralPurpose:
      return make_fair();
  }
  return make_fixed_priority();
}

Ecu::Ecu(sim::Simulator& simulator, EcuConfig config, net::Medium* medium,
         net::NodeId node, sim::Trace* trace)
    : sim_(simulator),
      config_(std::move(config)),
      medium_(medium),
      node_(node),
      trace_(trace) {
  const int cores = std::max(config_.cores, 1);
  for (int core = 0; core < cores; ++core) {
    const std::string core_name =
        cores == 1 ? config_.name
                   : config_.name + "/core" + std::to_string(core);
    processors_.push_back(std::make_unique<Processor>(
        sim_, core_name, config_.cpu, default_scheduler_for(config_.os),
        trace_, config_.seed + static_cast<std::uint64_t>(core)));
  }
  memory_ = std::make_unique<MemoryManager>(config_.memory_bytes,
                                            config_.has_mmu, trace_,
                                            config_.name);
  if (medium_ != nullptr) {
    medium_->attach(node_, [this](const net::Frame& frame) {
      if (!failed_ && receive_handler_) receive_handler_(frame);
    });
    // First traced ECU on a bus wires the bus into the same observability
    // sink, so frame spans and bus counters land next to the task spans.
    if (trace_ != nullptr && medium_->trace() == nullptr) {
      medium_->set_trace(trace_);
    }
  }
}

Ecu::~Ecu() {
  if (medium_ != nullptr) medium_->detach(node_);
}

void Ecu::send(net::Frame frame) {
  if (failed_ || medium_ == nullptr) return;
  frame.src = node_;
  medium_->send(std::move(frame));
}

void Ecu::send_batch(std::vector<net::Frame>& frames) {
  if (failed_ || medium_ == nullptr) {
    frames.clear();
    return;
  }
  for (net::Frame& frame : frames) frame.src = node_;
  medium_->send_batch(frames);
}

void Ecu::set_receive_handler(net::ReceiveHandler handler) {
  receive_handler_ = std::move(handler);
}

void Ecu::fail() {
  if (failed_) return;
  failed_ = true;
  for (auto& processor : processors_) processor->halt();
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), sim::TraceCategory::kFault, config_.name,
                   "ecu_failed");
  }
}

void Ecu::recover() {
  if (!failed_) return;
  failed_ = false;
  // Fresh processors: the old ones' state died with the fault.
  const std::size_t cores = processors_.size();
  processors_.clear();
  for (std::size_t core = 0; core < cores; ++core) {
    const std::string core_name =
        cores == 1 ? config_.name
                   : config_.name + "/core" + std::to_string(core);
    processors_.push_back(std::make_unique<Processor>(
        sim_, core_name, config_.cpu, default_scheduler_for(config_.os),
        trace_, config_.seed + 100 + static_cast<std::uint64_t>(core)));
  }
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), sim::TraceCategory::kFault, config_.name,
                   "ecu_recovered");
  }
}

}  // namespace dynaplat::os
