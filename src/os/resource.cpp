#include "os/resource.hpp"

namespace dynaplat::os {

void ResourceArbiter::request(int priority, sim::Duration service_time,
                              std::function<void()> done) {
  const int effective = fifo_only_ ? 0 : priority;
  Pending pending;
  pending.requested_at = sim_.now();
  pending.service_time = service_time;
  pending.priority = priority;  // true class, for attribution in stats
  pending.done = std::move(done);
  queue_.emplace(std::make_pair(effective, next_seq_++), std::move(pending));
  if (!busy_) start_next();
}

std::size_t ResourceArbiter::queued() const { return queue_.size(); }

const sim::Stats& ResourceArbiter::wait_stats(int priority) const {
  return wait_stats_[priority];
}

void ResourceArbiter::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto it = queue_.begin();
  Pending pending = std::move(it->second);
  queue_.erase(it);
  wait_stats_[pending.priority].add(
      static_cast<double>(sim_.now() - pending.requested_at));
  sim_.schedule_in(pending.service_time,
                   [this, done = std::move(pending.done)] {
                     ++served_;
                     if (done) done();
                     start_next();
                   });
}

}  // namespace dynaplat::os
