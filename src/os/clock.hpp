// Per-ECU local clock with drift.
//
// Real ECUs free-run on their own oscillators; the paper's warning about
// centrally-switched updates (Sec. 3.2) is precisely that two ECUs' notions
// of "time T" differ. LocalClock maps the global simulated time to a local
// time with a constant frequency error (ppm) and an adjustable offset; the
// residual difference to global time is the ground-truth sync error that
// platform::ClockSyncService tries to drive to zero.
#pragma once

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dynaplat::os {

class LocalClock {
 public:
  /// `drift_ppm` > 0 means this clock runs fast.
  LocalClock(sim::Simulator& simulator, double drift_ppm,
             sim::Duration initial_offset = 0)
      : sim_(simulator), drift_ppm_(drift_ppm), offset_(initial_offset) {}

  /// Local time reading.
  sim::Time now() const {
    const double skew = 1.0 + drift_ppm_ * 1e-6;
    return offset_ + static_cast<sim::Time>(
                         static_cast<double>(sim_.now()) * skew);
  }

  /// Step correction applied by a sync protocol.
  void adjust(sim::Duration delta) { offset_ += delta; }

  /// Ground truth error (local - global); measurement-only, a real node
  /// cannot observe this.
  sim::Duration true_error() const { return now() - sim_.now(); }

  double drift_ppm() const { return drift_ppm_; }

 private:
  sim::Simulator& sim_;
  double drift_ppm_;
  sim::Duration offset_;
};

}  // namespace dynaplat::os
