// CPU capacity model.
//
// The paper stresses that "current ECUs typically contain CPUs with 200 MHz
// or less" while AI workloads need far more (Sec. 1). dynaplat expresses all
// computational work in *instructions*; a CpuModel converts instructions to
// simulated time, so the same application model runs on a 20 MIPS body ECU
// or a 10 GIPS central platform with different timing (E6 weak-vs-strong
// verification crossover relies on this).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dynaplat::os {

struct CpuModel {
  /// Million instructions per second the core retires.
  std::uint64_t mips = 200;
  /// Hardware crypto acceleration (SHE/HSM). Scales crypto instruction
  /// counts down by `crypto_speedup`.
  bool crypto_accelerator = false;
  std::uint32_t crypto_speedup = 20;

  /// Simulated duration of `instructions` of general-purpose work.
  sim::Duration duration_for(std::uint64_t instructions) const {
    // instructions / (mips * 1e6 per second) in nanoseconds =
    // instructions * 1000 / mips.
    return static_cast<sim::Duration>(instructions * 1000ull / mips);
  }

  /// Duration of crypto work, honouring the accelerator if present.
  sim::Duration duration_for_crypto(std::uint64_t instructions) const {
    if (crypto_accelerator) instructions /= crypto_speedup;
    return duration_for(instructions);
  }
};

}  // namespace dynaplat::os
