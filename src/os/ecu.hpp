// Electronic Control Unit: one compute node of the E/E architecture.
//
// Aggregates a Processor, protected memory and a network attachment, plus
// fault-injection hooks (fail/recover) used by the redundancy experiments.
// The dynamic platform (src/platform) layers application management on top
// of a set of Ecus — "logically located across multiple hardware elements
// and operating systems" (Sec. 1.1).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/medium.hpp"
#include "os/memory.hpp"
#include "os/processor.hpp"

namespace dynaplat::os {

enum class OsKind : std::uint8_t {
  kRtos,          ///< time/priority scheduling, fit for deterministic apps
  kGeneralPurpose ///< fair scheduling only; NDAs only (Sec. 1.1)
};

struct EcuConfig {
  std::string name;
  CpuModel cpu;
  /// Core count; every core shares the CpuModel. The paper's central
  /// computing platforms are multicore by necessity (Sec. 1 "increasing
  /// computation requirements").
  int cores = 1;
  std::size_t memory_bytes = 64 * 1024 * 1024;
  bool has_mmu = true;
  OsKind os = OsKind::kRtos;
  std::uint64_t seed = 1;
};

class Ecu {
 public:
  /// `node` is this ECU's address on `medium`; pass nullptr for an
  /// unconnected bench ECU.
  Ecu(sim::Simulator& simulator, EcuConfig config, net::Medium* medium,
      net::NodeId node, sim::Trace* trace = nullptr);
  ~Ecu();
  Ecu(const Ecu&) = delete;
  Ecu& operator=(const Ecu&) = delete;

  /// Core 0 (also the core the communication stack runs on).
  Processor& processor() { return *processors_[0]; }
  const Processor& processor() const { return *processors_[0]; }
  /// A specific core.
  Processor& processor(std::size_t core) { return *processors_[core]; }
  const Processor& processor(std::size_t core) const {
    return *processors_[core];
  }
  std::size_t core_count() const { return processors_.size(); }
  MemoryManager& memory() { return *memory_; }
  const EcuConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  net::NodeId node_id() const { return node_; }
  net::Medium* medium() { return medium_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Trace* trace() { return trace_; }

  /// Sends a frame from this ECU (no-op when failed or unconnected).
  void send(net::Frame frame);
  /// Sends a burst of frames (a fragmented message) in one medium call.
  /// The vector is consumed; it comes back empty with capacity intact so
  /// the transport can reuse it without reallocating.
  void send_batch(std::vector<net::Frame>& frames);
  /// Registers the receive path; frames are dropped while failed.
  void set_receive_handler(net::ReceiveHandler handler);

  /// Hard fault: processor halts, frames are no longer sent or received.
  /// Models the "ECU failure on the highway" of Sec. 3.3.
  void fail();
  /// Restores operation (processor restarts releases of remaining tasks).
  void recover();
  bool failed() const { return failed_; }

 private:
  sim::Simulator& sim_;
  EcuConfig config_;
  net::Medium* medium_;
  net::NodeId node_;
  sim::Trace* trace_;
  std::vector<std::unique_ptr<Processor>> processors_;
  std::unique_ptr<MemoryManager> memory_;
  net::ReceiveHandler receive_handler_;
  bool failed_ = false;
};

std::unique_ptr<Scheduler> default_scheduler_for(OsKind os);

}  // namespace dynaplat::os
