// Scheduling policies.
//
// A Scheduler is a pure selection policy over the ready queue; the Processor
// owns all mechanics (releases, preemption, completion events). This split
// lets the dynamic platform swap policies per ECU as the model prescribes
// (Sec. 1.1: RTOS with time/priority scheduling for mixed criticality,
// fair best-effort OS where only NDAs run).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "os/task.hpp"
#include "sim/time.hpp"

namespace dynaplat::os {

struct ReadyJob {
  TaskId task = kInvalidTask;
  TaskClass task_class = TaskClass::kNonDeterministic;
  int priority = 16;
  sim::Time release = 0;
  sim::Time absolute_deadline = 0;
  sim::Duration remaining = 0;  ///< execution time still owed
  /// Monotonic admission counter; ties on priority/deadline resolve FIFO by
  /// this (a preempted job keeps its sequence and resumes before later
  /// arrivals of equal priority).
  std::uint64_t sequence = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Index into `ready` of the job to run now, or -1 to idle.
  virtual int select(const std::vector<ReadyJob>& ready, sim::Time now) = 0;

  /// Next instant at which the selection could change without a release or
  /// completion occurring (time-table window edges, round-robin quantum
  /// expiry). kTimeNever if selection only changes on release/completion.
  virtual sim::Time next_decision_point(sim::Time now) const {
    (void)now;
    return sim::kTimeNever;
  }

  /// Whether a newly released job may preempt the running one.
  virtual bool preemptive() const { return true; }

  virtual const char* policy_name() const = 0;
};

/// Preemptive fixed-priority (lower value = more urgent); the RTOS staple.
class FixedPriorityScheduler final : public Scheduler {
 public:
  int select(const std::vector<ReadyJob>& ready, sim::Time now) override;
  const char* policy_name() const override { return "fixed-priority"; }
};

/// Preemptive earliest-deadline-first.
class EdfScheduler final : public Scheduler {
 public:
  int select(const std::vector<ReadyJob>& ready, sim::Time now) override;
  const char* policy_name() const override { return "edf"; }
};

/// Quantum-based round-robin over all ready jobs, oblivious to class and
/// deadline — models a general-purpose OS's fair scheduler. This is the
/// *unisolated baseline* of experiment E1: deterministic tasks receive no
/// preferential treatment and their jitter grows with best-effort load.
class FairScheduler final : public Scheduler {
 public:
  explicit FairScheduler(sim::Duration quantum = 1 * sim::kMillisecond)
      : quantum_(quantum) {}
  int select(const std::vector<ReadyJob>& ready, sim::Time now) override;
  sim::Time next_decision_point(sim::Time now) const override;
  const char* policy_name() const override { return "fair-rr"; }

 private:
  sim::Duration quantum_;
  mutable sim::Time slice_end_ = 0;
  std::uint64_t rr_cursor_ = 0;
};

/// One window of a time-triggered table, relative to the table cycle.
struct TtWindow {
  sim::Duration offset = 0;
  sim::Duration length = 0;
  TaskId task = kInvalidTask;
};

/// Table-driven time-triggered scheduler with priority-scheduled background.
///
/// Deterministic tasks own exclusive windows inside a repeating cycle; while
/// no window is active (or the window's owner has no ready job), ready
/// non-window jobs run in fixed-priority order but are preempted at the next
/// window edge. This is the paper's proposed mixed-criticality platform
/// scheme (Sec. 3.1 "CPU"): DAs keep their activation instants regardless of
/// NDA behaviour.
class TimeTriggeredScheduler final : public Scheduler {
 public:
  TimeTriggeredScheduler(sim::Duration cycle, std::vector<TtWindow> table);

  int select(const std::vector<ReadyJob>& ready, sim::Time now) override;
  sim::Time next_decision_point(sim::Time now) const override;
  const char* policy_name() const override { return "time-triggered"; }

  sim::Duration cycle() const { return cycle_; }
  const std::vector<TtWindow>& table() const { return table_; }

  /// Replaces the table atomically (runtime reconfiguration; the schedule
  /// artifact shipped from the backend in E4 lands here).
  void install_table(sim::Duration cycle, std::vector<TtWindow> table);

 private:
  /// Window active at `now`, or nullptr.
  const TtWindow* active_window(sim::Time now) const;

  sim::Duration cycle_;
  std::vector<TtWindow> table_;  // sorted by offset
};

std::unique_ptr<Scheduler> make_fixed_priority();
std::unique_ptr<Scheduler> make_edf();
std::unique_ptr<Scheduler> make_fair(sim::Duration quantum = sim::kMillisecond);

}  // namespace dynaplat::os
