// Task and job definitions for the ECU scheduling model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace dynaplat::os {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = 0;

/// The paper's two application classes (Sec. 3.1). Deterministic tasks carry
/// hard timing contracts the platform must enforce; non-deterministic tasks
/// are best-effort.
enum class TaskClass : std::uint8_t { kDeterministic, kNonDeterministic };

struct TaskConfig {
  std::string name;
  TaskClass task_class = TaskClass::kNonDeterministic;
  sim::Duration period = 0;    ///< 0 => aperiodic (released explicitly)
  sim::Duration deadline = 0;  ///< relative; 0 => implicit (== period)
  sim::Time offset = 0;        ///< first release
  std::uint64_t instructions = 1000;  ///< nominal work per job
  /// Actual work is uniform in [1-jitter, 1+jitter] * instructions.
  double execution_jitter = 0.0;
  /// Fixed-priority value; 0 is most urgent. Used by priority schedulers.
  int priority = 16;

  sim::Duration effective_deadline() const {
    return deadline > 0 ? deadline : period;
  }
};

/// Runs when a job *completes* (the functional effect of the job: reading
/// sensors, publishing signals, actuating). Scheduling only decides when.
using JobBody = std::function<void()>;

/// Per-task runtime measurements; also the data source for the paper's
/// runtime monitoring (Sec. 3.4).
struct TaskStats {
  sim::Stats response_time;      ///< release -> completion, ns
  sim::Stats activation_jitter;  ///< |actual - ideal release|, ns
  sim::Stats completion_jitter;  ///< completion offset within the period, ns
  std::uint64_t releases = 0;
  std::uint64_t completions = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;

  double miss_ratio() const {
    return completions == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(completions);
  }
};

}  // namespace dynaplat::os
