// Prioritized shared-hardware access (paper Sec. 3.1 "Hardware Access &
// Communication").
//
// "When a deterministic application needs to transmit data, these
// transmissions typically have an accompanying urgency. ... These
// conditions and order of priorities holds for all hardware access (e.g.,
// crypto module, persistent memory, etc.)"
//
// A ResourceArbiter serializes access to one hardware block (HSM, flash
// controller, DMA engine). Requests queue by priority (FIFO within a
// priority); service is non-preemptive — like a CAN frame, a started
// operation finishes — so the worst case a deterministic request suffers is
// one in-flight operation plus its own service time. Per-priority wait
// statistics expose exactly that bound (ablation: a FIFO-only arbiter).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace dynaplat::os {

class ResourceArbiter {
 public:
  /// `fifo_only` ignores priorities (the unmanaged baseline).
  ResourceArbiter(sim::Simulator& simulator, std::string name,
                  bool fifo_only = false)
      : sim_(simulator), name_(std::move(name)), fifo_only_(fifo_only) {}

  /// Requests the resource for `service_time`; `done` runs at completion.
  /// Lower priority value = more urgent.
  void request(int priority, sim::Duration service_time,
               std::function<void()> done = {});

  bool busy() const { return busy_; }
  std::size_t queued() const;
  /// Wait-time statistics (request -> service start) per priority level.
  const sim::Stats& wait_stats(int priority) const;
  std::uint64_t served() const { return served_; }
  const std::string& name() const { return name_; }

 private:
  struct Pending {
    sim::Time requested_at = 0;
    sim::Duration service_time = 0;
    int priority = 0;  ///< true class (stats attribution in FIFO mode too)
    std::function<void()> done;
  };

  void start_next();

  sim::Simulator& sim_;
  std::string name_;
  bool fifo_only_;
  bool busy_ = false;
  // (effective priority, fifo seq) -> request. FIFO-only mode collapses all
  // priorities to one class.
  std::map<std::pair<int, std::uint64_t>, Pending> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t served_ = 0;
  mutable std::map<int, sim::Stats> wait_stats_;
};

}  // namespace dynaplat::os
