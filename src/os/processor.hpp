// Preemptive processor model executing tasks under a pluggable Scheduler.
//
// The Processor turns task releases into timed execution on the shared
// simulator: it freezes/resumes job progress across preemptions, charges
// context-switch overhead, tracks per-task timing statistics and emits trace
// records for the runtime monitor. One Processor == one core; an Ecu may own
// several.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "os/cpu.hpp"
#include "os/scheduler.hpp"
#include "os/task.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dynaplat::os {

class Processor {
 public:
  Processor(sim::Simulator& simulator, std::string name, CpuModel cpu,
            std::unique_ptr<Scheduler> scheduler, sim::Trace* trace = nullptr,
            std::uint64_t seed = 1);
  ~Processor();
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  /// Registers a task. Periodic tasks (period > 0) begin releasing once
  /// start() has run; aperiodic tasks are released via release().
  TaskId add_task(TaskConfig config, JobBody body = {});

  /// Stops releases and discards pending/running jobs of the task.
  void remove_task(TaskId id);

  /// Begins periodic release generation (aligned to the global clock so
  /// time-triggered tables on different ECUs stay in phase).
  void start();

  /// Stops all activity (ECU failure injection / shutdown).
  void halt();
  bool halted() const { return halted_; }

  /// Releases one job of an aperiodic task now.
  void release(TaskId id);

  /// Submits a one-shot work item (middleware processing, crypto, platform
  /// services). Runs under the same scheduler, then disappears.
  void submit(std::string name, std::uint64_t instructions, int priority,
              TaskClass task_class, JobBody on_complete);

  /// Replaces the scheduler policy (platform reconfiguration).
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  Scheduler& scheduler() { return *scheduler_; }

  /// Fault injection (src/fault): scales the execution time of the task's
  /// future jobs by `scale` (> 1 models an overrun — cache thrash, lock
  /// contention, a latent bug). 1.0 restores nominal behaviour.
  void inject_overrun(TaskId id, double scale);
  void clear_overrun(TaskId id) { inject_overrun(id, 1.0); }

  const TaskStats& stats(TaskId id) const;
  const TaskConfig& config(TaskId id) const;
  bool has_task(TaskId id) const { return tasks_.count(id) > 0; }
  std::vector<TaskId> task_ids() const;

  /// Sum of instructions executed (all jobs), for load accounting.
  std::uint64_t instructions_retired() const { return instructions_retired_; }
  /// Static utilization of the periodic task set (WCET/period sum).
  double utilization() const;
  /// Fraction of elapsed time the core was executing since start().
  double busy_fraction() const;

  const CpuModel& cpu() const { return cpu_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct TaskState {
    TaskConfig config;
    JobBody body;
    TaskStats stats;
    sim::EventId recurrence;
    std::uint64_t release_count = 0;
    std::uint32_t trace_source = 0;  // interned "<core>/<task>" lane id
    double overrun_scale = 1.0;      // fault-injected execution inflation
    bool one_shot = false;
    bool removed = false;  // deferred removal while a job is in flight
  };

  struct RunningJob {
    ReadyJob job;
    sim::Time started = 0;
    sim::EventId completion;
    std::uint32_t trace_source = 0;
  };

  void on_release(TaskId id);
  void on_complete();
  void reevaluate();
  sim::Duration sample_execution_time(const TaskState& task);
  /// Hot-path trace append: interned ids only, no string construction.
  void trace_event(std::uint32_t source, std::uint32_t name,
                   std::int64_t value = 0,
                   obs::EventType type = obs::EventType::kInstant);

  sim::Simulator& sim_;
  std::string name_;
  CpuModel cpu_;
  std::unique_ptr<Scheduler> scheduler_;
  sim::Trace* trace_;
  sim::Random rng_;

  std::map<TaskId, TaskState> tasks_;
  std::vector<ReadyJob> ready_;
  std::optional<RunningJob> running_;
  std::map<TaskId, sim::Time> first_cpu_at_;  // release -> first dispatch
  sim::EventId kick_;
  // Event-name ids interned once at construction so per-job records are a
  // couple of integer stores.
  std::uint32_t ev_release_ = 0;
  std::uint32_t ev_run_ = 0;
  std::uint32_t ev_complete_ = 0;
  std::uint32_t ev_deadline_miss_ = 0;
  std::uint32_t ev_preempt_ = 0;
  TaskId next_task_id_ = 1;
  std::uint64_t next_job_sequence_ = 0;
  TaskId last_dispatched_ = kInvalidTask;
  bool started_ = false;
  bool halted_ = false;
  sim::Time started_at_ = 0;
  sim::Duration busy_time_ = 0;
  std::uint64_t instructions_retired_ = 0;
  sim::Duration context_switch_cost_;
};

}  // namespace dynaplat::os
