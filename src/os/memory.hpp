// Process memory separation model (paper Sec. 3.1 "Memory").
//
// Freedom from interference requires applications to live in separate
// processes with MMU-backed isolation. This model tracks per-process memory
// quotas and adjudicates access attempts: with the MMU enabled a foreign
// access faults (and is traced); without an MMU it silently corrupts — the
// hazard the paper says forces an MMU into the hardware requirements.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/trace.hpp"

namespace dynaplat::os {

using ProcessId = std::uint32_t;
inline constexpr ProcessId kInvalidProcess = 0;
inline constexpr ProcessId kKernelProcess = 0xFFFFFFFFu;

enum class AccessResult : std::uint8_t {
  kGranted,          ///< own region or kernel
  kFaulted,          ///< MMU trapped a foreign access
  kSilentCorruption  ///< no MMU: foreign write went through
};

struct ProcessInfo {
  std::string name;
  std::size_t quota = 0;  ///< reserved bytes
  std::size_t used = 0;   ///< currently allocated
};

class MemoryManager {
 public:
  MemoryManager(std::size_t total_bytes, bool has_mmu,
                sim::Trace* trace = nullptr, std::string ecu_name = {});

  /// Reserves `quota` bytes for a new process. Returns kInvalidProcess when
  /// the remaining physical memory cannot back the quota.
  ProcessId create_process(std::string name, std::size_t quota);
  void destroy_process(ProcessId id);
  bool exists(ProcessId id) const { return processes_.count(id) > 0; }

  /// Heap allocation within the process quota.
  bool allocate(ProcessId id, std::size_t bytes);
  void deallocate(ProcessId id, std::size_t bytes);

  /// Models process `accessor` touching memory owned by `owner`.
  AccessResult access(ProcessId accessor, ProcessId owner);

  const ProcessInfo& info(ProcessId id) const;
  std::size_t total() const { return total_; }
  std::size_t reserved() const { return reserved_; }
  std::size_t available() const { return total_ - reserved_; }
  bool has_mmu() const { return has_mmu_; }
  std::uint64_t faults() const { return faults_; }
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  std::size_t total_;
  bool has_mmu_;
  sim::Trace* trace_;
  std::string ecu_name_;
  std::size_t reserved_ = 0;
  ProcessId next_id_ = 1;
  std::map<ProcessId, ProcessInfo> processes_;
  std::uint64_t faults_ = 0;
  std::uint64_t corruptions_ = 0;
};

}  // namespace dynaplat::os
