#include "os/memory.hpp"

#include <stdexcept>

namespace dynaplat::os {

MemoryManager::MemoryManager(std::size_t total_bytes, bool has_mmu,
                             sim::Trace* trace, std::string ecu_name)
    : total_(total_bytes),
      has_mmu_(has_mmu),
      trace_(trace),
      ecu_name_(std::move(ecu_name)) {}

ProcessId MemoryManager::create_process(std::string name, std::size_t quota) {
  if (quota > available()) return kInvalidProcess;
  const ProcessId id = next_id_++;
  reserved_ += quota;
  processes_.emplace(id, ProcessInfo{std::move(name), quota, 0});
  return id;
}

void MemoryManager::destroy_process(ProcessId id) {
  auto it = processes_.find(id);
  if (it == processes_.end()) return;
  reserved_ -= it->second.quota;
  processes_.erase(it);
}

bool MemoryManager::allocate(ProcessId id, std::size_t bytes) {
  auto it = processes_.find(id);
  if (it == processes_.end()) return false;
  if (it->second.used + bytes > it->second.quota) return false;
  it->second.used += bytes;
  return true;
}

void MemoryManager::deallocate(ProcessId id, std::size_t bytes) {
  auto it = processes_.find(id);
  if (it == processes_.end()) return;
  it->second.used = bytes > it->second.used ? 0 : it->second.used - bytes;
}

AccessResult MemoryManager::access(ProcessId accessor, ProcessId owner) {
  if (accessor == owner || accessor == kKernelProcess) {
    return AccessResult::kGranted;
  }
  if (has_mmu_) {
    ++faults_;
    if (trace_ != nullptr && trace_->enabled(sim::TraceCategory::kFault)) {
      trace_->record(0, sim::TraceCategory::kFault, ecu_name_ + "/mmu",
                     "memory_fault", static_cast<std::int64_t>(accessor));
    }
    return AccessResult::kFaulted;
  }
  ++corruptions_;
  if (trace_ != nullptr && trace_->enabled(sim::TraceCategory::kFault)) {
    trace_->record(0, sim::TraceCategory::kFault, ecu_name_ + "/memory",
                   "silent_corruption", static_cast<std::int64_t>(accessor));
  }
  return AccessResult::kSilentCorruption;
}

const ProcessInfo& MemoryManager::info(ProcessId id) const {
  auto it = processes_.find(id);
  if (it == processes_.end()) throw std::out_of_range("unknown process");
  return it->second;
}

}  // namespace dynaplat::os
