#include "backend/fleet.hpp"

#include <algorithm>

#include "sim/random.hpp"

namespace dynaplat::backend {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  for (std::size_t i = 0; i < sizeof(value); ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Stream-id namespaces under FleetConfig::seed. Keep these distinct from
// each other; jitter streams use the session index directly on the
// client's own jitter_seed.
constexpr std::uint64_t kTopologyStream = 0x1000'0000ull;
constexpr std::uint64_t kWaveStream = 0x2000'0000ull;
constexpr std::uint64_t kDriftStream = 0x3000'0000ull;

constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
constexpr std::uint8_t kKindOta = 0;
constexpr std::uint8_t kKindRecovery = 1;

/// Log-scale latency bucket: 4 sub-buckets per power of two (±~12%).
std::size_t latency_bucket(sim::Duration latency) {
  const std::uint64_t v =
      latency <= 0 ? 1ull : static_cast<std::uint64_t>(latency);
  const int msb = 63 - __builtin_clzll(v);
  const int sub = msb >= 2 ? static_cast<int>((v >> (msb - 2)) & 3u) : 0;
  return static_cast<std::size_t>(msb * 4 + sub);
}

}  // namespace

std::vector<dse::AnalysisTask> FleetDriver::make_tasks(std::uint64_t seed,
                                                       std::size_t topology) {
  sim::Random rng = sim::Random::stream(seed, kTopologyStream + topology);
  const int count = static_cast<int>(rng.uniform_int(3, 7));
  static const sim::Duration kPeriods[] = {
      10 * sim::kMillisecond, 20 * sim::kMillisecond, 50 * sim::kMillisecond,
      100 * sim::kMillisecond};
  std::vector<dse::AnalysisTask> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    dse::AnalysisTask task;
    task.name = "t" + std::to_string(topology) + "." + std::to_string(i);
    task.period = kPeriods[rng.next_below(4)];
    task.deadline = task.period;
    // Per-task utilization 2%..12%: a 3..7-task set stays comfortably
    // schedulable, so infeasibility comes from explicit test inputs, not
    // the generator.
    const double util = rng.uniform(0.02, 0.12);
    task.wcet = std::max<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(task.period) * util),
        10 * sim::kMicrosecond);
    task.priority = 8 + i;
    task.deterministic = (i == 0);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

FleetDriver::FleetDriver(sim::Simulator& simulator,
                         FleetScheduleService& service, FleetConfig config)
    : FleetDriver(simulator, std::vector<FleetScheduleService*>{&service},
                  std::move(config)) {}

FleetDriver::FleetDriver(sim::Simulator& simulator,
                         std::vector<FleetScheduleService*> services,
                         FleetConfig config)
    : sim_(simulator), services_(std::move(services)), config_(config) {
  // services_ must be non-empty; both public constructors guarantee it in
  // sane use (the reference overload by construction).
  config_.sessions = std::max<std::size_t>(config_.sessions, 1);
  config_.topology_classes = std::max<std::size_t>(config_.topology_classes, 1);
}

FleetDriver::~FleetDriver() {
  for (std::size_t idx = 0; idx < pending_.size(); ++idx) {
    if (!pending_[idx].in_use) continue;
    cancel_timer(pending_[idx].timeout);
    cancel_timer(pending_[idx].resubmit);
  }
  for (Timer& timer : ota_timers_) cancel_timer(timer);
}

// --- Timer facade over the wheel / kernel-heap arms --------------------------

FleetDriver::Timer FleetDriver::timer_at(sim::Time at, sim::InlineFunction fn) {
  Timer timer{};
  if (wheel_) {
    timer.wt = wheel_->schedule_at(at, std::move(fn));
  } else {
    timer.ev = sim_.schedule_at(std::max(at, sim_.now()), std::move(fn));
  }
  return timer;
}

FleetDriver::Timer FleetDriver::timer_in(sim::Duration delay,
                                         sim::InlineFunction fn) {
  return timer_at(sim_.now() + std::max<sim::Duration>(delay, 0),
                  std::move(fn));
}

FleetDriver::Timer FleetDriver::timer_every(sim::Time first,
                                            sim::Duration period,
                                            sim::InlineFunction fn) {
  Timer timer{};
  if (wheel_) {
    timer.wt = wheel_->schedule_every(first, period, std::move(fn));
  } else {
    timer.ev = sim_.schedule_every(std::max(first, sim_.now()), period,
                                   std::move(fn));
  }
  return timer;
}

void FleetDriver::cancel_timer(Timer& timer) {
  if (timer.wt.valid() && wheel_) wheel_->cancel(timer.wt);
  if (timer.ev.valid()) sim_.cancel(timer.ev);
  timer = Timer{};
}

// --- Fleet construction ------------------------------------------------------

void FleetDriver::build_classes() {
  classes_.clear();
  classes_.reserve(config_.topology_classes);
  for (std::size_t c = 0; c < config_.topology_classes; ++c) {
    TopologyClass cls;
    cls.tasks = make_tasks(config_.seed, c);
    // Two ECU speed grades, aligned with the topology class so cache keys
    // stay shared within a class.
    cls.ecu_mips = (c % 2 == 0) ? 1'000 : 2'000;
    cls.key = topology_key(cls.tasks, cls.ecu_mips);
    classes_.push_back(std::move(cls));
  }
}

void FleetDriver::reset_sessions() {
  // Tear down anything a previous run() left in flight before the state it
  // points at is rebuilt: free live slab entries (bumps generations, so a
  // stale timeout/resubmit firing later no-ops) and bump the epoch (so a
  // stale cadence/wave timer no-ops).
  for (std::size_t idx = 0; idx < pending_.size(); ++idx) {
    if (!pending_[idx].in_use) continue;
    free_pending((static_cast<std::uint64_t>(idx) + 1) << 32 |
                 pending_[idx].gen);
  }
  ++epoch_;

  build_classes();

  const std::size_t n = config_.sessions;
  state_.assign(n, static_cast<std::uint8_t>(SessionState::kNominal));
  flags_.assign(n, 0);
  breaker_.assign(n, 0);  // CLOSED, zero consecutive failures
  class_of_.assign(n, 0);
  jitter_draws_.assign(n, 0);
  open_until_.assign(n, 0);
  unsafe_since_.assign(n, 0);
  recovery_issued_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    class_of_[i] = static_cast<std::uint32_t>(i % config_.topology_classes);
    if (config_.topology_drift_fraction <= 0.0) continue;
    sim::Random draw = sim::Random::stream(config_.seed, kDriftStream + i);
    if (!draw.chance(config_.topology_drift_fraction)) continue;
    // Drifted vehicle: its task set mutated away from the class (a local
    // calibration tweak), so it keys alone — a singleton topology class
    // fragmenting the backend memo cache.
    TopologyClass cls;
    const TopologyClass& base = classes_[class_of_[i]];
    cls.tasks = base.tasks;
    cls.ecu_mips = base.ecu_mips;
    dse::AnalysisTask& mutated = cls.tasks[i % cls.tasks.size()];
    mutated.wcet +=
        static_cast<sim::Duration>(1 + i % 7) * sim::kMicrosecond;
    cls.key = topology_key(cls.tasks, cls.ecu_mips);
    class_of_[i] = static_cast<std::uint32_t>(classes_.size());
    classes_.push_back(std::move(cls));
  }

  unsafe_now_ = 0;
  degraded_now_ = 0;

  // Rebuild the wheel per run: destroying it cancels every kernel event it
  // owns, which is what makes the previous run's wheel timers vanish.
  wheel_.reset();
  if (config_.use_timer_wheel) {
    wheel_ = std::make_unique<sim::TimerWheel>(sim_, config_.wheel);
  }
}

void FleetDriver::run() {
  reset_sessions();
  const std::uint32_t epoch = epoch_;
  // All config instants are relative to the run's start, so a re-run on a
  // simulator whose clock already advanced replays the same scenario shape.
  const sim::Time start = sim_.now();

  // Staggered routine OTA resync cadence. With a phase grid the stagger is
  // quantized onto shared instants: one wheel batch — and, service-side,
  // one request cohort — per tick instant instead of one event per
  // session.
  if (config_.ota_period > 0) {
    ota_timers_.reserve(config_.sessions);
    for (std::size_t i = 0; i < config_.sessions; ++i) {
      sim::Time first = static_cast<sim::Time>(i) * config_.ota_period /
                        static_cast<sim::Time>(config_.sessions);
      if (config_.ota_phase_grid > 0) {
        first = first / config_.ota_phase_grid * config_.ota_phase_grid;
      }
      const std::uint32_t s = static_cast<std::uint32_t>(i);
      ota_timers_.push_back(
          timer_every(start + first, config_.ota_period, [this, s, epoch] {
            if (epoch == epoch_) issue_ota(s);
          }));
    }
  }

  // Fault wave: a deterministic per-session draw decides who is hit and
  // when inside the stagger window.
  if (config_.wave_fraction > 0.0 && config_.wave_at > 0) {
    for (std::size_t i = 0; i < config_.sessions; ++i) {
      sim::Random draw = sim::Random::stream(config_.seed, kWaveStream + i);
      if (!draw.chance(config_.wave_fraction)) continue;
      const sim::Time at =
          start + config_.wave_at +
          static_cast<sim::Duration>(draw.uniform01() *
                                     static_cast<double>(config_.wave_stagger));
      const std::uint32_t s = static_cast<std::uint32_t>(i);
      timer_at(at, [this, s, epoch] {
        if (epoch == epoch_) hit_with_wave(s);
      });
    }
  }

  // Driver-injected backend outage, hitting region 0.
  if (config_.outage_at > 0 && config_.outage_duration > 0) {
    heal_time_ = start + config_.outage_at + config_.outage_duration;
    FleetScheduleService* target = services_.front();
    if (config_.outage_is_partition) {
      sim_.schedule_at(start + config_.outage_at, [this, target, epoch] {
        if (epoch == epoch_) target->set_partitioned(true);
      });
      sim_.schedule_at(heal_time_, [this, target, epoch] {
        if (epoch == epoch_) target->set_partitioned(false);
      });
    } else {
      sim_.schedule_at(start + config_.outage_at, [this, target, epoch] {
        if (epoch == epoch_) target->crash();
      });
      sim_.schedule_at(heal_time_, [this, target, epoch] {
        if (epoch == epoch_) target->restart();
      });
    }
  }

  sim_.run_until(start + config_.horizon);

  // Drain: stop issuing routine work and let everything in flight settle,
  // so the end-of-run invariants (backend drained, recoveries complete)
  // judge a quiescent system rather than the arbitrary horizon cut.
  for (Timer& timer : ota_timers_) cancel_timer(timer);
  ota_timers_.clear();
  if (config_.drain_grace > 0) {
    sim_.run_until(start + config_.horizon + config_.drain_grace);
  }
}

static_assert(FleetDriver::hot_bytes_per_session() <= 64,
              "per-session hot state must stay within one cache line");

// --- Compact per-session client engine ---------------------------------------
// BackendClient semantics (timeout / capped jittered backoff / breaker /
// fallback ladder / stale revalidation) replayed over the SoA arrays, with
// one addition: while the home region's breaker is OPEN, attempts fail
// over to the sibling region instead of fast-failing (regions > 1 only).
// Only home-region results feed the home breaker; the HALF_OPEN probe at
// open-window expiry is what returns traffic home.

void FleetDriver::set_breaker(std::uint32_t s, BreakerState state,
                              int failures) {
  breaker_[s] = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(state) & kBreakerStateMask) |
      (std::min(failures, 63) << 2));
}

double FleetDriver::jitter_draw(std::uint32_t s) {
  // Stateless per-draw derivation: (session, draw#) indexes a pure hash
  // stream, so no generator state is stored per session.
  const std::uint64_t stream =
      static_cast<std::uint64_t>(s) << 32 | jitter_draws_[s]++;
  return sim::Random::stream(config_.client.jitter_seed, stream).uniform01();
}

void FleetDriver::record_success(std::uint32_t s) {
  const BreakerState prev = breaker_of(s);
  set_breaker(s, BreakerState::kClosed, 0);
  // Breaker closing lifts degradation only after stale artifacts are
  // re-validated against the backend (same ordering as BackendClient).
  if (prev != BreakerState::kClosed) revalidate_stale(s);
}

void FleetDriver::record_failure(std::uint32_t s) {
  const BreakerState state = breaker_of(s);
  const int failures = std::min(failures_of(s) + 1, 63);
  const bool open = state == BreakerState::kHalfOpen ||
                    (state == BreakerState::kClosed &&
                     failures >= config_.client.breaker_threshold);
  if (open) {
    set_breaker(s, BreakerState::kOpen, failures);
    open_until_[s] = sim_.now() + config_.client.breaker_open_for;
    ++breaker_opens_;
  } else {
    set_breaker(s, state, failures);
  }
}

void FleetDriver::revalidate_stale(std::uint32_t s) {
  if ((flags_[s] & kFlagStaleUsed) == 0) return;
  TopologyClass& cls = classes_[class_of_[s]];
  SynthesisRequest request;
  request.tasks = cls.tasks;
  request.ecu_mips = cls.ecu_mips;
  request.session = s;
  request.key_hint = cls.key;
  const SynthesisResponse response = services_[home_region(s)]->query(request);
  if (response.status == ResponseStatus::kOk ||
      response.status == ResponseStatus::kInfeasible) {
    cls.artifact = response.artifact;
    cls.artifact_valid = true;
    flags_[s] &= ~kFlagStaleUsed;
    ++revalidated_;
  }
}

std::uint64_t FleetDriver::begin_request(std::uint32_t s, std::uint8_t kind) {
  std::uint32_t idx;
  if (pending_free_ != kNoFree) {
    idx = pending_free_;
    pending_free_ = pending_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  Pending& pending = pending_[idx];
  pending.session = s;
  pending.kind = kind;
  pending.target_region = home_region(s);
  pending.attempt = 0;
  pending.attempt_token = 0;
  pending.in_use = true;
  pending.backoff = 0;
  pending.issued = sim_.now();
  pending.timeout = Timer{};
  pending.resubmit = Timer{};
  const std::uint64_t id =
      (static_cast<std::uint64_t>(idx) + 1) << 32 | pending.gen;
  start_attempt(id);
  return id;
}

FleetDriver::Pending* FleetDriver::lookup(std::uint64_t id) {
  const std::uint64_t slot = (id >> 32) - 1;
  if (slot >= pending_.size()) return nullptr;
  Pending& pending = pending_[slot];
  if (!pending.in_use ||
      pending.gen != static_cast<std::uint32_t>(id & 0xFFFFFFFFu)) {
    return nullptr;
  }
  return &pending;
}

void FleetDriver::free_pending(std::uint64_t id) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  cancel_timer(pending->timeout);
  cancel_timer(pending->resubmit);
  pending->in_use = false;
  ++pending->gen;
  pending->next_free = pending_free_;
  pending_free_ = static_cast<std::uint32_t>((id >> 32) - 1);
}

void FleetDriver::start_attempt(std::uint64_t id) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  pending->resubmit = Timer{};
  const std::uint32_t s = pending->session;
  const std::uint8_t home = home_region(s);
  std::uint8_t target = home;
  if (breaker_of(s) == BreakerState::kOpen) {
    if (sim_.now() >= open_until_[s]) {
      // Open window expired: one HALF_OPEN probe goes home.
      set_breaker(s, BreakerState::kHalfOpen, failures_of(s));
    } else if (services_.size() > 1) {
      // Home is known-bad: redirect this attempt to the sibling region.
      target = static_cast<std::uint8_t>((home + 1) % services_.size());
      ++failovers_;
    } else {
      ++breaker_fast_fails_;
      finish_with_fallback(id);
      return;
    }
  }
  ++attempts_;
  ++pending->attempt;
  const std::uint32_t token = ++pending->attempt_token;
  pending->target_region = target;

  const TopologyClass& cls = classes_[class_of_[s]];
  SynthesisRequest request;
  request.criticality =
      pending->kind == kKindRecovery ? Criticality::kRecovery : Criticality::kOta;
  request.tasks = cls.tasks;
  request.ecu_mips = cls.ecu_mips;
  request.session = s;
  request.key_hint = cls.key;
  services_[target]->submit(request,
                            [this, id, token](const SynthesisResponse& response) {
                              on_response(id, token, response);
                            });
  pending->timeout = timer_in(config_.client.request_timeout,
                              [this, id] { on_timeout(id); });
}

void FleetDriver::on_response(std::uint64_t id, std::uint32_t token,
                              const SynthesisResponse& response) {
  Pending* pending = lookup(id);
  if (pending == nullptr || pending->attempt_token != token) return;
  cancel_timer(pending->timeout);
  const std::uint32_t s = pending->session;
  const bool was_home = pending->target_region == home_region(s);
  switch (response.status) {
    case ResponseStatus::kOk:
    case ResponseStatus::kInfeasible: {
      if (was_home) record_success(s);
      Outcome outcome;
      outcome.source = BackendOutcome::Source::kBackend;
      outcome.ok = response.status == ResponseStatus::kOk &&
                   response.artifact.feasible;
      if (outcome.ok && config_.client.artifact_cache_capacity > 0) {
        // Vehicle-local artifact cache: bytes shared per class, presence
        // tracked per session (capacity 0 ablates it, as in BackendClient).
        // A fresh store clears the stale marker.
        TopologyClass& cls = classes_[class_of_[s]];
        cls.artifact = response.artifact;
        cls.artifact_valid = true;
        flags_[s] =
            static_cast<std::uint8_t>((flags_[s] | kFlagHasArtifact) &
                                      ~kFlagStaleUsed);
      }
      finish(id, outcome);
      return;
    }
    case ResponseStatus::kShed:
    case ResponseStatus::kRetryAfter:
      // The backend answered: comms are fine (the breaker tracks reachability,
      // not load-shedding).
      if (was_home) record_success(s);
      retry_or_fail(id, response.retry_after);
      return;
    case ResponseStatus::kUnreachable:
      if (was_home) record_failure(s);
      retry_or_fail(id, 0);
      return;
  }
}

void FleetDriver::on_timeout(std::uint64_t id) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  pending->timeout = Timer{};
  ++timeouts_;
  ++pending->attempt_token;  // a late response to this attempt is ignored
  if (pending->target_region == home_region(pending->session)) {
    record_failure(pending->session);
  }
  retry_or_fail(id, 0);
}

void FleetDriver::retry_or_fail(std::uint64_t id, sim::Duration floor_delay) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  const std::uint32_t s = pending->session;
  // Out of attempts — or the breaker just opened with nowhere to fail over
  // to. With a sibling region the retry proceeds and start_attempt
  // redirects it.
  if (pending->attempt >= config_.client.max_attempts ||
      (breaker_of(s) == BreakerState::kOpen && services_.size() == 1)) {
    finish_with_fallback(id);
    return;
  }
  const sim::Duration delay = std::max(next_backoff(*pending), floor_delay);
  pending->resubmit = timer_in(delay, [this, id] { start_attempt(id); });
}

sim::Duration FleetDriver::next_backoff(Pending& pending) {
  if (pending.backoff == 0) {
    pending.backoff = config_.client.backoff_base;
  } else {
    pending.backoff = std::min<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(pending.backoff) *
                                   config_.client.backoff_factor),
        config_.client.max_backoff);
  }
  const double factor =
      1.0 + config_.client.jitter * (2.0 * jitter_draw(pending.session) - 1.0);
  const auto jittered = static_cast<sim::Duration>(
      static_cast<double>(pending.backoff) * factor);
  return std::max<sim::Duration>(jittered, sim::kMicrosecond);
}

void FleetDriver::finish_with_fallback(std::uint64_t id) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  const std::uint32_t s = pending->session;
  TopologyClass& cls = classes_[class_of_[s]];
  Outcome outcome;
  if ((flags_[s] & kFlagHasArtifact) != 0 && cls.artifact_valid &&
      cls.artifact.feasible) {
    // Rung 1: the last backend-synthesized artifact, served stale.
    flags_[s] |= kFlagStaleUsed;
    ++stale_served_;
    outcome.source = BackendOutcome::Source::kCache;
    outcome.ok = true;
  } else if (config_.client.local_fallback &&
             admission_.admit({}, cls.tasks).admitted) {
    // Rung 2: ECU-local admission — safe to keep running, no fresh table.
    ++local_admissions_;
    outcome.source = BackendOutcome::Source::kLocalFallback;
    outcome.ok = true;
  } else {
    // Rung 3: nothing worked; the caller degrades and retries later.
    ++exhausted_;
  }
  finish(id, outcome);
}

void FleetDriver::finish(std::uint64_t id, const Outcome& outcome) {
  Pending* pending = lookup(id);
  if (pending == nullptr) return;
  const std::uint32_t s = pending->session;
  const std::uint8_t kind = pending->kind;
  const sim::Time issued = pending->issued;
  free_pending(id);
  if (kind == kKindOta) {
    if (outcome.source == BackendOutcome::Source::kBackend && outcome.ok) {
      ++ota_completed_;
      record_latency(sim_.now() - issued);
    } else {
      // Shed / backpressured / degraded: the next cadence tick retries.
      ++ota_deferred_;
    }
    return;
  }
  flags_[s] &= static_cast<std::uint8_t>(~kFlagRecoveryInflight);
  on_recovery_outcome(s, outcome);
}

// --- Fleet behaviour ---------------------------------------------------------

void FleetDriver::issue_ota(std::uint32_t s) {
  // A vehicle mid-recovery doesn't pile routine work onto the backend.
  if (state_of(s) != SessionState::kNominal) return;
  begin_request(s, kKindOta);
}

void FleetDriver::hit_with_wave(std::uint32_t s) {
  if (state_of(s) != SessionState::kNominal) return;
  state_[s] = static_cast<std::uint8_t>(SessionState::kUnsafe);
  unsafe_since_[s] = sim_.now();
  ++unsafe_now_;
  peak_unsafe_ = std::max(peak_unsafe_, unsafe_now_);
  issue_recovery(s);
}

void FleetDriver::issue_recovery(std::uint32_t s) {
  if ((flags_[s] & kFlagRecoveryInflight) != 0) return;
  if (state_of(s) == SessionState::kNominal) return;
  flags_[s] |= kFlagRecoveryInflight;
  recovery_issued_[s] = sim_.now();
  begin_request(s, kKindRecovery);
}

void FleetDriver::on_recovery_outcome(std::uint32_t s,
                                      const Outcome& outcome) {
  if (state_of(s) == SessionState::kNominal) return;
  if (outcome.source == BackendOutcome::Source::kBackend && outcome.ok) {
    // Fresh backend artifact: fully recovered.
    record_latency(sim_.now() - recovery_issued_[s]);
    mark_safe(s, /*recovered=*/true);
    return;
  }
  if (outcome.ok) {
    // Stale cache or local admission: safe, but keep pressing for a fresh
    // artifact on the recovery cadence.
    if (outcome.source == BackendOutcome::Source::kCache) ++fallback_cache_;
    if (outcome.source == BackendOutcome::Source::kLocalFallback) {
      ++fallback_local_;
    }
    mark_safe(s, /*recovered=*/false);
  } else {
    // Nothing worked: still unsafe. Keep retrying on the cadence — this
    // is the stranding the no-fallback ablation arm exhibits.
    ++fallback_none_;
  }
  const std::uint32_t epoch = epoch_;
  timer_in(config_.recovery_retry, [this, s, epoch] {
    if (epoch == epoch_) issue_recovery(s);
  });
}

void FleetDriver::mark_safe(std::uint32_t s, bool recovered) {
  const SessionState state = state_of(s);
  if (state == SessionState::kUnsafe) {
    --unsafe_now_;
    max_unsafe_duration_ =
        std::max(max_unsafe_duration_, sim_.now() - unsafe_since_[s]);
  } else if (state == SessionState::kSafeDegraded && recovered) {
    --degraded_now_;
  }
  if (recovered) {
    state_[s] = static_cast<std::uint8_t>(SessionState::kNominal);
    ++recoveries_completed_;
    last_recovery_done_ = sim_.now();
  } else {
    if (state == SessionState::kUnsafe) ++degraded_now_;
    state_[s] = static_cast<std::uint8_t>(SessionState::kSafeDegraded);
  }
}

void FleetDriver::record_latency(sim::Duration latency) {
  ++lat_count_;
  lat_sum_ += static_cast<std::uint64_t>(latency);
  lat_max_ = std::max(lat_max_, latency);
  ++lat_hist_[std::min(latency_bucket(latency), kLatencyBuckets - 1)];
  if (config_.record_latencies) latencies_.push_back(latency);
}

double FleetDriver::latency_quantile_ms(double q) const {
  if (lat_count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(q * static_cast<double>(lat_count_) + 0.5),
      1);
  std::uint64_t cumulative = 0;
  for (std::size_t idx = 0; idx < kLatencyBuckets; ++idx) {
    cumulative += lat_hist_[idx];
    if (cumulative < target) continue;
    // Bucket midpoint in ns: bucket idx covers [2^m*(4+s)/4, 2^m*(5+s)/4).
    const std::uint64_t msb = idx / 4;
    const std::uint64_t sub = idx % 4;
    const double lo =
        static_cast<double>((1ull << msb) * (4 + sub)) / 4.0;
    const double hi =
        static_cast<double>((1ull << msb) * (5 + sub)) / 4.0;
    return (lo + hi) / 2.0 / 1e6;
  }
  return static_cast<double>(lat_max_) / 1e6;
}

std::uint64_t FleetDriver::fingerprint() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv_mix(hash, static_cast<std::uint64_t>(unsafe_now_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(peak_unsafe_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(max_unsafe_duration_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(degraded_now_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(last_recovery_done_));
  hash = fnv_mix(hash, ota_completed_);
  hash = fnv_mix(hash, ota_deferred_);
  hash = fnv_mix(hash, recoveries_completed_);
  hash = fnv_mix(hash, fallback_cache_);
  hash = fnv_mix(hash, fallback_local_);
  hash = fnv_mix(hash, fallback_none_);
  hash = fnv_mix(hash, attempts_);
  hash = fnv_mix(hash, timeouts_);
  hash = fnv_mix(hash, breaker_opens_);
  hash = fnv_mix(hash, breaker_fast_fails_);
  hash = fnv_mix(hash, stale_served_);
  hash = fnv_mix(hash, local_admissions_);
  hash = fnv_mix(hash, revalidated_);
  hash = fnv_mix(hash, exhausted_);
  hash = fnv_mix(hash, failovers_);
  hash = fnv_mix(hash, lat_count_);
  hash = fnv_mix(hash, lat_sum_);
  hash = fnv_mix(hash, static_cast<std::uint64_t>(lat_max_));
  for (const std::uint64_t bucket : lat_hist_) hash = fnv_mix(hash, bucket);
  hash = fnv_mix(hash, static_cast<std::uint64_t>(latencies_.size()));
  for (const sim::Duration latency : latencies_) {
    hash = fnv_mix(hash, static_cast<std::uint64_t>(latency));
  }
  const std::size_t n = state_.size();
  for (std::size_t i = 0; i < n; ++i) {
    hash = fnv_mix(hash, static_cast<std::uint64_t>(state_[i]) |
                             static_cast<std::uint64_t>(flags_[i]) << 8 |
                             static_cast<std::uint64_t>(breaker_[i]) << 16 |
                             static_cast<std::uint64_t>(jitter_draws_[i])
                                 << 32);
    hash = fnv_mix(hash, class_of_[i]);
    hash = fnv_mix(hash, static_cast<std::uint64_t>(open_until_[i]));
    hash = fnv_mix(hash, static_cast<std::uint64_t>(unsafe_since_[i]));
    hash = fnv_mix(hash, static_cast<std::uint64_t>(recovery_issued_[i]));
  }
  for (const FleetScheduleService* service : services_) {
    hash = fnv_mix(hash, service->fingerprint());
  }
  return hash;
}

}  // namespace dynaplat::backend
