#include "backend/fleet.hpp"

#include <algorithm>

namespace dynaplat::backend {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  for (std::size_t i = 0; i < sizeof(value); ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Stream-id namespaces under FleetConfig::seed. Keep these distinct from
// each other; client jitter streams use the session index directly on the
// client's own jitter_seed.
constexpr std::uint64_t kTopologyStream = 0x1000'0000ull;
constexpr std::uint64_t kWaveStream = 0x2000'0000ull;

}  // namespace

std::vector<dse::AnalysisTask> FleetDriver::make_tasks(std::uint64_t seed,
                                                       std::size_t topology) {
  sim::Random rng = sim::Random::stream(seed, kTopologyStream + topology);
  const int count = static_cast<int>(rng.uniform_int(3, 7));
  static const sim::Duration kPeriods[] = {
      10 * sim::kMillisecond, 20 * sim::kMillisecond, 50 * sim::kMillisecond,
      100 * sim::kMillisecond};
  std::vector<dse::AnalysisTask> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    dse::AnalysisTask task;
    task.name = "t" + std::to_string(topology) + "." + std::to_string(i);
    task.period = kPeriods[rng.next_below(4)];
    task.deadline = task.period;
    // Per-task utilization 2%..12%: a 3..7-task set stays comfortably
    // schedulable, so infeasibility comes from explicit test inputs, not
    // the generator.
    const double util = rng.uniform(0.02, 0.12);
    task.wcet = std::max<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(task.period) * util),
        10 * sim::kMicrosecond);
    task.priority = 8 + i;
    task.deterministic = (i == 0);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

FleetDriver::FleetDriver(sim::Simulator& simulator,
                         FleetScheduleService& service, FleetConfig config)
    : sim_(simulator), service_(service), config_(config) {
  config_.sessions = std::max<std::size_t>(config_.sessions, 1);
  config_.topology_classes = std::max<std::size_t>(config_.topology_classes, 1);
}

void FleetDriver::run() {
  sessions_.clear();
  sessions_.reserve(config_.sessions);
  for (std::size_t i = 0; i < config_.sessions; ++i) {
    Session session;
    session.index = static_cast<std::uint32_t>(i);
    session.topology = i % config_.topology_classes;
    session.tasks = make_tasks(config_.seed, session.topology);
    // Two ECU speed grades, aligned with the topology class so cache keys
    // stay shared within a class.
    session.ecu_mips = (session.topology % 2 == 0) ? 1'000 : 2'000;
    ClientConfig client_config = config_.client;
    client_config.jitter_stream = i;
    session.client =
        std::make_unique<BackendClient>(sim_, client_config);
    session.client->connect(&service_);
    sessions_.push_back(std::move(session));
  }

  // Staggered routine OTA resync cadence.
  if (config_.ota_period > 0) {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const sim::Time first =
          static_cast<sim::Time>(i) * config_.ota_period /
          static_cast<sim::Time>(sessions_.size());
      schedule_ota(sessions_[i], first);
    }
  }

  // Fault wave: a deterministic per-session draw decides who is hit and
  // when inside the stagger window.
  if (config_.wave_fraction > 0.0 && config_.wave_at > 0) {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      sim::Random draw = sim::Random::stream(config_.seed, kWaveStream + i);
      if (!draw.chance(config_.wave_fraction)) continue;
      const sim::Time at =
          config_.wave_at +
          static_cast<sim::Duration>(draw.uniform01() *
                                     static_cast<double>(config_.wave_stagger));
      Session* session = &sessions_[i];
      sim_.schedule_at(at, [this, session] { hit_with_wave(*session); });
    }
  }

  // Driver-injected backend outage.
  if (config_.outage_at > 0 && config_.outage_duration > 0) {
    heal_time_ = config_.outage_at + config_.outage_duration;
    if (config_.outage_is_partition) {
      sim_.schedule_at(config_.outage_at,
                       [this] { service_.set_partitioned(true); });
      sim_.schedule_at(heal_time_,
                       [this] { service_.set_partitioned(false); });
    } else {
      sim_.schedule_at(config_.outage_at, [this] { service_.crash(); });
      sim_.schedule_at(heal_time_, [this] { service_.restart(); });
    }
  }

  sim_.run_until(config_.horizon);

  // Drain: stop issuing routine work and let everything in flight settle,
  // so the end-of-run invariants (backend drained, recoveries complete)
  // judge a quiescent system rather than the arbitrary horizon cut.
  for (const sim::EventId timer : ota_timers_) sim_.cancel(timer);
  ota_timers_.clear();
  if (config_.drain_grace > 0) {
    sim_.run_until(config_.horizon + config_.drain_grace);
  }
}

void FleetDriver::schedule_ota(Session& session, sim::Time first) {
  Session* s = &session;
  ota_timers_.push_back(sim_.schedule_every(
      first, config_.ota_period, [this, s] { issue_ota(*s); }));
}

void FleetDriver::issue_ota(Session& session) {
  // A vehicle mid-recovery doesn't pile routine work onto the backend.
  if (session.state != SessionState::kNominal) return;
  SynthesisRequest request;
  request.criticality = Criticality::kOta;
  request.tasks = session.tasks;
  request.ecu_mips = session.ecu_mips;
  request.session = session.index;
  const sim::Time issued = sim_.now();
  session.client->request(
      std::move(request),
      [this, issued](const BackendOutcome& outcome) {
        if (outcome.source == BackendOutcome::Source::kBackend &&
            outcome.status == ResponseStatus::kOk) {
          ++ota_completed_;
          latencies_.push_back(sim_.now() - issued);
        } else {
          // Shed / backpressured / degraded: the next cadence tick retries.
          ++ota_deferred_;
        }
      });
}

void FleetDriver::hit_with_wave(Session& session) {
  if (session.state != SessionState::kNominal) return;
  session.state = SessionState::kUnsafe;
  session.unsafe_since = sim_.now();
  ++unsafe_now_;
  peak_unsafe_ = std::max(peak_unsafe_, unsafe_now_);
  issue_recovery(session);
}

void FleetDriver::issue_recovery(Session& session) {
  if (session.recovery_inflight) return;
  if (session.state == SessionState::kNominal) return;
  session.recovery_inflight = true;
  session.recovery_issued = sim_.now();
  SynthesisRequest request;
  request.criticality = Criticality::kRecovery;
  request.tasks = session.tasks;
  request.ecu_mips = session.ecu_mips;
  request.session = session.index;
  Session* s = &session;
  session.client->request(std::move(request),
                          [this, s](const BackendOutcome& outcome) {
                            s->recovery_inflight = false;
                            on_recovery_outcome(*s, outcome);
                          });
}

void FleetDriver::on_recovery_outcome(Session& session,
                                      const BackendOutcome& outcome) {
  if (session.state == SessionState::kNominal) return;
  if (outcome.source == BackendOutcome::Source::kBackend && outcome.ok) {
    // Fresh backend artifact: fully recovered.
    latencies_.push_back(sim_.now() - session.recovery_issued);
    mark_safe(session, /*recovered=*/true);
    return;
  }
  if (outcome.ok) {
    // Stale cache or local admission: safe, but keep pressing for a fresh
    // artifact on the recovery cadence.
    if (outcome.source == BackendOutcome::Source::kCache) ++fallback_cache_;
    if (outcome.source == BackendOutcome::Source::kLocalFallback) {
      ++fallback_local_;
    }
    mark_safe(session, /*recovered=*/false);
  } else {
    // Nothing worked: still unsafe. Keep retrying on the cadence — this
    // is the stranding the no-fallback ablation arm exhibits.
    ++fallback_none_;
  }
  Session* s = &session;
  sim_.schedule_in(config_.recovery_retry, [this, s] { issue_recovery(*s); });
}

void FleetDriver::mark_safe(Session& session, bool recovered) {
  if (session.state == SessionState::kUnsafe) {
    --unsafe_now_;
    max_unsafe_duration_ =
        std::max(max_unsafe_duration_, sim_.now() - session.unsafe_since);
  } else if (session.state == SessionState::kSafeDegraded && recovered) {
    --degraded_now_;
  }
  if (recovered) {
    if (session.state == SessionState::kUnsafe) {
      // Direct kUnsafe -> kNominal: nothing extra to undo.
    }
    session.state = SessionState::kNominal;
    ++recoveries_completed_;
    last_recovery_done_ = sim_.now();
  } else {
    if (session.state == SessionState::kUnsafe) ++degraded_now_;
    session.state = SessionState::kSafeDegraded;
  }
}

std::uint64_t FleetDriver::client_timeouts() const {
  std::uint64_t total = 0;
  for (const Session& session : sessions_) {
    total += session.client->timeouts();
  }
  return total;
}

std::uint64_t FleetDriver::client_breaker_opens() const {
  std::uint64_t total = 0;
  for (const Session& session : sessions_) {
    total += session.client->breaker_opens();
  }
  return total;
}

std::uint64_t FleetDriver::fingerprint() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv_mix(hash, static_cast<std::uint64_t>(unsafe_now_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(peak_unsafe_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(max_unsafe_duration_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(degraded_now_));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(last_recovery_done_));
  hash = fnv_mix(hash, ota_completed_);
  hash = fnv_mix(hash, ota_deferred_);
  hash = fnv_mix(hash, recoveries_completed_);
  hash = fnv_mix(hash, fallback_cache_);
  hash = fnv_mix(hash, fallback_local_);
  hash = fnv_mix(hash, fallback_none_);
  hash = fnv_mix(hash, static_cast<std::uint64_t>(latencies_.size()));
  for (const sim::Duration latency : latencies_) {
    hash = fnv_mix(hash, static_cast<std::uint64_t>(latency));
  }
  for (const Session& session : sessions_) {
    hash = fnv_mix(hash, session.client->fingerprint());
  }
  hash = fnv_mix(hash, service_.fingerprint());
  return hash;
}

}  // namespace dynaplat::backend
