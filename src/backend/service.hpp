// Fleet-facing schedule backend (paper Sec. 2.3 / 4.1).
//
// The paper's central bet is that schedule synthesis, DSE and update
// mastering run *off-vehicle*. dse::ScheduleServer is the synthesis engine;
// this wrapper turns it into a *service*: N concurrent vehicle sessions talk
// to one backend over an explicit request/response queue modeled entirely in
// simulated time, so a fleet stampede is a reproducible scenario rather
// than a host-load artifact.
//
// Robustness machinery (ISSUE 9):
//   * Admission control and a bounded request queue. When the queue
//     saturates, requests are shed by criticality: routine OTA
//     resynthesis (kOta) goes first, schedule resyncs (kResync) second,
//     recovery remaps (kRecovery) last. A recovery request arriving at a
//     full queue preempts the most recently accepted, not-yet-started
//     routine request instead of being turned away.
//   * Backpressure: above the watermark, routine requests are deferred
//     with an explicit retry-after hint scaled by queue depth, so the
//     fleet's retries spread out instead of hammering a saturated queue.
//   * A sharded cross-vehicle memo cache keyed by (topology-hash,
//     app-set): two vehicles with the same task topology and ECU speed
//     share one synthesis. This is the PR 1 DSE memo-cache shape applied
//     fleet-wide — the cache is what turns 10k sessions into ~dozens of
//     real synthesis runs.
//   * Seed-deterministic failure modes injectable by fault::FaultCampaign:
//     backend crash/restart (outstanding work lost), uplink partition
//     (requests and responses silently dropped — vehicles see timeouts),
//     and slow-responder latency spikes (service-time multiplier).
//
// Everything is driven by the owning scenario's sim::Simulator, consumes no
// fresh randomness, and is therefore bit-reproducible under
// sim::ScenarioSweep at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dse/admission.hpp"
#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::backend {

/// Request priority classes, most critical first. Shedding walks the enum
/// from the back (routine OTA work is dropped before recovery remaps).
enum class Criticality : std::uint8_t {
  kRecovery = 0,  ///< recovery-remap synthesis (vehicle lost an ECU)
  kResync = 1,    ///< TT-table resynchronization (app start/stop)
  kOta = 2,       ///< routine OTA update mastering / resynthesis
};

const char* to_string(Criticality criticality);

enum class ResponseStatus : std::uint8_t {
  kOk,           ///< artifact attached (feasible or not is in the artifact)
  kInfeasible,   ///< synthesis ran and proved the task set unschedulable
  kShed,         ///< load-shed: queue full, request dropped by criticality
  kRetryAfter,   ///< backpressure: come back after retry_after
  kUnreachable,  ///< control-plane only: backend crashed / uplink down
};

const char* to_string(ResponseStatus status);

struct SynthesisRequest {
  Criticality criticality = Criticality::kResync;
  std::vector<dse::AnalysisTask> tasks;
  std::uint64_t ecu_mips = 1'000;
  /// Vehicle session tag (metrics / tracing only, not part of the cache
  /// key — the whole point is cross-vehicle sharing).
  std::uint32_t session = 0;
  /// Precomputed topology_key(tasks, ecu_mips), 0 = compute on arrival. A
  /// fleet driver that already knows its topology-class key passes it so a
  /// million-session stampede doesn't re-hash the same task set per
  /// request. Ignored when ServiceConfig::key_fn is set.
  std::uint64_t key_hint = 0;
};

struct SynthesisResponse {
  ResponseStatus status = ResponseStatus::kUnreachable;
  dse::ScheduleServer::Artifact artifact;
  bool cache_hit = false;
  /// Backpressure hint: earliest useful re-submission delay (kShed /
  /// kRetryAfter).
  sim::Duration retry_after = 0;
};

struct ServiceConfig {
  /// Outstanding (accepted, not yet responded) request cap. Beyond it,
  /// requests are shed by criticality.
  std::size_t queue_capacity = 256;
  /// Above this depth routine (kOta) requests get kRetryAfter instead of
  /// queue slots.
  std::size_t backpressure_watermark = 192;
  /// Extra slots only recovery requests may use when the queue is full and
  /// no routine victim is preemptible.
  std::size_t recovery_reserve = 32;
  /// Parallel synthesis workers (queueing model: per-worker next-free
  /// time; a request is served by the earliest-free worker).
  std::size_t workers = 8;
  /// Backend compute speed, converts Artifact::synthesis_instructions into
  /// simulated service time.
  std::uint64_t backend_mips = 200'000;
  /// Service-time floor (cache hits, admission bookkeeping).
  sim::Duration min_service_time = 200 * sim::kMicrosecond;
  /// Round-trip vehicle <-> backend latency (half on submit, half on the
  /// response).
  sim::Duration uplink_rtt = 10 * sim::kMillisecond;
  /// Base backpressure hint; the actual hint scales with queue depth.
  sim::Duration retry_after_base = 50 * sim::kMillisecond;
  /// Cross-vehicle memo cache: shard count and total entry capacity
  /// (drop-oldest per shard beyond capacity / shards).
  std::size_t cache_shards = 16;
  std::size_t cache_capacity = 4'096;
  /// A backend crash also loses the memo cache (cold restart). Default
  /// keeps it: the cache models a persistent artifact store.
  bool crash_clears_cache = false;
  /// Coalesce same-topology requests into cohorts: a request whose
  /// topology key matches a cohort still waiting for service joins it —
  /// no extra admission weight, no extra worker dequeue — and every
  /// member shares the one response at delivery. Admission, queue depth
  /// and shedding are then accounted per cohort, not per request (a
  /// stampede of identical vehicles costs one queue slot).
  bool batching = false;
  /// Test seam: overrides the cache/batch key derivation so collision
  /// tests can force distinct topologies onto one key. Null uses
  /// topology_key().
  std::uint64_t (*key_fn)(const std::vector<dse::AnalysisTask>&,
                          std::uint64_t) = nullptr;
};

/// Stable hash of (task set, ECU speed): the cross-vehicle cache key. Two
/// vehicles whose app set compiles to the same analysis tasks on the same
/// ECU speed share one synthesis. Exposed so the vehicle-side client can
/// key its local artifact cache identically.
std::uint64_t topology_key(const std::vector<dse::AnalysisTask>& tasks,
                           std::uint64_t ecu_mips);

class FleetScheduleService {
 public:
  using Callback = std::function<void(const SynthesisResponse&)>;

  explicit FleetScheduleService(sim::Simulator& simulator,
                                ServiceConfig config = {});
  ~FleetScheduleService();
  FleetScheduleService(const FleetScheduleService&) = delete;
  FleetScheduleService& operator=(const FleetScheduleService&) = delete;

  /// Asynchronous request/response: the response is delivered through the
  /// simulator after queueing + service + uplink time. While the backend
  /// is crashed or the uplink partitioned the request is silently lost —
  /// the vehicle-side timeout is the only signal, as in the field.
  void submit(SynthesisRequest request, Callback done);

  /// Synchronous control-plane query used by in-vehicle callers that
  /// cannot park their control flow on a sim event (node resync, recovery
  /// planning). Runs the same admission / shedding / cache logic but
  /// charges no queueing latency; returns kUnreachable when the backend
  /// is down so the caller's circuit breaker can react.
  SynthesisResponse query(const SynthesisRequest& request);

  // --- Failure injection (fault::FaultCampaign backend events) --------------
  /// Backend process crash: every outstanding request is lost (clients
  /// time out), workers reset. Idempotent.
  void crash();
  /// Restart after a crash. The memo cache survives unless
  /// crash_clears_cache.
  void restart();
  bool crashed() const { return crashed_; }
  /// Uplink partition: submissions are lost and in-flight responses are
  /// dropped at delivery time.
  void set_partitioned(bool partitioned);
  bool partitioned() const { return partitioned_; }
  /// Slow-responder spike: multiplies the service time of requests
  /// accepted while active (1.0 = nominal).
  void set_slow_factor(double factor) {
    slow_factor_ = factor < 1.0 ? 1.0 : factor;
  }
  double slow_factor() const { return slow_factor_; }

  /// Campaign target name (FaultCampaign events address it by this).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Observability --------------------------------------------------------
  void set_metrics(obs::MetricsRegistry* metrics, const std::string& prefix);
  void set_coverage(obs::CoverageMap* coverage);

  // --- Introspection (deterministic reads; test + invariant surface) --------
  /// Admitted work not yet responded. Rejection notices in flight on the
  /// downlink are excluded: they hold no worker reservation, and counting
  /// them toward admission depth would let an overload sustain itself on
  /// its own reject traffic.
  std::size_t queue_depth() const { return queued_; }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  std::uint64_t requests_total() const { return requests_total_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t shed_total() const { return shed_total_; }
  std::uint64_t shed(Criticality criticality) const {
    return shed_[static_cast<std::size_t>(criticality)];
  }
  std::uint64_t backpressured() const { return backpressured_; }
  std::uint64_t preempted() const { return preempted_; }
  std::uint64_t lost_unreachable() const { return lost_unreachable_; }
  std::uint64_t responses_dropped() const { return responses_dropped_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  std::size_t cache_entries() const;
  std::uint64_t synthesis_runs() const { return synthesis_runs_; }
  std::uint64_t crashes() const { return crashes_; }
  /// Worker dequeues: service starts charged against the worker pool. In
  /// serial mode every admitted request is its own dequeue; with batching
  /// a whole cohort rides one. The batched-vs-serial efficiency gate in
  /// bench_fleet compares exactly this counter at equal served counts.
  std::uint64_t dequeues() const { return dequeues_; }
  /// Cohorts admitted in batched mode (== dequeues while batching).
  std::uint64_t batches() const { return batches_; }
  /// Requests that joined an existing cohort instead of taking a slot.
  std::uint64_t coalesced() const { return coalesced_; }
  /// Cohort sizes at close, log2-bucketed: bucket b counts cohorts of
  /// size in (2^(b-1), 2^b] (bucket 0 = singletons).
  const std::array<std::uint64_t, 16>& batch_size_histogram() const {
    return batch_hist_;
  }
  /// topology_key collisions caught by the secondary signature check: the
  /// cached artifact belonged to a *different* task set that hashed to the
  /// same key, so the hit was refused and synthesis re-ran.
  std::uint64_t cache_collisions() const { return cache_collisions_; }
  /// Memo-cache entries dropped by per-shard capacity (drop-oldest).
  std::uint64_t cache_evictions() const { return cache_evictions_; }

  /// FNV-1a over the service counters — folded into fleet fingerprints for
  /// the sweep determinism gates.
  std::uint64_t fingerprint() const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct Outstanding {
    Callback done;
    /// Cohort members coalesced onto this entry after the leader; they
    /// share the leader's slot, reservation and response.
    std::vector<Callback> extra;
    /// Most critical member of the cohort (joiners upgrade it, so a
    /// cohort carrying a recovery request is never a preemption victim).
    Criticality criticality = Criticality::kOta;
    std::uint64_t key = 0;
    std::size_t worker = 0;
    sim::Time start = 0;  ///< service start (preemptible while > now)
    sim::Time end = 0;
    sim::EventId completion;
    std::uint64_t last_on_worker_token = 0;
    /// true: holds a queue slot + worker reservation; false: a shed /
    /// backpressure verdict riding the downlink (no admission weight).
    bool admitted = false;
    /// true while registered in open_cohorts_ (batched, joinable).
    bool open = false;
  };
  struct CacheEntry {
    dse::ScheduleServer::Artifact artifact;
    /// Secondary hash of the same topology fields from an independent
    /// basis; a key match with a signature mismatch is a detected
    /// collision, served as a miss instead of a wrong artifact.
    std::uint64_t sig = 0;
  };
  struct CacheShard {
    std::map<std::uint64_t, CacheEntry> entries;
    std::deque<std::uint64_t> order;  ///< insertion order, drop-oldest
  };

  /// Admission decision shared by submit() and query(). Returns true when
  /// the request may take a queue slot; fills `reject` otherwise.
  bool admit(Criticality criticality, SynthesisResponse* reject);
  /// Sheds the most recently accepted, not-yet-started routine request
  /// that is still last on its worker (its reservation can be reclaimed
  /// exactly). Returns true when a slot was freed.
  bool preempt_routine();
  /// Cache/batch key for a request (key_fn seam or topology_key).
  std::uint64_t request_key(const SynthesisRequest& request) const;
  /// Cache lookup + synthesis on miss. Returns the artifact and whether it
  /// was a hit; accounts cache metrics and collision/eviction counters.
  dse::ScheduleServer::Artifact resolve(std::uint64_t key,
                                        const SynthesisRequest& request,
                                        bool* cache_hit);
  sim::Duration service_time(const dse::ScheduleServer::Artifact& artifact,
                             bool cache_hit) const;
  sim::Duration retry_hint() const;
  /// Delivers `response` to every cohort member and closes the entry.
  /// Returns the member count (0 when the id is stale).
  std::size_t respond(std::uint64_t id, SynthesisResponse response);
  /// Drops a closing entry without delivering (partition, crash paths).
  void close_entry(std::uint64_t id);
  void record_batch(std::size_t size);
  void update_depth_gauge();

  sim::Simulator& sim_;
  ServiceConfig config_;
  std::string name_ = "backend";
  dse::ScheduleServer server_;
  std::vector<CacheShard> cache_;
  std::vector<sim::Time> worker_free_;
  /// Monotonic token per worker identifying the *last* reservation made on
  /// it — only that reservation can be reclaimed exactly on preemption.
  std::vector<std::uint64_t> worker_last_token_;
  std::uint64_t next_token_ = 1;
  std::map<std::uint64_t, Outstanding> outstanding_;
  /// Joinable cohort per topology key (batched mode): key -> outstanding
  /// id of the cohort leader entry.
  std::map<std::uint64_t, std::uint64_t> open_cohorts_;
  /// Admitted entries in outstanding_ (the admission-control depth; a
  /// whole cohort weighs one).
  std::size_t queued_ = 0;
  std::uint64_t next_id_ = 1;

  bool crashed_ = false;
  bool partitioned_ = false;
  double slow_factor_ = 1.0;

  std::size_t max_queue_depth_ = 0;
  std::uint64_t requests_total_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_total_ = 0;
  std::uint64_t shed_[3] = {0, 0, 0};
  std::uint64_t backpressured_ = 0;
  std::uint64_t preempted_ = 0;
  std::uint64_t lost_unreachable_ = 0;
  std::uint64_t responses_dropped_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t synthesis_runs_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t dequeues_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t cache_collisions_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::array<std::uint64_t, 16> batch_hist_{};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* backpressure_counter_ = nullptr;
  obs::Counter* cache_hit_counter_ = nullptr;
  obs::Counter* cache_miss_counter_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
  std::uint32_t cov_shed_ = 0;
  std::uint32_t cov_backpressure_ = 0;
  std::uint32_t cov_preempt_ = 0;
  std::uint32_t cov_crash_ = 0;
  std::uint32_t cov_partition_ = 0;
};

}  // namespace dynaplat::backend
