#include "backend/client.hpp"

#include <algorithm>

namespace dynaplat::backend {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

const char* to_string(BackendOutcome::Source source) {
  switch (source) {
    case BackendOutcome::Source::kBackend: return "backend";
    case BackendOutcome::Source::kCache: return "cache";
    case BackendOutcome::Source::kLocalFallback: return "local";
    case BackendOutcome::Source::kNone: return "none";
  }
  return "?";
}

BackendClient::BackendClient(sim::Simulator& simulator, ClientConfig config)
    : sim_(simulator),
      config_(config),
      rng_(sim::Random::stream(config.jitter_seed, config.jitter_stream)) {
  config_.max_attempts = std::max(config_.max_attempts, 1);
  config_.breaker_threshold = std::max(config_.breaker_threshold, 1);
}

BackendClient::~BackendClient() {
  for (auto& [id, pending] : pending_) {
    sim_.cancel(pending.timeout);
    sim_.cancel(pending.resubmit);
  }
}

void BackendClient::connect(FleetScheduleService* service) {
  service_ = service;
}

void BackendClient::set_loopback(dse::ScheduleServer* server) {
  loopback_ = server;
}

void BackendClient::set_metrics(obs::MetricsRegistry* metrics,
                                const std::string& prefix) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    state_gauge_ = nullptr;
    timeout_counter_ = fallback_counter_ = nullptr;
    return;
  }
  state_gauge_ = &metrics_->gauge(prefix + "breaker_state");
  timeout_counter_ = &metrics_->counter(prefix + "timeouts");
  fallback_counter_ = &metrics_->counter(prefix + "fallbacks");
}

void BackendClient::set_coverage(obs::CoverageMap* coverage) {
  coverage_ = coverage;
  if (coverage_ == nullptr) return;
  cov_open_ = coverage_->key("client.breaker.open");
  cov_half_open_ = coverage_->key("client.breaker.half_open");
  cov_closed_ = coverage_->key("client.breaker.closed_after_open");
  cov_stale_ = coverage_->key("client.fallback.stale_cache");
  cov_local_ = coverage_->key("client.fallback.local_admission");
  cov_exhausted_ = coverage_->key("client.fallback.exhausted");
}

// --- Breaker ----------------------------------------------------------------

bool BackendClient::allow_request() {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (sim_.now() >= open_until_) {
        to_state(BreakerState::kHalfOpen);
        return true;  // the probe
      }
      ++breaker_fast_fails_;
      return false;
    case BreakerState::kHalfOpen:
      return true;
  }
  return true;
}

void BackendClient::record_success() {
  consecutive_failures_ = 0;
  if (state_ != BreakerState::kClosed) to_state(BreakerState::kClosed);
}

void BackendClient::record_failure() {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to OPEN for a fresh hold window.
    to_state(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.breaker_threshold) {
    to_state(BreakerState::kOpen);
  }
}

void BackendClient::to_state(BreakerState next) {
  const BreakerState prev = state_;
  state_ = next;
  if (next == BreakerState::kOpen) {
    open_until_ = sim_.now() + config_.breaker_open_for;
    ++breaker_opens_;
    if (coverage_ != nullptr) coverage_->hit(cov_open_);
  } else if (next == BreakerState::kHalfOpen) {
    if (coverage_ != nullptr) coverage_->hit(cov_half_open_);
  } else if (prev != BreakerState::kClosed) {
    if (coverage_ != nullptr) coverage_->hit(cov_closed_);
    // Back on the backend: refresh every artifact that was served stale
    // while disconnected *before* telling listeners the uplink is good —
    // degradation must only lift once the vehicle runs fresh artifacts.
    revalidate_stale();
  }
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(static_cast<int>(next)));
  }
  for (const Listener& listener : listeners_) listener(prev, next);
}

void BackendClient::revalidate_stale() {
  if (service_ == nullptr) return;
  for (auto& [key, entry] : cache_) {
    if (!entry.stale_used) continue;
    SynthesisRequest request;
    request.criticality = Criticality::kResync;
    request.tasks = entry.tasks;
    request.ecu_mips = entry.ecu_mips;
    const SynthesisResponse response = service_->query(request);
    if (response.status == ResponseStatus::kOk ||
        response.status == ResponseStatus::kInfeasible) {
      entry.artifact = response.artifact;
      entry.stale_used = false;
      ++revalidated_;
    }
    // Shed / unreachable: stay marked stale, the next close retries.
  }
}

// --- Artifact cache ---------------------------------------------------------

void BackendClient::cache_store(const std::vector<dse::AnalysisTask>& tasks,
                                std::uint64_t ecu_mips,
                                const dse::ScheduleServer::Artifact& artifact) {
  if (config_.artifact_cache_capacity == 0) return;
  const std::uint64_t key = topology_key(tasks, ecu_mips);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second.artifact = artifact;
    it->second.stale_used = false;
    return;
  }
  while (cache_.size() >= config_.artifact_cache_capacity) {
    auto oldest = cache_.begin();
    for (auto scan = cache_.begin(); scan != cache_.end(); ++scan) {
      if (scan->second.order < oldest->second.order) oldest = scan;
    }
    cache_.erase(oldest);
  }
  CacheEntry entry;
  entry.artifact = artifact;
  entry.tasks = tasks;
  entry.ecu_mips = ecu_mips;
  entry.order = next_order_++;
  cache_.emplace(key, std::move(entry));
}

BackendOutcome BackendClient::fallback(
    const std::vector<dse::AnalysisTask>& tasks, std::uint64_t ecu_mips) {
  BackendOutcome outcome;
  const std::uint64_t key = topology_key(tasks, ecu_mips);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.artifact.feasible) {
    it->second.stale_used = true;
    ++stale_served_;
    if (coverage_ != nullptr) coverage_->hit(cov_stale_);
    if (fallback_counter_ != nullptr) fallback_counter_->add();
    outcome.source = BackendOutcome::Source::kCache;
    outcome.ok = true;
    outcome.stale = true;
    outcome.status = ResponseStatus::kOk;
    outcome.artifact = it->second.artifact;
    return outcome;
  }
  if (config_.local_fallback) {
    const dse::AdmissionDecision decision = admission_.admit({}, tasks);
    if (decision.admitted) {
      ++local_admissions_;
      if (coverage_ != nullptr) coverage_->hit(cov_local_);
      if (fallback_counter_ != nullptr) fallback_counter_->add();
      outcome.source = BackendOutcome::Source::kLocalFallback;
      outcome.ok = true;
      outcome.locally_admitted = true;
      outcome.status = ResponseStatus::kOk;
      if (decision.table.has_value()) {
        outcome.artifact.feasible = true;
        outcome.artifact.table = *decision.table;
      }
      return outcome;
    }
  }
  ++exhausted_;
  if (coverage_ != nullptr) coverage_->hit(cov_exhausted_);
  if (fallback_counter_ != nullptr) fallback_counter_->add();
  outcome.source = BackendOutcome::Source::kNone;
  outcome.status = ResponseStatus::kUnreachable;
  return outcome;
}

BackendOutcome BackendClient::from_response(const SynthesisRequest& request,
                                            const SynthesisResponse& response) {
  BackendOutcome outcome;
  outcome.source = BackendOutcome::Source::kBackend;
  outcome.status = response.status;
  outcome.cache_hit = response.cache_hit;
  outcome.artifact = response.artifact;
  outcome.ok = response.status == ResponseStatus::kOk &&
               response.artifact.feasible;
  if (outcome.ok) {
    cache_store(request.tasks, request.ecu_mips, response.artifact);
  }
  return outcome;
}

// --- Synchronous facade -----------------------------------------------------

BackendOutcome BackendClient::synthesize(
    const std::vector<dse::AnalysisTask>& tasks, std::uint64_t ecu_mips,
    Criticality criticality) {
  if (service_ == nullptr) {
    if (loopback_ != nullptr) {
      ++attempts_;
      BackendOutcome outcome;
      outcome.source = BackendOutcome::Source::kBackend;
      outcome.artifact = loopback_->synthesize(tasks, ecu_mips);
      outcome.ok = outcome.artifact.feasible;
      outcome.status = outcome.ok ? ResponseStatus::kOk
                                  : ResponseStatus::kInfeasible;
      if (outcome.ok) cache_store(tasks, ecu_mips, outcome.artifact);
      return outcome;
    }
    return fallback(tasks, ecu_mips);
  }
  if (!allow_request()) return fallback(tasks, ecu_mips);
  ++attempts_;
  SynthesisRequest request;
  request.criticality = criticality;
  request.tasks = tasks;
  request.ecu_mips = ecu_mips;
  const SynthesisResponse response = service_->query(request);
  switch (response.status) {
    case ResponseStatus::kOk:
    case ResponseStatus::kInfeasible:
      record_success();
      return from_response(request, response);
    case ResponseStatus::kShed:
    case ResponseStatus::kRetryAfter:
      // The backend is alive, just refusing work: not a breaker failure.
      // The caller's own retry cadence (recovery queue, resync timer)
      // spaces the next attempt; meanwhile run the fallback ladder.
      record_success();
      return fallback(tasks, ecu_mips);
    case ResponseStatus::kUnreachable:
      record_failure();
      return fallback(tasks, ecu_mips);
  }
  return fallback(tasks, ecu_mips);
}

// --- Async path -------------------------------------------------------------

void BackendClient::request(SynthesisRequest request, Callback done) {
  const std::uint64_t id = next_id_++;
  Pending pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending_.emplace(id, std::move(pending));
  start_attempt(id);
}

sim::Duration BackendClient::next_backoff(Pending& pending) {
  if (pending.backoff == 0) {
    pending.backoff = config_.backoff_base;
  } else {
    const double scaled =
        static_cast<double>(pending.backoff) * config_.backoff_factor;
    pending.backoff = std::min(
        static_cast<sim::Duration>(scaled), config_.max_backoff);
  }
  const double jitter = config_.jitter;
  if (jitter <= 0.0) return pending.backoff;
  const double factor = 1.0 + jitter * (2.0 * rng_.uniform01() - 1.0);
  const auto jittered =
      static_cast<sim::Duration>(static_cast<double>(pending.backoff) * factor);
  return std::max<sim::Duration>(jittered, sim::kMicrosecond);
}

void BackendClient::start_attempt(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.resubmit = {};
  if (service_ == nullptr || !allow_request()) {
    // Fast-fail: breaker OPEN (or never connected). No wire traffic.
    finish(id, fallback(pending.request.tasks, pending.request.ecu_mips));
    return;
  }
  ++attempts_;
  ++pending.attempt;
  const std::uint64_t token = ++pending.attempt_token;
  service_->submit(pending.request,
                   [this, id, token](const SynthesisResponse& response) {
                     on_response(id, token, response);
                   });
  pending.timeout = sim_.schedule_in(config_.request_timeout,
                                     [this, id] { on_timeout(id); });
}

void BackendClient::on_response(std::uint64_t id, std::uint64_t token,
                                const SynthesisResponse& response) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.attempt_token != token) return;  // a timed-out attempt's ghost
  sim_.cancel(pending.timeout);
  pending.timeout = {};
  switch (response.status) {
    case ResponseStatus::kOk:
    case ResponseStatus::kInfeasible:
      record_success();
      finish(id, from_response(pending.request, response));
      return;
    case ResponseStatus::kShed:
    case ResponseStatus::kRetryAfter:
      record_success();  // alive, just saturated
      retry_or_fail(id, response.retry_after);
      return;
    case ResponseStatus::kUnreachable:
      record_failure();
      retry_or_fail(id, 0);
      return;
  }
}

void BackendClient::on_timeout(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  ++timeouts_;
  if (timeout_counter_ != nullptr) timeout_counter_->add();
  ++pending.attempt_token;  // invalidate the in-flight attempt's response
  pending.timeout = {};
  record_failure();
  retry_or_fail(id, 0);
}

void BackendClient::retry_or_fail(std::uint64_t id,
                                  sim::Duration floor_delay) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.attempt >= config_.max_attempts ||
      state_ == BreakerState::kOpen) {
    // Exhausted (or the breaker just slammed shut): degrade now rather
    // than stack more timeouts — the caller's cadence retries later.
    finish(id, fallback(pending.request.tasks, pending.request.ecu_mips));
    return;
  }
  const sim::Duration delay = std::max(next_backoff(pending), floor_delay);
  pending.resubmit = sim_.schedule_in(delay, [this, id] { start_attempt(id); });
}

void BackendClient::finish(std::uint64_t id, const BackendOutcome& outcome) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Callback done = std::move(it->second.done);
  sim_.cancel(it->second.timeout);
  sim_.cancel(it->second.resubmit);
  pending_.erase(it);
  if (done) done(outcome);
}

std::uint64_t BackendClient::fingerprint() const {
  std::uint64_t hash = kFnvOffset;
  const std::uint64_t fields[] = {
      attempts_,      timeouts_,        breaker_opens_,
      breaker_fast_fails_, stale_served_, local_admissions_,
      revalidated_,   exhausted_,       static_cast<std::uint64_t>(state_),
      static_cast<std::uint64_t>(consecutive_failures_),
      static_cast<std::uint64_t>(cache_.size()),
      static_cast<std::uint64_t>(pending_.size())};
  for (const std::uint64_t field : fields) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&field);
    for (std::size_t i = 0; i < sizeof(field); ++i) {
      hash ^= bytes[i];
      hash *= kFnvPrime;
    }
  }
  return hash;
}

}  // namespace dynaplat::backend
