// Vehicle-side backend client: the resilience half of the fleet backend.
//
// The paper puts synthesis off-vehicle (Sec. 2.3/4.1), which makes the
// backend a single point of failure for the whole fleet. BackendClient is
// what lets a vehicle *live without it*: every remote call gets a timeout,
// capped exponential backoff with seeded jitter (no fleet-wide lockstep
// retry storms), and a circuit breaker (CLOSED -> OPEN -> HALF_OPEN) so a
// dead backend costs one probe per open window instead of a timeout per
// call. On backend loss the client degrades gracefully instead of
// stranding its caller:
//
//   1. vehicle-local artifact cache — the last backend-synthesized table
//      for this topology, served stale;
//   2. ECU-local admission (dse::AdmissionController fast path) — cheap
//      utilization + RTA, good enough to *keep running safely* even though
//      it ships no fresh TT table;
//   3. explicit kNone — the caller enters DEGRADED and retries later.
//
// On reconnect (breaker closing) every stale-served cache entry is
// re-validated against the backend *before* state listeners fire, so
// degradation is only lifted once the vehicle is back on fresh artifacts.
//
// Determinism: jitter comes from sim::Random::stream(jitter_seed,
// jitter_stream) — give every client a distinct stream id (e.g. the
// session index) or healed fleets retry in lockstep again.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "backend/service.hpp"
#include "sim/random.hpp"

namespace dynaplat::backend {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

struct ClientConfig {
  /// Async request timeout (per attempt).
  sim::Duration request_timeout = 100 * sim::kMillisecond;
  /// Total attempts per request() (first try + retries).
  int max_attempts = 4;
  /// Exponential backoff between attempts: base, factor, cap.
  sim::Duration backoff_base = 50 * sim::kMillisecond;
  double backoff_factor = 2.0;
  sim::Duration max_backoff = 800 * sim::kMillisecond;
  /// Symmetric jitter fraction applied to every backoff delay (0.2 = +/-20%).
  double jitter = 0.2;
  std::uint64_t jitter_seed = 0x0DDB10C5ull;
  std::uint64_t jitter_stream = 0;
  /// Consecutive comms failures (timeout / unreachable) that trip the
  /// breaker CLOSED -> OPEN.
  int breaker_threshold = 3;
  /// OPEN hold time before a HALF_OPEN probe is allowed.
  sim::Duration breaker_open_for = 500 * sim::kMillisecond;
  /// Allow the ECU-local admission fast path as the last fallback rung.
  bool local_fallback = true;
  /// Vehicle-local artifact cache entries (drop-oldest).
  std::size_t artifact_cache_capacity = 64;
};

struct BackendOutcome {
  enum class Source : std::uint8_t {
    kBackend,        ///< fresh artifact from the backend
    kCache,          ///< vehicle-local cached artifact (stale while down)
    kLocalFallback,  ///< ECU-local admission fast path, no table
    kNone,           ///< nothing worked: caller must degrade and retry
  };
  Source source = Source::kNone;
  /// The caller can proceed safely (feasible artifact or local admission).
  bool ok = false;
  /// Served from the vehicle cache while the backend was unreachable.
  bool stale = false;
  /// ok via dse::AdmissionController, no synthesized table attached.
  bool locally_admitted = false;
  /// Backend-side memo-cache hit (reporting only).
  bool cache_hit = false;
  ResponseStatus status = ResponseStatus::kUnreachable;
  dse::ScheduleServer::Artifact artifact;
};

const char* to_string(BackendOutcome::Source source);

class BackendClient {
 public:
  using Callback = std::function<void(const BackendOutcome&)>;
  /// (previous, next) breaker transition, fired after any re-validation.
  using Listener = std::function<void(BreakerState, BreakerState)>;

  explicit BackendClient(sim::Simulator& simulator, ClientConfig config = {});
  ~BackendClient();
  BackendClient(const BackendClient&) = delete;
  BackendClient& operator=(const BackendClient&) = delete;

  /// Points the client at a fleet service. nullptr disconnects (every
  /// remote call fails fast — fallback rungs still apply).
  void connect(FleetScheduleService* service);
  /// Loopback mode: synthesize directly on an in-process engine with no
  /// failure surface. This is the compatibility default inside
  /// platform::DynamicPlatform, which owns its own dse::ScheduleServer.
  void set_loopback(dse::ScheduleServer* server);
  bool connected() const { return service_ != nullptr; }

  /// Synchronous facade for in-vehicle control flow (node resync, recovery
  /// planning): one control-plane query per call — shed/backpressure
  /// verdicts are not retried inline (the caller's own retry cadence
  /// handles that), comms failures feed the breaker, and the fallback
  /// ladder runs before returning.
  BackendOutcome synthesize(const std::vector<dse::AnalysisTask>& tasks,
                            std::uint64_t ecu_mips,
                            Criticality criticality = Criticality::kResync);

  /// Full async path with sim-time timeout, capped jittered backoff and
  /// breaker accounting. The callback fires exactly once with the final
  /// outcome (backend, cache, local fallback, or kNone).
  void request(SynthesisRequest request, Callback done);

  BreakerState breaker() const { return state_; }
  void add_listener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  void set_metrics(obs::MetricsRegistry* metrics, const std::string& prefix);
  void set_coverage(obs::CoverageMap* coverage);

  // --- Introspection --------------------------------------------------------
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_fast_fails() const { return breaker_fast_fails_; }
  std::uint64_t stale_served() const { return stale_served_; }
  std::uint64_t local_admissions() const { return local_admissions_; }
  std::uint64_t revalidated() const { return revalidated_; }
  std::uint64_t exhausted() const { return exhausted_; }
  std::size_t inflight() const { return pending_.size(); }
  std::size_t cached_artifacts() const { return cache_.size(); }

  std::uint64_t fingerprint() const;

  const ClientConfig& config() const { return config_; }

 private:
  struct CacheEntry {
    dse::ScheduleServer::Artifact artifact;
    std::vector<dse::AnalysisTask> tasks;  ///< kept for re-validation
    std::uint64_t ecu_mips = 0;
    bool stale_used = false;
    std::uint64_t order = 0;  ///< insertion order, drop-oldest
  };
  struct Pending {
    SynthesisRequest request;
    Callback done;
    int attempt = 0;
    sim::Duration backoff = 0;
    /// Bumped per attempt: a response from a timed-out attempt is ignored.
    std::uint64_t attempt_token = 0;
    sim::EventId timeout;
    sim::EventId resubmit;
  };

  // Breaker.
  bool allow_request();
  void record_success();
  void record_failure();
  void to_state(BreakerState next);
  void revalidate_stale();

  // Async plumbing.
  void start_attempt(std::uint64_t id);
  void on_response(std::uint64_t id, std::uint64_t token,
                   const SynthesisResponse& response);
  void on_timeout(std::uint64_t id);
  void retry_or_fail(std::uint64_t id, sim::Duration floor_delay);
  void finish(std::uint64_t id, const BackendOutcome& outcome);
  sim::Duration next_backoff(Pending& pending);

  BackendOutcome from_response(const SynthesisRequest& request,
                               const SynthesisResponse& response);
  BackendOutcome fallback(const std::vector<dse::AnalysisTask>& tasks,
                          std::uint64_t ecu_mips);
  void cache_store(const std::vector<dse::AnalysisTask>& tasks,
                   std::uint64_t ecu_mips,
                   const dse::ScheduleServer::Artifact& artifact);

  sim::Simulator& sim_;
  ClientConfig config_;
  FleetScheduleService* service_ = nullptr;
  dse::ScheduleServer* loopback_ = nullptr;
  dse::AdmissionController admission_;
  sim::Random rng_;

  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  sim::Time open_until_ = 0;

  std::map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t next_order_ = 1;

  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;

  std::vector<Listener> listeners_;

  std::uint64_t attempts_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
  std::uint64_t stale_served_ = 0;
  std::uint64_t local_admissions_ = 0;
  std::uint64_t revalidated_ = 0;
  std::uint64_t exhausted_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* state_gauge_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
  obs::Counter* fallback_counter_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
  std::uint32_t cov_open_ = 0;
  std::uint32_t cov_half_open_ = 0;
  std::uint32_t cov_closed_ = 0;
  std::uint32_t cov_stale_ = 0;
  std::uint32_t cov_local_ = 0;
  std::uint32_t cov_exhausted_ = 0;
};

}  // namespace dynaplat::backend
