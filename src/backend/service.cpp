#include "backend/service.hpp"

#include <algorithm>

namespace dynaplat::backend {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// Secondary topology hash from an independent basis. A primary-key match
/// whose signature disagrees is a detected collision: the cached artifact
/// belongs to a different task set.
std::uint64_t topology_sig(const std::vector<dse::AnalysisTask>& tasks,
                           std::uint64_t ecu_mips) {
  std::uint64_t hash = kFnvOffset ^ 0x5DEECE66Dull;
  const std::uint64_t count = tasks.size();
  hash = fnv1a(hash, &count, sizeof(count));
  hash = fnv1a(hash, &ecu_mips, sizeof(ecu_mips));
  for (const dse::AnalysisTask& task : tasks) {
    hash = fnv1a(hash, &task.wcet, sizeof(task.wcet));
    hash = fnv1a(hash, &task.period, sizeof(task.period));
    hash = fnv1a(hash, task.name.data(), task.name.size());
    hash = fnv1a(hash, &task.deadline, sizeof(task.deadline));
    hash = fnv1a(hash, &task.priority, sizeof(task.priority));
    const std::uint8_t det = task.deterministic ? 1 : 0;
    hash = fnv1a(hash, &det, sizeof(det));
  }
  return hash;
}

}  // namespace

const char* to_string(Criticality criticality) {
  switch (criticality) {
    case Criticality::kRecovery: return "recovery";
    case Criticality::kResync: return "resync";
    case Criticality::kOta: return "ota";
  }
  return "?";
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kInfeasible: return "infeasible";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kRetryAfter: return "retry_after";
    case ResponseStatus::kUnreachable: return "unreachable";
  }
  return "?";
}

std::uint64_t topology_key(const std::vector<dse::AnalysisTask>& tasks,
                           std::uint64_t ecu_mips) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, &ecu_mips, sizeof(ecu_mips));
  for (const dse::AnalysisTask& task : tasks) {
    hash = fnv1a(hash, task.name.data(), task.name.size());
    hash = fnv1a(hash, &task.period, sizeof(task.period));
    hash = fnv1a(hash, &task.deadline, sizeof(task.deadline));
    hash = fnv1a(hash, &task.wcet, sizeof(task.wcet));
    hash = fnv1a(hash, &task.priority, sizeof(task.priority));
    const std::uint8_t det = task.deterministic ? 1 : 0;
    hash = fnv1a(hash, &det, sizeof(det));
  }
  return hash;
}

FleetScheduleService::FleetScheduleService(sim::Simulator& simulator,
                                           ServiceConfig config)
    : sim_(simulator), config_(config) {
  config_.workers = std::max<std::size_t>(config_.workers, 1);
  config_.cache_shards = std::max<std::size_t>(config_.cache_shards, 1);
  cache_.resize(config_.cache_shards);
  worker_free_.assign(config_.workers, 0);
  worker_last_token_.assign(config_.workers, 0);
}

FleetScheduleService::~FleetScheduleService() {
  for (auto& [id, out] : outstanding_) sim_.cancel(out.completion);
}

void FleetScheduleService::set_metrics(obs::MetricsRegistry* metrics,
                                       const std::string& prefix) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    depth_gauge_ = nullptr;
    shed_counter_ = backpressure_counter_ = nullptr;
    cache_hit_counter_ = cache_miss_counter_ = nullptr;
    return;
  }
  depth_gauge_ = &metrics_->gauge(prefix + "queue_depth");
  shed_counter_ = &metrics_->counter(prefix + "shed");
  backpressure_counter_ = &metrics_->counter(prefix + "backpressure");
  cache_hit_counter_ = &metrics_->counter(prefix + "cache.hits");
  cache_miss_counter_ = &metrics_->counter(prefix + "cache.misses");
}

void FleetScheduleService::set_coverage(obs::CoverageMap* coverage) {
  coverage_ = coverage;
  if (coverage_ == nullptr) return;
  cov_shed_ = coverage_->key("backend.shed");
  cov_backpressure_ = coverage_->key("backend.backpressure");
  cov_preempt_ = coverage_->key("backend.preempt_routine");
  cov_crash_ = coverage_->key("backend.crash");
  cov_partition_ = coverage_->key("backend.uplink_partition");
}

void FleetScheduleService::update_depth_gauge() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(queued_));
  }
}

sim::Duration FleetScheduleService::retry_hint() const {
  // Scale the hint with saturation: the deeper the queue, the longer the
  // fleet should hold off. Keeps retries from re-stampeding a backend that
  // is already digging out.
  const std::size_t depth = queued_;
  const std::size_t over =
      depth > config_.backpressure_watermark
          ? depth - config_.backpressure_watermark
          : 0;
  return config_.retry_after_base +
         static_cast<sim::Duration>(over) * (config_.retry_after_base / 8);
}

bool FleetScheduleService::preempt_routine() {
  // Victim: the most recently accepted routine (non-recovery) request that
  // has not started service AND is still the last reservation on its
  // worker — only then can its reserved service window be reclaimed
  // exactly (later arrivals would have stacked behind it otherwise).
  const sim::Time now = sim_.now();
  std::uint64_t victim_id = 0;
  const Outstanding* victim = nullptr;
  for (const auto& [id, out] : outstanding_) {
    if (out.criticality == Criticality::kRecovery) continue;
    if (out.start <= now) continue;  // already in service
    if (worker_last_token_[out.worker] != out.last_on_worker_token) continue;
    if (victim == nullptr || id > victim_id) {
      victim_id = id;
      victim = &out;
    }
  }
  if (victim == nullptr) return false;
  ++preempted_;
  ++shed_total_;
  ++shed_[static_cast<std::size_t>(victim->criticality)];
  if (shed_counter_ != nullptr) shed_counter_->add();
  if (coverage_ != nullptr) coverage_->hit(cov_preempt_);
  worker_free_[victim->worker] = victim->start;
  sim_.cancel(outstanding_[victim_id].completion);
  SynthesisResponse shed;
  shed.status = ResponseStatus::kShed;
  shed.retry_after = retry_hint();
  respond(victim_id, std::move(shed));
  return true;
}

bool FleetScheduleService::admit(Criticality criticality,
                                 SynthesisResponse* reject) {
  // Depth counts admitted work only. Rejection verdicts riding the
  // downlink must carry no admission weight, or a saturated backend keeps
  // rejecting on the strength of its own reject traffic long after the
  // real queue has drained (metastable congestion).
  const std::size_t depth = queued_;
  if (depth >= config_.queue_capacity) {
    if (criticality == Criticality::kRecovery) {
      if (preempt_routine()) return true;
      if (depth < config_.queue_capacity + config_.recovery_reserve) {
        return true;
      }
    }
    ++shed_total_;
    ++shed_[static_cast<std::size_t>(criticality)];
    if (shed_counter_ != nullptr) shed_counter_->add();
    if (coverage_ != nullptr) coverage_->hit(cov_shed_);
    reject->status = ResponseStatus::kShed;
    reject->retry_after = retry_hint();
    return false;
  }
  if (depth >= config_.backpressure_watermark &&
      criticality == Criticality::kOta) {
    ++backpressured_;
    if (backpressure_counter_ != nullptr) backpressure_counter_->add();
    if (coverage_ != nullptr) coverage_->hit(cov_backpressure_);
    reject->status = ResponseStatus::kRetryAfter;
    reject->retry_after = retry_hint();
    return false;
  }
  return true;
}

std::uint64_t FleetScheduleService::request_key(
    const SynthesisRequest& request) const {
  if (config_.key_fn != nullptr) {
    return config_.key_fn(request.tasks, request.ecu_mips);
  }
  if (request.key_hint != 0) return request.key_hint;
  return topology_key(request.tasks, request.ecu_mips);
}

dse::ScheduleServer::Artifact FleetScheduleService::resolve(
    std::uint64_t key, const SynthesisRequest& request, bool* cache_hit) {
  const std::uint64_t sig = topology_sig(request.tasks, request.ecu_mips);
  CacheShard& shard = cache_[key % cache_.size()];
  auto it = shard.entries.find(key);
  bool collided = false;
  if (it != shard.entries.end()) {
    if (it->second.sig == sig) {
      *cache_hit = true;
      ++cache_hits_;
      if (cache_hit_counter_ != nullptr) cache_hit_counter_->add();
      return it->second.artifact;
    }
    // Same key, different task set: refuse the hit and recompute rather
    // than hand a vehicle another topology's schedule table.
    ++cache_collisions_;
    collided = true;
  }
  *cache_hit = false;
  ++cache_misses_;
  ++synthesis_runs_;
  if (cache_miss_counter_ != nullptr) cache_miss_counter_->add();
  dse::ScheduleServer::Artifact artifact =
      server_.synthesize(request.tasks, request.ecu_mips);
  if (collided) {
    // Last-writer-wins on a contested key; the key stays at its original
    // position in the eviction order.
    it->second = CacheEntry{artifact, sig};
    return artifact;
  }
  const std::size_t per_shard =
      std::max<std::size_t>(config_.cache_capacity / cache_.size(), 1);
  while (shard.order.size() >= per_shard) {
    shard.entries.erase(shard.order.front());
    shard.order.pop_front();
    ++cache_evictions_;
  }
  shard.entries.emplace(key, CacheEntry{artifact, sig});
  shard.order.push_back(key);
  return artifact;
}

sim::Duration FleetScheduleService::service_time(
    const dse::ScheduleServer::Artifact& artifact, bool cache_hit) const {
  if (cache_hit) return config_.min_service_time;
  // instructions / MIPS = microseconds of backend compute.
  const std::uint64_t mips = std::max<std::uint64_t>(config_.backend_mips, 1);
  const sim::Duration compute = static_cast<sim::Duration>(
      artifact.synthesis_instructions * 1'000ull / mips);
  return std::max(compute, config_.min_service_time);
}

void FleetScheduleService::submit(SynthesisRequest request, Callback done) {
  ++requests_total_;
  if (crashed_ || partitioned_) {
    // Lost on the wire: the vehicle's timeout is the only signal.
    ++lost_unreachable_;
    return;
  }
  const std::uint64_t key = request_key(request);
  if (config_.batching) {
    auto open = open_cohorts_.find(key);
    if (open != open_cohorts_.end()) {
      auto leader = outstanding_.find(open->second);
      if (leader != outstanding_.end() && leader->second.start > sim_.now()) {
        // Same topology, cohort not yet in service: ride the leader's
        // slot. No admission check, no worker dequeue — this is the
        // entire stampede win.
        leader->second.extra.push_back(std::move(done));
        leader->second.criticality =
            std::min(leader->second.criticality, request.criticality);
        ++coalesced_;
        return;
      }
      // Stale registration (cohort already started): close it to joiners.
      if (leader != outstanding_.end()) leader->second.open = false;
      open_cohorts_.erase(open);
    }
  }
  SynthesisResponse reject;
  if (!admit(request.criticality, &reject)) {
    // Shed / backpressure verdicts do reach the vehicle (the backend is
    // alive, just refusing work) after the uplink round trip.
    const sim::Time deliver_at = sim_.now() + config_.uplink_rtt;
    const std::uint64_t id = next_id_++;
    Outstanding out;
    out.done = std::move(done);
    out.criticality = request.criticality;
    out.start = sim_.now();  // not preemptible: no reservation to reclaim
    out.end = deliver_at;
    out.completion = sim_.schedule_at(
        deliver_at, [this, id, reject] { respond(id, reject); });
    outstanding_.emplace(id, std::move(out));
    update_depth_gauge();
    return;
  }

  bool cache_hit = false;
  dse::ScheduleServer::Artifact artifact = resolve(key, request, &cache_hit);
  const sim::Duration svc = static_cast<sim::Duration>(
      static_cast<double>(service_time(artifact, cache_hit)) * slow_factor_);

  const auto worker_it =
      std::min_element(worker_free_.begin(), worker_free_.end());
  const std::size_t worker =
      static_cast<std::size_t>(worker_it - worker_free_.begin());
  const sim::Time arrival = sim_.now() + config_.uplink_rtt / 2;
  const sim::Time start = std::max(arrival, worker_free_[worker]);
  const sim::Time end = start + svc;
  worker_free_[worker] = end;
  const std::uint64_t token = next_token_++;
  worker_last_token_[worker] = token;
  ++dequeues_;

  const std::uint64_t id = next_id_++;
  Outstanding out;
  out.done = std::move(done);
  out.criticality = request.criticality;
  out.key = key;
  out.worker = worker;
  out.start = start;
  out.end = end;
  out.last_on_worker_token = token;
  out.admitted = true;
  ++queued_;
  if (config_.batching) {
    ++batches_;
    out.open = true;
    open_cohorts_[key] = id;
  }

  SynthesisResponse response;
  response.status = artifact.feasible ? ResponseStatus::kOk
                                      : ResponseStatus::kInfeasible;
  response.artifact = std::move(artifact);
  response.cache_hit = cache_hit;
  const sim::Time deliver_at = end + config_.uplink_rtt / 2;
  out.completion = sim_.schedule_at(
      deliver_at, [this, id, response = std::move(response)] {
        if (partitioned_) {
          // The work completed but the response cannot reach the
          // vehicle(s); the whole cohort's downlink copies are lost.
          auto it = outstanding_.find(id);
          if (it != outstanding_.end()) {
            responses_dropped_ += 1 + it->second.extra.size();
          }
          close_entry(id);
          return;
        }
        completed_ += respond(id, response);
      });
  outstanding_.emplace(id, std::move(out));
  max_queue_depth_ = std::max(max_queue_depth_, queued_);
  update_depth_gauge();
}

std::size_t FleetScheduleService::respond(std::uint64_t id,
                                          SynthesisResponse response) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return 0;
  Callback done = std::move(it->second.done);
  std::vector<Callback> extra = std::move(it->second.extra);
  if (it->second.admitted) record_batch(1 + extra.size());
  if (it->second.open) {
    auto open = open_cohorts_.find(it->second.key);
    if (open != open_cohorts_.end() && open->second == id) {
      open_cohorts_.erase(open);
    }
  }
  if (it->second.admitted) --queued_;
  outstanding_.erase(it);
  update_depth_gauge();
  // Fan-out: the leader hears first, joiners in arrival order.
  if (done) done(response);
  for (Callback& member : extra) {
    if (member) member(response);
  }
  return 1 + extra.size();
}

void FleetScheduleService::close_entry(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  if (it->second.open) {
    auto open = open_cohorts_.find(it->second.key);
    if (open != open_cohorts_.end() && open->second == id) {
      open_cohorts_.erase(open);
    }
  }
  if (it->second.admitted) --queued_;
  outstanding_.erase(it);
  update_depth_gauge();
}

void FleetScheduleService::record_batch(std::size_t size) {
  std::size_t bucket = 0;
  while (bucket + 1 < batch_hist_.size() &&
         (static_cast<std::size_t>(1) << bucket) < size) {
    ++bucket;
  }
  ++batch_hist_[bucket];
}

SynthesisResponse FleetScheduleService::query(
    const SynthesisRequest& request) {
  ++requests_total_;
  SynthesisResponse response;
  if (crashed_ || partitioned_) {
    ++lost_unreachable_;
    response.status = ResponseStatus::kUnreachable;
    return response;
  }
  if (!admit(request.criticality, &response)) return response;
  bool cache_hit = false;
  dse::ScheduleServer::Artifact artifact =
      resolve(request_key(request), request, &cache_hit);
  ++completed_;
  response.status = artifact.feasible ? ResponseStatus::kOk
                                      : ResponseStatus::kInfeasible;
  response.artifact = std::move(artifact);
  response.cache_hit = cache_hit;
  return response;
}

void FleetScheduleService::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crashes_;
  if (coverage_ != nullptr) coverage_->hit(cov_crash_);
  // Outstanding work dies with the process; clients time out. Every
  // coalesced cohort member was a caller in its own right.
  for (auto& [id, out] : outstanding_) {
    sim_.cancel(out.completion);
    lost_unreachable_ += 1 + out.extra.size();
  }
  outstanding_.clear();
  open_cohorts_.clear();
  queued_ = 0;
  update_depth_gauge();
  worker_free_.assign(config_.workers, 0);
  worker_last_token_.assign(config_.workers, 0);
  if (config_.crash_clears_cache) {
    for (CacheShard& shard : cache_) {
      shard.entries.clear();
      shard.order.clear();
    }
  }
}

void FleetScheduleService::restart() {
  if (!crashed_) return;
  crashed_ = false;
  worker_free_.assign(config_.workers, sim_.now());
}

void FleetScheduleService::set_partitioned(bool partitioned) {
  if (partitioned && !partitioned_ && coverage_ != nullptr) {
    coverage_->hit(cov_partition_);
  }
  partitioned_ = partitioned;
}

std::size_t FleetScheduleService::cache_entries() const {
  std::size_t total = 0;
  for (const CacheShard& shard : cache_) total += shard.entries.size();
  return total;
}

std::uint64_t FleetScheduleService::fingerprint() const {
  std::uint64_t hash = kFnvOffset;
  const std::uint64_t fields[] = {
      requests_total_,    completed_,     shed_total_,
      shed_[0],           shed_[1],       shed_[2],
      backpressured_,     preempted_,     lost_unreachable_,
      responses_dropped_, cache_hits_,    cache_misses_,
      synthesis_runs_,    crashes_,       max_queue_depth_,
      outstanding_.size(), dequeues_,     batches_,
      coalesced_,         cache_collisions_, cache_evictions_};
  for (const std::uint64_t field : fields) {
    hash = fnv1a(hash, &field, sizeof(field));
  }
  for (const std::uint64_t bucket : batch_hist_) {
    hash = fnv1a(hash, &bucket, sizeof(bucket));
  }
  return hash;
}

}  // namespace dynaplat::backend
