// Fleet driver: N simulated vehicle sessions against one or more
// FleetScheduleService regions (experiments E21/E22).
//
// Each session is a vehicle with a deterministic app topology (sessions
// sharing a topology class generate *identical* analysis task sets — the
// cross-vehicle cache's whole reason to exist), a staggered routine OTA
// resync cadence, and a recovery state machine driven by the fault wave:
//
//   kNominal --wave hit--> kUnsafe --fallback ok--> kSafeDegraded
//        ^                    |                          |
//        |                    +----backend artifact------+
//        +---------------- recovered -------------------+
//
// kUnsafe means the vehicle lost an ECU and holds *no* valid remap — the
// state the robustness headline requires to be transient even during a
// full backend outage. kSafeDegraded means a stale cached artifact or the
// ECU-local admission fast path is keeping it safe while it re-submits
// recovery synthesis on a fixed cadence until the backend delivers a
// fresh artifact.
//
// Million-session scaling (ISSUE 10, DESIGN.md §15): the driver stores
// sessions as structure-of-arrays — 8/16-bit enums and flags, indices
// instead of pointers, per-class task sets and artifacts shared through a
// topology-class table — at ~35 hot bytes per session, and implements the
// BackendClient resilience semantics (per-attempt timeout, capped jittered
// backoff, circuit breaker, stale-cache / local-admission fallback ladder,
// stale revalidation on reconnect) over that compact state instead of
// embedding a fat client object per vehicle. Jitter draws derive from
// sim::Random::stream(jitter_seed, session·2^32 + draw#) so no generator
// state is stored. Timers (OTA cadences, timeouts, backoff, recovery
// retry) run on a sim::TimerWheel by default; FleetConfig::use_timer_wheel
// = false keeps them on the kernel heap for the A/B and fingerprint gate.
//
// Multi-region: with N services, session i's home region is i % N. While
// the home breaker is OPEN, attempts fail over to the sibling region (a
// cold memo cache there re-runs synthesis); the HALF_OPEN probe returns
// traffic home after heal and revalidates stale artifacts.
//
// The driver can inject its own backend outage window (crash/restart or
// uplink partition, hitting region 0) so the bench and tests don't need
// fault::FaultCampaign; campaigns can still target the service directly.
//
// Determinism: everything derives from FleetConfig::seed through
// sim::Random::stream — a FleetDriver run is a pure function of its
// config and is swept bit-identically by sim::ScenarioSweep.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "backend/client.hpp"
#include "backend/service.hpp"
#include "sim/timer_wheel.hpp"

namespace dynaplat::backend {

struct FleetConfig {
  std::size_t sessions = 1'000;
  /// Distinct task-set shapes; sessions i and i + topology_classes share a
  /// cache key.
  std::size_t topology_classes = 32;
  std::uint64_t seed = 1;
  sim::Duration horizon = 20 * sim::kSecond;
  /// Per-session routine OTA resync period (start staggered across the
  /// fleet so nominal load is smooth).
  sim::Duration ota_period = 2 * sim::kSecond;
  /// Quantize the per-session OTA phase onto this grid (0 = exact i·P/N
  /// stagger). Shared phase instants are what let the timing wheel fire a
  /// whole cohort from one kernel event — and what hands the service's
  /// request batcher its cohorts.
  sim::Duration ota_phase_grid = 0;
  /// Fault wave: at wave_at, wave_fraction of the fleet loses an ECU,
  /// spread over wave_stagger — the stampede.
  sim::Duration wave_at = 5 * sim::kSecond;
  double wave_fraction = 0.5;
  sim::Duration wave_stagger = 500 * sim::kMillisecond;
  /// Degraded sessions re-submit recovery synthesis on this cadence until
  /// the backend delivers a fresh artifact.
  sim::Duration recovery_retry = 250 * sim::kMillisecond;
  /// Vehicle-side resilience knobs (timeout/backoff/breaker/fallback);
  /// jitter_stream is implicitly the session index.
  ClientConfig client;
  /// Fraction of sessions whose task set drifts from its class (a
  /// per-vehicle mutation): each drifted vehicle becomes its own
  /// singleton topology class, fragmenting the memo-cache key space.
  double topology_drift_fraction = 0.0;
  /// Driver-injected backend outage window (0 = none; hits region 0).
  sim::Duration outage_at = 0;
  sim::Duration outage_duration = 0;
  /// true: uplink partition; false: backend crash + restart.
  bool outage_is_partition = false;
  /// After the horizon the OTA cadence stops and the run continues this
  /// much longer so in-flight requests settle — end-of-run invariants
  /// (backend drained, recoveries complete) read a quiescent system.
  sim::Duration drain_grace = 2 * sim::kSecond;
  /// Drive cadences/timeouts/backoff on a sim::TimerWheel (false = kernel
  /// heap; the E22 A/B and the wheel-vs-heap fingerprint gate flip this).
  bool use_timer_wheel = true;
  sim::TimerWheel::Config wheel;
  /// Keep the exact per-request latency vector (order-sensitive, folded
  /// into the fingerprint). Disable at 1M sessions; the bounded log-scale
  /// histogram still feeds quantiles either way.
  bool record_latencies = true;
};

class FleetDriver {
 public:
  FleetDriver(sim::Simulator& simulator, FleetScheduleService& service,
              FleetConfig config);
  /// Multi-region: session i's home is services[i % services.size()].
  FleetDriver(sim::Simulator& simulator,
              std::vector<FleetScheduleService*> services, FleetConfig config);
  ~FleetDriver();
  FleetDriver(const FleetDriver&) = delete;
  FleetDriver& operator=(const FleetDriver&) = delete;

  /// Builds the fleet, schedules OTA cadences / fault wave / outage, and
  /// runs the simulator to the horizon. Re-runnable: timers from earlier
  /// runs are epoch-guarded and the wheel is rebuilt per run.
  void run();

  // --- Robustness surface (invariants + bench read these) -------------------
  /// Sessions currently in kUnsafe (no valid remap in hand).
  std::size_t unsafe_now() const { return unsafe_now_; }
  /// High-water mark of simultaneous kUnsafe sessions.
  std::size_t peak_unsafe() const { return peak_unsafe_; }
  /// Longest single unsafe window any session experienced (ns). The
  /// zero-stranded invariant bounds this, not peak_unsafe: fallback makes
  /// unsafety *transient* even while the backend is down.
  sim::Duration max_unsafe_duration() const { return max_unsafe_duration_; }
  /// Sessions still re-submitting recovery synthesis (safe but degraded).
  std::size_t recoveries_outstanding() const { return degraded_now_; }
  /// Completion time of the last recovery that finished (0 = none).
  sim::Time last_recovery_completed() const { return last_recovery_done_; }
  /// When the driver-injected outage healed (0 = no outage configured).
  sim::Time heal_time() const { return heal_time_; }

  // --- Load / latency surface -----------------------------------------------
  std::uint64_t ota_completed() const { return ota_completed_; }
  std::uint64_t ota_deferred() const { return ota_deferred_; }
  std::uint64_t recoveries_completed() const { return recoveries_completed_; }
  std::uint64_t fallback_cache() const { return fallback_cache_; }
  std::uint64_t fallback_local() const { return fallback_local_; }
  std::uint64_t fallback_none() const { return fallback_none_; }
  /// End-to-end sim-time latency of every backend-served request
  /// (first submission -> final outcome), in scheduling order. Empty when
  /// FleetConfig::record_latencies is off (use the quantile surface).
  const std::vector<sim::Duration>& latencies() const { return latencies_; }
  /// Requests measured into the latency histogram (always maintained).
  std::uint64_t latency_count() const { return lat_count_; }
  sim::Duration latency_max() const { return lat_max_; }
  /// Approximate quantile (log-bucket resolution, ±~12%) in milliseconds.
  double latency_quantile_ms(double q) const;

  // --- Compact-engine surface ----------------------------------------------
  std::uint64_t client_timeouts() const { return timeouts_; }
  std::uint64_t client_breaker_opens() const { return breaker_opens_; }
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t breaker_fast_fails() const { return breaker_fast_fails_; }
  std::uint64_t stale_served() const { return stale_served_; }
  std::uint64_t local_admissions() const { return local_admissions_; }
  std::uint64_t revalidated() const { return revalidated_; }
  /// Attempts redirected to a sibling region while home was OPEN.
  std::uint64_t failovers() const { return failovers_; }
  std::size_t regions() const { return services_.size(); }
  /// Topology classes actually built (base classes + drifted singletons).
  std::size_t topology_class_count() const { return classes_.size(); }
  /// Bytes of per-session array state (the SoA compression target).
  static constexpr std::size_t hot_bytes_per_session() {
    return sizeof(std::uint8_t) * 3 +   // state, flags, breaker
           sizeof(std::uint32_t) * 2 +  // class index, jitter draw count
           sizeof(sim::Time) * 3;       // open_until, unsafe_since, issued
  }

  /// FNV-1a over driver counters, the latency record, every per-session
  /// state array and each region's service fingerprint: the sweep and
  /// wheel-vs-heap determinism gates compare this across runs.
  std::uint64_t fingerprint() const;

  const FleetConfig& config() const { return config_; }

 private:
  enum class SessionState : std::uint8_t {
    kNominal,
    kUnsafe,        ///< ECU lost, no valid remap — must be transient
    kSafeDegraded,  ///< running on stale/local artifact, recovery pending
  };
  // flags_ bits.
  static constexpr std::uint8_t kFlagRecoveryInflight = 1u << 0;
  static constexpr std::uint8_t kFlagHasArtifact = 1u << 1;
  static constexpr std::uint8_t kFlagStaleUsed = 1u << 2;
  // breaker_ packing: low 2 bits state, high 6 bits consecutive failures.
  static constexpr std::uint8_t kBreakerStateMask = 0x03;

  struct TopologyClass {
    std::vector<dse::AnalysisTask> tasks;
    std::uint64_t ecu_mips = 1'000;
    std::uint64_t key = 0;  ///< precomputed topology_key (request key_hint)
    /// Vehicle-local artifact cache, compressed: the artifact bytes are
    /// identical for every vehicle of the class, so they are stored once
    /// here; per-session kFlagHasArtifact says whether *this* vehicle
    /// holds a copy, kFlagStaleUsed whether it served it stale.
    dse::ScheduleServer::Artifact artifact;
    bool artifact_valid = false;
  };

  /// One timer handle usable on either driver arm (wheel or kernel heap).
  struct Timer {
    sim::EventId ev;
    sim::TimerWheel::TimerId wt;
  };

  /// In-flight request slab entry, sized O(in-flight), not O(sessions).
  struct Pending {
    std::uint32_t session = 0;
    std::uint8_t kind = 0;  // 0 = ota, 1 = recovery
    std::uint8_t target_region = 0;
    std::uint8_t attempt = 0;
    std::uint32_t gen = 1;
    std::uint32_t attempt_token = 0;
    std::uint32_t next_free = 0xFFFFFFFFu;
    bool in_use = false;
    sim::Duration backoff = 0;
    sim::Time issued = 0;
    Timer timeout;
    Timer resubmit;
  };

  /// Final outcome of a request, artifact elided (it lives in the class
  /// table) — the driver only dispatches on source/ok.
  struct Outcome {
    BackendOutcome::Source source = BackendOutcome::Source::kNone;
    bool ok = false;
  };

  static std::vector<dse::AnalysisTask> make_tasks(std::uint64_t seed,
                                                   std::size_t topology);
  void build_classes();
  void reset_sessions();

  // Timer facade over the two arms.
  Timer timer_at(sim::Time at, sim::InlineFunction fn);
  Timer timer_in(sim::Duration delay, sim::InlineFunction fn);
  Timer timer_every(sim::Time first, sim::Duration period,
                    sim::InlineFunction fn);
  void cancel_timer(Timer& timer);

  // Session helpers.
  std::uint8_t home_region(std::uint32_t s) const {
    return static_cast<std::uint8_t>(s % services_.size());
  }
  SessionState state_of(std::uint32_t s) const {
    return static_cast<SessionState>(state_[s]);
  }
  BreakerState breaker_of(std::uint32_t s) const {
    return static_cast<BreakerState>(breaker_[s] & kBreakerStateMask);
  }
  int failures_of(std::uint32_t s) const { return breaker_[s] >> 2; }
  void set_breaker(std::uint32_t s, BreakerState state, int failures);
  double jitter_draw(std::uint32_t s);

  // Compact client engine (BackendClient semantics over SoA state).
  void record_success(std::uint32_t s);
  void record_failure(std::uint32_t s);
  void revalidate_stale(std::uint32_t s);
  std::uint64_t begin_request(std::uint32_t s, std::uint8_t kind);
  Pending* lookup(std::uint64_t id);
  void free_pending(std::uint64_t id);
  void start_attempt(std::uint64_t id);
  void on_response(std::uint64_t id, std::uint32_t token,
                   const SynthesisResponse& response);
  void on_timeout(std::uint64_t id);
  void retry_or_fail(std::uint64_t id, sim::Duration floor_delay);
  sim::Duration next_backoff(Pending& pending);
  void finish_with_fallback(std::uint64_t id);
  void finish(std::uint64_t id, const Outcome& outcome);

  // Fleet behaviour.
  void issue_ota(std::uint32_t s);
  void hit_with_wave(std::uint32_t s);
  void issue_recovery(std::uint32_t s);
  void on_recovery_outcome(std::uint32_t s, const Outcome& outcome);
  void mark_safe(std::uint32_t s, bool recovered);
  void record_latency(sim::Duration latency);

  sim::Simulator& sim_;
  std::vector<FleetScheduleService*> services_;
  FleetConfig config_;
  dse::AdmissionController admission_;

  std::vector<TopologyClass> classes_;

  // --- Per-session SoA state (hot_bytes_per_session() total) ---------------
  std::vector<std::uint8_t> state_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint8_t> breaker_;
  std::vector<std::uint32_t> class_of_;
  std::vector<std::uint32_t> jitter_draws_;
  std::vector<sim::Time> open_until_;
  std::vector<sim::Time> unsafe_since_;
  std::vector<sim::Time> recovery_issued_;

  std::unique_ptr<sim::TimerWheel> wheel_;
  std::vector<Timer> ota_timers_;
  /// Bumped per run(); timers capture it so a prior run's leftover kernel
  /// events become no-ops instead of dangling into rebuilt state.
  std::uint32_t epoch_ = 0;

  std::vector<Pending> pending_;
  std::uint32_t pending_free_ = 0xFFFFFFFFu;

  std::size_t unsafe_now_ = 0;
  std::size_t peak_unsafe_ = 0;
  sim::Duration max_unsafe_duration_ = 0;
  std::size_t degraded_now_ = 0;
  sim::Time last_recovery_done_ = 0;
  sim::Time heal_time_ = 0;

  std::uint64_t ota_completed_ = 0;
  std::uint64_t ota_deferred_ = 0;
  std::uint64_t recoveries_completed_ = 0;
  std::uint64_t fallback_cache_ = 0;
  std::uint64_t fallback_local_ = 0;
  std::uint64_t fallback_none_ = 0;

  // Aggregated client-engine counters (the per-client counters of PR 9,
  // fleet-wide).
  std::uint64_t attempts_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
  std::uint64_t stale_served_ = 0;
  std::uint64_t local_admissions_ = 0;
  std::uint64_t revalidated_ = 0;
  std::uint64_t exhausted_ = 0;
  std::uint64_t failovers_ = 0;

  // Latency record: bounded log-scale histogram always; exact vector only
  // when config_.record_latencies.
  static constexpr std::size_t kLatencyBuckets = 256;
  std::array<std::uint64_t, kLatencyBuckets> lat_hist_{};
  std::uint64_t lat_count_ = 0;
  std::uint64_t lat_sum_ = 0;
  sim::Duration lat_max_ = 0;
  std::vector<sim::Duration> latencies_;
};

}  // namespace dynaplat::backend
