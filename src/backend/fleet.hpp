// Fleet driver: N simulated vehicle sessions against one
// FleetScheduleService (experiment E21).
//
// Each session is a vehicle with a deterministic app topology (sessions
// sharing a topology class generate *identical* analysis task sets — the
// cross-vehicle cache's whole reason to exist), its own BackendClient
// (distinct jitter stream = session index), a staggered routine OTA
// resync cadence, and a recovery state machine driven by the fault wave:
//
//   kNominal --wave hit--> kUnsafe --fallback ok--> kSafeDegraded
//        ^                    |                          |
//        |                    +----backend artifact------+
//        +---------------- recovered -------------------+
//
// kUnsafe means the vehicle lost an ECU and holds *no* valid remap — the
// state the robustness headline requires to be transient even during a
// full backend outage. kSafeDegraded means a stale cached artifact or the
// ECU-local admission fast path is keeping it safe while it re-submits
// recovery synthesis on a fixed cadence until the backend delivers a
// fresh artifact.
//
// The driver can inject its own backend outage window (crash/restart or
// uplink partition) so the bench and tests don't need fault::FaultCampaign
// (which lives above this library); campaigns can still target the
// service directly via FaultCampaign::add_backend.
//
// Determinism: everything derives from FleetConfig::seed through
// sim::Random::stream — a FleetDriver run is a pure function of its
// config and is swept bit-identically by sim::ScenarioSweep.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/client.hpp"
#include "backend/service.hpp"

namespace dynaplat::backend {

struct FleetConfig {
  std::size_t sessions = 1'000;
  /// Distinct task-set shapes; sessions i and i + topology_classes share a
  /// cache key.
  std::size_t topology_classes = 32;
  std::uint64_t seed = 1;
  sim::Duration horizon = 20 * sim::kSecond;
  /// Per-session routine OTA resync period (start staggered across the
  /// fleet so nominal load is smooth).
  sim::Duration ota_period = 2 * sim::kSecond;
  /// Fault wave: at wave_at, wave_fraction of the fleet loses an ECU,
  /// spread over wave_stagger — the stampede.
  sim::Duration wave_at = 5 * sim::kSecond;
  double wave_fraction = 0.5;
  sim::Duration wave_stagger = 500 * sim::kMillisecond;
  /// Degraded sessions re-submit recovery synthesis on this cadence until
  /// the backend delivers a fresh artifact.
  sim::Duration recovery_retry = 250 * sim::kMillisecond;
  /// Per-session client config (jitter_stream is overridden per session).
  ClientConfig client;
  /// Driver-injected backend outage window (0 = none).
  sim::Duration outage_at = 0;
  sim::Duration outage_duration = 0;
  /// true: uplink partition; false: backend crash + restart.
  bool outage_is_partition = false;
  /// After the horizon the OTA cadence stops and the run continues this
  /// much longer so in-flight requests settle — end-of-run invariants
  /// (backend drained, recoveries complete) read a quiescent system.
  sim::Duration drain_grace = 2 * sim::kSecond;
};

class FleetDriver {
 public:
  FleetDriver(sim::Simulator& simulator, FleetScheduleService& service,
              FleetConfig config);
  FleetDriver(const FleetDriver&) = delete;
  FleetDriver& operator=(const FleetDriver&) = delete;

  /// Builds the fleet, schedules OTA cadences / fault wave / outage, and
  /// runs the simulator to the horizon.
  void run();

  // --- Robustness surface (invariants + bench read these) -------------------
  /// Sessions currently in kUnsafe (no valid remap in hand).
  std::size_t unsafe_now() const { return unsafe_now_; }
  /// High-water mark of simultaneous kUnsafe sessions.
  std::size_t peak_unsafe() const { return peak_unsafe_; }
  /// Longest single unsafe window any session experienced (ns). The
  /// zero-stranded invariant bounds this, not peak_unsafe: fallback makes
  /// unsafety *transient* even while the backend is down.
  sim::Duration max_unsafe_duration() const { return max_unsafe_duration_; }
  /// Sessions still re-submitting recovery synthesis (safe but degraded).
  std::size_t recoveries_outstanding() const { return degraded_now_; }
  /// Completion time of the last recovery that finished (0 = none).
  sim::Time last_recovery_completed() const { return last_recovery_done_; }
  /// When the driver-injected outage healed (0 = no outage configured).
  sim::Time heal_time() const { return heal_time_; }

  // --- Load / latency surface -----------------------------------------------
  std::uint64_t ota_completed() const { return ota_completed_; }
  std::uint64_t ota_deferred() const { return ota_deferred_; }
  std::uint64_t recoveries_completed() const { return recoveries_completed_; }
  std::uint64_t fallback_cache() const { return fallback_cache_; }
  std::uint64_t fallback_local() const { return fallback_local_; }
  std::uint64_t fallback_none() const { return fallback_none_; }
  /// End-to-end sim-time latency of every backend-served request
  /// (first submission -> final outcome), in scheduling order.
  const std::vector<sim::Duration>& latencies() const { return latencies_; }

  std::uint64_t client_timeouts() const;
  std::uint64_t client_breaker_opens() const;

  /// FNV-1a over driver counters + every session's client fingerprint +
  /// the service fingerprint: the sweep determinism gate compares this
  /// across thread counts.
  std::uint64_t fingerprint() const;

  const FleetConfig& config() const { return config_; }

 private:
  enum class SessionState : std::uint8_t {
    kNominal,
    kUnsafe,        ///< ECU lost, no valid remap — must be transient
    kSafeDegraded,  ///< running on stale/local artifact, recovery pending
  };

  struct Session {
    std::uint32_t index = 0;
    std::size_t topology = 0;
    std::vector<dse::AnalysisTask> tasks;
    std::uint64_t ecu_mips = 1'000;
    std::unique_ptr<BackendClient> client;
    SessionState state = SessionState::kNominal;
    sim::Time unsafe_since = 0;
    sim::Time recovery_issued = 0;
    bool recovery_inflight = false;
  };

  static std::vector<dse::AnalysisTask> make_tasks(std::uint64_t seed,
                                                   std::size_t topology);
  void schedule_ota(Session& session, sim::Time first);
  void issue_ota(Session& session);
  void hit_with_wave(Session& session);
  void issue_recovery(Session& session);
  void on_recovery_outcome(Session& session, const BackendOutcome& outcome);
  void mark_safe(Session& session, bool recovered);

  sim::Simulator& sim_;
  FleetScheduleService& service_;
  FleetConfig config_;
  std::vector<Session> sessions_;
  std::vector<sim::EventId> ota_timers_;

  std::size_t unsafe_now_ = 0;
  std::size_t peak_unsafe_ = 0;
  sim::Duration max_unsafe_duration_ = 0;
  std::size_t degraded_now_ = 0;
  sim::Time last_recovery_done_ = 0;
  sim::Time heal_time_ = 0;

  std::uint64_t ota_completed_ = 0;
  std::uint64_t ota_deferred_ = 0;
  std::uint64_t recoveries_completed_ = 0;
  std::uint64_t fallback_cache_ = 0;
  std::uint64_t fallback_local_ = 0;
  std::uint64_t fallback_none_ = 0;
  std::vector<sim::Duration> latencies_;
};

}  // namespace dynaplat::backend
