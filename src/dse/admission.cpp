#include "dse/admission.hpp"

#include <sstream>

#include "os/processor.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::dse {

std::uint64_t AdmissionController::local_test_cost(std::size_t task_count) {
  // RTA fixed-point: ~n^2 interference terms, ~20 iterations, ~50
  // instructions per term.
  return 50ull * 20ull * task_count * task_count + 10'000;
}

AdmissionDecision AdmissionController::admit(
    const std::vector<AnalysisTask>& existing,
    const std::vector<AnalysisTask>& incoming) const {
  AdmissionDecision decision;
  std::vector<AnalysisTask> combined = existing;
  combined.insert(combined.end(), incoming.begin(), incoming.end());
  decision.analysis_instructions = local_test_cost(combined.size());

  double utilization = 0.0;
  for (const auto& task : combined) utilization += task.utilization();
  if (utilization > 1.0) {
    std::ostringstream os;
    os << "rejected: utilization " << utilization << " > 1.0";
    decision.reason = os.str();
    return decision;
  }
  // Deterministic subset through exact RTA.
  std::vector<AnalysisTask> det;
  for (const auto& task : combined) {
    if (task.deterministic) det.push_back(task);
  }
  if (!response_time_analysis(det).has_value()) {
    decision.reason = "rejected: deterministic subset fails RTA";
    return decision;
  }
  decision.admitted = true;
  decision.reason = "admitted by local utilization + RTA test";
  return decision;
}

std::uint64_t ScheduleServer::synthesis_cost(
    std::size_t jobs_in_hyperperiod) {
  // Greedy placement over a free list (~j^2) plus simulation of two
  // hyperperiods (~1000 instructions per simulated job).
  return 200ull * jobs_in_hyperperiod * jobs_in_hyperperiod +
         2'000ull * jobs_in_hyperperiod + 50'000;
}

bool validate_by_simulation(const TtTable& table,
                            const std::vector<AnalysisTask>& tasks,
                            std::uint64_t ecu_mips, std::string* why) {
  sim::Simulator scratch;
  // Map analysis tasks to processor tasks; remember the ids so the TT
  // window owners can be rewritten.
  std::vector<os::TaskId> ids(tasks.size(), os::kInvalidTask);
  auto scheduler = std::make_unique<os::TimeTriggeredScheduler>(
      table.cycle > 0 ? table.cycle : sim::kMillisecond,
      std::vector<os::TtWindow>{});
  auto* tt = scheduler.get();
  os::Processor cpu(scratch, "backend-sim", os::CpuModel{ecu_mips},
                    std::move(scheduler));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    os::TaskConfig config;
    config.name = tasks[i].name;
    config.task_class = tasks[i].deterministic
                            ? os::TaskClass::kDeterministic
                            : os::TaskClass::kNonDeterministic;
    config.period = tasks[i].period;
    config.deadline = tasks[i].deadline;
    config.instructions = static_cast<std::uint64_t>(tasks[i].wcet) *
                          ecu_mips / 1000;
    config.priority = tasks[i].priority;
    ids[i] = cpu.add_task(config);
  }
  std::vector<os::TtWindow> windows;
  for (const auto& window : table.windows) {
    windows.push_back(
        os::TtWindow{window.offset, window.length, ids[window.task]});
  }
  tt->install_table(table.cycle > 0 ? table.cycle : sim::kMillisecond,
                    std::move(windows));
  cpu.start();
  const sim::Duration horizon =
      2 * (table.cycle > 0 ? table.cycle : sim::kMillisecond);
  scratch.run_until(horizon);

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].deterministic) continue;
    const auto& stats = cpu.stats(ids[i]);
    if (stats.deadline_misses > 0) {
      if (why != nullptr) {
        *why = "simulation shows deadline misses for " + tasks[i].name;
      }
      return false;
    }
    if (tasks[i].period > 0 && stats.completions == 0 &&
        horizon >= 2 * tasks[i].period) {
      if (why != nullptr) {
        *why = "simulation shows starvation of " + tasks[i].name;
      }
      return false;
    }
  }
  return true;
}

ScheduleServer::Artifact ScheduleServer::synthesize(
    const std::vector<AnalysisTask>& tasks, std::uint64_t ecu_mips) const {
  Artifact artifact;
  // Pad each window with twice the target's context-switch cost (~1000
  // instructions) so dispatch overhead cannot push a job past its window.
  const sim::Duration padding = static_cast<sim::Duration>(
      2ull * 1000ull * 1000ull / std::max<std::uint64_t>(ecu_mips, 1));
  auto table = synthesize_tt_table(tasks, 0, padding);
  std::size_t jobs = 0;
  if (table) {
    jobs = table->windows.size();
  } else {
    for (const auto& task : tasks) {
      if (task.deterministic && task.period > 0) {
        jobs += static_cast<std::size_t>(hyperperiod(tasks) / task.period);
      }
    }
  }
  artifact.synthesis_instructions = synthesis_cost(std::max<std::size_t>(jobs, 1));
  if (!table) {
    artifact.reason = "TT synthesis failed (overload or fragmentation)";
    return artifact;
  }
  artifact.feasible = true;
  artifact.table = std::move(*table);
  std::string why;
  artifact.validated =
      validate_by_simulation(artifact.table, tasks, ecu_mips, &why);
  artifact.reason = artifact.validated
                        ? "synthesized and simulation-validated"
                        : "synthesized but failed validation: " + why;
  return artifact;
}

}  // namespace dynaplat::dse
