// Schedulability analysis and time-triggered table synthesis.
//
// The exact tests behind the verification engine's cpu.schedulability rule
// and the platform's admission control (paper Sec. 2.3, 3.1; related work
// [6] compositional admission, [19] online schedulability analysis, [21]
// schedule synthesis).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "model/verifier.hpp"
#include "os/scheduler.hpp"

namespace dynaplat::dse {

/// A task instance as the analyses see it (model task bound to an ECU).
struct AnalysisTask {
  std::string name;
  sim::Duration period = 0;
  sim::Duration deadline = 0;  ///< effective (<= period)
  sim::Duration wcet = 0;      ///< on the target ECU
  int priority = 16;
  bool deterministic = false;

  double utilization() const {
    return period > 0 ? static_cast<double>(wcet) /
                            static_cast<double>(period)
                      : 0.0;
  }
};

/// Converts an app's model tasks to analysis tasks on a given ECU speed.
std::vector<AnalysisTask> tasks_on(const model::AppDef& app,
                                   std::uint64_t mips);

/// Exact response-time analysis for preemptive fixed-priority scheduling
/// (Joseph & Pandya). Returns per-task worst-case response times, or nullopt
/// if any task's fixed point exceeds its deadline.
std::optional<std::vector<sim::Duration>> response_time_analysis(
    const std::vector<AnalysisTask>& tasks);

/// EDF feasibility: utilization test for implicit deadlines, density bound
/// for constrained deadlines (sufficient, not necessary).
bool edf_feasible(const std::vector<AnalysisTask>& tasks);

/// Synthesized time-triggered table: windows within one cycle
/// (== hyperperiod of the deterministic tasks).
struct TtTable {
  sim::Duration cycle = 0;
  /// (offset, length, task index into the input vector)
  struct Window {
    sim::Duration offset = 0;
    sim::Duration length = 0;
    std::size_t task = 0;
  };
  std::vector<Window> windows;

  /// Fraction of the cycle reserved by windows.
  double reserved_fraction() const;
};

/// Greedy EDF-ordered table synthesis for the deterministic subset: each job
/// in the hyperperiod gets a window at the earliest free time after its
/// release that still meets its deadline. Returns nullopt when placement
/// fails (overload or fragmentation). `granularity` aligns window edges
/// (0 = exact). `window_padding` lengthens every window (dispatch /
/// context-switch overhead allowance on the target CPU).
std::optional<TtTable> synthesize_tt_table(
    const std::vector<AnalysisTask>& tasks, sim::Duration granularity = 0,
    sim::Duration window_padding = 0);

/// Combined check used by the platform: deterministic tasks must admit a TT
/// table (or pass RTA), and total utilization including best-effort load
/// must stay below 1.
bool schedulable(const std::vector<AnalysisTask>& tasks, std::string* why);

/// Adapts `schedulable` to the verification engine's hook signature.
model::Verifier::SchedulabilityHook make_verifier_hook();

/// Hyperperiod (LCM of periods), saturating at `cap`.
sim::Duration hyperperiod(const std::vector<AnalysisTask>& tasks,
                          sim::Duration cap = 10 * sim::kSecond);

}  // namespace dynaplat::dse
