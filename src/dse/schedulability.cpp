#include "dse/schedulability.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dynaplat::dse {

std::vector<AnalysisTask> tasks_on(const model::AppDef& app,
                                   std::uint64_t mips) {
  std::vector<AnalysisTask> out;
  for (const auto& task : app.tasks) {
    AnalysisTask at;
    at.name = app.name + "." + task.name;
    at.period = task.period;
    at.deadline = task.deadline > 0 ? task.deadline : task.period;
    at.wcet = static_cast<sim::Duration>(task.instructions * 1000ull / mips);
    at.priority = task.priority;
    at.deterministic = app.app_class == model::AppClass::kDeterministic;
    out.push_back(std::move(at));
  }
  return out;
}

std::optional<std::vector<sim::Duration>> response_time_analysis(
    const std::vector<AnalysisTask>& tasks) {
  // Sort indices by priority (most urgent first).
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].priority < tasks[b].priority;
  });

  std::vector<sim::Duration> response(tasks.size(), 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const AnalysisTask& task = tasks[order[rank]];
    if (task.period <= 0) continue;  // aperiodic: not covered by RTA
    sim::Duration r = task.wcet;
    for (int iteration = 0; iteration < 1000; ++iteration) {
      sim::Duration interference = 0;
      for (std::size_t h = 0; h < rank; ++h) {
        const AnalysisTask& higher = tasks[order[h]];
        if (higher.period <= 0) continue;
        const sim::Duration jobs =
            (r + higher.period - 1) / higher.period;  // ceil(r / T_h)
        interference += jobs * higher.wcet;
      }
      const sim::Duration next = task.wcet + interference;
      if (next == r) break;
      r = next;
      if (r > task.deadline) return std::nullopt;
    }
    if (r > task.deadline) return std::nullopt;
    response[order[rank]] = r;
  }
  return response;
}

bool edf_feasible(const std::vector<AnalysisTask>& tasks) {
  double density = 0.0;
  for (const auto& task : tasks) {
    if (task.period <= 0) continue;
    const sim::Duration d = std::min(task.deadline, task.period);
    if (d <= 0) return false;
    density += static_cast<double>(task.wcet) / static_cast<double>(d);
  }
  return density <= 1.0 + 1e-12;
}

double TtTable::reserved_fraction() const {
  if (cycle <= 0) return 0.0;
  sim::Duration reserved = 0;
  for (const auto& w : windows) reserved += w.length;
  return static_cast<double>(reserved) / static_cast<double>(cycle);
}

sim::Duration hyperperiod(const std::vector<AnalysisTask>& tasks,
                          sim::Duration cap) {
  sim::Duration lcm = 1;
  for (const auto& task : tasks) {
    if (task.period <= 0) continue;
    lcm = std::lcm(lcm, task.period);
    if (lcm > cap || lcm <= 0) return cap;
  }
  return lcm;
}

std::optional<TtTable> synthesize_tt_table(
    const std::vector<AnalysisTask>& tasks, sim::Duration granularity,
    sim::Duration window_padding) {
  std::vector<std::size_t> det;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].deterministic && tasks[i].period > 0) det.push_back(i);
  }
  TtTable table;
  if (det.empty()) {
    table.cycle = sim::kMillisecond;
    return table;
  }
  std::vector<AnalysisTask> dts;
  for (std::size_t i : det) dts.push_back(tasks[i]);
  const sim::Duration cycle = hyperperiod(dts);
  table.cycle = cycle;

  // Collect every job in the hyperperiod: (release, deadline, task idx).
  struct Job {
    sim::Time release;
    sim::Time deadline;
    std::size_t task;
  };
  std::vector<Job> jobs;
  for (std::size_t i : det) {
    const auto& task = tasks[i];
    for (sim::Time release = 0; release < cycle; release += task.period) {
      jobs.push_back(Job{release, release + task.deadline, i});
    }
  }
  // EDF order gives the classic optimal placement heuristic.
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.release < b.release;
  });

  // Free list of intervals, initially the whole cycle.
  struct Interval {
    sim::Time begin;
    sim::Time end;
  };
  std::vector<Interval> free{{0, cycle}};

  auto align = [granularity](sim::Time t) {
    if (granularity <= 0) return t;
    return ((t + granularity - 1) / granularity) * granularity;
  };

  for (const Job& job : jobs) {
    const sim::Duration wcet = tasks[job.task].wcet + window_padding;
    bool placed = false;
    for (std::size_t f = 0; f < free.size(); ++f) {
      const sim::Time start =
          align(std::max(free[f].begin, job.release));
      if (start + wcet > free[f].end) continue;
      if (start + wcet > job.deadline) continue;
      table.windows.push_back(
          TtTable::Window{start, wcet, job.task});
      // Split the free interval.
      const Interval before{free[f].begin, start};
      const Interval after{start + wcet, free[f].end};
      free.erase(free.begin() + static_cast<long>(f));
      if (after.end > after.begin) {
        free.insert(free.begin() + static_cast<long>(f), after);
      }
      if (before.end > before.begin) {
        free.insert(free.begin() + static_cast<long>(f), before);
      }
      placed = true;
      break;
    }
    if (!placed) return std::nullopt;
  }
  std::sort(table.windows.begin(), table.windows.end(),
            [](const TtTable::Window& a, const TtTable::Window& b) {
              return a.offset < b.offset;
            });
  return table;
}

bool schedulable(const std::vector<AnalysisTask>& tasks, std::string* why) {
  double total_utilization = 0.0;
  for (const auto& task : tasks) total_utilization += task.utilization();
  if (total_utilization > 1.0) {
    if (why != nullptr) {
      std::ostringstream os;
      os << "total utilization " << total_utilization << " > 1.0";
      *why = os.str();
    }
    return false;
  }
  // Deterministic subset must admit a TT table.
  if (!synthesize_tt_table(tasks).has_value()) {
    // TT synthesis is conservative: fall back to exact RTA over the
    // deterministic subset.
    std::vector<AnalysisTask> det;
    for (const auto& task : tasks) {
      if (task.deterministic) det.push_back(task);
    }
    if (!response_time_analysis(det).has_value()) {
      if (why != nullptr) {
        *why = "deterministic tasks admit neither a TT table nor RTA "
               "guarantees";
      }
      return false;
    }
  }
  return true;
}

model::Verifier::SchedulabilityHook make_verifier_hook() {
  return [](const model::EcuDef& ecu,
            const std::vector<const model::AppDef*>& apps, std::string* why) {
    // Partitioned multicore: first-fit-decreasing apps onto cores, then the
    // exact single-core test per core (the same placement policy the
    // PlatformNode uses at install time).
    const auto cores = static_cast<std::size_t>(std::max(1, ecu.cores));
    std::vector<const model::AppDef*> order = apps;
    std::sort(order.begin(), order.end(),
              [&](const model::AppDef* a, const model::AppDef* b) {
                return a->utilization_on(ecu.mips) >
                       b->utilization_on(ecu.mips);
              });
    std::vector<std::vector<AnalysisTask>> per_core(cores);
    for (const model::AppDef* app : order) {
      const auto app_tasks = tasks_on(*app, ecu.mips);
      bool placed = false;
      for (auto& core_tasks : per_core) {
        std::vector<AnalysisTask> candidate = core_tasks;
        candidate.insert(candidate.end(), app_tasks.begin(),
                         app_tasks.end());
        if (schedulable(candidate, nullptr)) {
          core_tasks = std::move(candidate);
          placed = true;
          break;
        }
      }
      if (!placed) {
        if (why != nullptr) {
          *why = "app '" + app->name + "' fits no core of " + ecu.name;
        }
        return false;
      }
    }
    return true;
  };
}

}  // namespace dynaplat::dse
