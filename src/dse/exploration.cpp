#include "dse/exploration.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>

#include "concurrency/thread_pool.hpp"
#include "dse/schedulability.hpp"

namespace dynaplat::dse {

Explorer::Explorer(const model::SystemModel& system_model,
                   CostWeights weights)
    : model_(system_model), weights_(weights) {
  // Wrap the exact schedulability test in the (ECU, app set) memo; the test
  // is a pure function of its arguments and the hook receives apps in a
  // deterministic (name-sorted) order, so cached verdicts are exact. Kept as
  // a member so fast_feasible() shares the memo with the full verifier.
  sched_memo_ =
      [this, inner = make_verifier_hook()](
          const model::EcuDef& ecu,
          const std::vector<const model::AppDef*>& apps, std::string* why) {
        if (!cache_enabled_) return inner(ecu, apps, why);
        SchedKey key;
        key.ecu = &ecu;
        key.apps = apps;
        SchedShard& shard =
            sched_cache_[SchedKeyHash{}(key) % kCacheShards];
        {
          std::lock_guard<std::mutex> lock(shard.mutex);
          const auto it = shard.entries.find(key);
          if (it != shard.entries.end()) {
            if (why != nullptr) *why = it->second.why;
            return it->second.ok;
          }
        }
        std::string reason;
        const bool ok = inner(ecu, apps, &reason);
        if (why != nullptr) *why = reason;
        std::lock_guard<std::mutex> lock(shard.mutex);
        SchedEntry& entry = shard.entries[std::move(key)];
        entry.ok = ok;
        entry.why = std::move(reason);
        return ok;
      };
  verifier_.set_schedulability_hook(sched_memo_);
  for (const auto& app : model_.apps()) apps_.push_back(&app);
  for (const auto& ecu : model_.ecus()) ecus_.push_back(&ecu);

  // Name-sorted app order mirrors Assignment::apps_on, whose std::map
  // iterates placements alphabetically; the incremental evaluator must sum
  // per-ECU utilization in the same order to reproduce cost()'s arithmetic.
  apps_by_name_.resize(apps_.size());
  std::iota(apps_by_name_.begin(), apps_by_name_.end(), std::size_t{0});
  std::sort(apps_by_name_.begin(), apps_by_name_.end(),
            [&](std::size_t a, std::size_t b) {
              return apps_[a]->name < apps_[b]->name;
            });

  const auto index_of = [&](const model::AppDef* app) {
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      if (apps_[i] == app) return i;
    }
    return kNoApp;
  };
  app_interfaces_.resize(apps_.size());
  interface_info_.reserve(model_.interfaces().size());
  for (const auto& interface : model_.interfaces()) {
    InterfaceInfo info;
    info.def = &interface;
    const double period_ms =
        interface.period > 0 ? static_cast<double>(interface.period) / 1e6
                             : 100.0;
    info.pair_cost = weights_.cross_ecu_comm *
                     static_cast<double>(interface.payload_bytes) / period_ms;
    if (interface.paradigm == model::Paradigm::kStream &&
        interface.bandwidth_bps > 0) {
      info.stream_bw = interface.bandwidth_bps;
    }
    if (const model::AppDef* provider = model_.provider_of(interface.name)) {
      info.provider_app = index_of(provider);
    }
    for (const model::AppDef* consumer :
         model_.consumers_of(interface.name)) {
      info.consumer_apps.push_back(index_of(consumer));
    }
    const std::size_t index = interface_info_.size();
    const auto touch = [&](std::size_t app) {
      if (app == kNoApp) return;
      auto& list = app_interfaces_[app];
      if (list.empty() || list.back() != index) list.push_back(index);
    };
    touch(info.provider_app);
    for (const std::size_t consumer : info.consumer_apps) touch(consumer);
    interface_info_.push_back(std::move(info));
  }

  build_fast_model();
}

// --- Genome-native fast evaluation -------------------------------------------
//
// Compiles the verifier's ERROR-severity rules against the space of decoded
// genomes (every app deployed; replica runs on consecutive ECUs). Warnings
// never affect feasibility, so they are ignored. The fast path must return
// exactly feasible(decode(genome)) — DseFastPath.* in
// tests/concurrency_test.cpp cross-checks it rule by rule.

void Explorer::build_fast_model() {
  const std::size_t napps = apps_.size();
  const std::size_t necus = ecus_.size();
  FastModel fm;

  // (a) Model-only error rules: identical verdict for every decoded genome.
  // structure.unknown-app / unknown-ecu cannot fire (decode emits only
  // modeled names); structure.undeployed-app is a warning.
  for (const auto* ecu : ecus_) {
    if (!ecu->network.empty() && model_.network(ecu->network) == nullptr) {
      fm.static_error = true;  // structure.unknown-network
    }
  }
  for (const auto& interface : model_.interfaces()) {
    int providers = 0;
    for (const auto& app : model_.apps()) {
      providers += static_cast<int>(std::count(
          app.provides.begin(), app.provides.end(), interface.name));
    }
    if (providers > 1) fm.static_error = true;  // structure.multiple-owners
  }
  for (const auto& app : model_.apps()) {
    for (const auto& name : app.provides) {
      if (model_.interface(name) == nullptr) {
        fm.static_error = true;  // structure.unknown-interface
      }
    }
    for (const auto& name : app.consumes) {
      const model::InterfaceDef* interface = model_.interface(name);
      if (interface == nullptr) {
        fm.static_error = true;  // structure.unknown-interface
      } else if (model_.provider_of(name) == nullptr) {
        fm.static_error = true;  // structure.unprovided-interface
      } else {
        const auto pinned = app.min_versions.find(name);
        if (pinned != app.min_versions.end() &&
            interface->version < pinned->second) {
          fm.static_error = true;  // structure.version-mismatch
        }
      }
    }
    for (const model::AppDef* dep : model_.dependencies_of(app)) {
      if (dep->asil < app.asil) fm.static_error = true;  // asil.dependency
    }
    // redundancy.placement: decode places replicas on consecutive distinct
    // ECUs, so the distinct-host count is min(replicas, |ecus|) for every
    // genome — the rule fires iff the farm is too small.
    if (app.replicas > 1 && static_cast<std::size_t>(app.replicas) > necus) {
      fm.static_error = true;
    }
  }

  // (b) Host admissibility per (app, ECU): asil.ecu-certification and
  // cpu.rtos-required both depend only on the pair.
  fm.app_ecu_ok.assign(napps * necus, 1);
  for (std::size_t a = 0; a < napps; ++a) {
    for (std::size_t e = 0; e < necus; ++e) {
      const bool ok =
          apps_[a]->asil <= ecus_[e]->max_asil &&
          (apps_[a]->app_class != model::AppClass::kDeterministic ||
           ecus_[e]->rtos);
      fm.app_ecu_ok[a * necus + e] = ok ? 1 : 0;
    }
  }

  // (d) Network verdict per (interface, provider ECU, consumer ECU):
  // network.unreachable and network.latency-floor are pair-local; stream
  // interfaces record which network absorbs their bandwidth so
  // fast_feasible() can sum loads with the verifier's per-cross-pair
  // multiplicity.
  const auto network_index = [&](const model::NetworkDef* net) {
    const auto& networks = model_.networks();
    for (std::size_t k = 0; k < networks.size(); ++k) {
      if (&networks[k] == net) return static_cast<std::int32_t>(k);
    }
    return std::int32_t{-1};
  };
  fm.pairs.assign(interface_info_.size() * necus * necus, PairVerdict{});
  for (std::size_t i = 0; i < interface_info_.size(); ++i) {
    const model::InterfaceDef* def = interface_info_[i].def;
    for (std::size_t p = 0; p < necus; ++p) {
      for (std::size_t c = 0; c < necus; ++c) {
        if (p == c) continue;  // co-located: RTE-local, no network
        PairVerdict& verdict = fm.pairs[(i * necus + p) * necus + c];
        const model::EcuDef* pe = ecus_[p];
        const model::EcuDef* ce = ecus_[c];
        if (pe->network.empty() || pe->network != ce->network) {
          verdict.fatal = true;  // network.unreachable
          continue;
        }
        const model::NetworkDef* net = model_.network(pe->network);
        if (net == nullptr) continue;  // unknown-network: static error above
        if (def->max_latency > 0 &&
            def->max_latency < model::network_latency_floor(
                                   *net, def->payload_bytes)) {
          verdict.fatal = true;  // network.latency-floor
          continue;
        }
        if (interface_info_[i].stream_bw > 0) {
          verdict.bw_net = network_index(net);
        }
      }
    }
  }
  fm.net_budget.reserve(model_.networks().size());
  for (const auto& net : model_.networks()) {
    fm.net_budget.push_back(net.bitrate_bps * 3 / 4);
  }

  fast_ = std::move(fm);
}

bool Explorer::genome_hosted_on(std::size_t app, std::size_t gene,
                                std::size_t ecu) const {
  const std::size_t n = ecus_.size();
  const std::size_t replicas =
      static_cast<std::size_t>(std::max(1, apps_[app]->replicas));
  if (replicas >= n) return true;  // host run wraps the whole farm
  for (std::size_t r = 0; r < replicas; ++r) {
    if ((gene + r) % n == ecu) return true;
  }
  return false;
}

bool Explorer::fast_feasible(const Genome& genome) const {
  if (fast_.static_error) return false;
  const std::size_t necus = ecus_.size();

  // Host admissibility over each replica run.
  for (std::size_t a = 0; a < genome.size(); ++a) {
    const std::size_t replicas = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(1, apps_[a]->replicas)), necus);
    for (std::size_t r = 0; r < replicas; ++r) {
      if (fast_.app_ecu_ok[a * necus + (genome[a] + r) % necus] == 0) {
        return false;
      }
    }
  }

  // (c) Per-ECU capacity + schedulability. Apps are gathered in name-sorted
  // order so the utilization sum and the sched_memo_ key both match the
  // verifier's apps_on() traversal exactly.
  std::vector<const model::AppDef*> defs;
  defs.reserve(apps_.size());
  for (std::size_t e = 0; e < necus; ++e) {
    defs.clear();
    std::size_t memory = 0;
    double utilization = 0.0;
    for (const std::size_t a : apps_by_name_) {
      if (!genome_hosted_on(a, genome[a], e)) continue;
      defs.push_back(apps_[a]);
      memory += apps_[a]->memory_bytes;
      utilization += apps_[a]->utilization_on(ecus_[e]->mips);
    }
    if (defs.empty()) continue;
    if (memory > ecus_[e]->memory_bytes) return false;       // memory.capacity
    if (defs.size() > 1 && !ecus_[e]->has_mmu) return false;  // mmu-required
    const double capacity = std::max(1, ecus_[e]->cores);
    if (utilization > capacity) return false;  // cpu.overload
    if (!sched_memo_(*ecus_[e], defs, nullptr)) return false;
  }

  // Network pair verdicts + stream bandwidth budget. Replica loops are NOT
  // capped at |ecus| — the verifier iterates the placement's host list, and
  // without a static redundancy error the run never wraps, so the loop count
  // equals the host count.
  std::vector<std::uint64_t> load(model_.networks().size(), 0);
  for (std::size_t i = 0; i < interface_info_.size(); ++i) {
    const InterfaceInfo& info = interface_info_[i];
    if (info.provider_app == kNoApp) continue;
    const std::size_t pg = genome[info.provider_app];
    const std::size_t preplicas = static_cast<std::size_t>(
        std::max(1, apps_[info.provider_app]->replicas));
    for (const std::size_t consumer : info.consumer_apps) {
      if (consumer == kNoApp) continue;
      const std::size_t cg = genome[consumer];
      const std::size_t creplicas =
          static_cast<std::size_t>(std::max(1, apps_[consumer]->replicas));
      for (std::size_t p = 0; p < preplicas; ++p) {
        const std::size_t pe = (pg + p) % necus;
        for (std::size_t c = 0; c < creplicas; ++c) {
          const std::size_t ce = (cg + c) % necus;
          if (pe == ce) continue;
          const PairVerdict& verdict =
              fast_.pairs[(i * necus + pe) * necus + ce];
          if (verdict.fatal) return false;
          if (verdict.bw_net >= 0) {
            load[static_cast<std::size_t>(verdict.bw_net)] += info.stream_bw;
          }
        }
      }
    }
  }
  for (std::size_t k = 0; k < load.size(); ++k) {
    if (load[k] > fast_.net_budget[k]) return false;  // network.bandwidth
  }
  return true;
}

double Explorer::genome_soft_cost(const Genome& genome) const {
  double total = 0.0;

  // Mirrors soft_cost() term by term; per-ECU sums walk apps_by_name_, the
  // same order Assignment::apps_on yields, so the arithmetic is bit-equal.
  double max_util = 0.0;
  double min_util = std::numeric_limits<double>::infinity();
  std::size_t used = 0;
  for (std::size_t e = 0; e < ecus_.size(); ++e) {
    double util = 0.0;
    bool any = false;
    for (const std::size_t a : apps_by_name_) {
      if (!genome_hosted_on(a, genome[a], e)) continue;
      any = true;
      util += apps_[a]->utilization_on(ecus_[e]->mips);
    }
    if (any) {
      ++used;
      max_util = std::max(max_util, util);
      min_util = std::min(min_util, util);
    }
  }
  total += weights_.per_ecu * static_cast<double>(used);
  if (used > 1) total += weights_.load_imbalance * (max_util - min_util);

  const std::size_t n = ecus_.size();
  for (const InterfaceInfo& info : interface_info_) {
    if (info.provider_app == kNoApp) continue;
    const std::size_t pg = genome[info.provider_app];
    const std::size_t preplicas = static_cast<std::size_t>(
        std::max(1, apps_[info.provider_app]->replicas));
    for (const std::size_t consumer : info.consumer_apps) {
      if (consumer == kNoApp) continue;
      const std::size_t cg = genome[consumer];
      const std::size_t creplicas =
          static_cast<std::size_t>(std::max(1, apps_[consumer]->replicas));
      for (std::size_t p = 0; p < preplicas; ++p) {
        for (std::size_t c = 0; c < creplicas; ++c) {
          if ((pg + p) % n == (cg + c) % n) continue;
          total += info.pair_cost;
        }
      }
    }
  }
  return total;
}

double Explorer::evaluate_genome(const Genome& genome) const {
  if (!cache_enabled_) return genome_cost(genome);
  return fast_feasible(genome)
             ? genome_soft_cost(genome)
             : weights_.infeasible_penalty + genome_soft_cost(genome);
}

std::vector<std::string> Explorer::hosts_for(std::size_t app_index,
                                             std::size_t ecu_index) const {
  const int replicas = std::max(1, apps_[app_index]->replicas);
  std::vector<std::string> hosts;
  for (int r = 0; r < replicas; ++r) {
    hosts.push_back(
        ecus_[(ecu_index + static_cast<std::size_t>(r)) % ecus_.size()]
            ->name);
  }
  return hosts;
}

model::Assignment Explorer::decode(const Genome& genome) const {
  model::Assignment assignment;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    assignment.placement[apps_[i]->name] = hosts_for(i, genome[i]);
  }
  return assignment;
}

bool Explorer::feasible(const model::Assignment& assignment) const {
  return !model::Verifier::has_errors(
      verifier_.verify_assignment(model_, assignment));
}

double Explorer::soft_cost(const model::Assignment& assignment) const {
  double total = 0.0;

  // Powered ECUs and utilization spread.
  double max_util = 0.0;
  double min_util = std::numeric_limits<double>::infinity();
  std::size_t used = 0;
  for (const auto* ecu : ecus_) {
    const auto apps = assignment.apps_on(ecu->name);
    double util = 0.0;
    for (const auto& app_name : apps) {
      const model::AppDef* app = model_.app(app_name);
      if (app != nullptr) util += app->utilization_on(ecu->mips);
    }
    if (!apps.empty()) {
      ++used;
      max_util = std::max(max_util, util);
      min_util = std::min(min_util, util);
    }
  }
  total += weights_.per_ecu * static_cast<double>(used);
  if (used > 1) total += weights_.load_imbalance * (max_util - min_util);

  // Communication locality: payload/period rate for cross-ECU pairs.
  for (const auto& info : interface_info_) {
    if (info.provider_app == kNoApp) continue;
    auto provider_it =
        assignment.placement.find(apps_[info.provider_app]->name);
    if (provider_it == assignment.placement.end()) continue;
    for (const std::size_t consumer : info.consumer_apps) {
      auto consumer_it = assignment.placement.find(apps_[consumer]->name);
      if (consumer_it == assignment.placement.end()) continue;
      for (const auto& ph : provider_it->second) {
        for (const auto& ch : consumer_it->second) {
          if (ph == ch) continue;
          total += info.pair_cost;
        }
      }
    }
  }
  return total;
}

double Explorer::cost(const model::Assignment& assignment) const {
  double total = 0.0;
  if (!feasible(assignment)) total += weights_.infeasible_penalty;
  return total + soft_cost(assignment);
}

double Explorer::genome_cost(const Genome& genome) const {
  return cost(decode(genome));
}

double Explorer::cached_genome_cost(
    const Genome& genome, std::atomic<std::uint64_t>* hits) const {
  if (!cache_enabled_) return genome_cost(genome);
  CacheShard& shard = cache_[GenomeHash{}(genome) % kCacheShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(genome);
    if (it != shard.entries.end() && it->second.has_cost) {
      if (hits != nullptr) hits->fetch_add(1, std::memory_order_relaxed);
      return it->second.cost;
    }
  }
  // Compute outside the shard lock (evaluation dominates); a racing
  // duplicate computation stores the identical pure-function value. The
  // genome-native path yields the same bits as cost(decode(genome)).
  const bool feas = fast_feasible(genome);
  const double c = feas ? genome_soft_cost(genome)
                        : weights_.infeasible_penalty + genome_soft_cost(genome);
  std::lock_guard<std::mutex> lock(shard.mutex);
  CacheEntry& entry = shard.entries[genome];
  entry.cost = c;
  entry.has_cost = true;
  entry.feasible = feas;
  entry.has_feasible = true;
  return c;
}

bool Explorer::cached_feasible(const Genome& genome,
                               std::atomic<std::uint64_t>* hits) const {
  if (!cache_enabled_) return feasible(decode(genome));
  CacheShard& shard = cache_[GenomeHash{}(genome) % kCacheShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(genome);
    if (it != shard.entries.end() && it->second.has_feasible) {
      if (hits != nullptr) hits->fetch_add(1, std::memory_order_relaxed);
      return it->second.feasible;
    }
  }
  const bool feas = fast_feasible(genome);
  std::lock_guard<std::mutex> lock(shard.mutex);
  CacheEntry& entry = shard.entries[genome];
  entry.feasible = feas;
  entry.has_feasible = true;
  return feas;
}

void Explorer::clear_cache() {
  for (CacheShard& shard : cache_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
  for (SchedShard& shard : sched_cache_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
  }
}

std::size_t Explorer::cache_size() const {
  std::size_t total = 0;
  for (CacheShard& shard : cache_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

// --- Incremental soft cost ---------------------------------------------------

/// Maintains per-ECU utilization/app counts and per-interface communication
/// contributions for one genome, recomputing only what a single-gene move
/// touches. Every maintained term is recomputed from scratch (never
/// accumulated via +/- deltas), so the state is a pure function of the
/// current genome — chains stay deterministic and drift-free no matter how
/// many moves were applied or reverted.
class Explorer::SoftCostState {
 public:
  SoftCostState(const Explorer& explorer, Genome genome)
      : explorer_(explorer),
        genome_(std::move(genome)),
        util_(explorer.ecus_.size(), 0.0),
        app_count_(explorer.ecus_.size(), 0),
        contrib_(explorer.interface_info_.size(), 0.0),
        touched_(explorer.ecus_.size(), 0) {
    for (std::size_t e = 0; e < util_.size(); ++e) recompute_ecu(e);
    for (std::size_t i = 0; i < contrib_.size(); ++i) recompute_interface(i);
  }

  const Genome& genome() const { return genome_; }

  /// Re-hosts `app` on the ECU run starting at `gene`; O(touched ECUs x apps
  /// + touched interfaces x replica pairs) instead of a full re-score.
  void move(std::size_t app, std::size_t gene) {
    mark_hosts(app, genome_[app]);
    mark_hosts(app, gene);
    genome_[app] = gene;
    for (std::size_t e = 0; e < touched_.size(); ++e) {
      if (touched_[e] != 0) {
        recompute_ecu(e);
        touched_[e] = 0;
      }
    }
    for (const std::size_t i : explorer_.app_interfaces_[app]) {
      recompute_interface(i);
    }
  }

  /// Soft cost of the current genome (no infeasibility penalty).
  double total() const {
    std::size_t used = 0;
    double max_util = 0.0;
    double min_util = std::numeric_limits<double>::infinity();
    for (std::size_t e = 0; e < util_.size(); ++e) {
      if (app_count_[e] > 0) {
        ++used;
        max_util = std::max(max_util, util_[e]);
        min_util = std::min(min_util, util_[e]);
      }
    }
    double total = explorer_.weights_.per_ecu * static_cast<double>(used);
    if (used > 1) {
      total += explorer_.weights_.load_imbalance * (max_util - min_util);
    }
    for (const double contribution : contrib_) total += contribution;
    return total;
  }

 private:
  std::size_t replicas_of(std::size_t app) const {
    return static_cast<std::size_t>(
        std::max(1, explorer_.apps_[app]->replicas));
  }

  bool hosted_on(std::size_t app, std::size_t ecu) const {
    const std::size_t n = explorer_.ecus_.size();
    const std::size_t replicas = replicas_of(app);
    if (replicas >= n) return true;  // host run wraps the whole farm
    const std::size_t gene = genome_[app];
    for (std::size_t r = 0; r < replicas; ++r) {
      if ((gene + r) % n == ecu) return true;
    }
    return false;
  }

  void mark_hosts(std::size_t app, std::size_t gene) {
    const std::size_t n = explorer_.ecus_.size();
    const std::size_t replicas = std::min(replicas_of(app), n);
    for (std::size_t r = 0; r < replicas; ++r) touched_[(gene + r) % n] = 1;
  }

  void recompute_ecu(std::size_t ecu) {
    double util = 0.0;
    int count = 0;
    for (const std::size_t app : explorer_.apps_by_name_) {
      if (hosted_on(app, ecu)) {
        util += explorer_.apps_[app]->utilization_on(explorer_.ecus_[ecu]->mips);
        ++count;
      }
    }
    util_[ecu] = util;
    app_count_[ecu] = count;
  }

  void recompute_interface(std::size_t index) {
    const InterfaceInfo& info = explorer_.interface_info_[index];
    double contribution = 0.0;
    if (info.provider_app != kNoApp) {
      const std::size_t n = explorer_.ecus_.size();
      const std::size_t provider_gene = genome_[info.provider_app];
      const std::size_t provider_replicas = replicas_of(info.provider_app);
      for (const std::size_t consumer : info.consumer_apps) {
        if (consumer == kNoApp) continue;
        const std::size_t consumer_gene = genome_[consumer];
        const std::size_t consumer_replicas = replicas_of(consumer);
        for (std::size_t p = 0; p < provider_replicas; ++p) {
          for (std::size_t c = 0; c < consumer_replicas; ++c) {
            if ((provider_gene + p) % n == (consumer_gene + c) % n) continue;
            contribution += info.pair_cost;
          }
        }
      }
    }
    contrib_[index] = contribution;
  }

  const Explorer& explorer_;
  Genome genome_;
  std::vector<double> util_;
  std::vector<int> app_count_;
  std::vector<double> contrib_;
  std::vector<char> touched_;  ///< scratch ECU marks for move()
};

namespace {

/// Wall-clock stopwatch for exploration throughput gauges.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void Explorer::publish_metrics(const ExplorationResult& result,
                               double wall_seconds) const {
  if (metrics_ == nullptr) return;
  const std::string prefix = "dse." + result.strategy + ".";
  metrics_->counter(prefix + "candidates").add(result.candidates_evaluated);
  metrics_->counter(prefix + "cache_hits").add(result.cache_hits);
  if (wall_seconds > 0.0) {
    metrics_->gauge(prefix + "candidates_per_sec")
        .set(static_cast<double>(result.candidates_evaluated) / wall_seconds);
  }
  if (result.candidates_evaluated > 0) {
    metrics_->gauge(prefix + "cache_hit_rate")
        .set(static_cast<double>(result.cache_hits) /
             static_cast<double>(result.candidates_evaluated));
  }
}

// --- Strategies --------------------------------------------------------------

ExplorationResult Explorer::exhaustive(std::uint64_t max_candidates,
                                       std::size_t threads) {
  ExplorationResult result;
  result.strategy = "exhaustive";
  if (apps_.empty() || ecus_.empty()) return result;
  const WallTimer wall;

  const std::uint64_t necus = ecus_.size();
  const std::uint64_t cap = std::max<std::uint64_t>(1, max_candidates);
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < apps_.size() && total < cap; ++i) {
    total = (total > cap / necus) ? cap : total * necus;
  }
  total = std::min(total, cap);

  // Partitioned sweep: each chunk scans a contiguous index range and keeps
  // its earliest minimum; the merge walks chunks in index order, so the
  // winner ties-break exactly like the serial first-minimum-wins loop.
  struct ChunkBest {
    double cost = std::numeric_limits<double>::infinity();
    Genome genome;
  };
  const std::uint64_t grain = std::max<std::uint64_t>(
      64, total / (8 * std::max<std::size_t>(1, threads)));
  const std::uint64_t chunks = (total + grain - 1) / grain;
  std::vector<ChunkBest> bests(static_cast<std::size_t>(chunks));

  const auto sweep_chunk = [&](std::size_t chunk) {
    const std::uint64_t lo = static_cast<std::uint64_t>(chunk) * grain;
    const std::uint64_t hi = std::min(lo + grain, total);
    // Seed the odometer at index `lo` (genome[d] is digit d, base |ecus|).
    Genome genome(apps_.size(), 0);
    std::uint64_t rest = lo;
    for (std::size_t d = 0; d < genome.size() && rest > 0; ++d) {
      genome[d] = static_cast<std::size_t>(rest % necus);
      rest /= necus;
    }
    ChunkBest best;
    for (std::uint64_t k = lo; k < hi; ++k) {
      const double c = evaluate_genome(genome);
      if (c < best.cost) {
        best.cost = c;
        best.genome = genome;
      }
      std::size_t digit = 0;
      while (digit < genome.size()) {
        if (++genome[digit] < necus) break;
        genome[digit] = 0;
        ++digit;
      }
    }
    bests[chunk] = std::move(best);
  };

  std::optional<concurrency::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  concurrency::parallel_for(pool ? &*pool : nullptr, 0,
                            static_cast<std::size_t>(chunks), 1, sweep_chunk);

  result.candidates_evaluated = total;
  const ChunkBest* winner = nullptr;
  for (const ChunkBest& best : bests) {
    if (!best.genome.empty() &&
        (winner == nullptr || best.cost < winner->cost)) {
      winner = &best;
    }
  }
  if (winner != nullptr) {
    result.assignment = decode(winner->genome);
    result.cost = winner->cost;
    result.feasible = winner->cost < weights_.infeasible_penalty;
  }
  publish_metrics(result, wall.seconds());
  return result;
}

ExplorationResult Explorer::greedy() {
  ExplorationResult result;
  result.strategy = "greedy";
  if (apps_.empty() || ecus_.empty()) return result;
  const WallTimer wall;

  // Apps by decreasing worst-case utilization (on the slowest ECU).
  std::uint64_t min_mips = ecus_[0]->mips;
  for (const auto* ecu : ecus_) min_mips = std::min(min_mips, ecu->mips);
  std::vector<std::size_t> order(apps_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return apps_[a]->utilization_on(min_mips) >
           apps_[b]->utilization_on(min_mips);
  });

  Genome genome(apps_.size(), 0);
  model::Assignment partial;
  for (std::size_t app_index : order) {
    // Trial placements rewrite this app's slot in place (map node stays
    // stable) instead of copying the whole partial assignment per ECU.
    auto& hosts = partial.placement[apps_[app_index]->name];
    bool placed = false;
    for (std::size_t e = 0; e < ecus_.size(); ++e) {
      hosts = hosts_for(app_index, e);
      ++result.candidates_evaluated;
      if (feasible(partial)) {
        genome[app_index] = e;
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Leave it on ECU 0; the final cost carries the penalty.
      hosts = hosts_for(app_index, 0);
      genome[app_index] = 0;
    }
  }
  result.assignment = decode(genome);
  result.cost = cost(result.assignment);
  result.feasible = result.cost < weights_.infeasible_penalty;
  publish_metrics(result, wall.seconds());
  return result;
}

ExplorationResult Explorer::simulated_annealing(std::uint64_t iterations,
                                                std::uint64_t seed,
                                                std::size_t chains,
                                                std::size_t threads) {
  ExplorationResult result = greedy();
  result.strategy = "annealing";
  if (apps_.empty() || ecus_.empty()) return result;
  const WallTimer wall;
  chains = std::max<std::size_t>(1, chains);

  // Recover the genome from the greedy assignment.
  Genome start(apps_.size(), 0);
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const auto it = result.assignment.placement.find(apps_[i]->name);
    if (it != result.assignment.placement.end() && !it->second.empty()) {
      for (std::size_t e = 0; e < ecus_.size(); ++e) {
        if (ecus_[e]->name == it->second.front()) {
          start[i] = e;
          break;
        }
      }
    }
  }

  struct ChainOutcome {
    Genome best;
    std::uint64_t evaluated = 0;
    std::uint64_t hits = 0;
  };
  std::vector<ChainOutcome> outcomes(chains);

  const auto run_chain = [&](std::size_t chain) {
    // Derived, non-overlapping stream per chain: the outcome depends only
    // on (iterations, seed, chain), never on which thread runs it.
    sim::Random rng = sim::Random::stream(seed, chain);
    ChainOutcome& out = outcomes[chain];
    std::atomic<std::uint64_t> hits{0};

    SoftCostState state(*this, start);
    Genome current = start;
    const bool start_feasible = cached_feasible(current, &hits);
    double current_cost =
        state.total() + (start_feasible ? 0.0 : weights_.infeasible_penalty);
    out.best = current;
    double best_cost = current_cost;

    double temperature = std::max(1.0, current_cost * 0.1);
    const double cooling = std::pow(
        0.001 / temperature, 1.0 / static_cast<double>(iterations));
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const auto app =
          static_cast<std::size_t>(rng.next_below(current.size()));
      const auto gene =
          static_cast<std::size_t>(rng.next_below(ecus_.size()));
      ++out.evaluated;
      const std::size_t old_gene = current[app];
      if (gene == old_gene) {
        // Identity move: delta == 0 accepts without consuming randomness,
        // matching the serial acceptance rule; nothing to recompute.
        hits.fetch_add(1, std::memory_order_relaxed);
        temperature *= cooling;
        continue;
      }
      state.move(app, gene);
      const bool feas = cached_feasible(state.genome(), &hits);
      const double candidate_cost =
          state.total() + (feas ? 0.0 : weights_.infeasible_penalty);
      const double delta = candidate_cost - current_cost;
      if (delta <= 0 || rng.chance(std::exp(-delta / temperature))) {
        current[app] = gene;
        current_cost = candidate_cost;
        if (candidate_cost < best_cost) {
          out.best = current;
          best_cost = candidate_cost;
        }
      } else {
        state.move(app, old_gene);  // exact revert (terms recomputed)
      }
      temperature *= cooling;
    }
    out.hits = hits.load();
  };

  std::optional<concurrency::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  concurrency::parallel_for(pool ? &*pool : nullptr, 0, chains, 1, run_chain);

  // Best-of-chains in chain index order (strict < keeps the lowest chain on
  // ties); the winner is re-scored with the full cost so the reported value
  // matches cost(assignment) bit-for-bit.
  Genome best = start;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const ChainOutcome& out : outcomes) {
    result.candidates_evaluated += out.evaluated;
    result.cache_hits += out.hits;
    const double full = cached_genome_cost(out.best, nullptr);
    if (full < best_cost) {
      best = out.best;
      best_cost = full;
    }
  }
  result.assignment = decode(best);
  result.cost = best_cost;
  result.feasible = best_cost < weights_.infeasible_penalty;
  publish_metrics(result, wall.seconds());
  return result;
}

ExplorationResult Explorer::genetic(std::size_t population,
                                    std::size_t generations,
                                    std::uint64_t seed,
                                    std::size_t threads) {
  ExplorationResult result;
  result.strategy = "genetic";
  if (apps_.empty() || ecus_.empty()) return result;
  const WallTimer wall;

  std::optional<concurrency::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  concurrency::ThreadPool* executor = pool ? &*pool : nullptr;
  std::atomic<std::uint64_t> hits{0};

  sim::Random rng(seed);
  std::vector<Genome> current(population, Genome(apps_.size(), 0));
  for (auto& genome : current) {
    for (auto& gene : genome) {
      gene = static_cast<std::size_t>(rng.next_below(ecus_.size()));
    }
  }
  std::vector<double> fitness(population);
  result.candidates_evaluated += population;
  concurrency::parallel_for(executor, 0, population, 1, [&](std::size_t i) {
    fitness[i] = cached_genome_cost(current[i], &hits);
  });

  Genome best = current[0];
  double best_cost = fitness[0];
  for (std::size_t i = 1; i < population; ++i) {
    if (fitness[i] < best_cost) {
      best = current[i];
      best_cost = fitness[i];
    }
  }

  for (std::size_t gen = 0; gen < generations; ++gen) {
    // Breeding is serial — tournament and mutation draw from the one seeded
    // generator and only read the previous generation's fitness — so the
    // genome sequence is identical for every thread count. Fitness, the
    // expensive verifier-bound part, then fans out with results landing in
    // index-addressed slots.
    std::vector<Genome> children;
    children.reserve(population > 0 ? population - 1 : 0);
    while (children.size() + 1 < population) {
      auto tournament = [&] {
        const auto a = static_cast<std::size_t>(rng.next_below(population));
        const auto b = static_cast<std::size_t>(rng.next_below(population));
        return fitness[a] <= fitness[b] ? a : b;
      };
      const Genome& parent_a = current[tournament()];
      const Genome& parent_b = current[tournament()];
      Genome child(apps_.size());
      for (std::size_t g = 0; g < child.size(); ++g) {
        child[g] = rng.chance(0.5) ? parent_a[g] : parent_b[g];
        if (rng.chance(0.05)) {
          child[g] = static_cast<std::size_t>(rng.next_below(ecus_.size()));
        }
      }
      children.push_back(std::move(child));
    }
    std::vector<double> child_fitness(children.size());
    result.candidates_evaluated += children.size();
    concurrency::parallel_for(
        executor, 0, children.size(), 1, [&](std::size_t i) {
          child_fitness[i] = cached_genome_cost(children[i], &hits);
        });

    // Elitism: the champion as of the start of this generation leads the
    // next pool; the champion update scans children in index order.
    std::vector<Genome> next;
    std::vector<double> next_fitness;
    next.reserve(population);
    next_fitness.reserve(population);
    next.push_back(best);
    next_fitness.push_back(best_cost);
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (child_fitness[i] < best_cost) {
        best = children[i];
        best_cost = child_fitness[i];
      }
      next.push_back(std::move(children[i]));
      next_fitness.push_back(child_fitness[i]);
    }
    current = std::move(next);
    fitness = std::move(next_fitness);
  }
  result.cache_hits = hits.load();
  result.assignment = decode(best);
  result.cost = best_cost;
  result.feasible = best_cost < weights_.infeasible_penalty;
  publish_metrics(result, wall.seconds());
  return result;
}

}  // namespace dynaplat::dse
