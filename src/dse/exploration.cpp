#include "dse/exploration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dse/schedulability.hpp"

namespace dynaplat::dse {

Explorer::Explorer(const model::SystemModel& system_model,
                   CostWeights weights)
    : model_(system_model), weights_(weights) {
  verifier_.set_schedulability_hook(make_verifier_hook());
  for (const auto& app : model_.apps()) apps_.push_back(&app);
  for (const auto& ecu : model_.ecus()) ecus_.push_back(&ecu);
}

std::vector<std::string> Explorer::hosts_for(std::size_t app_index,
                                             std::size_t ecu_index) const {
  const int replicas = std::max(1, apps_[app_index]->replicas);
  std::vector<std::string> hosts;
  for (int r = 0; r < replicas; ++r) {
    hosts.push_back(
        ecus_[(ecu_index + static_cast<std::size_t>(r)) % ecus_.size()]
            ->name);
  }
  return hosts;
}

model::Assignment Explorer::decode(const Genome& genome) const {
  model::Assignment assignment;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    assignment.placement[apps_[i]->name] = hosts_for(i, genome[i]);
  }
  return assignment;
}

bool Explorer::feasible(const model::Assignment& assignment) const {
  return !model::Verifier::has_errors(
      verifier_.verify_assignment(model_, assignment));
}

double Explorer::cost(const model::Assignment& assignment) const {
  double total = 0.0;
  if (!feasible(assignment)) total += weights_.infeasible_penalty;

  // Powered ECUs and utilization spread.
  double max_util = 0.0;
  double min_util = 2.0;
  std::size_t used = 0;
  for (const auto* ecu : ecus_) {
    const auto apps = assignment.apps_on(ecu->name);
    double util = 0.0;
    for (const auto& app_name : apps) {
      const model::AppDef* app = model_.app(app_name);
      if (app != nullptr) util += app->utilization_on(ecu->mips);
    }
    if (!apps.empty()) {
      ++used;
      max_util = std::max(max_util, util);
      min_util = std::min(min_util, util);
    }
  }
  total += weights_.per_ecu * static_cast<double>(used);
  if (used > 1) total += weights_.load_imbalance * (max_util - min_util);

  // Communication locality: payload/period rate for cross-ECU pairs.
  for (const auto& interface : model_.interfaces()) {
    const model::AppDef* provider = model_.provider_of(interface.name);
    if (provider == nullptr) continue;
    auto provider_it = assignment.placement.find(provider->name);
    if (provider_it == assignment.placement.end()) continue;
    for (const model::AppDef* consumer :
         model_.consumers_of(interface.name)) {
      auto consumer_it = assignment.placement.find(consumer->name);
      if (consumer_it == assignment.placement.end()) continue;
      for (const auto& ph : provider_it->second) {
        for (const auto& ch : consumer_it->second) {
          if (ph == ch) continue;
          const double period_ms =
              interface.period > 0
                  ? static_cast<double>(interface.period) / 1e6
                  : 100.0;
          total += weights_.cross_ecu_comm *
                   static_cast<double>(interface.payload_bytes) / period_ms;
        }
      }
    }
  }
  return total;
}

double Explorer::genome_cost(const Genome& genome) const {
  return cost(decode(genome));
}

ExplorationResult Explorer::exhaustive(std::uint64_t max_candidates) {
  ExplorationResult result;
  result.strategy = "exhaustive";
  if (apps_.empty() || ecus_.empty()) return result;

  Genome genome(apps_.size(), 0);
  Genome best_genome;
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    ++result.candidates_evaluated;
    const double c = genome_cost(genome);
    if (c < best) {
      best = c;
      best_genome = genome;
    }
    if (result.candidates_evaluated >= max_candidates) break;
    // Odometer increment.
    std::size_t digit = 0;
    while (digit < genome.size()) {
      if (++genome[digit] < ecus_.size()) break;
      genome[digit] = 0;
      ++digit;
    }
    if (digit == genome.size()) break;
  }
  if (!best_genome.empty()) {
    result.assignment = decode(best_genome);
    result.cost = best;
    result.feasible = best < weights_.infeasible_penalty;
  }
  return result;
}

ExplorationResult Explorer::greedy() {
  ExplorationResult result;
  result.strategy = "greedy";
  if (apps_.empty() || ecus_.empty()) return result;

  // Apps by decreasing worst-case utilization (on the slowest ECU).
  std::uint64_t min_mips = ecus_[0]->mips;
  for (const auto* ecu : ecus_) min_mips = std::min(min_mips, ecu->mips);
  std::vector<std::size_t> order(apps_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return apps_[a]->utilization_on(min_mips) >
           apps_[b]->utilization_on(min_mips);
  });

  Genome genome(apps_.size(), 0);
  model::Assignment partial;
  for (std::size_t app_index : order) {
    bool placed = false;
    for (std::size_t e = 0; e < ecus_.size(); ++e) {
      model::Assignment trial = partial;
      trial.placement[apps_[app_index]->name] = hosts_for(app_index, e);
      ++result.candidates_evaluated;
      if (feasible(trial)) {
        partial = std::move(trial);
        genome[app_index] = e;
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Leave it on ECU 0; the final cost carries the penalty.
      partial.placement[apps_[app_index]->name] = hosts_for(app_index, 0);
      genome[app_index] = 0;
    }
  }
  result.assignment = decode(genome);
  result.cost = cost(result.assignment);
  result.feasible = result.cost < weights_.infeasible_penalty;
  return result;
}

ExplorationResult Explorer::simulated_annealing(std::uint64_t iterations,
                                                std::uint64_t seed) {
  ExplorationResult result = greedy();
  result.strategy = "annealing";
  if (apps_.empty() || ecus_.empty()) return result;

  sim::Random rng(seed);
  Genome current(apps_.size(), 0);
  // Recover genome from the greedy assignment.
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const auto it = result.assignment.placement.find(apps_[i]->name);
    if (it != result.assignment.placement.end() && !it->second.empty()) {
      for (std::size_t e = 0; e < ecus_.size(); ++e) {
        if (ecus_[e]->name == it->second.front()) {
          current[i] = e;
          break;
        }
      }
    }
  }
  double current_cost = genome_cost(current);
  Genome best = current;
  double best_cost = current_cost;

  double temperature = std::max(1.0, current_cost * 0.1);
  const double cooling = std::pow(0.001 / temperature,
                                  1.0 / static_cast<double>(iterations));
  for (std::uint64_t i = 0; i < iterations; ++i) {
    Genome neighbour = current;
    const auto app = static_cast<std::size_t>(
        rng.next_below(neighbour.size()));
    neighbour[app] = static_cast<std::size_t>(rng.next_below(ecus_.size()));
    ++result.candidates_evaluated;
    const double neighbour_cost = genome_cost(neighbour);
    const double delta = neighbour_cost - current_cost;
    if (delta <= 0 || rng.chance(std::exp(-delta / temperature))) {
      current = std::move(neighbour);
      current_cost = neighbour_cost;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
    temperature *= cooling;
  }
  result.assignment = decode(best);
  result.cost = best_cost;
  result.feasible = best_cost < weights_.infeasible_penalty;
  return result;
}

ExplorationResult Explorer::genetic(std::size_t population,
                                    std::size_t generations,
                                    std::uint64_t seed) {
  ExplorationResult result;
  result.strategy = "genetic";
  if (apps_.empty() || ecus_.empty()) return result;

  sim::Random rng(seed);
  std::vector<Genome> pool(population, Genome(apps_.size(), 0));
  for (auto& genome : pool) {
    for (auto& gene : genome) {
      gene = static_cast<std::size_t>(rng.next_below(ecus_.size()));
    }
  }
  std::vector<double> fitness(population);
  auto evaluate = [&](const Genome& g) {
    ++result.candidates_evaluated;
    return genome_cost(g);
  };
  for (std::size_t i = 0; i < population; ++i) fitness[i] = evaluate(pool[i]);

  Genome best = pool[0];
  double best_cost = fitness[0];
  for (std::size_t i = 1; i < population; ++i) {
    if (fitness[i] < best_cost) {
      best = pool[i];
      best_cost = fitness[i];
    }
  }

  for (std::size_t gen = 0; gen < generations; ++gen) {
    std::vector<Genome> next;
    std::vector<double> next_fitness;
    next.reserve(population);
    // Elitism: keep the champion.
    next.push_back(best);
    next_fitness.push_back(best_cost);
    while (next.size() < population) {
      auto tournament = [&] {
        const auto a = static_cast<std::size_t>(rng.next_below(population));
        const auto b = static_cast<std::size_t>(rng.next_below(population));
        return fitness[a] <= fitness[b] ? a : b;
      };
      const Genome& parent_a = pool[tournament()];
      const Genome& parent_b = pool[tournament()];
      Genome child(apps_.size());
      for (std::size_t g = 0; g < child.size(); ++g) {
        child[g] = rng.chance(0.5) ? parent_a[g] : parent_b[g];
        if (rng.chance(0.05)) {
          child[g] = static_cast<std::size_t>(rng.next_below(ecus_.size()));
        }
      }
      const double child_cost = evaluate(child);
      if (child_cost < best_cost) {
        best = child;
        best_cost = child_cost;
      }
      next.push_back(std::move(child));
      next_fitness.push_back(child_cost);
    }
    pool = std::move(next);
    fitness = std::move(next_fitness);
  }
  result.assignment = decode(best);
  result.cost = best_cost;
  result.feasible = best_cost < weights_.infeasible_penalty;
  return result;
}

}  // namespace dynaplat::dse
