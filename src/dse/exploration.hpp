// Design space exploration over app-to-ECU mappings (paper Sec. 2.3; related
// work [9], [14]).
//
// The explorer searches concrete deployments of a modeled application set
// onto a modeled hardware architecture, scoring each candidate with the
// verification engine (hard feasibility) and a soft cost that rewards ECU
// consolidation, load balance and communication locality. Four strategies
// with very different cost/quality trade-offs are provided and compared in
// E5: exhaustive, greedy first-fit decreasing, simulated annealing, and a
// genetic algorithm.
//
// Hot-path machinery (DESIGN.md "DSE performance & threading model"):
//  * Exhaustive sweeps and genetic fitness evaluation fan out over a
//    concurrency::ThreadPool; partial results live in index-addressed slots
//    and are merged in index order, so any thread count (including 0 =
//    inline serial) reproduces the same best assignment for the same seed.
//  * Simulated annealing runs N independent chains on derived
//    sim::Random::stream(seed, chain) generators; the best-of-chains merge
//    walks chains in index order.
//  * A genome-keyed memoization cache (sharded, per-shard mutex) remembers
//    cost and feasibility so repeated candidates skip the verifier.
//  * Annealing's single-gene moves use an incremental evaluator that only
//    recomputes the per-ECU utilization and per-interface communication
//    terms the moved app touches.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/system_model.hpp"
#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace dynaplat::dse {

struct ExplorationResult {
  bool feasible = false;
  model::Assignment assignment;
  double cost = 0.0;
  std::uint64_t candidates_evaluated = 0;
  /// Candidates whose cost/feasibility came from the memoization cache
  /// (verifier skipped). Always <= candidates_evaluated.
  std::uint64_t cache_hits = 0;
  std::string strategy;
};

struct CostWeights {
  double per_ecu = 10.0;         ///< each powered ECU (consolidation pull)
  double load_imbalance = 5.0;   ///< max - min ECU utilization
  double cross_ecu_comm = 1.0;   ///< per cross-ECU interface byte/ms
  double infeasible_penalty = 1e6;
};

class Explorer {
 public:
  Explorer(const model::SystemModel& system_model, CostWeights weights = {});

  /// Soft cost of a concrete assignment (adds the penalty when the
  /// verification engine reports errors).
  double cost(const model::Assignment& assignment) const;
  bool feasible(const model::Assignment& assignment) const;

  /// Enumerates every mapping (|ecus|^|apps| candidates) — exact but only
  /// viable for small systems. `threads` > 0 partitions the sweep across a
  /// thread pool; the result is identical to the serial sweep.
  ExplorationResult exhaustive(std::uint64_t max_candidates = 2'000'000,
                               std::size_t threads = 0);

  /// Apps by decreasing utilization onto the first ECU where the partial
  /// assignment stays feasible.
  ExplorationResult greedy();

  /// Simulated annealing from the greedy seed. `chains` independent chains
  /// run on sim::Random::stream(seed, chain) generators (across `threads`
  /// pool workers when > 0) and the best result wins; the outcome depends
  /// only on (iterations, seed, chains), never on `threads`.
  ExplorationResult simulated_annealing(std::uint64_t iterations = 20'000,
                                        std::uint64_t seed = 1,
                                        std::size_t chains = 1,
                                        std::size_t threads = 0);

  /// Genetic algorithm: tournament selection, uniform crossover, point
  /// mutation. Offspring are bred serially from the seeded generator (so
  /// the genome sequence is reproducible) and their fitness is evaluated in
  /// parallel; results are merged in population order, making the outcome
  /// independent of `threads`.
  ExplorationResult genetic(std::size_t population = 32,
                            std::size_t generations = 200,
                            std::uint64_t seed = 1,
                            std::size_t threads = 0);

  /// Memoization controls (cache is on by default; disabling restores the
  /// legacy always-reverify behaviour, used as the bench baseline).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  void clear_cache();
  std::size_t cache_size() const;

  /// Publishes exploration throughput into a metrics registry: per run,
  /// counters "dse.<strategy>.candidates" / "dse.<strategy>.cache_hits" and
  /// gauges "dse.<strategy>.candidates_per_sec" /
  /// "dse.<strategy>.cache_hit_rate". Null (the default) disables publication.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  /// White-box access for the fast-path cross-validation tests
  /// (tests/concurrency_test.cpp), which compare fast_feasible() /
  /// genome_soft_cost() against the full verifier genome by genome.
  friend class TestProbe;

  using Genome = std::vector<std::size_t>;  // app index -> ecu index

  /// FNV-1a over genes with a final avalanche; also picks the cache shard.
  struct GenomeHash {
    std::size_t operator()(const Genome& genome) const noexcept {
      std::uint64_t h = 1469598103934665603ULL;
      for (const std::size_t gene : genome) {
        h ^= static_cast<std::uint64_t>(gene);
        h *= 1099511628211ULL;
      }
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };

  struct CacheEntry {
    double cost = 0.0;
    bool has_cost = false;
    bool feasible = false;
    bool has_feasible = false;
  };

  struct CacheShard {
    std::mutex mutex;
    std::unordered_map<Genome, CacheEntry, GenomeHash> entries;
  };

  /// Second memoization level below the genome cache: the verifier's
  /// schedulability hook is a pure function of (ECU, hosted app set), and
  /// across candidates the same per-ECU app subsets recur far more often
  /// than whole genomes — so even a cache-miss genome usually verifies all
  /// its ECUs from this cache instead of re-running RTA/TT synthesis.
  struct SchedKey {
    const model::EcuDef* ecu = nullptr;
    std::vector<const model::AppDef*> apps;  ///< in hook call order
    bool operator==(const SchedKey& other) const {
      return ecu == other.ecu && apps == other.apps;
    }
  };
  struct SchedKeyHash {
    std::size_t operator()(const SchedKey& key) const noexcept {
      std::uint64_t h = reinterpret_cast<std::uintptr_t>(key.ecu);
      for (const auto* app : key.apps) {
        h ^= reinterpret_cast<std::uintptr_t>(app) + 0x9E3779B97F4A7C15ULL +
             (h << 6) + (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct SchedEntry {
    bool ok = false;
    std::string why;
  };
  struct SchedShard {
    std::mutex mutex;
    std::unordered_map<SchedKey, SchedEntry, SchedKeyHash> entries;
  };

  /// Interface topology resolved once at construction so per-candidate
  /// scoring does not re-scan the app list for providers/consumers.
  struct InterfaceInfo {
    const model::InterfaceDef* def = nullptr;
    std::size_t provider_app = kNoApp;       ///< index into apps_
    std::vector<std::size_t> consumer_apps;  ///< model order, as consumers_of
    double pair_cost = 0.0;  ///< weighted cost of one cross-ECU host pair
    /// Per cross-ECU pair stream bandwidth (0 unless stream paradigm).
    std::uint64_t stream_bw = 0;
  };

  /// Genome-native feasibility tables, compiled once per model. All decoded
  /// genomes deploy every app with replica runs on consecutive ECUs, so the
  /// verifier's rules factor into (a) model-only facts that hold for every
  /// genome, (b) per-(app, ECU) host admissibility, (c) per-(ECU, hosted
  /// set) capacity/schedulability (the latter memoized in sched_cache_) and
  /// (d) per-(interface, ECU pair) network verdicts plus a genome-summed
  /// stream bandwidth budget. fast_feasible() walks these tables instead of
  /// re-deriving them from strings; it must stay verdict-identical to
  /// feasible(decode(genome)) — tests/concurrency_test.cpp cross-checks it
  /// against the full verifier on randomized genomes.
  struct PairVerdict {
    bool fatal = false;    ///< unreachable or latency floor violated
    std::int32_t bw_net = -1;  ///< network index for stream load, -1 = none
  };
  struct FastModel {
    bool static_error = false;  ///< model-only error rule fired
    std::vector<char> app_ecu_ok;       ///< [app * necus + ecu]
    std::vector<PairVerdict> pairs;     ///< [(ifc * necus + pecu) * necus + cecu]
    std::vector<std::uint64_t> net_budget;  ///< 75% usable bitrate per network
  };

  static constexpr std::size_t kNoApp = static_cast<std::size_t>(-1);
  static constexpr std::size_t kCacheShards = 16;

  /// Incremental soft-cost evaluator for annealing's single-gene moves;
  /// defined in exploration.cpp.
  class SoftCostState;

  model::Assignment decode(const Genome& genome) const;
  double genome_cost(const Genome& genome) const;
  /// Soft terms only (no infeasibility penalty): powered ECUs, load
  /// imbalance, cross-ECU communication.
  double soft_cost(const model::Assignment& assignment) const;

  void build_fast_model();
  /// True iff app's replica run starting at `gene` covers `ecu`.
  bool genome_hosted_on(std::size_t app, std::size_t gene,
                        std::size_t ecu) const;
  /// Verdict-identical to feasible(decode(genome)), via FastModel tables.
  bool fast_feasible(const Genome& genome) const;
  /// Bit-identical to soft_cost(decode(genome)): same terms accumulated in
  /// the same order (per-ECU sums walk apps_by_name_, mirroring
  /// Assignment::apps_on), without materializing the assignment.
  double genome_soft_cost(const Genome& genome) const;
  /// genome_cost via the fast path when the cache is enabled, else the
  /// legacy decode-and-verify path (the bench baseline).
  double evaluate_genome(const Genome& genome) const;

  /// Cache-backed variants; safe to call from pool workers. `hits` (may be
  /// null) is bumped when the verifier was skipped.
  double cached_genome_cost(const Genome& genome,
                            std::atomic<std::uint64_t>* hits) const;
  bool cached_feasible(const Genome& genome,
                       std::atomic<std::uint64_t>* hits) const;

  /// Apps with replicas occupy `replicas` consecutive ECUs starting at the
  /// gene value (wrapping), so every genome stays replica-complete.
  std::vector<std::string> hosts_for(std::size_t app_index,
                                     std::size_t ecu_index) const;

  void publish_metrics(const ExplorationResult& result,
                       double wall_seconds) const;

  const model::SystemModel& model_;
  CostWeights weights_;
  model::Verifier verifier_;
  /// The (ECU, app set) memo around make_verifier_hook(); installed into
  /// verifier_ and called directly by fast_feasible().
  model::Verifier::SchedulabilityHook sched_memo_;
  std::vector<const model::AppDef*> apps_;
  std::vector<const model::EcuDef*> ecus_;

  FastModel fast_;
  std::vector<InterfaceInfo> interface_info_;
  std::vector<std::size_t> apps_by_name_;  ///< app indices, name-sorted
  /// app index -> indices into interface_info_ the app provides or consumes.
  std::vector<std::vector<std::size_t>> app_interfaces_;

  bool cache_enabled_ = true;
  obs::MetricsRegistry* metrics_ = nullptr;
  mutable std::array<CacheShard, kCacheShards> cache_;
  mutable std::array<SchedShard, kCacheShards> sched_cache_;
};

}  // namespace dynaplat::dse
