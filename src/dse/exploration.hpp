// Design space exploration over app-to-ECU mappings (paper Sec. 2.3; related
// work [9], [14]).
//
// The explorer searches concrete deployments of a modeled application set
// onto a modeled hardware architecture, scoring each candidate with the
// verification engine (hard feasibility) and a soft cost that rewards ECU
// consolidation, load balance and communication locality. Four strategies
// with very different cost/quality trade-offs are provided and compared in
// E5: exhaustive, greedy first-fit decreasing, simulated annealing, and a
// genetic algorithm.
#pragma once

#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "model/verifier.hpp"
#include "sim/random.hpp"

namespace dynaplat::dse {

struct ExplorationResult {
  bool feasible = false;
  model::Assignment assignment;
  double cost = 0.0;
  std::uint64_t candidates_evaluated = 0;
  std::string strategy;
};

struct CostWeights {
  double per_ecu = 10.0;         ///< each powered ECU (consolidation pull)
  double load_imbalance = 5.0;   ///< max - min ECU utilization
  double cross_ecu_comm = 1.0;   ///< per cross-ECU interface byte/ms
  double infeasible_penalty = 1e6;
};

class Explorer {
 public:
  Explorer(const model::SystemModel& system_model, CostWeights weights = {});

  /// Soft cost of a concrete assignment (adds the penalty when the
  /// verification engine reports errors).
  double cost(const model::Assignment& assignment) const;
  bool feasible(const model::Assignment& assignment) const;

  /// Enumerates every mapping (|ecus|^|apps| candidates) — exact but only
  /// viable for small systems.
  ExplorationResult exhaustive(std::uint64_t max_candidates = 2'000'000);

  /// Apps by decreasing utilization onto the first ECU where the partial
  /// assignment stays feasible.
  ExplorationResult greedy();

  /// Simulated annealing from the greedy seed.
  ExplorationResult simulated_annealing(std::uint64_t iterations = 20'000,
                                        std::uint64_t seed = 1);

  /// Genetic algorithm: tournament selection, uniform crossover, point
  /// mutation.
  ExplorationResult genetic(std::size_t population = 32,
                            std::size_t generations = 200,
                            std::uint64_t seed = 1);

 private:
  using Genome = std::vector<std::size_t>;  // app index -> ecu index

  model::Assignment decode(const Genome& genome) const;
  double genome_cost(const Genome& genome) const;
  /// Apps with replicas occupy `replicas` consecutive ECUs starting at the
  /// gene value (wrapping), so every genome stays replica-complete.
  std::vector<std::string> hosts_for(std::size_t app_index,
                                     std::size_t ecu_index) const;

  const model::SystemModel& model_;
  CostWeights weights_;
  model::Verifier verifier_;
  std::vector<const model::AppDef*> apps_;
  std::vector<const model::EcuDef*> ecus_;
};

}  // namespace dynaplat::dse
