// Online admission control and backend schedule synthesis.
//
// Paper Sec. 3.1 ("CPU"): generating a new schedule at runtime is
// potentially computationally expensive; the proposal is to synthesize the
// schedule *in the backend*, validate it by simulation against the
// installing vehicle's configuration, and ship the table to the ECU, which
// only runs a cheap admission test. Related work: [6] compositional
// admission control, [19] online schedulability analysis, [21] cloud-based
// schedule management.
#pragma once

#include <optional>
#include <string>

#include "dse/schedulability.hpp"

namespace dynaplat::dse {

struct AdmissionDecision {
  bool admitted = false;
  std::string reason;
  /// Instruction estimate of the analysis that produced the decision — what
  /// the deciding CPU must spend (ECU-local admission vs backend synthesis).
  std::uint64_t analysis_instructions = 0;
  /// New TT table when one was synthesized.
  std::optional<TtTable> table;
};

/// ECU-local admission control: a fast utilization + RTA test without table
/// synthesis. Cheap enough to run on the target ECU itself.
class AdmissionController {
 public:
  AdmissionDecision admit(const std::vector<AnalysisTask>& existing,
                          const std::vector<AnalysisTask>& incoming) const;

  /// Cost model of the local test: ~RTA is O(n^2 * iterations).
  static std::uint64_t local_test_cost(std::size_t task_count);
};

/// Backend schedule server: full TT synthesis plus validation by simulating
/// the resulting table against the vehicle's task configuration. Expensive,
/// but the cost lands on the backend, not the ECU.
class ScheduleServer {
 public:
  struct Artifact {
    bool feasible = false;
    TtTable table;
    /// Simulation-validated: two hyperperiods with zero deadline misses.
    bool validated = false;
    std::uint64_t synthesis_instructions = 0;
    std::string reason;
  };

  /// Synthesizes and validates a schedule for the full task set of one ECU.
  Artifact synthesize(const std::vector<AnalysisTask>& tasks,
                      std::uint64_t ecu_mips) const;

  /// Cost model of full synthesis + simulation (per job in hyperperiod).
  static std::uint64_t synthesis_cost(std::size_t jobs_in_hyperperiod);
};

/// Validates a TT table by *simulation*: instantiates a scratch Processor
/// with the table and the task set, runs two hyperperiods and checks for
/// deadline misses. This is the backend's "test this schedule in
/// simulations ... against the current configuration of the installing
/// vehicle".
bool validate_by_simulation(const TtTable& table,
                            const std::vector<AnalysisTask>& tasks,
                            std::uint64_t ecu_mips,
                            std::string* why = nullptr);

}  // namespace dynaplat::dse
