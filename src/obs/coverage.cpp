#include "obs/coverage.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace dynaplat::obs {

std::uint32_t CoverageMap::key(std::string_view name) {
  auto it = index_.find(std::string{name});
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  counts_.push_back(0);
  index_.emplace(names_.back(), id);
  return id;
}

std::uint64_t CoverageMap::count(std::string_view name) const {
  auto it = index_.find(std::string{name});
  return it == index_.end() ? 0 : counts_[it->second];
}

std::size_t CoverageMap::unique_hit_count() const {
  std::size_t covered = 0;
  for (const std::uint64_t count : counts_) {
    if (count > 0) ++covered;
  }
  return covered;
}

std::uint64_t CoverageMap::fingerprint() const {
  std::vector<std::size_t> order(names_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return names_[a] < names_[b];
  });
  std::uint64_t hash = 1469598103934665603ull;
  auto fold = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  for (std::size_t i : order) {
    fold(names_[i].data(), names_[i].size());
    fold(&counts_[i], sizeof(counts_[i]));
  }
  return hash;
}

bool CoverageMap::merge_snapshot_json(std::string_view json_text) {
  json::Value doc;
  if (!json::parse(json_text, &doc) || !doc.is_object()) return false;
  for (const auto& [name, value] : doc.object) {
    if (!value.is_number() || value.number < 0.0) return false;
  }
  for (const auto& [name, value] : doc.object) {
    const auto count = static_cast<std::uint64_t>(std::llround(value.number));
    if (count == 0) {
      key(name);  // preserve reached-key sets even at count 0
    } else {
      hit(key(name), count);
    }
  }
  return true;
}

void CoverageMap::merge_from(const CoverageMap& other) {
  for (std::size_t i = 0; i < other.names_.size(); ++i) {
    if (other.counts_[i] == 0) {
      key(other.names_[i]);  // preserve reached-key sets even at count 0
    } else {
      hit(key(other.names_[i]), other.counts_[i]);
    }
  }
}

std::string CoverageMap::snapshot_json() const {
  std::vector<std::size_t> order(names_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return names_[a] < names_[b];
  });
  std::string out = "{";
  bool first = true;
  char buf[32];
  for (std::size_t i : order) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += names_[i];  // keys are identifier-style, no escaping needed
    out += "\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
  }
  out += "}";
  return out;
}

void CoverageMap::clear() {
  index_.clear();
  names_.clear();
  counts_.clear();
}

}  // namespace dynaplat::obs
