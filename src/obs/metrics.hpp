// Vehicle-wide metrics registry: counters, gauges and fixed-bucket
// histograms with interned names and lock-free updates.
//
// Registration (name -> instrument) takes a mutex once; the returned
// references are stable for the registry's lifetime (deque storage), so hot
// paths cache them and update through relaxed atomics — safe under the
// src/concurrency thread pool (DSE fitness workers, Monte-Carlo campaigns)
// as well as on the simulator thread.
//
// snapshot_json() renders the whole registry as one JSON document, which
// platform::DiagnosticsService surfaces next to the vehicle fault store.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dynaplat::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (utilization, queue depth, rate estimates).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i], the last
/// implicit bucket counts the overflow. Bounds are fixed at registration so
/// observation is a branchless-ish scan over a handful of doubles plus one
/// relaxed increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  std::uint64_t total_count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = total_count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Nearest-rank quantile estimate from the bucket counts: the upper bound
  /// of the bucket holding rank ceil(q * count), clamped to the observed
  /// max (the overflow bucket reports the max). 0 when empty.
  double quantile(double q) const;

  /// Number of buckets including the overflow bucket.
  std::size_t bucket_count() const { return counts_.size(); }
  /// Inclusive upper bound of bucket i (infinity for the overflow bucket).
  double upper_bound(std::size_t i) const;
  std::uint64_t count_at(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // sorted ascending
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is only used on first registration; later callers get
  /// the existing histogram regardless of the bounds they pass.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = latency_buckets_ns());

  /// Default bucket ladder for nanosecond latencies: 1us .. 10s, decades.
  static std::vector<double> latency_buckets_ns();

  std::size_t counter_count() const;
  std::size_t gauge_count() const;
  std::size_t histogram_count() const;

  /// Whole-registry snapshot as a JSON object with "counters", "gauges" and
  /// "histograms" sections, names sorted for deterministic output.
  std::string snapshot_json() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
    template <typename... Args>
    explicit Named(std::string n, Args&&... args)
        : name(std::move(n)), instrument(std::forward<Args>(args)...) {}
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
};

}  // namespace dynaplat::obs
