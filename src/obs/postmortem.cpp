#include "obs/postmortem.hpp"

#include <cstdio>
#include <vector>

#include "obs/json.hpp"

namespace dynaplat::obs {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

std::string make_postmortem_bundle(const PostMortemInput& input) {
  std::string out = "{\"postmortem\":{";
  out += "\"seed\":";
  append_u64(out, input.seed);
  out += ",\"verdict\":\"" + json::escape(input.verdict) + "\"";
  out += ",\"detail\":\"" + json::escape(input.detail) + "\"";

  if (input.trace != nullptr) {
    out += ",\"trace_dropped\":";
    append_u64(out, input.trace->dropped());
    out += ",\"trace_recorded\":";
    append_u64(out, input.trace->recorded());
    out += ",\"trace_tail\":[";
    // Keep only the newest `trace_tail` retained events, oldest first.
    const std::size_t retained = input.trace->size();
    const std::size_t skip =
        retained > input.trace_tail ? retained - input.trace_tail : 0;
    std::size_t index = 0;
    bool first = true;
    input.trace->for_each([&](const Event& event) {
      if (index++ < skip) return;
      if (!first) out += ",";
      first = false;
      out += "{\"at\":";
      append_i64(out, event.at);
      out += ",\"source\":\"" +
             json::escape(input.trace->name_of(event.source)) + "\"";
      out += ",\"name\":\"" + json::escape(input.trace->name_of(event.name)) +
             "\"";
      out += ",\"value\":";
      append_i64(out, event.value);
      out += ",\"category\":\"";
      out += category_name(event.category);
      out += "\",\"type\":\"";
      out += event_type_name(event.type);
      out += "\"}";
    });
    out += "]";
  }

  if (input.metrics != nullptr) {
    out += ",\"metrics\":" + input.metrics->snapshot_json();
  }
  if (input.coverage != nullptr) {
    out += ",\"coverage\":" + input.coverage->snapshot_json();
  }
  out += "}}";
  return out;
}

bool write_postmortem_file(const PostMortemInput& input,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string bundle = make_postmortem_bundle(input);
  const std::size_t written = std::fwrite(bundle.data(), 1, bundle.size(), f);
  std::fclose(f);
  return written == bundle.size();
}

}  // namespace dynaplat::obs
