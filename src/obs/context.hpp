// Causal trace context for end-to-end dataflow tracing (paper Sec. 3.4).
//
// A TraceContext is stamped where a chain starts (publish, RPC call),
// carried through the transport wire format in the payload headroom,
// survives reliable-mode retransmission (the wire bytes are pinned, so a
// retransmit carries the original sent timestamp) and dup suppression (the
// receiver drops duplicates *before* accounting the hop), and is closed in
// the subscriber / RPC-response callback. Each hop attributes its latency to
// one of four segments — serialize, bus, reassembly, dispatch — and the
// terminal hop closes the end-to-end histogram.
//
// ChainTracer is the per-runtime policy object: it owns the sampling
// decision (1-in-N chains carry a sampled context; the rest get an inactive
// context whose propagation cost is a branch), allocates trace/span ids, and
// writes both the latency histograms (shared MetricsRegistry) and the
// flow-event records (TraceBuffer) that the Chrome exporter renders as a
// causally-linked arrow across ECU lanes.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace dynaplat::obs {

/// Wire-portable causal context. trace_id 0 means "no context" — the
/// inactive state costs one branch to propagate and zero wire bytes.
struct TraceContext {
  std::uint64_t trace_id = 0;   // (origin id << 40) | chain sequence; 0 = none
  std::uint64_t origin_ns = 0;  // chain start (publish/call stamped)
  std::uint64_t sent_ns = 0;    // handed to the transport (per hop)
  std::uint32_t parent_span = 0;
  std::uint8_t flags = 0;

  static constexpr std::uint8_t kSampled = 0x01;
  /// Encoded size: trace_id(8) + origin_ns(8) + sent_ns(8) + parent_span(4)
  /// + flags(1).
  static constexpr std::size_t kWireSize = 29;

  bool active() const { return trace_id != 0; }
  bool sampled() const { return (flags & kSampled) != 0; }

  void encode(std::uint8_t* out) const;
  static TraceContext decode(const std::uint8_t* in);
};

struct ChainTracerConfig {
  /// Sample 1 chain in every `sample_every`; 1 = all, 0 = tracing disabled.
  std::uint32_t sample_every = 1;
};

/// Per-ECU chain tracing policy + instrumentation sink. Simulator-thread
/// only, like the TraceBuffer it writes into.
class ChainTracer {
 public:
  ChainTracer(TraceBuffer& buffer, MetricsRegistry& metrics, std::string lane,
              std::uint32_t origin_id, ChainTracerConfig config = {});

  /// Sampling decision for a new chain. Returns an inactive context for
  /// unsampled chains.
  TraceContext start(std::uint64_t now_ns);

  /// Continues an inbound chain into a reply/forward hop: same trace id and
  /// origin, fresh span, sent_ns cleared for the next transport stamp.
  TraceContext extend(const TraceContext& inbound);

  /// Transport accepted the (stamped) context: attributes origin->sent as
  /// serialize time and opens the flow.
  void on_send(const TraceContext& ctx);

  /// Reassembly completed on the receiver: attributes sent->first_arrival as
  /// bus time and first_arrival->now as reassembly time.
  void on_receive(const TraceContext& ctx, std::uint64_t first_arrival_ns,
                  std::uint64_t now_ns);

  /// Receiver callback ran: attributes delivered->now as dispatch time;
  /// a terminal hop also closes the end-to-end histogram and the flow.
  void on_dispatch(const TraceContext& ctx, std::uint64_t delivered_ns,
                   std::uint64_t now_ns, bool terminal);

  std::uint64_t chains_started() const { return chains_started_; }
  std::uint64_t chains_sampled() const { return chains_sampled_; }

 private:
  TraceBuffer& buffer_;
  std::uint32_t lane_ = 0;           // interned "<ecu>/chain"
  std::uint32_t name_chain_ = 0;     // interned "chain"
  std::uint32_t name_serialize_ = 0;
  std::uint32_t name_bus_ = 0;
  std::uint32_t name_reassembly_ = 0;
  std::uint32_t name_dispatch_ = 0;
  Histogram* serialize_ns_;
  Histogram* bus_ns_;
  Histogram* reassembly_ns_;
  Histogram* dispatch_ns_;
  Histogram* end_to_end_ns_;
  std::uint64_t origin_prefix_;
  std::uint32_t sample_every_;
  std::uint64_t next_id_ = 0;
  std::uint32_t next_span_ = 0;
  std::uint64_t chains_started_ = 0;
  std::uint64_t chains_sampled_ = 0;
};

}  // namespace dynaplat::obs
