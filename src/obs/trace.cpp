#include "obs/trace.hpp"

#include <algorithm>

namespace dynaplat::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::kTask:
      return "task";
    case Category::kNetwork:
      return "network";
    case Category::kService:
      return "service";
    case Category::kPlatform:
      return "platform";
    case Category::kFault:
      return "fault";
    case Category::kSecurity:
      return "security";
    case Category::kBackend:
      return "backend";
  }
  return "unknown";
}

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kInstant:
      return "instant";
    case EventType::kBegin:
      return "begin";
    case EventType::kEnd:
      return "end";
    case EventType::kCounter:
      return "counter";
    case EventType::kFlowStart:
      return "flow_start";
    case EventType::kFlowStep:
      return "flow_step";
    case EventType::kFlowEnd:
      return "flow_end";
  }
  return "unknown";
}

std::uint32_t Interner::intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Interner::lookup(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= names_.size()) return names_.front();  // empty string
  return names_[id];
}

std::uint32_t Interner::find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? 0 : it->second;
}

std::size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

void TraceBuffer::set_enabled(bool on) {
  if (on) {
    mask_ = saved_mask_ != 0 ? saved_mask_ : kAllCategories;
  } else {
    if (mask_ != 0) saved_mask_ = mask_;
    mask_ = 0;
  }
}

void TraceBuffer::set_category_enabled(Category c, bool on) {
  if (on) {
    mask_ |= category_bit(c);
  } else {
    mask_ &= ~category_bit(c);
  }
  if (mask_ != 0) saved_mask_ = mask_;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  if (capacity == capacity_) return;
  std::vector<Event> kept = snapshot();
  if (capacity != 0 && kept.size() > capacity) {
    dropped_ += kept.size() - capacity;
    kept.erase(kept.begin(),
               kept.begin() + static_cast<long>(kept.size() - capacity));
  }
  ring_ = std::move(kept);
  head_ = 0;
  capacity_ = capacity;
}

void TraceBuffer::record(sim::Time at, Category category,
                         std::string_view source, std::string_view name,
                         std::int64_t value, EventType type) {
  if (!enabled(category)) return;
  push(Event{at, interner_.intern(source), interner_.intern(name), value,
             category, type});
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  recorded_ = 0;
}

std::vector<Event> TraceBuffer::snapshot() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for_each([&out](const Event& e) { out.push_back(e); });
  return out;
}

std::size_t TraceBuffer::count(Category category,
                               std::string_view name) const {
  const std::uint32_t id = interner_.find(name);
  if (id == 0) return 0;
  std::size_t n = 0;
  for_each([&](const Event& e) {
    if (e.category == category && e.name == id) ++n;
  });
  return n;
}

void TraceBuffer::push(const Event& event) {
  ++recorded_;
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

}  // namespace dynaplat::obs
