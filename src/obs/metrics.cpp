#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"

namespace dynaplat::obs {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) {
  // First bound >= v, i.e. the first bucket whose inclusive upper bound
  // admits v; bounds_ is sorted, so binary search. end() (NaN included —
  // every comparison is false) lands in the overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

double Histogram::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const {
  // Nearest-rank over the bucket counts, matching the bench/common.hpp
  // percentile convention (rank = ceil(q * n), 1-based). A bucket only
  // tells us "<= bound", so the estimate is the bucket's upper bound
  // clamped to the observed max; the overflow bucket reports the max.
  const std::uint64_t n = total_count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return min();
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      if (i >= bounds_.size()) return max();  // overflow bucket
      return std::min(bounds_[i], max());
    }
  }
  return max();
}

std::vector<double> MetricsRegistry::latency_buckets_ns() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back(key);
  counter_index_.emplace(std::move(key), &counters_.back().instrument);
  return counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back(key);
  gauge_index_.emplace(std::move(key), &gauges_.back().instrument);
  return gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(key, std::move(upper_bounds));
  histogram_index_.emplace(std::move(key), &histograms_.back().instrument);
  return histograms_.back().instrument;
}

std::size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size();
}

std::size_t MetricsRegistry::gauge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.size();
}

std::size_t MetricsRegistry::histogram_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.size();
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";

  auto sorted_names = [](const auto& family) {
    std::vector<const std::string*> names;
    names.reserve(family.size());
    for (const auto& entry : family) names.push_back(&entry.name);
    std::sort(names.begin(), names.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    return names;
  };

  bool first = true;
  for (const std::string* name : sorted_names(counters_)) {
    const Counter* c = counter_index_.at(*name);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(*name) +
           "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const std::string* name : sorted_names(gauges_)) {
    const Gauge* g = gauge_index_.at(*name);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(*name) + "\": " + fmt_double(g->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const std::string* name : sorted_names(histograms_)) {
    const Histogram* h = histogram_index_.at(*name);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json::escape(*name) + "\": {\"count\": " +
           std::to_string(h->total_count()) +
           ", \"sum\": " + fmt_double(h->sum());
    if (h->total_count() > 0) {
      out += ", \"min\": " + fmt_double(h->min()) +
             ", \"max\": " + fmt_double(h->max()) +
             ", \"p50\": " + fmt_double(h->quantile(0.50)) +
             ", \"p95\": " + fmt_double(h->quantile(0.95)) +
             ", \"p99\": " + fmt_double(h->quantile(0.99));
    }
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      if (i != 0) out += ", ";
      const double le = h->upper_bound(i);
      out += "{\"le\": ";
      out += std::isfinite(le) ? fmt_double(le) : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(h->count_at(i)) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace dynaplat::obs
