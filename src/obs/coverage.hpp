// State-coverage telemetry: dense interned-key counters of *reached states*
// (paper Sec. 3.4 — the backend needs to know which degradation states,
// recovery phases and transport edge paths a run actually exercised, not
// just its latency profile).
//
// A CoverageMap is simulator-thread-only, like TraceBuffer: each scenario in
// a sim::ScenarioSweep owns its own map, and the sweep merges the shards in
// index order after the barrier (ScenarioSweep::merge_coverage), so the
// merged snapshot is bit-identical at any thread count.
//
// Hot paths pre-resolve keys with key() once and hit(u32) per event; cold
// paths use the string overload. snapshot_json() renders a flat JSON object
// sorted by key name — the exact input the ROADMAP coverage-guided chaos
// scheduler consumes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dynaplat::obs {

class CoverageMap {
 public:
  /// Interns `name`, returning a dense index valid for this map's lifetime.
  std::uint32_t key(std::string_view name);

  void hit(std::uint32_t key_index, std::uint64_t n = 1) {
    counts_[key_index] += n;
  }
  void hit(std::string_view name, std::uint64_t n = 1) { hit(key(name), n); }

  /// Count recorded under `name`, 0 if the key was never interned.
  std::uint64_t count(std::string_view name) const;

  /// Distinct keys interned (hit or not).
  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// Keys with a nonzero count — the *covered* states, as opposed to keys
  /// that were merely interned by a hot-path key() pre-resolve. This is the
  /// novelty measure the coverage-guided fuzzer scores runs by.
  std::size_t unique_hit_count() const;

  /// Order-independent FNV-1a over the sorted (name, count) pairs: two maps
  /// with equal content fingerprint equally regardless of interning order,
  /// so a process-sharded merge can be compared bit-for-bit against a
  /// serial in-process one.
  std::uint64_t fingerprint() const;

  /// Merges a snapshot_json() document into this map (keys interned in the
  /// document's sorted order) — the cross-process half of the shard-merge
  /// protocol. Returns false (leaving the map untouched) on malformed
  /// input.
  bool merge_snapshot_json(std::string_view json);

  /// Adds every count in `other` into this map, interning keys as needed.
  /// Iterates `other` in its own interning order, so merging a fixed shard
  /// sequence in index order is deterministic regardless of how the shards
  /// were produced.
  void merge_from(const CoverageMap& other);

  /// Visits (name, count) pairs in interning order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      fn(std::string_view{names_[i]}, counts_[i]);
    }
  }

  /// Flat JSON object `{"key": count, ...}` sorted by key name, so two maps
  /// with the same content serialize byte-identically.
  std::string snapshot_json() const;

  void clear();

 private:
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::string> names_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace dynaplat::obs
