// Chrome trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
//
// Lane mapping: every event's interned source string names its timeline
// lane. The text before the first '/' becomes the *process* (an ECU or a
// bus), the full source string the *thread* inside it — so "EcuA/core0"
// tasks, "EcuA/update" phases and "can0" frame transmissions each get their
// own swimlane grouped under the owning hardware element.
//
// Emission: matched kBegin/kEnd pairs (LIFO per lane+name) become complete
// "X" duration events; kInstant becomes "i"; kCounter becomes "C". Span
// halves orphaned by ring-buffer eviction are dropped rather than emitted
// unbalanced.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace dynaplat::obs {

/// Renders the buffer as a Chrome trace-event JSON document. Timestamps are
/// exported in microseconds (the trace-event unit), preserving the
/// simulator's nanosecond resolution as fractions.
std::string to_chrome_trace_json(const TraceBuffer& buffer);

/// Writes to_chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace_file(const TraceBuffer& buffer,
                             const std::string& path);

}  // namespace dynaplat::obs
