#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace dynaplat::obs {

namespace {

double to_us(sim::Time at) { return static_cast<double>(at) / 1000.0; }

std::string fmt_us(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

struct OutEvent {
  double ts_us = 0.0;
  double dur_us = 0.0;
  char phase = 'i';  // 'X', 'i', 'C'
  int pid = 0;
  int tid = 0;
  std::uint32_t name = 0;
  Category category = Category::kTask;
  std::int64_t value = 0;
};

struct Lanes {
  // pid/tid assignment in first-seen order, both 1-based (pid 0 is reserved
  // by the trace-event format for the browser process).
  std::map<std::string, int> pids;
  std::vector<std::string> pid_names;
  std::map<std::pair<int, std::string>, int> tids;
  std::vector<std::pair<int, std::string>> tid_names;  // (pid, thread name)
  std::vector<int> tids_per_pid;

  std::pair<int, int> lane_for(const std::string& source) {
    const std::size_t slash = source.find('/');
    const std::string process =
        slash == std::string::npos ? source : source.substr(0, slash);
    auto pid_it = pids.find(process);
    if (pid_it == pids.end()) {
      pid_it = pids.emplace(process, static_cast<int>(pids.size()) + 1).first;
      pid_names.push_back(process);
      tids_per_pid.push_back(0);
    }
    const int pid = pid_it->second;
    const auto key = std::make_pair(pid, source);
    auto tid_it = tids.find(key);
    if (tid_it == tids.end()) {
      const int tid = ++tids_per_pid[static_cast<std::size_t>(pid) - 1];
      tid_it = tids.emplace(key, tid).first;
      tid_names.emplace_back(pid, source);
    }
    return {pid, tid_it->second};
  }
};

}  // namespace

std::string to_chrome_trace_json(const TraceBuffer& buffer) {
  std::vector<Event> events = buffer.snapshot();
  // Instrumentation may record spans with explicit timestamps out of
  // arrival order (e.g. a bus schedules begin+end together); sort by time,
  // keeping arrival order for ties so begin precedes its own end.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });

  Lanes lanes;
  std::vector<OutEvent> out;
  out.reserve(events.size());
  // Open spans per (lane source, span name): innermost-first stack of begin
  // events. Ends without a matching begin (the begin half was evicted from
  // the ring) are dropped; so are begins that never close.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Event>> open;

  for (const Event& event : events) {
    const std::string& source = buffer.name_of(event.source);
    const auto [pid, tid] = lanes.lane_for(source);
    switch (event.type) {
      case EventType::kBegin:
        open[{event.source, event.name}].push_back(event);
        break;
      case EventType::kEnd: {
        auto it = open.find({event.source, event.name});
        if (it == open.end() || it->second.empty()) break;  // orphaned end
        const Event begin = it->second.back();
        it->second.pop_back();
        OutEvent span;
        span.phase = 'X';
        span.ts_us = to_us(begin.at);
        span.dur_us = to_us(event.at) - span.ts_us;
        span.pid = pid;
        span.tid = tid;
        span.name = begin.name;
        span.category = begin.category;
        span.value = begin.value != 0 ? begin.value : event.value;
        out.push_back(span);
        break;
      }
      case EventType::kInstant:
      case EventType::kCounter:
      case EventType::kFlowStart:
      case EventType::kFlowStep:
      case EventType::kFlowEnd: {
        OutEvent point;
        switch (event.type) {
          case EventType::kCounter:
            point.phase = 'C';
            break;
          case EventType::kFlowStart:
            point.phase = 's';
            break;
          case EventType::kFlowStep:
            point.phase = 't';
            break;
          case EventType::kFlowEnd:
            point.phase = 'f';
            break;
          default:
            point.phase = 'i';
            break;
        }
        point.ts_us = to_us(event.at);
        point.pid = pid;
        point.tid = tid;
        point.name = event.name;
        point.category = event.category;
        point.value = event.value;
        out.push_back(point);
        break;
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const OutEvent& a, const OutEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::string doc = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    doc += first ? "\n" : ",\n";
    first = false;
    doc += line;
  };

  for (std::size_t i = 0; i < lanes.pid_names.size(); ++i) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(i + 1) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json::escape(lanes.pid_names[i]) + "\"}}");
  }
  for (const auto& [pid, thread] : lanes.tid_names) {
    const int tid = lanes.tids.at({pid, thread});
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + json::escape(thread) + "\"}}");
  }

  for (const OutEvent& event : out) {
    std::string line = "{\"name\":\"" +
                       json::escape(buffer.name_of(event.name)) +
                       "\",\"cat\":\"" +
                       category_name(event.category) + "\",\"ph\":\"";
    line += event.phase;
    line += "\",\"ts\":" + fmt_us(event.ts_us);
    if (event.phase == 'X') {
      line += ",\"dur\":" + fmt_us(event.dur_us);
    }
    line += ",\"pid\":" + std::to_string(event.pid) +
            ",\"tid\":" + std::to_string(event.tid);
    if (event.phase == 'i') {
      line += ",\"s\":\"t\"";
    }
    if (event.phase == 's' || event.phase == 't' || event.phase == 'f') {
      // Flow events bind by id; the terminal one binds to the enclosing
      // slice ("bp":"e") so the arrow lands on the dispatch span.
      line += ",\"id\":" + std::to_string(event.value);
      if (event.phase == 'f') line += ",\"bp\":\"e\"";
      line += ",\"args\":{}";
    } else if (event.phase == 'C') {
      line += ",\"args\":{\"" + json::escape(buffer.name_of(event.name)) +
              "\":" + std::to_string(event.value) + "}";
    } else {
      line += ",\"args\":{\"value\":" + std::to_string(event.value) + "}";
    }
    line += "}";
    emit(line);
  }

  doc += first ? "" : "\n";
  doc += "],\"displayTimeUnit\":\"ms\"}\n";
  return doc;
}

bool write_chrome_trace_file(const TraceBuffer& buffer,
                             const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_chrome_trace_json(buffer);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (written != doc.size()) std::fclose(f);
  return ok;
}

}  // namespace dynaplat::obs
