// Post-mortem flight-recorder bundle: one JSON document capturing everything
// the off-vehicle backend needs to reproduce and triage an invariant
// violation (paper Sec. 3.4) — the tail of the trace ring, the full metrics
// snapshot, the coverage snapshot, and the offending scenario seed.
//
// fault::InvariantChecker dumps a bundle on the *first* violation of a run
// (later violations are usually cascade noise from the same root cause);
// examples/chaos_campaign prints the bundle path so CI can attach it.
#pragma once

#include <cstdint>
#include <string>

#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dynaplat::obs {

struct PostMortemInput {
  const TraceBuffer* trace = nullptr;      // optional
  const MetricsRegistry* metrics = nullptr;  // optional
  const CoverageMap* coverage = nullptr;   // optional
  std::uint64_t seed = 0;                  // scenario seed to replay
  std::string verdict;                     // e.g. the violated invariant name
  std::string detail;                      // human-readable failure detail
  std::size_t trace_tail = 256;            // newest events to include
};

/// Renders the bundle as a JSON document (parseable by obs::json).
std::string make_postmortem_bundle(const PostMortemInput& input);

/// Writes the bundle to `path`; returns false if the file can't be opened.
bool write_postmortem_file(const PostMortemInput& input,
                           const std::string& path);

}  // namespace dynaplat::obs
