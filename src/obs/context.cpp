#include "obs/context.hpp"

#include <cstring>

namespace dynaplat::obs {
namespace {

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void TraceContext::encode(std::uint8_t* out) const {
  put_u64(out, trace_id);
  put_u64(out + 8, origin_ns);
  put_u64(out + 16, sent_ns);
  put_u32(out + 24, parent_span);
  out[28] = flags;
}

TraceContext TraceContext::decode(const std::uint8_t* in) {
  TraceContext ctx;
  ctx.trace_id = get_u64(in);
  ctx.origin_ns = get_u64(in + 8);
  ctx.sent_ns = get_u64(in + 16);
  ctx.parent_span = get_u32(in + 24);
  ctx.flags = in[28];
  return ctx;
}

ChainTracer::ChainTracer(TraceBuffer& buffer, MetricsRegistry& metrics,
                         std::string lane, std::uint32_t origin_id,
                         ChainTracerConfig config)
    : buffer_(buffer),
      lane_(buffer.intern(lane)),
      name_chain_(buffer.intern("chain")),
      name_serialize_(buffer.intern("chain:serialize")),
      name_bus_(buffer.intern("chain:bus")),
      name_reassembly_(buffer.intern("chain:reassembly")),
      name_dispatch_(buffer.intern("chain:dispatch")),
      serialize_ns_(&metrics.histogram("chain.serialize_ns")),
      bus_ns_(&metrics.histogram("chain.bus_ns")),
      reassembly_ns_(&metrics.histogram("chain.reassembly_ns")),
      dispatch_ns_(&metrics.histogram("chain.dispatch_ns")),
      end_to_end_ns_(&metrics.histogram("chain.end_to_end_ns")),
      origin_prefix_(static_cast<std::uint64_t>(origin_id) << 40),
      sample_every_(config.sample_every) {}

TraceContext ChainTracer::start(std::uint64_t now_ns) {
  const std::uint64_t n = chains_started_++;
  if (sample_every_ == 0 || n % sample_every_ != 0) return {};
  ++chains_sampled_;
  TraceContext ctx;
  ctx.trace_id = origin_prefix_ | (++next_id_ & ((1ull << 40) - 1));
  ctx.origin_ns = now_ns;
  ctx.parent_span = ++next_span_;
  ctx.flags = TraceContext::kSampled;
  return ctx;
}

TraceContext ChainTracer::extend(const TraceContext& inbound) {
  TraceContext ctx = inbound;
  ctx.parent_span = ++next_span_;
  ctx.sent_ns = 0;
  return ctx;
}

void ChainTracer::on_send(const TraceContext& ctx) {
  serialize_ns_->observe(static_cast<double>(ctx.sent_ns - ctx.origin_ns));
  if (!buffer_.enabled(Category::kService)) return;
  const auto id = static_cast<std::int64_t>(ctx.trace_id);
  buffer_.record(static_cast<sim::Time>(ctx.origin_ns), Category::kService,
                 lane_, name_serialize_, id, EventType::kBegin);
  buffer_.record(static_cast<sim::Time>(ctx.sent_ns), Category::kService,
                 lane_, name_serialize_, id, EventType::kEnd);
  buffer_.record(static_cast<sim::Time>(ctx.sent_ns), Category::kService,
                 lane_, name_chain_, id, EventType::kFlowStart);
}

void ChainTracer::on_receive(const TraceContext& ctx,
                             std::uint64_t first_arrival_ns,
                             std::uint64_t now_ns) {
  bus_ns_->observe(static_cast<double>(first_arrival_ns - ctx.sent_ns));
  reassembly_ns_->observe(static_cast<double>(now_ns - first_arrival_ns));
  if (!buffer_.enabled(Category::kService)) return;
  const auto id = static_cast<std::int64_t>(ctx.trace_id);
  buffer_.record(static_cast<sim::Time>(ctx.sent_ns), Category::kService,
                 lane_, name_bus_, id, EventType::kBegin);
  buffer_.record(static_cast<sim::Time>(first_arrival_ns), Category::kService,
                 lane_, name_bus_, id, EventType::kEnd);
  buffer_.record(static_cast<sim::Time>(first_arrival_ns), Category::kService,
                 lane_, name_reassembly_, id, EventType::kBegin);
  buffer_.record(static_cast<sim::Time>(now_ns), Category::kService, lane_,
                 name_reassembly_, id, EventType::kEnd);
  buffer_.record(static_cast<sim::Time>(now_ns), Category::kService, lane_,
                 name_chain_, id, EventType::kFlowStep);
}

void ChainTracer::on_dispatch(const TraceContext& ctx,
                              std::uint64_t delivered_ns, std::uint64_t now_ns,
                              bool terminal) {
  dispatch_ns_->observe(static_cast<double>(now_ns - delivered_ns));
  if (terminal) {
    end_to_end_ns_->observe(static_cast<double>(now_ns - ctx.origin_ns));
  }
  if (!buffer_.enabled(Category::kService)) return;
  const auto id = static_cast<std::int64_t>(ctx.trace_id);
  buffer_.record(static_cast<sim::Time>(delivered_ns), Category::kService,
                 lane_, name_dispatch_, id, EventType::kBegin);
  buffer_.record(static_cast<sim::Time>(now_ns), Category::kService, lane_,
                 name_dispatch_, id, EventType::kEnd);
  if (terminal) {
    buffer_.record(static_cast<sim::Time>(now_ns), Category::kService, lane_,
                   name_chain_, id, EventType::kFlowEnd);
  }
}

}  // namespace dynaplat::obs
