// Trace v2: the vehicle-wide flight-recorder substrate (paper Sec. 3.4).
//
// Replaces the unbounded two-strings-per-record sim::Trace storage with a
// compact event format designed for always-on use:
//  * source/event names are interned once; hot paths record 28-byte events
//    holding 32-bit string IDs instead of heap-allocated std::strings,
//  * a configurable ring-buffer capacity bounds memory for arbitrarily long
//    runs (oldest events are evicted, eviction is counted),
//  * a per-category enable mask makes the disabled path a single load+branch
//    so instrumentation can stay in release builds,
//  * span records (begin/end pairs) express durations — task execution
//    slices, frame transmissions, update phases — which the Chrome
//    trace-event exporter (obs/export.hpp) renders as timeline lanes.
//
// The buffer itself is simulator-thread-only, like every other sim object;
// cross-thread metrics live in obs::MetricsRegistry instead.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace dynaplat::obs {

enum class Category : std::uint8_t {
  kTask,      // task activation / completion / deadline events
  kNetwork,   // frame transmission / reception
  kService,   // middleware events (offer, subscribe, call)
  kPlatform,  // lifecycle: install, start, stop, update phases
  kFault,     // injected or detected faults
  kSecurity,  // auth, verification outcomes
  kBackend,   // fleet backend: queue, shedding, breaker, outages
};
inline constexpr std::size_t kCategoryCount = 7;
inline constexpr std::uint32_t kAllCategories = (1u << kCategoryCount) - 1;

constexpr std::uint32_t category_bit(Category c) {
  return 1u << static_cast<unsigned>(c);
}
const char* category_name(Category c);

enum class EventType : std::uint8_t {
  kInstant,    // point event
  kBegin,      // span opens on the source's lane
  kEnd,        // span closes (matches the innermost open kBegin of same name)
  kCounter,    // sampled numeric series (value is the sample)
  kFlowStart,  // causal flow opens (value is the flow/trace id)
  kFlowStep,   // causal flow passes through this lane
  kFlowEnd,    // causal flow terminates
};
const char* event_type_name(EventType t);

struct Event {
  sim::Time at = 0;
  std::uint32_t source = 0;  // interned lane name, e.g. "ecu0/brake_ctl"
  std::uint32_t name = 0;    // interned event name, e.g. "deadline_miss"
  std::int64_t value = 0;
  Category category = Category::kTask;
  EventType type = EventType::kInstant;
};

/// Append-only string table: one id per distinct string, ids stay valid for
/// the interner's lifetime. Guarded by a mutex so analysis threads may
/// intern lane names up front; lookups of existing ids are lock-free reads
/// of stable deque slots.
class Interner {
 public:
  std::uint32_t intern(std::string_view s);
  const std::string& lookup(std::uint32_t id) const;
  /// Id of an already-interned string, or 0 (the reserved empty id) if the
  /// string was never interned.
  std::uint32_t find(std::string_view s) const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::deque<std::string> names_{std::string{}};  // slot 0: empty string
};

struct TraceBufferConfig {
  /// Maximum retained events; 0 = unbounded (the pre-v2 behaviour).
  std::size_t capacity = 0;
  std::uint32_t category_mask = kAllCategories;
};

class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(TraceBufferConfig config)
      : capacity_(config.capacity),
        mask_(config.category_mask),
        saved_mask_(config.category_mask ? config.category_mask
                                         : kAllCategories) {}

  /// The disabled fast path: one load + branch, no argument evaluation when
  /// call sites check this before building names or values.
  bool enabled() const { return mask_ != 0; }
  bool enabled(Category c) const { return (mask_ & category_bit(c)) != 0; }
  void set_enabled(bool on);
  void set_category_enabled(Category c, bool on);
  std::uint32_t category_mask() const { return mask_; }

  /// Rebounds the ring; shrinking evicts oldest events (counted as dropped).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  std::uint32_t intern(std::string_view s) { return interner_.intern(s); }
  const std::string& name_of(std::uint32_t id) const {
    return interner_.lookup(id);
  }
  const Interner& interner() const { return interner_; }

  void record(const Event& event) {
    if (!enabled(event.category)) return;
    push(event);
  }
  void record(sim::Time at, Category category, std::uint32_t source,
              std::uint32_t name, std::int64_t value = 0,
              EventType type = EventType::kInstant) {
    if (!enabled(category)) return;
    push(Event{at, source, name, value, category, type});
  }
  /// Interning convenience for cold paths. Hot paths pre-intern and use the
  /// id overload; call sites should check enabled() before building strings.
  void record(sim::Time at, Category category, std::string_view source,
              std::string_view name, std::int64_t value = 0,
              EventType type = EventType::kInstant);

  void begin_span(sim::Time at, Category category, std::uint32_t source,
                  std::uint32_t name, std::int64_t value = 0) {
    record(at, category, source, name, value, EventType::kBegin);
  }
  void end_span(sim::Time at, Category category, std::uint32_t source,
                std::uint32_t name, std::int64_t value = 0) {
    record(at, category, source, name, value, EventType::kEnd);
  }

  /// Events currently retained (<= capacity when bounded).
  std::size_t size() const { return ring_.size(); }
  /// Events evicted by the ring bound since construction/clear.
  std::uint64_t dropped() const { return dropped_; }
  /// Events accepted (mask passed) since construction/clear.
  std::uint64_t recorded() const { return recorded_; }
  void clear();

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;
  /// Visits retained events oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(head_ + i) % (n == 0 ? 1 : n)]);
    }
  }

  /// Retained events matching category + event name.
  std::size_t count(Category category, std::string_view name) const;

 private:
  void push(const Event& event);

  Interner interner_;
  std::vector<Event> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // index of the oldest event once the ring wrapped
  std::uint32_t mask_ = kAllCategories;
  std::uint32_t saved_mask_ = kAllCategories;  // restored by set_enabled(true)
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace dynaplat::obs
