#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dynaplat::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value& Value::at(const std::string& key) const {
  static const Value kNullValue;
  if (!is_object()) return kNullValue;
  auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

const Value& Value::operator[](std::size_t i) const {
  static const Value kNullValue;
  if (!is_array() || i >= array.size()) return kNullValue;
  return array[i];
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind = Value::Kind::kString;
        return parse_string(&out->string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->kind = Value::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Non-BMP / surrogate handling is out of scope: emit UTF-8 for the
          // BMP code point as-is.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->kind = Value::Kind::kNumber;
    return true;
  }

  bool parse_array(Value* out) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value element;
      skip_ws();
      if (!parse_value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Value* out) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      Value value;
      if (!parse_value(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  Parser parser(text, error);
  return parser.run(out);
}

}  // namespace dynaplat::obs::json
