// Minimal JSON support for the observability layer: an escaper for the
// emitters (metrics snapshot, Chrome trace export) and a small recursive-
// descent parser used by tests and tools to round-trip those documents.
// Deliberately not a general-purpose library: no streaming, no \u surrogate
// pairs beyond pass-through, numbers parse as double.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dynaplat::obs::json {

/// Escapes a string for inclusion inside JSON double quotes.
std::string escape(std::string_view s);

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  /// Member access; returns a shared null value for missing keys or
  /// non-objects so chained lookups degrade gracefully.
  const Value& at(const std::string& key) const;
  const Value& operator[](std::size_t i) const;
  std::size_t size() const {
    return is_array() ? array.size() : is_object() ? object.size() : 0;
  }
};

/// Parses `text` into `out`. Returns false (with a short message in `error`
/// when provided) on malformed input or trailing garbage.
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace dynaplat::obs::json
