#include "net/ethernet.hpp"

#include <algorithm>
#include <cassert>

namespace dynaplat::net {

GateControlList GateControlList::tt_window(sim::Duration cycle,
                                           sim::Duration tt_len,
                                           Priority tt_max_priority) {
  assert(tt_len > 0 && tt_len < cycle);
  std::uint8_t tt_mask = 0;
  for (Priority p = 0; p <= tt_max_priority; ++p) {
    tt_mask = static_cast<std::uint8_t>(tt_mask | (1u << p));
  }
  GateControlList gcl;
  gcl.cycle = cycle;
  gcl.windows.push_back(GateWindow{0, tt_len, tt_mask});
  gcl.windows.push_back(GateWindow{
      tt_len, cycle - tt_len, static_cast<std::uint8_t>(~tt_mask)});
  return gcl;
}

EthernetSwitch::EthernetSwitch(sim::Simulator& simulator, std::string name,
                               EthernetConfig config)
    : Medium(simulator, std::move(name)), config_(config) {}

sim::Duration EthernetSwitch::frame_duration(std::size_t payload) const {
  // 46-byte minimum payload, 18 bytes header+FCS, 4 bytes 802.1Q tag,
  // 8 bytes preamble/SFD + 12 bytes interframe gap.
  const std::size_t on_wire = std::max<std::size_t>(payload, 46) + 18 + 4;
  const std::size_t with_overhead = on_wire + 8 + 12;
  return static_cast<sim::Duration>(
      static_cast<std::uint64_t>(with_overhead) * 8 * sim::kSecond /
      config_.link_bps);
}

void EthernetSwitch::set_gate_control(NodeId node, GateControlList gcl) {
  egress_[node].gcl = std::move(gcl);
}

void EthernetSwitch::send(Frame frame) {
  if (inject_faults(frame)) return;
  assert(frame.payload.size() <= max_payload());
  frame.enqueued_at = sim_.now();
  frame.seq = seq_++;
  // Serialize on the sender's ingress link; the transmitter is a single
  // resource, frames queue behind each other in FIFO order.
  sim::Time& free_at = ingress_free_at_[frame.src];
  const sim::Time start = std::max(free_at, sim_.now());
  const sim::Time done = start + frame_duration(frame.payload.size()) +
                         config_.propagation_delay;
  free_at = done - config_.propagation_delay;
  sim_.schedule_at(done, [this, f = std::move(frame)]() mutable {
    on_ingress_complete(std::move(f));
  });
}

void EthernetSwitch::on_ingress_complete(Frame frame) {
  // Store-and-forward: the whole frame is now in switch memory.
  sim_.schedule_in(config_.processing_delay,
                   [this, f = std::move(frame)]() mutable {
                     if (f.dst == kBroadcast) {
                       for (auto& [node, port] : egress_) {
                         (void)port;
                         if (node != f.src) enqueue_egress(node, f);
                       }
                     } else {
                       enqueue_egress(f.dst, std::move(f));
                     }
                   });
}

void EthernetSwitch::enqueue_egress(NodeId node, Frame frame) {
  EgressPort& port = egress_[node];
  auto& queue = port.queues[std::min<Priority>(frame.priority, 7)];
  if (queue.size() >= config_.queue_capacity) {
    ++egress_drops_;
    count_drop();
    return;
  }
  queue.push_back(std::move(frame));
  try_transmit(node);
}

std::optional<sim::Time> EthernetSwitch::gate_open_time(
    const EgressPort& port, Priority p, sim::Duration tx) const {
  if (!port.gcl.enabled()) return sim_.now();
  const sim::Time now = sim_.now();
  const sim::Duration cycle = port.gcl.cycle;
  const sim::Time cycle_start = (now / cycle) * cycle;
  // Scan this cycle and the next: a sane GCL opens every class each cycle.
  for (int k = 0; k < 2; ++k) {
    const sim::Time base = cycle_start + k * cycle;
    for (const auto& w : port.gcl.windows) {
      if (!((w.open_mask >> p) & 1)) continue;
      const sim::Time open = base + w.offset;
      const sim::Time close = open + w.length;
      const sim::Time start = std::max(now, open);
      // Guard band: the frame must finish before the window closes.
      if (start + tx <= close) return start;
    }
  }
  return std::nullopt;
}

void EthernetSwitch::try_transmit(NodeId node) {
  EgressPort& port = egress_[node];
  if (port.busy) return;
  if (port.pending_kick.valid()) {
    sim_.cancel(port.pending_kick);
    port.pending_kick = {};
  }
  // Strict priority: lowest class index with a queued frame wins. If its
  // gate is shut, lower-priority classes whose gate is open may still send
  // (per 802.1Qbv transmission selection).
  sim::Time best_deferred = sim::kTimeNever;
  for (Priority p = 0; p < 8; ++p) {
    auto& queue = port.queues[p];
    if (queue.empty()) continue;
    const sim::Duration tx = frame_duration(queue.front().payload.size());
    const auto open = gate_open_time(port, p, tx);
    if (!open) {
      // This class never opens under the current GCL; drop to avoid
      // unbounded buildup and surface the misconfiguration in stats.
      ++egress_drops_;
      count_drop();
      queue.pop_front();
      --p;  // re-examine the same class
      continue;
    }
    if (*open <= sim_.now()) {
      Frame frame = std::move(queue.front());
      queue.pop_front();
      port.busy = true;
      if (trace() != nullptr) {
        if (port.trace_lane == 0) {
          port.trace_lane =
              trace_lane(name() + "/egress" + std::to_string(node));
        }
        trace_tx_span(*open, *open + tx, port.trace_lane);
      } else {
        trace_tx_span(*open, *open + tx);
      }
      sim_.schedule_at(*open + tx + config_.propagation_delay,
                       [this, node, f = std::move(frame)]() mutable {
                         egress_[node].busy = false;
                         deliver(std::move(f));
                         try_transmit(node);
                       });
      return;
    }
    best_deferred = std::min(best_deferred, *open);
  }
  if (best_deferred != sim::kTimeNever) {
    port.pending_kick =
        sim_.schedule_at(best_deferred, [this, node] {
          egress_[node].pending_kick = {};
          try_transmit(node);
        });
  }
}

}  // namespace dynaplat::net
