#include "net/router.hpp"

namespace dynaplat::net {

Router::Router(Medium& a, NodeId node_a, Medium& b, NodeId node_b,
               WorkSubmitter submit)
    : a_(a), b_(b), node_a_(node_a), node_b_(node_b),
      submit_(std::move(submit)) {
  a_.attach(node_a_, [this](const Frame& frame) {
    forward(frame, rules_ab_, b_, node_b_);
  });
  b_.attach(node_b_, [this](const Frame& frame) {
    forward(frame, rules_ba_, a_, node_a_);
  });
}

Router::~Router() {
  a_.detach(node_a_);
  b_.detach(node_b_);
}

void Router::forward(const Frame& frame, const std::vector<RouteRule>& rules,
                     Medium& target, NodeId egress_node) {
  const RouteRule* matched = nullptr;
  for (const auto& rule : rules) {
    if (rule.matches(frame.flow_id)) {
      matched = &rule;
      break;
    }
  }
  if (matched == nullptr) {
    ++filtered_;
    return;
  }
  if (frame.payload.size() > target.max_payload()) {
    ++oversize_;
    return;
  }
  Frame out;
  out.flow_id = frame.flow_id;
  out.src = egress_node;
  out.dst = matched->destination;
  out.priority = matched->remap_priority.value_or(frame.priority);
  out.payload = frame.payload;

  auto send = [&target, out = std::move(out), this]() mutable {
    ++forwarded_;
    target.send(std::move(out));
  };
  if (submit_) {
    submit_(std::move(send));
  } else {
    send();
  }
}

}  // namespace dynaplat::net
