// Cross-network gateway routing.
//
// Current E/E architectures are "highly diverse" (Fig. 1): a CAN body
// domain, a FlexRay chassis domain and an Ethernet backbone coexist, joined
// by gateway ECUs. The Router models such a gateway: it occupies one node
// id on each attached medium and forwards frames whose flow ids match
// configured rules, optionally remapping priority (a CAN id's urgency must
// be translated into an 802.1Q class) and re-fragmenting implicitly via the
// target medium's payload limit.
//
// Forwarding consumes gateway CPU when a Processor is attached, so a
// saturated gateway becomes a visible bottleneck — one of the paper's
// motivations for flat Ethernet backbones.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/medium.hpp"

namespace dynaplat::net {

struct RouteRule {
  /// Inclusive flow-id range matched on the source medium.
  std::uint32_t flow_min = 0;
  std::uint32_t flow_max = 0xFFFFFFFF;
  /// Destination node on the target medium; kBroadcast floods.
  NodeId destination = kBroadcast;
  /// Priority override on the target medium; nullopt keeps the original.
  std::optional<Priority> remap_priority;

  bool matches(std::uint32_t flow) const {
    return flow >= flow_min && flow <= flow_max;
  }
};

class Router {
 public:
  /// Defers `work` onto the gateway's CPU (typically a bound
  /// os::Processor::submit); invoked once per forwarded frame. An empty
  /// submitter forwards instantly (zero-cost gateway ablation).
  using WorkSubmitter = std::function<void(std::function<void()> work)>;

  /// Attaches the gateway between two media as `node_a` on `a` and
  /// `node_b` on `b`.
  Router(Medium& a, NodeId node_a, Medium& b, NodeId node_b,
         WorkSubmitter submit = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Adds a forwarding rule for frames arriving on `a` (towards `b`).
  void route_a_to_b(RouteRule rule) { rules_ab_.push_back(rule); }
  /// Adds a forwarding rule for frames arriving on `b` (towards `a`).
  void route_b_to_a(RouteRule rule) { rules_ba_.push_back(rule); }

  std::uint64_t frames_forwarded() const { return forwarded_; }
  std::uint64_t frames_filtered() const { return filtered_; }
  /// Frames that matched a rule but exceeded the target medium's payload
  /// limit (the gateway does not fragment; the transport layer must).
  std::uint64_t frames_oversize() const { return oversize_; }

 private:
  void forward(const Frame& frame, const std::vector<RouteRule>& rules,
               Medium& target, NodeId egress_node);

  Medium& a_;
  Medium& b_;
  NodeId node_a_;
  NodeId node_b_;
  WorkSubmitter submit_;
  std::vector<RouteRule> rules_ab_;
  std::vector<RouteRule> rules_ba_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t oversize_ = 0;
};

}  // namespace dynaplat::net
