// Refcounted arena buffers and scatter-gather payloads: the zero-copy data
// path under net::Frame and middleware::Transport.
//
// The middleware hot loop used to copy every payload at least four times
// (writer vector -> wire message -> per-fragment frame rebuild -> reassembly
// concatenation, plus a full duplicate for reliable retransmission). This
// header replaces all of those with views:
//
//  * Block      — one refcounted byte buffer. Either carved from a
//                 BufferArena (chunked slab, recycled through a free list,
//                 zero heap traffic in steady state) or standalone
//                 (adopting a std::vector that application code hands in).
//  * BufferRef  — intrusive refcount handle to a Block.
//  * BufferSlice— a [offset, offset+size) view into a Block.
//  * Payload    — an ordered chain of slices with a small inline array
//                 (a fragment is header-slice + body-view; a reassembled
//                 message is the ordered chain of fragment bodies). Presents
//                 enough of the std::vector API that existing frame-poking
//                 code (tests, fault hooks, babbling-idiot injectors)
//                 compiles unchanged.
//
// Mutation is copy-on-write: fault-injection hooks flip bits on frames in
// flight, but fragments *share* the sender's message buffer (reliable mode
// pins it for retransmission), so in-place writes to shared bytes would
// corrupt the retry copy. A mutating access on a shared Payload first
// linearizes it into a private block — exactly the semantics the old
// copy-everything path had, paid only when something actually mutates.
//
// Threading: refcounts and free lists are deliberately NOT atomic. A
// Simulator and everything attached to it (media, ECUs, transports) is
// single-threaded by design; sim::ScenarioSweep gives every scenario its own
// Simulator and arenas, so buffers never cross threads. The TSan CI job runs
// the middleware suite under ScenarioSweep to enforce this.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <vector>

namespace dynaplat::net {

class BufferArena;

namespace detail {

/// Shared arena state, detached from the BufferArena handle so blocks that
/// are still referenced (frames queued in a medium, pinned retransmission
/// buffers) stay valid even after their Transport — and its arena — died.
/// Freed when the arena handle is gone AND the last outstanding block
/// released.
struct ArenaState {
  struct Chunk;
  Chunk* free_head = nullptr;   // recycled chunks, intrusively linked
  std::size_t outstanding = 0;  // live blocks carved from this arena
  bool alive = true;            // arena handle still exists
  // Stats (bench counters for the zero-alloc acceptance check).
  std::uint64_t chunks_allocated = 0;  // heap allocations ever made
  std::uint64_t chunks_reused = 0;     // free-list hits
  std::size_t chunk_capacity = 0;
};

}  // namespace detail

/// One refcounted byte buffer. Never instantiated directly — created via
/// BufferArena::alloc() or BufferRef::adopt_vector()/copy_bytes().
class Block {
 public:
  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool unique() const { return refcount_ == 1; }

  /// The adopted vector, when this block wraps one (null for arena blocks).
  /// Lets callers that need a `const std::vector&` view (e.g. the security
  /// tagger API) borrow the bytes without a copy.
  const std::vector<std::uint8_t>* vec() const { return vector_backed_ ? &storage_ : nullptr; }

  /// Grows the valid-byte count (writer support; bytes must already fit).
  void set_size(std::size_t n) {
    assert(n <= capacity_);
    size_ = n;
  }

 private:
  friend class BufferRef;
  friend class BufferArena;
  friend struct detail::ArenaState::Chunk;  // embeds a Block per chunk

  Block() = default;
  ~Block() = default;

  void retain() { ++refcount_; }
  void release();

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::uint32_t refcount_ = 0;
  bool vector_backed_ = false;
  detail::ArenaState* arena_ = nullptr;  // null => standalone heap block
  void* chunk_ = nullptr;                // owning ArenaState::Chunk, if any
  std::vector<std::uint8_t> storage_;    // backing store for standalone blocks
};

/// Intrusive refcount handle to a Block.
class BufferRef {
 public:
  BufferRef() = default;
  explicit BufferRef(Block* block) : block_(block) {
    if (block_ != nullptr) block_->retain();
  }
  BufferRef(const BufferRef& other) : block_(other.block_) {
    if (block_ != nullptr) block_->retain();
  }
  BufferRef(BufferRef&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  BufferRef& operator=(const BufferRef& other) {
    if (this == &other) return *this;
    if (other.block_ != nullptr) other.block_->retain();
    if (block_ != nullptr) block_->release();
    block_ = other.block_;
    return *this;
  }
  BufferRef& operator=(BufferRef&& other) noexcept {
    if (this == &other) return *this;
    if (block_ != nullptr) block_->release();
    block_ = other.block_;
    other.block_ = nullptr;
    return *this;
  }
  ~BufferRef() {
    if (block_ != nullptr) block_->release();
  }

  Block* get() const { return block_; }
  Block* operator->() const { return block_; }
  explicit operator bool() const { return block_ != nullptr; }
  void reset() {
    if (block_ != nullptr) block_->release();
    block_ = nullptr;
  }

  /// Wraps a vector in a standalone refcounted block without copying.
  /// The canonical way application payloads (publish/stream/RPC bodies)
  /// enter the zero-copy path.
  static BufferRef adopt_vector(std::vector<std::uint8_t> bytes);

  /// Standalone block holding a copy of `[data, data+size)` (legacy
  /// vector-API compatibility: Payload::assign and friends).
  static BufferRef copy_bytes(const std::uint8_t* data, std::size_t size);

 private:
  Block* block_ = nullptr;
};

/// A contiguous view into a refcounted block.
struct BufferSlice {
  BufferRef buf;
  std::uint32_t offset = 0;
  std::uint32_t size = 0;

  const std::uint8_t* data() const { return buf->data() + offset; }
};

/// Chunked slab allocator with a free list. alloc() hands out refcounted
/// blocks; releasing the last reference recycles the chunk, so steady-state
/// traffic performs no heap allocation. Two size classes keep 6-byte
/// fragment headers from pinning 4-KiB chunks.
class BufferArena {
 public:
  static constexpr std::size_t kSmallCapacity = 64;
  static constexpr std::size_t kLargeCapacity = 4096;

  BufferArena();
  ~BufferArena();
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// A block with size() == `size`. Arena-backed (recycled) when the size
  /// fits a class; oversize requests fall back to a standalone heap block.
  BufferRef alloc(std::size_t size);

  /// Heap chunk allocations ever made (small + large + oversize fallbacks).
  /// Flat across a steady-state workload == the zero-allocation property.
  std::uint64_t chunks_allocated() const {
    return small_->chunks_allocated + large_->chunks_allocated +
           oversize_allocs_;
  }
  std::uint64_t chunks_reused() const {
    return small_->chunks_reused + large_->chunks_reused;
  }
  std::size_t outstanding() const {
    return small_->outstanding + large_->outstanding;
  }

 private:
  BufferRef alloc_from(detail::ArenaState* state, std::size_t size);

  detail::ArenaState* small_;
  detail::ArenaState* large_;
  std::uint64_t oversize_allocs_ = 0;
};

/// Scatter-gather payload: an ordered chain of buffer slices. Up to
/// kInlineSlices live inline (covers every fragment shape: header slice +
/// body view + CRC slice + one chunk-boundary split); longer chains —
/// reassembled multi-fragment messages — spill to a heap vector.
///
/// The std::vector-compatible subset (size/empty/operator[]/assign/
/// initializer-list assignment/implicit vector conversion) keeps existing
/// frame-level code source-compatible. Reads are zero-copy; the first
/// mutating access on shared bytes linearizes into a private block
/// (copy-on-write), so corrupting one in-flight fragment can never reach
/// the sender's pinned retransmission buffer or a broadcast sibling.
class Payload {
 public:
  static constexpr std::size_t kInlineSlices = 4;

  Payload() = default;
  Payload(std::initializer_list<std::uint8_t> bytes) { assign_bytes(bytes.begin(), bytes.size()); }
  /*implicit*/ Payload(std::vector<std::uint8_t> bytes) {  // NOLINT
    adopt(std::move(bytes));
  }
  Payload& operator=(std::initializer_list<std::uint8_t> bytes) {
    clear();
    assign_bytes(bytes.begin(), bytes.size());
    return *this;
  }

  Payload(const Payload&);
  // Moves relocate only the *active* slices (placement-new storage, nothing
  // default-constructed): a one-slice frame payload moves as one pointer and
  // two integers. This is the hot operation of the data path — a message
  // crosses several Frame/Payload moves between publish and delivery.
  Payload(Payload&& other) noexcept
      : spill_(std::move(other.spill_)),
        slice_count_(other.slice_count_),
        size_(other.size_) {
    if (spill_ == nullptr) {
      for (std::uint32_t i = 0; i < slice_count_; ++i) {
        BufferSlice* src = other.slice_at(i);
        ::new (raw_slot(i)) BufferSlice(std::move(*src));
        src->~BufferSlice();
      }
    }
    other.slice_count_ = 0;
    other.size_ = 0;
  }
  Payload& operator=(const Payload&);
  Payload& operator=(Payload&& other) noexcept {
    if (this == &other) return *this;
    clear();
    spill_ = std::move(other.spill_);
    slice_count_ = other.slice_count_;
    size_ = other.size_;
    if (spill_ == nullptr) {
      for (std::uint32_t i = 0; i < slice_count_; ++i) {
        BufferSlice* src = other.slice_at(i);
        ::new (raw_slot(i)) BufferSlice(std::move(*src));
        src->~BufferSlice();
      }
    }
    other.slice_count_ = 0;
    other.size_ = 0;
    return *this;
  }
  ~Payload() { clear(); }

  // --- vector-compatible surface -------------------------------------------
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    if (spill_ != nullptr) {
      spill_.reset();
    } else {
      for (std::uint32_t i = 0; i < slice_count_; ++i) {
        slice_at(i)->~BufferSlice();
      }
    }
    slice_count_ = 0;
    size_ = 0;
  }
  void assign(std::size_t n, std::uint8_t value);
  /// Read access; walks the slice chain.
  std::uint8_t operator[](std::size_t index) const { return byte(index); }
  /// Mutable access: copy-on-write. Linearizes shared storage first, so the
  /// returned reference never aliases another frame's bytes.
  std::uint8_t& operator[](std::size_t index) {
    ensure_owned();
    return slice_at(0)->buf->data()[index];
  }
  /// Flips one bit (fault-injection corruption hook), copy-on-write.
  void flip_bit(std::size_t bit) {
    (*this)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  std::vector<std::uint8_t> to_vector() const;
  /*implicit*/ operator std::vector<std::uint8_t>() const {  // NOLINT
    return to_vector();
  }

  // --- scatter-gather surface ----------------------------------------------
  std::size_t slice_count() const { return slice_count_; }
  const BufferSlice& slice(std::size_t i) const { return *slice_at(i); }
  /// Appends a view; no bytes move. Adjacent views of one block coalesce
  /// (common when a writer emits consecutive spans of one chunk).
  void append(BufferSlice slice) {
    if (slice.size == 0) return;
    size_ += slice.size;
    if (slice_count_ > 0) {
      BufferSlice* last = slice_at(slice_count_ - 1);
      if (last->buf.get() == slice.buf.get() &&
          last->offset + last->size == slice.offset) {
        last->size += slice.size;
        return;
      }
    }
    if (spill_ == nullptr && slice_count_ < kInlineSlices) {
      ::new (raw_slot(slice_count_)) BufferSlice(std::move(slice));
      ++slice_count_;
      return;
    }
    push_slice(std::move(slice));
  }
  /// Appends a view of `[offset, offset+size)` of `block`.
  void append(const BufferRef& block, std::size_t offset, std::size_t size) {
    BufferSlice slice;
    slice.buf = block;
    slice.offset = static_cast<std::uint32_t>(offset);
    slice.size = static_cast<std::uint32_t>(size);
    append(std::move(slice));
  }
  /// Appends every slice of `other` (reassembly chain building).
  void append(const Payload& other);
  /// A sub-view [offset, offset+length); refcount bumps only, no copy.
  Payload subspan(std::size_t offset,
                  std::size_t length = static_cast<std::size_t>(-1)) const;
  /// Drops bytes from the tail (CRC trailer removal); views only.
  void truncate(std::size_t new_size);
  /// Copies the chain's bytes into `dst` (must hold size() bytes).
  void copy_to(std::uint8_t* dst) const;
  std::uint8_t byte(std::size_t index) const;
  /// Largest contiguous prefix run: data pointer + its length. Fast path
  /// for header parsing (a fragment's first slice is its 6-byte header).
  const std::uint8_t* contiguous_prefix(std::size_t* length) const {
    if (slice_count_ == 0) {
      *length = 0;
      return nullptr;
    }
    const BufferSlice* s = slice_at(0);
    *length = s->size;
    return s->data();
  }

 private:
  void adopt(std::vector<std::uint8_t> bytes);
  void assign_bytes(const std::uint8_t* data, std::size_t n);
  /// Collapses the chain into one uniquely-owned block (COW backing).
  void ensure_owned();
  /// Raw inline storage: slices are placement-new'd on append and destroyed
  /// on clear, so constructing or moving a Payload never touches inactive
  /// slots (a default-constructed array would zero 64 bytes per Payload on
  /// this hot path).
  void* raw_slot(std::size_t i) {
    return static_cast<void*>(inline_mem_ + i * sizeof(BufferSlice));
  }
  BufferSlice* inline_at(std::size_t i) {
    return std::launder(reinterpret_cast<BufferSlice*>(inline_mem_)) + i;
  }
  const BufferSlice* inline_at(std::size_t i) const {
    return std::launder(reinterpret_cast<const BufferSlice*>(inline_mem_)) + i;
  }
  BufferSlice* slice_at(std::size_t i) {
    return spill_ != nullptr ? &(*spill_)[i] : inline_at(i);
  }
  const BufferSlice* slice_at(std::size_t i) const {
    return spill_ != nullptr ? &(*spill_)[i] : inline_at(i);
  }
  /// Slow path of append(): spill to the heap vector (inline array full).
  void push_slice(BufferSlice&& slice);

  alignas(BufferSlice) std::byte inline_mem_[kInlineSlices *
                                             sizeof(BufferSlice)];
  std::unique_ptr<std::vector<BufferSlice>> spill_;
  std::uint32_t slice_count_ = 0;
  std::size_t size_ = 0;
};

/// FNV-1a over a payload chain without linearizing (bench cross-checks,
/// wire-format parity fingerprints).
std::uint64_t payload_fnv1a(const Payload& payload,
                            std::uint64_t hash = 0xCBF29CE484222325ULL);

}  // namespace dynaplat::net
