// Switched Ethernet model with 802.1Q strict-priority queuing and optional
// 802.1Qbv time-aware gating (TSN) on egress ports.
//
// Topology is a single store-and-forward switch in a star; that matches the
// centralized backbone architectures the paper cites (RACE [15]) and is the
// worst-case shared resource for interference experiments (E2/E9). Per-port
// egress has eight strict-priority queues; a TSN GateControlList can reserve
// exclusive time windows for deterministic traffic classes so NDA bulk
// traffic cannot delay DA frames (Sec. 5.3).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "net/medium.hpp"

namespace dynaplat::net {

/// One entry of an 802.1Qbv gate control list. Offsets are relative to the
/// cycle start; `open_mask` bit i opens priority class i (0 = most urgent).
struct GateWindow {
  sim::Duration offset = 0;
  sim::Duration length = 0;
  std::uint8_t open_mask = 0xFF;
};

struct GateControlList {
  sim::Duration cycle = 0;  ///< 0 => gating disabled (plain strict priority)
  std::vector<GateWindow> windows;
  bool enabled() const { return cycle > 0; }

  /// Builds the canonical two-window list: [0, tt_len) exclusively for
  /// priorities <= tt_max_priority, rest of the cycle for everything else.
  static GateControlList tt_window(sim::Duration cycle, sim::Duration tt_len,
                                   Priority tt_max_priority);
};

struct EthernetConfig {
  std::uint64_t link_bps = 100'000'000;        ///< 100BASE-T1
  sim::Duration processing_delay = 2'000;      ///< store-and-forward switch
  sim::Duration propagation_delay = 100;       ///< per hop
  std::size_t max_payload_bytes = 1500;
  std::size_t queue_capacity = 256;            ///< frames per egress queue
};

class EthernetSwitch final : public Medium {
 public:
  EthernetSwitch(sim::Simulator& simulator, std::string name,
                 EthernetConfig config);

  void send(Frame frame) override;
  std::size_t max_payload() const override {
    return config_.max_payload_bytes;
  }

  /// Installs a time-aware gate on the egress port towards `node`.
  void set_gate_control(NodeId node, GateControlList gcl);

  /// Serialization time of a frame with `payload` bytes on one link,
  /// including L2 header, FCS, preamble and interframe gap.
  sim::Duration frame_duration(std::size_t payload) const;

  std::uint64_t egress_drops() const { return egress_drops_; }

 protected:
  void on_attach(NodeId node) override { egress_[node]; }

 private:
  struct EgressPort {
    std::array<std::deque<Frame>, 8> queues;  // index = Priority
    bool busy = false;
    GateControlList gcl;
    sim::EventId pending_kick;  // scheduled gate-open re-evaluation
    std::uint32_t trace_lane = 0;  // interned "<switch>/egress<node>" id
  };

  void on_ingress_complete(Frame frame);
  void enqueue_egress(NodeId node, Frame frame);
  void try_transmit(NodeId node);
  /// Earliest time >= now at which a frame of class `p` lasting `tx` may
  /// start under the port's gate; nullopt if the GCL never opens that class.
  std::optional<sim::Time> gate_open_time(const EgressPort& port, Priority p,
                                          sim::Duration tx) const;

  EthernetConfig config_;
  std::map<NodeId, sim::Time> ingress_free_at_;  // per-node transmitter
  std::map<NodeId, EgressPort> egress_;
  std::uint64_t seq_ = 0;
  std::uint64_t egress_drops_ = 0;
};

}  // namespace dynaplat::net
