// Abstract communication medium.
//
// A Medium accepts frames from attached nodes and delivers them later
// according to its timing model (arbitration, queuing, gating). All media are
// event-driven on the shared sim::Simulator, so cross-medium scenarios (CAN
// body bus + Ethernet backbone) compose naturally.
//
// Fault-injection hooks (XiL, Sec. 2.4; fault campaigns, src/fault): frame
// loss (uniform or Gilbert-Elliott bursty), payload bit-flip corruption and
// bus partitions are all modeled here so every concrete medium inherits
// them. All randomness is seeded deterministically — by default from the
// medium's *name*, so two buses with identical configs still see
// uncorrelated loss patterns.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/frame.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace dynaplat::net {

using ReceiveHandler = std::function<void(const Frame&)>;

/// Two-state bursty loss model: the channel alternates between a Good and a
/// Bad state with the given transition probabilities (evaluated per frame);
/// each state drops frames with its own probability. Captures the
/// correlated loss bursts of EMI / connector faults that a uniform rate
/// cannot (loss_bad = 1.0 models a hard burst outage).
struct GilbertElliott {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;
};

class Medium {
 public:
  explicit Medium(sim::Simulator& simulator, std::string name)
      : sim_(simulator), name_(std::move(name)) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node; `handler` is invoked at delivery time.
  void attach(NodeId node, ReceiveHandler handler) {
    receivers_[node] = std::move(handler);
    on_attach(node);
  }
  void detach(NodeId node) { receivers_.erase(node); }
  bool attached(NodeId node) const { return receivers_.count(node) > 0; }
  /// Attached node ids in deterministic (sorted) order — fault campaigns
  /// use this to carve reproducible partition islands.
  std::vector<NodeId> attached_nodes() const {
    std::vector<NodeId> nodes;
    nodes.reserve(receivers_.size());
    for (const auto& [id, handler] : receivers_) nodes.push_back(id);
    return nodes;
  }

  /// Submits a frame for transmission. The medium stamps enqueued_at.
  virtual void send(Frame frame) = 0;

  /// Submits a burst of frames in one call (a fragmented message's
  /// fragments). The default forwards each frame through send() in index
  /// order, so fault-injection RNG draws and timing are identical to N
  /// separate calls; media whose enqueue has a common setup cost (CAN
  /// arbitration restart, FlexRay cycle scheduling) override this to pay it
  /// once per burst instead of once per frame.
  virtual void send_batch(std::vector<Frame>& frames) {
    for (Frame& frame : frames) send(std::move(frame));
    frames.clear();
  }

  /// Largest payload a single frame may carry (segmentation is the
  /// transport layer's job; see middleware::Transport).
  virtual std::size_t max_payload() const = 0;

  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  /// End-to-end frame latency samples (enqueue -> delivery), nanoseconds.
  const sim::Stats& latency_stats() const { return latency_stats_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_partition_dropped() const {
    return frames_partition_dropped_;
  }

  /// Uniform frame loss: drop each frame with probability `loss_rate` at
  /// submission. Deterministic in `seed`; seed 0 derives a per-medium seed
  /// from the name so buses never share a drop sequence by default.
  void set_fault_injection(double loss_rate, std::uint64_t seed = 0) {
    loss_rate_ = loss_rate;
    burst_.p_good_to_bad = 0.0;  // uniform mode disables the burst model
    fault_rng_ = sim::Random(derive_seed(seed, 0x10551055ULL));
  }

  /// Bursty (Gilbert-Elliott) frame loss, replacing the uniform knob while
  /// configured. Deterministic in `seed` (0 = derive from the name).
  void set_burst_loss(GilbertElliott model, std::uint64_t seed = 0) {
    burst_ = model;
    loss_rate_ = 0.0;
    burst_bad_ = false;
    fault_rng_ = sim::Random(derive_seed(seed, 0xB0B5B0B5ULL));
  }
  void clear_loss() {
    loss_rate_ = 0.0;
    burst_ = GilbertElliott{};
    burst_bad_ = false;
  }
  /// Whether the burst model currently sits in the Bad state (tests).
  bool burst_state_bad() const { return burst_bad_; }

  /// Payload corruption: with probability `rate` a transmitted frame has
  /// one random payload bit flipped (detectable only by an end-to-end
  /// integrity check, e.g. the reliable transport's CRC32).
  void set_corruption(double rate, std::uint64_t seed = 0) {
    corruption_rate_ = rate;
    corrupt_rng_ = sim::Random(derive_seed(seed, 0xC0DEC0DEULL));
  }

  /// Partitions the bus: nodes inside `island` can only reach each other,
  /// nodes outside only each other. Frames crossing the cut are dropped
  /// (counted in frames_partition_dropped). Models a severed harness /
  /// failed switch plane between two segments.
  void set_partition(std::set<NodeId> island) {
    partitioned_ = true;
    island_ = std::move(island);
  }
  void heal_partition() {
    partitioned_ = false;
    island_.clear();
  }
  bool partitioned() const { return partitioned_; }

  /// Attaches the observability sink: on-wire transmissions become kNetwork
  /// spans on the bus lane, and delivered/dropped counters plus a
  /// utilization gauge register under "net.<bus>.*". Ecu auto-wires this
  /// when it shares a trace with its medium.
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (trace_ == nullptr) return;
    trace_source_ = trace_->buffer().intern(name_);
    ev_tx_ = trace_->buffer().intern("tx");
    auto& metrics = trace_->metrics();
    delivered_counter_ = &metrics.counter("net." + name_ + ".frames_delivered");
    dropped_counter_ = &metrics.counter("net." + name_ + ".frames_dropped");
    corrupted_counter_ = &metrics.counter("net." + name_ + ".frames_corrupted");
    utilization_gauge_ = &metrics.gauge("net." + name_ + ".utilization");
  }
  sim::Trace* trace() const { return trace_; }

 protected:
  /// Records one on-wire transmission span [start, end] on `lane` (interned
  /// source id; 0 means the bus's own lane) and rolls the utilization gauge
  /// (cumulative busy time / elapsed time) forward. Span timestamps may lie
  /// in the future — concrete media call this when they commit to a
  /// transmission; the exporter orders events by timestamp.
  void trace_tx_span(sim::Time start, sim::Time end, std::uint32_t lane = 0) {
    if (end > start) busy_accum_ += end - start;
    if (trace_ == nullptr) return;
    if (utilization_gauge_ != nullptr && end > 0) {
      utilization_gauge_->set(static_cast<double>(busy_accum_) /
                              static_cast<double>(end));
    }
    if (!trace_->enabled(sim::TraceCategory::kNetwork)) return;
    const std::uint32_t source = lane != 0 ? lane : trace_source_;
    trace_->buffer().begin_span(start, sim::TraceCategory::kNetwork, source,
                                ev_tx_);
    trace_->buffer().end_span(end, sim::TraceCategory::kNetwork, source,
                              ev_tx_);
  }
  std::uint32_t trace_lane(const std::string& name) {
    return trace_ == nullptr ? 0 : trace_->buffer().intern(name);
  }
  /// Notifies a concrete medium that a node joined (e.g. the Ethernet switch
  /// provisions an egress port so broadcast flooding reaches the node).
  virtual void on_attach(NodeId node) { (void)node; }

  /// Delivers to the destination (or floods on broadcast), excluding `src`.
  /// Partition cuts apply here, after the medium's timing model ran: the
  /// frame occupied the wire but never arrived across the cut.
  void deliver(Frame frame) {
    frame.delivered_at = sim_.now();
    if (frame.dst == kBroadcast) {
      bool any = false;
      for (auto& [node, handler] : receivers_) {
        if (node == frame.src || !handler) continue;
        if (!reachable(frame.src, node)) {
          ++frames_partition_dropped_;
          continue;
        }
        if (!any) {
          count_delivery(frame);
          any = true;
        }
        handler(frame);
      }
      if (!any && partitioned_) count_drop();
      return;
    }
    if (!reachable(frame.src, frame.dst)) {
      ++frames_partition_dropped_;
      count_drop();
      return;
    }
    count_delivery(frame);
    auto it = receivers_.find(frame.dst);
    if (it != receivers_.end() && it->second) it->second(frame);
  }

  void count_drop() {
    ++frames_dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
  }

  /// Subclasses call this at the top of send(); true means the frame was
  /// consumed by fault injection (loss). May also flip a payload bit in
  /// place (corruption) while letting the frame through.
  bool inject_faults(Frame& frame) {
    bool drop = false;
    if (burst_.p_good_to_bad > 0.0 || burst_bad_) {
      // Advance the two-state channel, then sample loss in the new state.
      if (burst_bad_) {
        if (fault_rng_.chance(burst_.p_bad_to_good)) burst_bad_ = false;
      } else {
        if (fault_rng_.chance(burst_.p_good_to_bad)) burst_bad_ = true;
      }
      drop = fault_rng_.chance(burst_bad_ ? burst_.loss_bad
                                          : burst_.loss_good);
    } else if (loss_rate_ > 0.0) {
      drop = fault_rng_.chance(loss_rate_);
    }
    if (drop) {
      count_drop();
      return true;
    }
    if (corruption_rate_ > 0.0 && !frame.payload.empty() &&
        corrupt_rng_.chance(corruption_rate_)) {
      const std::uint64_t bit =
          corrupt_rng_.next_below(frame.payload.size() * 8);
      frame.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      ++frames_corrupted_;
      if (corrupted_counter_ != nullptr) corrupted_counter_->add();
    }
    return false;
  }

  sim::Simulator& sim_;

 private:
  void count_delivery(const Frame& frame) {
    latency_stats_.add(
        static_cast<double>(frame.delivered_at - frame.enqueued_at));
    ++frames_delivered_;
    if (delivered_counter_ != nullptr) delivered_counter_->add();
  }

  bool reachable(NodeId a, NodeId b) const {
    if (!partitioned_) return true;
    return (island_.count(a) > 0) == (island_.count(b) > 0);
  }

  /// seed != 0 is honored verbatim; 0 mixes an FNV-1a hash of the medium
  /// name with the purpose salt, so distinct buses (and distinct fault
  /// types on one bus) draw from independent deterministic streams.
  std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) const {
    if (seed != 0) return seed;
    std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
    for (const char c : name_) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ULL;
    }
    return h ^ salt;
  }

  std::string name_;
  std::map<NodeId, ReceiveHandler> receivers_;
  sim::Stats latency_stats_;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_partition_dropped_ = 0;
  double loss_rate_ = 0.0;
  GilbertElliott burst_;
  bool burst_bad_ = false;
  double corruption_rate_ = 0.0;
  bool partitioned_ = false;
  std::set<NodeId> island_;
  sim::Random fault_rng_{99};
  sim::Random corrupt_rng_{77};
  sim::Trace* trace_ = nullptr;
  std::uint32_t trace_source_ = 0;  // interned bus lane
  std::uint32_t ev_tx_ = 0;
  sim::Duration busy_accum_ = 0;  // cumulative on-wire time, all lanes
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* corrupted_counter_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace dynaplat::net
