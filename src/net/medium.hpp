// Abstract communication medium.
//
// A Medium accepts frames from attached nodes and delivers them later
// according to its timing model (arbitration, queuing, gating). All media are
// event-driven on the shared sim::Simulator, so cross-medium scenarios (CAN
// body bus + Ethernet backbone) compose naturally.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/frame.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace dynaplat::net {

using ReceiveHandler = std::function<void(const Frame&)>;

class Medium {
 public:
  explicit Medium(sim::Simulator& simulator, std::string name)
      : sim_(simulator), name_(std::move(name)) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node; `handler` is invoked at delivery time.
  void attach(NodeId node, ReceiveHandler handler) {
    receivers_[node] = std::move(handler);
    on_attach(node);
  }
  void detach(NodeId node) { receivers_.erase(node); }
  bool attached(NodeId node) const { return receivers_.count(node) > 0; }

  /// Submits a frame for transmission. The medium stamps enqueued_at.
  virtual void send(Frame frame) = 0;

  /// Largest payload a single frame may carry (segmentation is the
  /// transport layer's job; see middleware::Transport).
  virtual std::size_t max_payload() const = 0;

  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  /// End-to-end frame latency samples (enqueue -> delivery), nanoseconds.
  const sim::Stats& latency_stats() const { return latency_stats_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  /// Fault injection (XiL, Sec. 2.4): drop each frame with probability
  /// `loss_rate` at submission. Deterministic in `seed`.
  void set_fault_injection(double loss_rate, std::uint64_t seed = 99) {
    loss_rate_ = loss_rate;
    fault_rng_ = sim::Random(seed);
  }

 protected:
  /// Notifies a concrete medium that a node joined (e.g. the Ethernet switch
  /// provisions an egress port so broadcast flooding reaches the node).
  virtual void on_attach(NodeId node) { (void)node; }

  /// Delivers to the destination (or floods on broadcast), excluding `src`.
  void deliver(Frame frame) {
    frame.delivered_at = sim_.now();
    latency_stats_.add(
        static_cast<double>(frame.delivered_at - frame.enqueued_at));
    ++frames_delivered_;
    if (frame.dst == kBroadcast) {
      for (auto& [node, handler] : receivers_) {
        if (node != frame.src && handler) handler(frame);
      }
    } else {
      auto it = receivers_.find(frame.dst);
      if (it != receivers_.end() && it->second) it->second(frame);
    }
  }

  void count_drop() { ++frames_dropped_; }

  /// Subclasses call this at the top of send(); true means the frame was
  /// consumed by fault injection.
  bool inject_drop() {
    if (loss_rate_ > 0.0 && fault_rng_.chance(loss_rate_)) {
      count_drop();
      return true;
    }
    return false;
  }

  sim::Simulator& sim_;

 private:
  std::string name_;
  std::map<NodeId, ReceiveHandler> receivers_;
  sim::Stats latency_stats_;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
  double loss_rate_ = 0.0;
  sim::Random fault_rng_{99};
};

}  // namespace dynaplat::net
