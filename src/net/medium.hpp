// Abstract communication medium.
//
// A Medium accepts frames from attached nodes and delivers them later
// according to its timing model (arbitration, queuing, gating). All media are
// event-driven on the shared sim::Simulator, so cross-medium scenarios (CAN
// body bus + Ethernet backbone) compose naturally.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/frame.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace dynaplat::net {

using ReceiveHandler = std::function<void(const Frame&)>;

class Medium {
 public:
  explicit Medium(sim::Simulator& simulator, std::string name)
      : sim_(simulator), name_(std::move(name)) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node; `handler` is invoked at delivery time.
  void attach(NodeId node, ReceiveHandler handler) {
    receivers_[node] = std::move(handler);
    on_attach(node);
  }
  void detach(NodeId node) { receivers_.erase(node); }
  bool attached(NodeId node) const { return receivers_.count(node) > 0; }

  /// Submits a frame for transmission. The medium stamps enqueued_at.
  virtual void send(Frame frame) = 0;

  /// Largest payload a single frame may carry (segmentation is the
  /// transport layer's job; see middleware::Transport).
  virtual std::size_t max_payload() const = 0;

  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  /// End-to-end frame latency samples (enqueue -> delivery), nanoseconds.
  const sim::Stats& latency_stats() const { return latency_stats_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  /// Fault injection (XiL, Sec. 2.4): drop each frame with probability
  /// `loss_rate` at submission. Deterministic in `seed`.
  void set_fault_injection(double loss_rate, std::uint64_t seed = 99) {
    loss_rate_ = loss_rate;
    fault_rng_ = sim::Random(seed);
  }

  /// Attaches the observability sink: on-wire transmissions become kNetwork
  /// spans on the bus lane, and delivered/dropped counters plus a
  /// utilization gauge register under "net.<bus>.*". Ecu auto-wires this
  /// when it shares a trace with its medium.
  void set_trace(sim::Trace* trace) {
    trace_ = trace;
    if (trace_ == nullptr) return;
    trace_source_ = trace_->buffer().intern(name_);
    ev_tx_ = trace_->buffer().intern("tx");
    auto& metrics = trace_->metrics();
    delivered_counter_ = &metrics.counter("net." + name_ + ".frames_delivered");
    dropped_counter_ = &metrics.counter("net." + name_ + ".frames_dropped");
    utilization_gauge_ = &metrics.gauge("net." + name_ + ".utilization");
  }
  sim::Trace* trace() const { return trace_; }

 protected:
  /// Records one on-wire transmission span [start, end] on `lane` (interned
  /// source id; 0 means the bus's own lane) and rolls the utilization gauge
  /// (cumulative busy time / elapsed time) forward. Span timestamps may lie
  /// in the future — concrete media call this when they commit to a
  /// transmission; the exporter orders events by timestamp.
  void trace_tx_span(sim::Time start, sim::Time end, std::uint32_t lane = 0) {
    if (end > start) busy_accum_ += end - start;
    if (trace_ == nullptr) return;
    if (utilization_gauge_ != nullptr && end > 0) {
      utilization_gauge_->set(static_cast<double>(busy_accum_) /
                              static_cast<double>(end));
    }
    if (!trace_->enabled(sim::TraceCategory::kNetwork)) return;
    const std::uint32_t source = lane != 0 ? lane : trace_source_;
    trace_->buffer().begin_span(start, sim::TraceCategory::kNetwork, source,
                                ev_tx_);
    trace_->buffer().end_span(end, sim::TraceCategory::kNetwork, source,
                              ev_tx_);
  }
  std::uint32_t trace_lane(const std::string& name) {
    return trace_ == nullptr ? 0 : trace_->buffer().intern(name);
  }
  /// Notifies a concrete medium that a node joined (e.g. the Ethernet switch
  /// provisions an egress port so broadcast flooding reaches the node).
  virtual void on_attach(NodeId node) { (void)node; }

  /// Delivers to the destination (or floods on broadcast), excluding `src`.
  void deliver(Frame frame) {
    frame.delivered_at = sim_.now();
    latency_stats_.add(
        static_cast<double>(frame.delivered_at - frame.enqueued_at));
    ++frames_delivered_;
    if (delivered_counter_ != nullptr) delivered_counter_->add();
    if (frame.dst == kBroadcast) {
      for (auto& [node, handler] : receivers_) {
        if (node != frame.src && handler) handler(frame);
      }
    } else {
      auto it = receivers_.find(frame.dst);
      if (it != receivers_.end() && it->second) it->second(frame);
    }
  }

  void count_drop() {
    ++frames_dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
  }

  /// Subclasses call this at the top of send(); true means the frame was
  /// consumed by fault injection.
  bool inject_drop() {
    if (loss_rate_ > 0.0 && fault_rng_.chance(loss_rate_)) {
      count_drop();
      return true;
    }
    return false;
  }

  sim::Simulator& sim_;

 private:
  std::string name_;
  std::map<NodeId, ReceiveHandler> receivers_;
  sim::Stats latency_stats_;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
  double loss_rate_ = 0.0;
  sim::Random fault_rng_{99};
  sim::Trace* trace_ = nullptr;
  std::uint32_t trace_source_ = 0;  // interned bus lane
  std::uint32_t ev_tx_ = 0;
  sim::Duration busy_accum_ = 0;  // cumulative on-wire time, all lanes
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace dynaplat::net
