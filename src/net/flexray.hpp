// FlexRay-style hybrid TDMA bus.
//
// Models the property the paper leans on in Sec. 5.3: a communication cycle
// split into a *static segment* (time-triggered slots statically assigned to
// flows — deterministic latency independent of other traffic) and a *dynamic
// segment* (priority-ordered minislot arbitration for best-effort traffic).
// Used as the classical mixed-criticality baseline against TSN in E9.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "net/medium.hpp"

namespace dynaplat::net {

struct FlexRayConfig {
  std::uint64_t bitrate_bps = 10'000'000;  ///< FlexRay 10 Mbit/s channel
  std::size_t static_slots = 30;
  sim::Duration static_slot_duration = 50'000;   ///< 50 us
  std::size_t minislots = 100;
  sim::Duration minislot_duration = 10'000;      ///< 10 us
  std::size_t max_static_payload = 64;
  std::size_t max_dynamic_payload = 254;
};

class FlexRayBus final : public Medium {
 public:
  FlexRayBus(sim::Simulator& simulator, std::string name,
             FlexRayConfig config);

  /// Reserves static slot `slot` (0-based) for frames with this flow id.
  /// One flow per slot; re-assigning replaces the previous owner.
  void assign_static_slot(std::size_t slot, std::uint32_t flow_id);

  /// Frames whose flow id owns a static slot ride the static segment;
  /// everything else arbitrates the dynamic segment by priority.
  void send(Frame frame) override;
  /// Burst enqueue: all frames join their segment queues before the cycle
  /// scheduling check runs once. Same queue state and cycle alignment as N
  /// send() calls.
  void send_batch(std::vector<Frame>& frames) override;
  std::size_t max_payload() const override {
    return config_.max_dynamic_payload;
  }

  sim::Duration cycle_duration() const;
  std::uint64_t cycles_run() const { return cycles_run_; }

 private:
  void enqueue(Frame frame);
  void ensure_cycle_scheduled();
  void run_cycle();

  FlexRayConfig config_;
  std::map<std::size_t, std::uint32_t> slot_owner_;    // slot -> flow id
  std::map<std::uint32_t, std::size_t> flow_slot_;     // flow id -> slot
  std::map<std::uint32_t, std::deque<Frame>> static_pending_;  // by flow
  // Dynamic segment queue ordered by (priority, fifo seq).
  std::map<std::pair<Priority, std::uint64_t>, Frame> dynamic_pending_;
  std::uint64_t seq_ = 0;
  std::uint64_t cycles_run_ = 0;
  bool cycle_scheduled_ = false;
};

}  // namespace dynaplat::net
