#include "net/buffer.hpp"

#include <algorithm>

namespace dynaplat::net {

namespace detail {

/// One recyclable allocation: header + Block + payload bytes, carved from a
/// single heap allocation. Chunks never shrink back to the heap while the
/// arena lives — release() threads them onto the free list instead.
struct ArenaState::Chunk {
  Chunk* next_free = nullptr;
  ArenaState* state = nullptr;
  Block block;
  // payload bytes follow the struct
  std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(this + 1); }
};

namespace {

void destroy_chunk(ArenaState::Chunk* chunk) {
  chunk->~Chunk();
  ::operator delete(static_cast<void*>(chunk));
}

void maybe_destroy_state(ArenaState* state) {
  if (state->alive || state->outstanding != 0) return;
  ArenaState::Chunk* chunk = state->free_head;
  while (chunk != nullptr) {
    ArenaState::Chunk* next = chunk->next_free;
    destroy_chunk(chunk);
    chunk = next;
  }
  delete state;
}

}  // namespace

}  // namespace detail

void Block::release() {
  if (--refcount_ != 0) return;
  if (arena_ != nullptr) {
    detail::ArenaState* state = arena_;
    auto* chunk = static_cast<detail::ArenaState::Chunk*>(chunk_);
    --state->outstanding;
    if (state->alive) {
      chunk->next_free = state->free_head;
      state->free_head = chunk;
    } else {
      // Arena died while this block was in flight (e.g. a frame still
      // queued in a medium after its Transport was destroyed): the chunk
      // has no free list to return to.
      detail::destroy_chunk(chunk);
      detail::maybe_destroy_state(state);
    }
  } else {
    delete this;
  }
}

BufferRef BufferRef::adopt_vector(std::vector<std::uint8_t> bytes) {
  auto* block = new Block();
  block->storage_ = std::move(bytes);
  block->vector_backed_ = true;
  block->data_ = block->storage_.data();
  block->size_ = block->storage_.size();
  block->capacity_ = block->storage_.size();
  return BufferRef(block);
}

BufferRef BufferRef::copy_bytes(const std::uint8_t* data, std::size_t size) {
  return adopt_vector(std::vector<std::uint8_t>(data, data + size));
}

BufferArena::BufferArena()
    : small_(new detail::ArenaState()), large_(new detail::ArenaState()) {
  small_->chunk_capacity = kSmallCapacity;
  large_->chunk_capacity = kLargeCapacity;
}

BufferArena::~BufferArena() {
  for (detail::ArenaState* state : {small_, large_}) {
    state->alive = false;
    detail::maybe_destroy_state(state);
  }
}

BufferRef BufferArena::alloc(std::size_t size) {
  if (size <= kSmallCapacity) return alloc_from(small_, size);
  if (size <= kLargeCapacity) return alloc_from(large_, size);
  // Oversize (e.g. a many-KiB linearization): plain heap block. Rare by
  // construction — fragmentation splits messages well below this.
  ++oversize_allocs_;
  auto* block = new Block();
  block->storage_.resize(size);
  block->data_ = block->storage_.data();
  block->size_ = size;
  block->capacity_ = size;
  return BufferRef(block);
}

BufferRef BufferArena::alloc_from(detail::ArenaState* state, std::size_t size) {
  detail::ArenaState::Chunk* chunk = state->free_head;
  if (chunk != nullptr) {
    state->free_head = chunk->next_free;
    chunk->next_free = nullptr;
    ++state->chunks_reused;
  } else {
    void* raw = ::operator new(sizeof(detail::ArenaState::Chunk) +
                               state->chunk_capacity);
    chunk = ::new (raw) detail::ArenaState::Chunk();
    chunk->state = state;
    chunk->block.arena_ = state;
    chunk->block.chunk_ = chunk;
    ++state->chunks_allocated;
  }
  ++state->outstanding;
  Block* block = &chunk->block;
  block->data_ = chunk->bytes();
  block->size_ = size;
  block->capacity_ = state->chunk_capacity;
  return BufferRef(block);
}

Payload::Payload(const Payload& other) { append(other); }

Payload& Payload::operator=(const Payload& other) {
  if (this == &other) return *this;
  clear();
  append(other);
  return *this;
}

void Payload::assign(std::size_t n, std::uint8_t value) {
  clear();
  std::vector<std::uint8_t> bytes(n, value);
  adopt(std::move(bytes));
}

void Payload::adopt(std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  std::size_t n = bytes.size();
  BufferRef block = BufferRef::adopt_vector(std::move(bytes));
  append(block, 0, n);
}

void Payload::assign_bytes(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  BufferRef block = BufferRef::copy_bytes(data, n);
  append(block, 0, n);
}

void Payload::push_slice(BufferSlice&& slice) {
  if (spill_ == nullptr) {
    spill_ = std::make_unique<std::vector<BufferSlice>>();
    spill_->reserve(kInlineSlices * 2);
    for (std::uint32_t i = 0; i < slice_count_; ++i) {
      BufferSlice* s = inline_at(i);
      spill_->push_back(std::move(*s));
      s->~BufferSlice();
    }
  }
  spill_->push_back(std::move(slice));
  ++slice_count_;
}

void Payload::append(const Payload& other) {
  for (std::size_t i = 0; i < other.slice_count_; ++i) {
    append(*other.slice_at(i));
  }
}

Payload Payload::subspan(std::size_t offset, std::size_t length) const {
  Payload out;
  if (offset >= size_) return out;
  std::size_t remaining = std::min(length, size_ - offset);
  for (std::size_t i = 0; i < slice_count_ && remaining > 0; ++i) {
    const BufferSlice* s = slice_at(i);
    if (offset >= s->size) {
      offset -= s->size;
      continue;
    }
    std::size_t take = std::min<std::size_t>(s->size - offset, remaining);
    out.append(s->buf, s->offset + offset, take);
    remaining -= take;
    offset = 0;
  }
  return out;
}

void Payload::truncate(std::size_t new_size) {
  if (new_size >= size_) return;
  std::size_t keep = new_size;
  std::uint32_t kept_slices = 0;
  for (std::size_t i = 0; i < slice_count_; ++i) {
    if (keep == 0) break;
    BufferSlice* s = slice_at(i);
    if (s->size >= keep) {
      s->size = static_cast<std::uint32_t>(keep);
      keep = 0;
    } else {
      keep -= s->size;
    }
    ++kept_slices;
  }
  if (spill_ != nullptr) {
    spill_->resize(kept_slices);
  } else {
    for (std::uint32_t i = kept_slices; i < slice_count_; ++i) {
      inline_at(i)->~BufferSlice();
    }
  }
  slice_count_ = kept_slices;
  size_ = new_size;
}

void Payload::copy_to(std::uint8_t* dst) const {
  for (std::size_t i = 0; i < slice_count_; ++i) {
    const BufferSlice* s = slice_at(i);
    std::memcpy(dst, s->data(), s->size);
    dst += s->size;
  }
}

std::uint8_t Payload::byte(std::size_t index) const {
  for (std::size_t i = 0; i < slice_count_; ++i) {
    const BufferSlice* s = slice_at(i);
    if (index < s->size) return s->data()[index];
    index -= s->size;
  }
  assert(false && "Payload::byte index out of range");
  return 0;
}

std::vector<std::uint8_t> Payload::to_vector() const {
  std::vector<std::uint8_t> out(size_);
  if (size_ != 0) copy_to(out.data());
  return out;
}

void Payload::ensure_owned() {
  if (slice_count_ == 1) {
    BufferSlice* s = slice_at(0);
    Block* b = s->buf.get();
    // Already private: sole reference, and the view spans the whole block
    // (a partial view could alias bytes another slice sees).
    if (b->unique() && s->offset == 0 && s->size == b->size()) return;
  }
  std::vector<std::uint8_t> flat = to_vector();
  std::size_t n = flat.size();
  BufferRef block = BufferRef::adopt_vector(std::move(flat));
  clear();
  if (n != 0) append(block, 0, n);
}

std::uint64_t payload_fnv1a(const Payload& payload, std::uint64_t hash) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  for (std::size_t i = 0; i < payload.slice_count(); ++i) {
    const BufferSlice& s = payload.slice(i);
    const std::uint8_t* data = s.data();
    for (std::uint32_t j = 0; j < s.size; ++j) {
      hash = (hash ^ data[j]) * kPrime;
    }
  }
  return hash;
}

}  // namespace dynaplat::net
