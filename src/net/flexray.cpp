#include "net/flexray.hpp"

#include <cassert>

namespace dynaplat::net {

FlexRayBus::FlexRayBus(sim::Simulator& simulator, std::string name,
                       FlexRayConfig config)
    : Medium(simulator, std::move(name)), config_(config) {}

sim::Duration FlexRayBus::cycle_duration() const {
  return static_cast<sim::Duration>(config_.static_slots) *
             config_.static_slot_duration +
         static_cast<sim::Duration>(config_.minislots) *
             config_.minislot_duration;
}

void FlexRayBus::assign_static_slot(std::size_t slot, std::uint32_t flow_id) {
  assert(slot < config_.static_slots);
  auto prev = slot_owner_.find(slot);
  if (prev != slot_owner_.end()) flow_slot_.erase(prev->second);
  slot_owner_[slot] = flow_id;
  flow_slot_[flow_id] = slot;
}

void FlexRayBus::send(Frame frame) {
  if (inject_faults(frame)) return;
  enqueue(std::move(frame));
  ensure_cycle_scheduled();
}

void FlexRayBus::send_batch(std::vector<Frame>& frames) {
  for (Frame& frame : frames) {
    if (inject_faults(frame)) continue;
    enqueue(std::move(frame));
  }
  frames.clear();
  ensure_cycle_scheduled();
}

void FlexRayBus::enqueue(Frame frame) {
  frame.enqueued_at = sim_.now();
  frame.seq = seq_++;
  if (flow_slot_.count(frame.flow_id)) {
    assert(frame.payload.size() <= config_.max_static_payload);
    static_pending_[frame.flow_id].push_back(std::move(frame));
  } else {
    assert(frame.payload.size() <= config_.max_dynamic_payload);
    dynamic_pending_.emplace(std::make_pair(frame.priority, frame.seq),
                             std::move(frame));
  }
}

void FlexRayBus::ensure_cycle_scheduled() {
  if (!cycle_scheduled_) {
    cycle_scheduled_ = true;
    // Cycles are aligned to the global clock, as in real FlexRay.
    const sim::Duration cycle = cycle_duration();
    const sim::Time next_start = ((sim_.now() + cycle - 1) / cycle) * cycle;
    sim_.schedule_at(next_start, [this] { run_cycle(); });
  }
}

void FlexRayBus::run_cycle() {
  ++cycles_run_;
  const sim::Time cycle_start = sim_.now();

  // Static segment: each slot delivers at its slot's end time, regardless of
  // what any other sender does -- that is the determinism guarantee.
  for (const auto& [slot, flow] : slot_owner_) {
    auto it = static_pending_.find(flow);
    if (it == static_pending_.end() || it->second.empty()) continue;
    Frame frame = std::move(it->second.front());
    it->second.pop_front();
    const sim::Time slot_start =
        cycle_start +
        static_cast<sim::Duration>(slot) * config_.static_slot_duration;
    const sim::Time slot_end = slot_start + config_.static_slot_duration;
    trace_tx_span(slot_start, slot_end);
    sim_.schedule_at(slot_end, [this, f = std::move(frame)]() mutable {
      deliver(std::move(f));
    });
  }

  // Dynamic segment: minislot counting. Each transmitted frame consumes
  // ceil(duration / minislot) minislots; arbitration is by priority. A frame
  // that no longer fits in the remaining minislots waits for the next cycle.
  const sim::Time dynamic_start =
      cycle_start + static_cast<sim::Duration>(config_.static_slots) *
                        config_.static_slot_duration;
  std::size_t minislot = 0;
  auto it = dynamic_pending_.begin();
  while (it != dynamic_pending_.end() && minislot < config_.minislots) {
    const std::size_t frame_bits = (it->second.payload.size() + 10) * 8;
    const sim::Duration tx = static_cast<sim::Duration>(
        frame_bits * sim::kSecond / config_.bitrate_bps);
    const auto slots_needed = static_cast<std::size_t>(
        (tx + config_.minislot_duration - 1) / config_.minislot_duration);
    if (minislot + slots_needed > config_.minislots) break;
    Frame frame = std::move(it->second);
    it = dynamic_pending_.erase(it);
    const sim::Time done =
        dynamic_start + static_cast<sim::Duration>(minislot + slots_needed) *
                            config_.minislot_duration;
    trace_tx_span(dynamic_start + static_cast<sim::Duration>(minislot) *
                                      config_.minislot_duration,
                  done);
    sim_.schedule_at(done, [this, f = std::move(frame)]() mutable {
      deliver(std::move(f));
    });
    minislot += slots_needed;
  }

  // Keep cycling while anything is pending.
  bool more = !dynamic_pending_.empty();
  for (const auto& [flow, queue] : static_pending_) {
    more = more || !queue.empty();
  }
  if (more) {
    sim_.schedule_at(cycle_start + cycle_duration(),
                     [this] { run_cycle(); });
  } else {
    cycle_scheduled_ = false;
  }
}

}  // namespace dynaplat::net
