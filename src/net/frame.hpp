// Network frame and endpoint identifiers shared by all media models.
#pragma once

#include <cstdint>
#include <vector>

#include "net/buffer.hpp"
#include "sim/time.hpp"

namespace dynaplat::net {

/// Identifies an attached endpoint (an ECU's controller) on a medium.
using NodeId = std::uint32_t;

/// Destination value meaning "all attached nodes" (native CAN semantics;
/// also supported by the switch model as flooding).
inline constexpr NodeId kBroadcast = 0xFFFFFFFFu;

/// Unified priority scale across media: 0 is the most urgent.
/// CAN maps priority to the arbitration ID; Ethernet maps it to a PCP class
/// (priority 0..7 -> PCP 7..0); TSN maps it to a gate traffic class.
using Priority = std::uint8_t;
inline constexpr Priority kPriorityHighest = 0;
inline constexpr Priority kPriorityLowest = 7;

struct Frame {
  std::uint32_t flow_id = 0;  ///< CAN arbitration id / stream identifier.
  NodeId src = 0;
  NodeId dst = kBroadcast;
  Priority priority = kPriorityLowest;
  /// Scatter-gather payload: a chain of refcounted buffer slices. Copying a
  /// Frame bumps refcounts; the bytes themselves are shared (copy-on-write
  /// under mutation, see net/buffer.hpp).
  Payload payload;

  // Bookkeeping stamped by the media models; latency = delivered - enqueued.
  sim::Time enqueued_at = 0;
  sim::Time delivered_at = 0;
  std::uint64_t seq = 0;  ///< unique per-medium transmission counter

  std::size_t payload_size() const { return payload.size(); }
};

}  // namespace dynaplat::net
