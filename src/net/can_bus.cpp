#include "net/can_bus.hpp"

#include <cassert>

namespace dynaplat::net {

CanBus::CanBus(sim::Simulator& simulator, std::string name,
               CanBusConfig config)
    : Medium(simulator, std::move(name)), config_(config) {}

sim::Duration CanBus::frame_duration(std::size_t dlc) const {
  assert(dlc <= max_payload());
  if (!config_.fd) {
    // Standard frame: 1 SOF + 11 id + 1 RTR + 6 control + 8*dlc data +
    // 15 CRC + 1 CRC delim + 2 ACK + 7 EOF = 44 + 8*dlc bits, of which the
    // first 34 + 8*dlc are subject to stuffing (worst case 1 per 4 bits),
    // plus 3 bits interframe space.
    const std::uint64_t data_bits = 8ull * dlc;
    const std::uint64_t stuffable = 34 + data_bits;
    const std::uint64_t stuff = (stuffable - 1) / 4;
    const std::uint64_t total_bits = 44 + data_bits + stuff + 3;
    return static_cast<sim::Duration>(total_bits * sim::kSecond /
                                      config_.bitrate_bps);
  }
  // CAN FD: the arbitration phase (~30 bits: SOF, id, control entry, ACK,
  // EOF, IFS) runs at the arbitration bitrate; the BRS-switched data phase
  // (DLC, 8*dlc data, 21-bit CRC for >16 bytes, stuffing ~20%) runs at the
  // data bitrate.
  const std::uint64_t arbitration_bits = 30;
  const std::uint64_t data_field_bits = 8ull * dlc + 28;
  const std::uint64_t data_bits = data_field_bits + data_field_bits / 5;
  return static_cast<sim::Duration>(
      arbitration_bits * sim::kSecond / config_.bitrate_bps +
      data_bits * sim::kSecond / config_.data_bitrate_bps);
}

std::uint32_t CanBus::arbitration_id(const Frame& frame) const {
  const std::uint32_t base =
      std::uint32_t(frame.priority) * config_.id_stride;
  return (base + frame.flow_id % config_.id_stride) & 0x7FF;
}

std::size_t CanBus::queued() const {
  std::size_t n = 0;
  for (const auto& [id, q] : pending_) n += q.size();
  return n;
}

void CanBus::send(Frame frame) {
  if (inject_faults(frame)) return;
  assert(frame.payload.size() <= max_payload());
  frame.enqueued_at = sim_.now();
  frame.seq = seq_++;
  pending_[arbitration_id(frame)].push_back(std::move(frame));
  try_start_transmission();
}

void CanBus::send_batch(std::vector<Frame>& frames) {
  for (Frame& frame : frames) {
    if (inject_faults(frame)) continue;
    assert(frame.payload.size() <= max_payload());
    frame.enqueued_at = sim_.now();
    frame.seq = seq_++;
    pending_[arbitration_id(frame)].push_back(std::move(frame));
  }
  frames.clear();
  try_start_transmission();
}

void CanBus::try_start_transmission() {
  if (busy_ || pending_.empty()) return;
  // Arbitration: lowest id (map order) wins the idle bus.
  auto it = pending_.begin();
  in_flight_ = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) pending_.erase(it);
  busy_ = true;
  const sim::Duration on_wire = frame_duration(in_flight_.payload.size());
  trace_tx_span(sim_.now(), sim_.now() + on_wire);
  sim_.schedule_in(on_wire, [this] { finish_transmission(); });
}

void CanBus::finish_transmission() {
  busy_ = false;
  deliver(std::move(in_flight_));
  try_start_transmission();
}

}  // namespace dynaplat::net
