// CAN bus model (ISO 11898 classic CAN, 11-bit identifiers).
//
// Models the two properties that matter for the paper's interference
// arguments (Sec. 3.1 / Sec. 5.3): global priority arbitration by frame ID
// (lowest ID wins whenever the bus goes idle) and non-preemptive frame
// transmission (an urgent frame waits for at most one in-flight lower
// priority frame). Frame duration includes worst-case bit stuffing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "net/medium.hpp"

namespace dynaplat::net {

struct CanBusConfig {
  std::uint64_t bitrate_bps = 500'000;  ///< classic high-speed CAN
  /// Arbitration id = priority * id_stride + flow_id % id_stride, so the
  /// unified Priority maps onto the CAN id space.
  std::uint32_t id_stride = 0x80;
  /// CAN FD: 64-byte payloads and a faster data phase. The arbitration
  /// phase stays at bitrate_bps (all nodes must contend), the data phase
  /// switches to data_bitrate_bps.
  bool fd = false;
  std::uint64_t data_bitrate_bps = 2'000'000;
};

class CanBus final : public Medium {
 public:
  CanBus(sim::Simulator& simulator, std::string name, CanBusConfig config);

  void send(Frame frame) override;
  /// Burst enqueue: all frames join arbitration before the bus restarts.
  /// One message's fragments share priority and flow_id, hence one
  /// arbitration id and one FIFO — delivery order and timing are identical
  /// to N send() calls, but the arbitration restart runs once per burst.
  void send_batch(std::vector<Frame>& frames) override;
  std::size_t max_payload() const override { return config_.fd ? 64 : 8; }

  /// On-wire duration of a frame with `dlc` payload bytes, including
  /// worst-case stuff bits and interframe space. Classic: 0..8 bytes at the
  /// single bitrate. FD: 0..64 bytes, data phase at data_bitrate_bps.
  sim::Duration frame_duration(std::size_t dlc) const;

  /// Effective 11-bit arbitration id used for a frame.
  std::uint32_t arbitration_id(const Frame& frame) const;

  bool busy() const { return busy_; }
  std::size_t queued() const;

 private:
  void try_start_transmission();
  void finish_transmission();

  CanBusConfig config_;
  // All pending frames keyed by arbitration id: the queue *is* the
  // arbitration. FIFO per id preserves per-sender ordering.
  std::map<std::uint32_t, std::deque<Frame>> pending_;
  bool busy_ = false;
  Frame in_flight_;
  std::uint64_t seq_ = 0;
};

}  // namespace dynaplat::net
