// Plant models for X-in-the-loop testing (paper Sec. 2.4, [17]).
//
// Continuous-time vehicle dynamics integrated with fixed-step forward Euler
// at the control period. These stand in for the physical vehicle ("X" = the
// environment) in MiL and SiL setups; the same plant instance is driven by
// either a pure control model (MiL) or a full application on the virtual
// ECU platform (SiL), so controller behaviour is directly comparable across
// levels.
#pragma once

#include <algorithm>

namespace dynaplat::xil {

/// Longitudinal vehicle dynamics: m*v' = F_drive - F_brake - F_drag -
/// F_rolling. Inputs are normalized throttle/brake in [0, 1].
class VehiclePlant {
 public:
  struct Params {
    double mass_kg = 1500.0;
    double max_drive_force_n = 4500.0;
    double max_brake_force_n = 9000.0;
    double drag_coefficient = 0.42;    ///< 0.5 * rho * cd * A lumped
    double rolling_resistance_n = 180.0;
    double initial_speed_mps = 0.0;
  };

  VehiclePlant();  // defaults (defined below: NSDMI-in-default-arg rule)
  explicit VehiclePlant(Params params)
      : params_(params), speed_mps_(params.initial_speed_mps) {}

  /// Advances the plant by `dt_s` seconds under the given pedal inputs.
  void step(double throttle, double brake, double dt_s) {
    throttle = std::clamp(throttle, 0.0, 1.0);
    brake = std::clamp(brake, 0.0, 1.0);
    const double drive = throttle * params_.max_drive_force_n;
    const double braking = brake * params_.max_brake_force_n;
    const double drag = params_.drag_coefficient * speed_mps_ * speed_mps_;
    const double rolling = speed_mps_ > 0.0 ? params_.rolling_resistance_n : 0.0;
    const double accel = (drive - braking - drag - rolling) / params_.mass_kg;
    speed_mps_ = std::max(0.0, speed_mps_ + accel * dt_s);
    distance_m_ += speed_mps_ * dt_s;
  }

  double speed_mps() const { return speed_mps_; }
  double distance_m() const { return distance_m_; }
  void set_speed(double mps) { speed_mps_ = std::max(0.0, mps); }

 private:
  Params params_;
  double speed_mps_;
  double distance_m_ = 0.0;
};

inline VehiclePlant::VehiclePlant() : VehiclePlant(Params()) {}

/// Textbook PID with output clamping and anti-windup (conditional
/// integration).
class PidController {
 public:
  struct Gains {
    double kp = 0.0;
    double ki = 0.0;
    double kd = 0.0;
    double out_min = -1.0;
    double out_max = 1.0;
  };

  explicit PidController(Gains gains) : gains_(gains) {}

  double update(double error, double dt_s) {
    const double derivative = dt_s > 0.0 ? (error - last_error_) / dt_s : 0.0;
    last_error_ = error;
    double out = gains_.kp * error + gains_.ki * integral_ +
                 gains_.kd * derivative;
    const bool saturated_high = out >= gains_.out_max && error > 0.0;
    const bool saturated_low = out <= gains_.out_min && error < 0.0;
    if (!saturated_high && !saturated_low) integral_ += error * dt_s;
    return std::clamp(out, gains_.out_min, gains_.out_max);
  }

  void reset() {
    integral_ = 0.0;
    last_error_ = 0.0;
  }

 private:
  Gains gains_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
};

/// Lead-vehicle model for adaptive cruise control scenarios: the lead drives
/// a speed profile; the plant-under-test follows behind.
class LeadVehicle {
 public:
  explicit LeadVehicle(double initial_speed_mps, double initial_gap_m = 50.0)
      : speed_mps_(initial_speed_mps),
        target_mps_(initial_speed_mps),
        position_m_(initial_gap_m) {}

  /// Piecewise speed command (e.g. braking events) applied with limited
  /// acceleration of +-3 m/s^2.
  void command_speed(double target_mps) { target_mps_ = target_mps; }

  void step(double dt_s) {
    const double max_delta = 3.0 * dt_s;
    const double delta = std::clamp(target_mps_ - speed_mps_, -max_delta,
                                    max_delta);
    speed_mps_ += delta;
    position_m_ += speed_mps_ * dt_s;
  }

  double speed_mps() const { return speed_mps_; }
  double position_m() const { return position_m_; }

 private:
  double speed_mps_;
  double target_mps_ = 0.0;
  double position_m_;
};

}  // namespace dynaplat::xil
