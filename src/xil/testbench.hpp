// X-in-the-loop test bench (paper Sec. 2.4).
//
// Runs the same cruise-control function at two test levels:
//   MiL  — the control model is stepped directly against the plant: no ECU,
//          no middleware, no scheduling. Fastest, earliest available.
//   SiL  — the controller is a real platform Application on a virtual ECU:
//          sensor and actuator apps talk to it over the middleware, the
//          scheduler interleaves it with other load, frames can be dropped.
// Both levels share the plant and the assertion engine, so a control design
// validated in MiL can be re-validated in SiL "long before target hardware
// or prototypes are available".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "xil/plant.hpp"

namespace dynaplat::xil {

/// A sampled signal with timing assertions used by test cases.
class SignalTrace {
 public:
  void record(sim::Time at, double value);
  std::size_t size() const { return samples_.size(); }
  double last() const { return samples_.empty() ? 0.0 : samples_.back().value; }

  /// First time the signal enters [target - tol, target + tol] and stays
  /// there until the end of the trace. nullopt if it never settles.
  std::optional<sim::Time> settling_time(double target, double tolerance) const;

  /// Maximum overshoot above `target` (0 if none).
  double overshoot(double target) const;

  /// Mean absolute error vs target over the trailing `fraction` of the trace.
  double steady_state_error(double target, double fraction = 0.25) const;

  double minimum() const;
  double maximum() const;

  struct Sample {
    sim::Time at;
    double value;
  };
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

struct CruiseResult {
  SignalTrace speed;
  std::optional<sim::Time> settling_time;
  double overshoot_mps = 0.0;
  double steady_state_error_mps = 0.0;
  std::uint64_t deadline_misses = 0;   ///< SiL only
  std::uint64_t frames_dropped = 0;    ///< SiL only
  std::uint64_t events_executed = 0;   ///< simulation cost proxy
};

struct CruiseScenario {
  double target_speed_mps = 25.0;
  double initial_speed_mps = 0.0;
  sim::Duration control_period = 10 * sim::kMillisecond;
  sim::Duration duration = sim::seconds(60);
  PidController::Gains gains{0.12, 0.035, 0.0, 0.0, 1.0};
  /// SiL-only knobs.
  double frame_loss_rate = 0.0;
  std::uint64_t background_load_instructions = 0;  ///< per 20 ms on the ECU
  std::uint64_t ecu_mips = 200;
};

/// Model-in-the-loop: pure model + plant on a bare simulator clock.
CruiseResult run_mil(const CruiseScenario& scenario);

/// Software-in-the-loop: controller/sensor/actuator as platform apps on
/// virtual ECUs over a simulated backbone.
CruiseResult run_sil(const CruiseScenario& scenario);

// --- Adaptive cruise control (lead-vehicle following) ------------------------

struct AccScenario {
  double own_initial_mps = 25.0;
  double lead_initial_mps = 25.0;
  double initial_gap_m = 50.0;
  /// Desired gap = standstill_gap + time_gap * own speed.
  double time_gap_s = 1.5;
  double standstill_gap_m = 5.0;
  sim::Duration control_period = 20 * sim::kMillisecond;
  sim::Duration duration = sim::seconds(60);
  /// Lead braking event.
  sim::Time lead_brakes_at = sim::seconds(20);
  double lead_brakes_to_mps = 10.0;
  /// SiL-only knobs.
  double frame_loss_rate = 0.0;
  std::uint64_t ecu_mips = 200;
};

struct AccResult {
  SignalTrace gap;
  SignalTrace speed;
  double min_gap_m = 0.0;
  bool collision = false;  ///< gap reached zero
  /// Mean |gap - desired| over the trailing half of the scenario.
  double mean_gap_error_m = 0.0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t events_executed = 0;
};

AccResult run_acc_mil(const AccScenario& scenario);
AccResult run_acc_sil(const AccScenario& scenario);

}  // namespace dynaplat::xil
