#include "xil/testbench.hpp"

#include <cmath>

#include "middleware/payload.hpp"
#include "net/ethernet.hpp"

namespace dynaplat::xil {

void SignalTrace::record(sim::Time at, double value) {
  samples_.push_back(Sample{at, value});
}

std::optional<sim::Time> SignalTrace::settling_time(double target,
                                                    double tolerance) const {
  std::optional<sim::Time> candidate;
  for (const auto& sample : samples_) {
    const bool inside = std::abs(sample.value - target) <= tolerance;
    if (inside && !candidate) {
      candidate = sample.at;
    } else if (!inside) {
      candidate.reset();
    }
  }
  return candidate;
}

double SignalTrace::overshoot(double target) const {
  double worst = 0.0;
  for (const auto& sample : samples_) {
    worst = std::max(worst, sample.value - target);
  }
  return worst;
}

double SignalTrace::steady_state_error(double target, double fraction) const {
  if (samples_.empty()) return 0.0;
  const std::size_t start = static_cast<std::size_t>(
      static_cast<double>(samples_.size()) * (1.0 - fraction));
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = start; i < samples_.size(); ++i) {
    sum += std::abs(samples_[i].value - target);
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double SignalTrace::minimum() const {
  double m = samples_.empty() ? 0.0 : samples_[0].value;
  for (const auto& sample : samples_) m = std::min(m, sample.value);
  return m;
}

double SignalTrace::maximum() const {
  double m = samples_.empty() ? 0.0 : samples_[0].value;
  for (const auto& sample : samples_) m = std::max(m, sample.value);
  return m;
}

CruiseResult run_mil(const CruiseScenario& scenario) {
  CruiseResult result;
  VehiclePlant::Params plant_params;
  plant_params.initial_speed_mps = scenario.initial_speed_mps;
  VehiclePlant plant(plant_params);
  PidController pid(scenario.gains);
  const double dt = sim::to_s(scenario.control_period);

  for (sim::Time t = 0; t <= scenario.duration;
       t += scenario.control_period) {
    result.speed.record(t, plant.speed_mps());
    const double error = scenario.target_speed_mps - plant.speed_mps();
    const double out = pid.update(error, dt);
    plant.step(std::max(out, 0.0), std::max(-out, 0.0) /*no brake gains*/,
               dt);
    ++result.events_executed;
  }
  result.settling_time =
      result.speed.settling_time(scenario.target_speed_mps, 0.5);
  result.overshoot_mps = result.speed.overshoot(scenario.target_speed_mps);
  result.steady_state_error_mps =
      result.speed.steady_state_error(scenario.target_speed_mps);
  return result;
}

namespace {

using middleware::PayloadReader;
using middleware::PayloadWriter;

constexpr middleware::ElementId kSignalEvent = 1;

class SensorApp final : public platform::Application {
 public:
  explicit SensorApp(VehiclePlant* plant) : plant_(plant) {}

  void on_task(const std::string&) override {
    if (!active()) return;
    PayloadWriter writer;
    writer.f64(plant_->speed_mps());
    context_.comm->publish(context_.service_id("SpeedSignal"), kSignalEvent,
                           writer.take(),
                           context_.priority_of("SpeedSignal"));
  }

 private:
  VehiclePlant* plant_;
};

class CruiseApp final : public platform::Application {
 public:
  CruiseApp(double target_mps, PidController::Gains gains, double dt_s)
      : target_(target_mps), pid_(gains), dt_(dt_s) {}

  void on_start(const platform::AppContext& context) override {
    Application::on_start(context);
    context_.comm->subscribe(
        context_.service_id("SpeedSignal"), kSignalEvent,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          try {
            PayloadReader reader(data);
            speed_ = reader.f64();
          } catch (const std::out_of_range&) {
          }
        });
  }

  void on_task(const std::string&) override {
    if (!active()) return;
    const double out = pid_.update(target_ - speed_, dt_);
    PayloadWriter writer;
    writer.f64(std::max(out, 0.0));   // throttle
    writer.f64(std::max(-out, 0.0));  // brake
    context_.comm->publish(context_.service_id("ThrottleCmd"), kSignalEvent,
                           writer.take(),
                           context_.priority_of("ThrottleCmd"));
  }

 private:
  double target_;
  PidController pid_;
  double dt_;
  double speed_ = 0.0;
};

class ActuatorApp final : public platform::Application {
 public:
  ActuatorApp(VehiclePlant* plant, SignalTrace* trace, double dt_s)
      : plant_(plant), trace_(trace), dt_(dt_s) {}

  void on_start(const platform::AppContext& context) override {
    Application::on_start(context);
    context_.comm->subscribe(
        context_.service_id("ThrottleCmd"), kSignalEvent,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          try {
            PayloadReader reader(data);
            throttle_ = reader.f64();
            brake_ = reader.f64();
          } catch (const std::out_of_range&) {
          }
        });
  }

  void on_task(const std::string&) override {
    if (!active()) return;
    trace_->record(context_.simulator->now(), plant_->speed_mps());
    plant_->step(throttle_, brake_, dt_);
  }

 private:
  VehiclePlant* plant_;
  SignalTrace* trace_;
  double dt_;
  double throttle_ = 0.0;
  double brake_ = 0.0;
};

class LoadApp final : public platform::Application {};

model::SystemModel sil_model(const CruiseScenario& scenario) {
  model::SystemModel m;
  m.add_network({"Backbone", model::NetworkKind::kEthernet, 100'000'000});

  model::EcuDef ctrl;
  ctrl.name = "CtrlEcu";
  ctrl.mips = scenario.ecu_mips;
  ctrl.max_asil = model::Asil::kD;
  ctrl.network = "Backbone";
  m.add_ecu(ctrl);

  model::EcuDef io;
  io.name = "IoEcu";
  io.mips = 200;
  io.max_asil = model::Asil::kD;
  io.network = "Backbone";
  m.add_ecu(io);

  model::InterfaceDef speed;
  speed.name = "SpeedSignal";
  speed.paradigm = model::Paradigm::kEvent;
  speed.payload_bytes = 8;
  speed.period = scenario.control_period;
  m.add_interface(speed);

  model::InterfaceDef throttle;
  throttle.name = "ThrottleCmd";
  throttle.paradigm = model::Paradigm::kEvent;
  throttle.payload_bytes = 16;
  throttle.period = scenario.control_period;
  m.add_interface(throttle);

  auto control_task = [&](const char* name, std::uint64_t instructions,
                          int priority) {
    model::TaskDef task;
    task.name = name;
    task.period = scenario.control_period;
    task.instructions = instructions;
    task.priority = priority;
    return task;
  };

  model::AppDef sensor;
  sensor.name = "SpeedSensor";
  sensor.app_class = model::AppClass::kDeterministic;
  sensor.asil = model::Asil::kC;
  sensor.memory_bytes = 1 << 20;
  sensor.tasks.push_back(control_task("sample", 20'000, 1));
  sensor.provides = {"SpeedSignal"};
  m.add_app(sensor);

  model::AppDef cruise;
  cruise.name = "CruiseCtl";
  cruise.app_class = model::AppClass::kDeterministic;
  cruise.asil = model::Asil::kC;
  cruise.memory_bytes = 2 << 20;
  cruise.tasks.push_back(control_task("control", 50'000, 1));
  cruise.consumes = {"SpeedSignal"};
  cruise.provides = {"ThrottleCmd"};
  m.add_app(cruise);

  model::AppDef actuator;
  actuator.name = "Actuator";
  actuator.app_class = model::AppClass::kDeterministic;
  actuator.asil = model::Asil::kC;
  actuator.memory_bytes = 1 << 20;
  actuator.tasks.push_back(control_task("apply", 20'000, 1));
  actuator.consumes = {"ThrottleCmd"};
  m.add_app(actuator);

  if (scenario.background_load_instructions > 0) {
    model::AppDef load;
    load.name = "BgLoad";
    load.app_class = model::AppClass::kNonDeterministic;
    load.asil = model::Asil::kQM;
    load.memory_bytes = 1 << 20;
    model::TaskDef task;
    task.name = "burn";
    task.period = 20 * sim::kMillisecond;
    task.instructions = scenario.background_load_instructions;
    task.priority = 12;
    load.tasks.push_back(task);
    m.add_app(load);
  }
  return m;
}

}  // namespace

CruiseResult run_sil(const CruiseScenario& scenario) {
  CruiseResult result;
  sim::Simulator simulator;
  sim::Trace trace;

  net::EthernetSwitch backbone(simulator, "backbone", {});
  if (scenario.frame_loss_rate > 0.0) {
    backbone.set_fault_injection(scenario.frame_loss_rate);
  }

  os::EcuConfig ctrl_config;
  ctrl_config.name = "CtrlEcu";
  ctrl_config.cpu.mips = scenario.ecu_mips;
  os::Ecu ctrl_ecu(simulator, ctrl_config, &backbone, 1, &trace);

  os::EcuConfig io_config;
  io_config.name = "IoEcu";
  io_config.cpu.mips = 200;
  os::Ecu io_ecu(simulator, io_config, &backbone, 2, &trace);

  model::SystemModel system_model = sil_model(scenario);
  model::DeploymentDef deployment;
  deployment.bindings.push_back({"SpeedSensor", {"IoEcu"}});
  deployment.bindings.push_back({"CruiseCtl", {"CtrlEcu"}});
  deployment.bindings.push_back({"Actuator", {"IoEcu"}});
  if (scenario.background_load_instructions > 0) {
    deployment.bindings.push_back({"BgLoad", {"CtrlEcu"}});
  }

  platform::DynamicPlatform dynaplatform(simulator, std::move(system_model),
                                         std::move(deployment));

  VehiclePlant::Params plant_params;
  plant_params.initial_speed_mps = scenario.initial_speed_mps;
  VehiclePlant plant(plant_params);
  const double dt = sim::to_s(scenario.control_period);

  dynaplatform.register_app("SpeedSensor", [&plant] {
    return std::make_unique<SensorApp>(&plant);
  });
  dynaplatform.register_app("CruiseCtl", [&scenario, dt] {
    return std::make_unique<CruiseApp>(scenario.target_speed_mps,
                                       scenario.gains, dt);
  });
  dynaplatform.register_app("Actuator", [&plant, &result, dt] {
    return std::make_unique<ActuatorApp>(&plant, &result.speed, dt);
  });
  dynaplatform.register_app("BgLoad",
                            [] { return std::make_unique<LoadApp>(); });

  dynaplatform.add_node(ctrl_ecu);
  dynaplatform.add_node(io_ecu);
  std::string reason;
  if (!dynaplatform.install_all(&reason)) {
    // Surface setup failures loudly: a SiL bench must not silently produce
    // an empty trace.
    throw std::runtime_error("SiL setup failed: " + reason);
  }

  simulator.run_until(scenario.duration);

  for (os::TaskId task : ctrl_ecu.processor().task_ids()) {
    result.deadline_misses += ctrl_ecu.processor().stats(task).deadline_misses;
  }
  for (os::TaskId task : io_ecu.processor().task_ids()) {
    result.deadline_misses += io_ecu.processor().stats(task).deadline_misses;
  }
  result.frames_dropped = backbone.frames_dropped();
  result.events_executed = simulator.events_executed();
  result.settling_time =
      result.speed.settling_time(scenario.target_speed_mps, 0.5);
  result.overshoot_mps = result.speed.overshoot(scenario.target_speed_mps);
  result.steady_state_error_mps =
      result.speed.steady_state_error(scenario.target_speed_mps);
  return result;
}

// --- Adaptive cruise control ---------------------------------------------------

namespace {

/// The shared ACC control law: acceleration demand from gap error and
/// closing speed, mapped to pedals. Used verbatim at both test levels.
struct AccControlLaw {
  double time_gap_s;
  double standstill_gap_m;

  /// Returns (throttle, brake) in [0, 1].
  std::pair<double, double> update(double gap_m, double own_mps,
                                   double lead_mps) const {
    const double desired = standstill_gap_m + time_gap_s * own_mps;
    const double gap_error = gap_m - desired;
    const double closing = lead_mps - own_mps;  // >0: gap opening
    const double accel_demand = 0.12 * gap_error + 0.8 * closing;
    if (accel_demand >= 0.0) {
      return {std::min(accel_demand / 3.0, 1.0), 0.0};
    }
    return {0.0, std::min(-accel_demand / 6.0, 1.0)};
  }
};

struct AccWorld {
  explicit AccWorld(const AccScenario& scenario)
      : own([&] {
          VehiclePlant::Params params;
          params.initial_speed_mps = scenario.own_initial_mps;
          return params;
        }()),
        lead(scenario.lead_initial_mps, scenario.initial_gap_m) {}

  double gap() const { return lead.position_m() - own.distance_m(); }

  VehiclePlant own;
  LeadVehicle lead;
};

void finalize_acc(const AccScenario& scenario, AccResult& result) {
  result.min_gap_m = result.gap.minimum();
  result.collision = result.min_gap_m <= 0.0;
  // Mean |gap - desired(speed)| over the trailing half; the gap and speed
  // traces are sampled at the same instants by construction.
  const auto& gaps = result.gap.samples();
  const auto& speeds = result.speed.samples();
  const std::size_t n = std::min(gaps.size(), speeds.size());
  double error_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = n / 2; i < n; ++i) {
    const double desired =
        scenario.standstill_gap_m + scenario.time_gap_s * speeds[i].value;
    error_sum += std::abs(gaps[i].value - desired);
    ++count;
  }
  result.mean_gap_error_m =
      count > 0 ? error_sum / static_cast<double>(count) : 0.0;
}

}  // namespace

AccResult run_acc_mil(const AccScenario& scenario) {
  AccResult result;
  AccWorld world(scenario);
  AccControlLaw law{scenario.time_gap_s, scenario.standstill_gap_m};
  const double dt = sim::to_s(scenario.control_period);
  bool braked = false;
  for (sim::Time t = 0; t <= scenario.duration;
       t += scenario.control_period) {
    if (!braked && t >= scenario.lead_brakes_at) {
      world.lead.command_speed(scenario.lead_brakes_to_mps);
      braked = true;
    }
    result.gap.record(t, world.gap());
    result.speed.record(t, world.own.speed_mps());
    const auto [throttle, brake] =
        law.update(world.gap(), world.own.speed_mps(),
                   world.lead.speed_mps());
    world.own.step(throttle, brake, dt);
    world.lead.step(dt);
    ++result.events_executed;
  }
  finalize_acc(scenario, result);
  return result;
}

namespace {

class RadarApp final : public platform::Application {
 public:
  explicit RadarApp(AccWorld* world) : world_(world) {}
  void on_task(const std::string&) override {
    if (!active()) return;
    PayloadWriter writer;
    writer.f64(world_->gap());
    writer.f64(world_->lead.speed_mps());
    writer.f64(world_->own.speed_mps());
    context_.comm->publish(context_.service_id("RadarTrack"), kSignalEvent,
                           writer.take(),
                           context_.priority_of("RadarTrack"));
  }

 private:
  AccWorld* world_;
};

class AccApp final : public platform::Application {
 public:
  explicit AccApp(AccControlLaw law) : law_(law) {}
  void on_start(const platform::AppContext& context) override {
    Application::on_start(context);
    context_.comm->subscribe(
        context_.service_id("RadarTrack"), kSignalEvent,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          try {
            PayloadReader reader(data);
            gap_ = reader.f64();
            lead_mps_ = reader.f64();
            own_mps_ = reader.f64();
          } catch (const std::out_of_range&) {
          }
        });
  }
  void on_task(const std::string&) override {
    if (!active()) return;
    const auto [throttle, brake] = law_.update(gap_, own_mps_, lead_mps_);
    PayloadWriter writer;
    writer.f64(throttle);
    writer.f64(brake);
    context_.comm->publish(context_.service_id("AccCmd"), kSignalEvent,
                           writer.take(), context_.priority_of("AccCmd"));
  }

 private:
  AccControlLaw law_;
  double gap_ = 100.0;
  double lead_mps_ = 0.0;
  double own_mps_ = 0.0;
};

class AccActuatorApp final : public platform::Application {
 public:
  AccActuatorApp(AccWorld* world, AccResult* result, double dt)
      : world_(world), result_(result), dt_(dt) {}
  void on_start(const platform::AppContext& context) override {
    Application::on_start(context);
    context_.comm->subscribe(
        context_.service_id("AccCmd"), kSignalEvent,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          try {
            PayloadReader reader(data);
            throttle_ = reader.f64();
            brake_ = reader.f64();
          } catch (const std::out_of_range&) {
          }
        });
  }
  void on_task(const std::string&) override {
    if (!active()) return;
    result_->gap.record(context_.simulator->now(), world_->gap());
    result_->speed.record(context_.simulator->now(),
                          world_->own.speed_mps());
    world_->own.step(throttle_, brake_, dt_);
    world_->lead.step(dt_);
  }

 private:
  AccWorld* world_;
  AccResult* result_;
  double dt_;
  double throttle_ = 0.0;
  double brake_ = 0.0;
};

}  // namespace

AccResult run_acc_sil(const AccScenario& scenario) {
  AccResult result;
  sim::Simulator simulator;
  net::EthernetSwitch backbone(simulator, "backbone", {});
  if (scenario.frame_loss_rate > 0.0) {
    backbone.set_fault_injection(scenario.frame_loss_rate);
  }
  os::EcuConfig adas_config{.name = "AdasEcu",
                            .cpu = {.mips = scenario.ecu_mips}};
  os::EcuConfig io_config{.name = "IoEcu", .cpu = {.mips = 200}};
  os::Ecu adas_ecu(simulator, adas_config, &backbone, 1);
  os::Ecu io_ecu(simulator, io_config, &backbone, 2);

  model::SystemModel m;
  m.add_network({"Backbone", model::NetworkKind::kEthernet, 100'000'000});
  model::EcuDef adas_def;
  adas_def.name = "AdasEcu";
  adas_def.mips = scenario.ecu_mips;
  adas_def.max_asil = model::Asil::kD;
  adas_def.network = "Backbone";
  m.add_ecu(adas_def);
  model::EcuDef io_def;
  io_def.name = "IoEcu";
  io_def.mips = 200;
  io_def.max_asil = model::Asil::kD;
  io_def.network = "Backbone";
  m.add_ecu(io_def);

  auto event_interface = [&](const char* name, std::size_t payload) {
    model::InterfaceDef interface;
    interface.name = name;
    interface.paradigm = model::Paradigm::kEvent;
    interface.payload_bytes = payload;
    interface.period = scenario.control_period;
    m.add_interface(interface);
  };
  event_interface("RadarTrack", 24);
  event_interface("AccCmd", 16);

  auto control_app = [&](const char* name, const char* task,
                         std::uint64_t instructions,
                         std::vector<std::string> provides,
                         std::vector<std::string> consumes) {
    model::AppDef app;
    app.name = name;
    app.app_class = model::AppClass::kDeterministic;
    app.asil = model::Asil::kC;
    app.memory_bytes = 2 << 20;
    model::TaskDef task_def;
    task_def.name = task;
    task_def.period = scenario.control_period;
    task_def.instructions = instructions;
    task_def.priority = 1;
    app.tasks.push_back(task_def);
    app.provides = std::move(provides);
    app.consumes = std::move(consumes);
    m.add_app(app);
  };
  control_app("Radar", "measure", 30'000, {"RadarTrack"}, {});
  control_app("AccCtl", "plan", 120'000, {"AccCmd"}, {"RadarTrack"});
  control_app("AccAct", "apply", 20'000, {}, {"AccCmd"});

  model::DeploymentDef deployment;
  deployment.bindings.push_back({"Radar", {"IoEcu"}});
  deployment.bindings.push_back({"AccCtl", {"AdasEcu"}});
  deployment.bindings.push_back({"AccAct", {"IoEcu"}});

  platform::DynamicPlatform dp(simulator, std::move(m),
                               std::move(deployment));
  AccWorld world(scenario);
  AccControlLaw law{scenario.time_gap_s, scenario.standstill_gap_m};
  const double dt = sim::to_s(scenario.control_period);
  dp.register_app("Radar",
                  [&world] { return std::make_unique<RadarApp>(&world); });
  dp.register_app("AccCtl",
                  [law] { return std::make_unique<AccApp>(law); });
  dp.register_app("AccAct", [&world, &result, dt] {
    return std::make_unique<AccActuatorApp>(&world, &result, dt);
  });
  dp.add_node(adas_ecu);
  dp.add_node(io_ecu);
  std::string reason;
  if (!dp.install_all(&reason)) {
    throw std::runtime_error("ACC SiL setup failed: " + reason);
  }
  simulator.schedule_at(scenario.lead_brakes_at, [&] {
    world.lead.command_speed(scenario.lead_brakes_to_mps);
  });
  simulator.run_until(scenario.duration);

  for (os::TaskId task : adas_ecu.processor().task_ids()) {
    result.deadline_misses +=
        adas_ecu.processor().stats(task).deadline_misses;
  }
  for (os::TaskId task : io_ecu.processor().task_ids()) {
    result.deadline_misses += io_ecu.processor().stats(task).deadline_misses;
  }
  result.events_executed = simulator.events_executed();
  finalize_acc(scenario, result);
  return result;
}

}  // namespace dynaplat::xil
