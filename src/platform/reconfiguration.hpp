// Self-healing deployment reconfiguration.
//
// Sec. 2.3: "the deployment of a function to a hardware can depend on the
// installed applications and current load of every hardware component in
// the vehicle ... The final mapping might only be applied in the vehicle on
// the road." The ReconfigurationManager implements the on-the-road half of
// that loop: it supervises ECU liveness and, when a host dies, re-deploys
// its (non-replicated) applications to another ECU that passes the local
// admission test — deployment variants from the model first, then any node
// with capacity. Replicated apps are left to the RedundancyManager, which
// has warm state; reconfiguration is the cold-migration fallback for
// everything else.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace dynaplat::platform {

struct ReconfigConfig {
  /// Liveness sweep period.
  sim::Duration check_period = 50 * sim::kMillisecond;
  /// Allow placement on nodes outside the app's modeled candidate list
  /// (capacity-permitting). Off = strictly model-driven variants.
  bool allow_any_node = true;
};

struct Migration {
  sim::Time at = 0;
  std::string app;
  std::string from_ecu;
  std::string to_ecu;  ///< empty if no placement was found
  bool success = false;
};

class ReconfigurationManager {
 public:
  ReconfigurationManager(DynamicPlatform& platform,
                         ReconfigConfig config = {});
  ~ReconfigurationManager();

  void engage();
  void disengage();

  const std::vector<Migration>& migrations() const { return migrations_; }
  /// Apps currently without a live host (placement failed).
  const std::vector<std::string>& stranded() const { return stranded_; }

 private:
  void sweep();
  /// First live trace found on any platform node — the vehicle-wide
  /// observability sink for migration counters and stranding spans.
  sim::Trace* vehicle_trace();
  /// True if a running, live instance of `app` exists anywhere.
  bool alive_somewhere(const std::string& app);
  /// Attempts placement; returns the hosting ECU name or empty.
  std::string place(const model::AppDef& def,
                    const std::vector<std::string>& preferred,
                    const std::string& exclude_ecu);

  DynamicPlatform& platform_;
  ReconfigConfig config_;
  sim::EventId sweeper_;
  std::vector<Migration> migrations_;
  std::vector<std::string> stranded_;
  std::vector<std::string> previously_stranded_;
  bool engaged_ = false;
};

}  // namespace dynaplat::platform
