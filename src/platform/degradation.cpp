#include "platform/degradation.hpp"

#include <algorithm>

namespace dynaplat::platform {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "OK";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kLimpHome: return "LIMP_HOME";
  }
  return "?";
}

DegradationManager::DegradationManager(DynamicPlatform& platform,
                                       DegradationConfig config)
    : platform_(platform), config_(config) {}

DegradationManager::~DegradationManager() { disengage(); }

void DegradationManager::engage() {
  if (engaged_) return;
  engaged_ = true;
  for (const std::string& name : platform_.node_names()) {
    PlatformNode* node = platform_.node(name);
    if (node == nullptr) continue;
    health_[name];  // ensure an entry so state() reports kOk immediately
    node->monitor().add_report_sink(
        [this, name](const monitor::FaultRecord& record) {
          auto it = health_.find(name);
          if (it == health_.end()) return;
          it->second.fault_times.push_back(record.at);
          it->second.last_fault = record.at;
        });
  }
  evaluator_ = platform_.simulator().schedule_every(
      platform_.simulator().now() + config_.evaluation_period,
      config_.evaluation_period, [this] { evaluate(); });
}

void DegradationManager::disengage() {
  if (!engaged_) return;
  engaged_ = false;
  platform_.simulator().cancel(evaluator_);
  evaluator_ = {};
}

HealthState DegradationManager::state(const std::string& ecu_name) const {
  auto it = health_.find(ecu_name);
  return it == health_.end() ? HealthState::kOk : it->second.state;
}

void DegradationManager::report_heartbeat_loss(const std::string& ecu_name) {
  EcuHealth& health = health_[ecu_name];
  if (health.state == HealthState::kLimpHome) return;
  transition(ecu_name, health, HealthState::kLimpHome, "heartbeat_loss");
}

void DegradationManager::report_recovery_committed(
    const std::string& ecu_name) {
  auto it = health_.find(ecu_name);
  if (it == health_.end() || it->second.state != HealthState::kDegraded) {
    return;
  }
  it->second.fault_times.clear();
  transition(ecu_name, it->second, HealthState::kOk, "recovery_plan");
}

void DegradationManager::report_recovery_exhausted(
    const std::string& ecu_name) {
  EcuHealth& health = health_[ecu_name];
  if (health.state == HealthState::kLimpHome) return;
  transition(ecu_name, health, HealthState::kLimpHome, "recovery_exhausted");
}

void DegradationManager::report_backend_lost() {
  EcuHealth& health = health_[kBackendUplink];
  health.hold = true;
  if (health.state != HealthState::kOk) return;
  transition(kBackendUplink, health, HealthState::kDegraded, "backend_lost");
}

void DegradationManager::report_backend_restored() {
  auto it = health_.find(kBackendUplink);
  if (it == health_.end()) return;
  it->second.hold = false;
  if (it->second.state != HealthState::kDegraded) return;
  it->second.fault_times.clear();
  transition(kBackendUplink, it->second, HealthState::kOk,
             "backend_restored");
}

bool DegradationManager::backend_lost() const {
  auto it = health_.find(kBackendUplink);
  return it != health_.end() && it->second.hold;
}

void DegradationManager::reset(const std::string& ecu_name) {
  auto it = health_.find(ecu_name);
  if (it == health_.end() || it->second.state == HealthState::kOk) return;
  it->second.fault_times.clear();
  transition(ecu_name, it->second, HealthState::kOk, "reset");
}

void DegradationManager::evaluate() {
  if (!engaged_) return;
  const sim::Time now = platform_.simulator().now();
  for (auto& [name, health] : health_) {
    // Slide the fault window.
    while (!health.fault_times.empty() &&
           now - health.fault_times.front() > config_.fault_window) {
      health.fault_times.pop_front();
    }
    const int recent = static_cast<int>(health.fault_times.size());
    switch (health.state) {
      case HealthState::kOk:
        if (recent >= config_.faults_for_limp_home) {
          transition(name, health, HealthState::kLimpHome, "monitor_faults");
        } else if (recent >= config_.faults_for_degraded) {
          transition(name, health, HealthState::kDegraded, "monitor_faults");
        }
        break;
      case HealthState::kDegraded:
        if (recent >= config_.faults_for_limp_home) {
          transition(name, health, HealthState::kLimpHome, "monitor_faults");
        } else if (!health.hold && recent == 0 &&
                   now - health.last_fault > config_.recovery_window) {
          transition(name, health, HealthState::kOk, "recovery");
        }
        break;
      case HealthState::kLimpHome:
        break;  // sticky until reset()
    }
  }
}

void DegradationManager::transition(const std::string& ecu_name,
                                    EcuHealth& health, HealthState to,
                                    const std::string& cause) {
  HealthTransition event;
  event.at = platform_.simulator().now();
  event.ecu = ecu_name;
  event.from = health.state;
  event.to = to;
  event.cause = cause;
  health.state = to;
  if (to == HealthState::kOk) {
    restore_shed(ecu_name, health);
  } else if (event.from == HealthState::kOk) {
    // Entering any unhealthy state sheds the NDA load once; escalating
    // kDegraded -> kLimpHome has nothing further to shed.
    shed_nda(ecu_name, health);
  }
  trace_transition(event);
  transitions_.push_back(std::move(event));
}

void DegradationManager::shed_nda(const std::string& ecu_name,
                                  EcuHealth& health) {
  PlatformNode* node = platform_.node(ecu_name);
  if (node == nullptr) return;
  for (const std::string& label : node->running_instances()) {
    const AppInstance* inst = node->instance(label);
    if (inst == nullptr ||
        inst->def.app_class != model::AppClass::kNonDeterministic) {
      continue;
    }
    node->stop(label);
    health.shed_labels.push_back(label);
    ++apps_shed_;
  }
}

void DegradationManager::restore_shed(const std::string& ecu_name,
                                      EcuHealth& health) {
  PlatformNode* node = platform_.node(ecu_name);
  if (node == nullptr) {
    health.shed_labels.clear();
    return;
  }
  for (const std::string& label : health.shed_labels) {
    if (node->hosts(label) && node->start(label)) ++apps_restored_;
  }
  health.shed_labels.clear();
}

void DegradationManager::trace_transition(const HealthTransition& event) {
  PlatformNode* node = platform_.node(event.ecu);
  sim::Trace* trace = node != nullptr ? node->ecu().trace() : nullptr;
  if (trace == nullptr) return;
  if (trace->enabled(sim::TraceCategory::kFault)) {
    trace->record(event.at, sim::TraceCategory::kFault,
                  "degradation/" + event.ecu,
                  std::string("state_") + to_string(event.to),
                  static_cast<std::int64_t>(event.to));
  }
  trace->metrics()
      .counter("degradation." + event.ecu + ".transitions")
      .add();
  // Coverage: which state transitions the run actually reached, keyed by
  // edge, not ECU — the chaos scheduler wants the state-space view.
  trace->coverage().hit(std::string("degradation.") + to_string(event.from) +
                        "->" + to_string(event.to));
}

}  // namespace dynaplat::platform
