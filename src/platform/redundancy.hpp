// Fail-operational redundancy (paper Sec. 3.3).
//
// "The fail-safe state of an autonomous vehicle is not necessarily a safe
// shutdown ... the dynamic platform needs to support instantiating
// applications multiple times [and] synchronize applications across ECUs."
//
// A RedundancyManager supervises one replicated app: the primary replica
// (active) publishes heartbeats carrying its serialized state on a dedicated
// platform service; standbys restore that state and watch for heartbeat
// loss. Failover uses staggered timeouts ordered by replica rank, so exactly
// one standby promotes itself — no election protocol, no single coordinator
// (master-slave as in RACE [1]).
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace dynaplat::platform {

struct RedundancyConfig {
  sim::Duration heartbeat_period = 10 * sim::kMillisecond;
  /// Heartbeats missed before the rank-1 standby takes over; rank-k waits
  /// k times as long (staggered timeouts).
  int missed_for_failover = 3;
  /// Ship serialized state on every heartbeat (hot standby) or only every
  /// n-th (warm standby).
  int state_every_n_heartbeats = 1;
};

struct FailoverEvent {
  sim::Time detected_at = 0;
  sim::Time promoted_at = 0;
  net::NodeId new_primary = 0;
  /// Service outage: last heartbeat from the dead primary -> promotion.
  sim::Duration outage;
};

class RedundancyManager {
 public:
  /// `app_name` must be deployed with replicas > 1; replicas were installed
  /// by DynamicPlatform::install_all on the deployment's first N candidate
  /// ECUs (replica 0 active, the rest standby).
  RedundancyManager(DynamicPlatform& platform, std::string app_name,
                    RedundancyConfig config = {});
  ~RedundancyManager();

  /// Starts heartbeating + supervision.
  void engage();
  void disengage();

  /// ECU name of the replica currently owning the app's services.
  std::string current_primary() const;
  /// ECU names of all replicas, rank order (invariant checkers correlate
  /// injected crashes of these ECUs with observed failovers).
  std::vector<std::string> replica_ecus() const;
  const std::vector<FailoverEvent>& failovers() const { return failovers_; }
  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }

  /// Service id used for this app's heartbeat/state channel.
  middleware::ServiceId heartbeat_service() const { return hb_service_; }

 private:
  struct Replica {
    std::string ecu_name;
    PlatformNode* node = nullptr;
    sim::Time last_heartbeat_seen = 0;
    sim::EventId supervisor;
    bool alive = true;
  };

  void start_heartbeats(std::size_t rank);
  void supervise(std::size_t rank);
  void promote(std::size_t rank);
  std::size_t primary_rank() const;
  /// Position of `rank` in the circular standby order behind the current
  /// primary (1 = first in line). Staggered failover timeouts scale with
  /// this, so exactly one standby wins no matter which replica leads.
  std::size_t stagger_of(std::size_t rank) const;

  DynamicPlatform& platform_;
  std::string app_name_;
  RedundancyConfig config_;
  middleware::ServiceId hb_service_;
  std::vector<Replica> replicas_;
  std::vector<FailoverEvent> failovers_;
  sim::EventId heartbeat_timer_;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::size_t active_rank_ = 0;  ///< rank currently leading (stagger anchor)
  bool engaged_ = false;
};

}  // namespace dynaplat::platform
