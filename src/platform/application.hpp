// Application programming model of the dynamic platform (paper Sec. 1.1).
//
// An application is "the smallest unit of addition and update". Concrete
// apps subclass Application; the platform instantiates them from registered
// factories, binds their modeled tasks to the ECU scheduler and hands them
// an AppContext for service-oriented communication. The state-transfer
// hooks (serialize_state / restore_state) are what makes the staged update
// protocol of Sec. 3.2 possible, and the active flag is how updates and
// redundancy managers switch traffic between coexisting instances.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "middleware/runtime.hpp"
#include "model/types.hpp"

namespace dynaplat::platform {

class PlatformNode;

/// Execution context handed to an application at start. Stable for the
/// lifetime of the instance.
struct AppContext {
  PlatformNode* node = nullptr;
  const model::AppDef* def = nullptr;
  middleware::ServiceRuntime* comm = nullptr;
  sim::Simulator* simulator = nullptr;

  /// Service id of a modeled interface (platform-wide registry).
  middleware::ServiceId service_id(const std::string& interface_name) const;
  /// Network priority derived from the interface's criticality.
  net::Priority priority_of(const std::string& interface_name) const;
};

class Application {
 public:
  virtual ~Application() = default;

  /// Called when the instance starts (tasks are already scheduled).
  virtual void on_start(const AppContext& context) { context_ = context; }

  /// Called on each completion of the app's modeled task `task_name`.
  virtual void on_task(const std::string& task_name) { (void)task_name; }

  /// Called before the instance's tasks are removed.
  virtual void on_stop() {}

  /// State transfer for staged updates and replica synchronization
  /// (Sec. 3.2 step 2, Sec. 3.3). Default: stateless.
  virtual std::vector<std::uint8_t> serialize_state() { return {}; }
  virtual void restore_state(const std::vector<std::uint8_t>& state) {
    (void)state;
  }

  /// Whether this instance owns its outputs. Shadow instances (during an
  /// update's parallel phase) and standby replicas run with active == false
  /// and must not publish or actuate.
  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  const AppContext& context() const { return context_; }

 protected:
  AppContext context_;

 private:
  bool active_ = true;
};

/// Creates a fresh instance of an application version. Registered with the
/// platform's package registry; in a real vehicle this is the dynamically
/// loaded binary entry point.
using AppFactory = std::function<std::unique_ptr<Application>()>;

}  // namespace dynaplat::platform
