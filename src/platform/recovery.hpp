// Transactional self-healing (paper Sec. 2.3 + 3.3).
//
// The ReconfigurationManager re-hosts dead apps one by one, greedily, with
// no way back: half-applied reconfigurations are simply the new state. The
// RecoveryOrchestrator treats a fault event as a *transaction* instead:
//
//   detect -> plan -> apply -> soak -> commit | rollback
//
// On ECU loss it snapshots the surviving topology, asks the DSE explorer
// (Sec. 2.3 "the final mapping might only be applied in the vehicle on the
// road") for a whole-vehicle remap of every displaced app — and, while it
// is at it, of demonstrably misplaced ones sitting on overloaded cores —
// admission-checks each target, and applies the steps in criticality order
// (deterministic/ASIL-high first). Live apps move through the staged
// cross-node migration protocol (UpdateManager::staged_migration), so
// service ownership never gaps; dead apps cold-start on their new hosts.
//
// Every applied step is journaled. If any step fails, or the soak window
// after apply observes new deadline misses, the *whole plan* rolls back to
// the journaled pre-plan deployment — the vehicle is never left in a state
// no one planned. Apps that cannot be placed join a capped-backoff retry
// queue; a committed plan lifts involved kDegraded verdicts back to kOk
// (DegradationManager::report_recovery_committed), while an exhausted
// retry budget escalates the origin ECU to sticky limp-home.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "platform/degradation.hpp"
#include "platform/update.hpp"

namespace dynaplat::platform {

struct RecoveryConfig {
  /// Liveness / placement sweep period (the detect step's clock).
  sim::Duration check_period = 50 * sim::kMillisecond;
  /// Post-apply observation window before a plan may commit. Any new
  /// deadline miss on a target node during the soak rolls the plan back.
  sim::Duration commit_soak = 100 * sim::kMillisecond;
  /// Spacing between consecutive plan steps (bounds reconfiguration burst
  /// load on the network and the target CPUs).
  sim::Duration step_spacing = 1 * sim::kMillisecond;
  /// Simulated-annealing budget of the whole-vehicle remap.
  std::uint64_t dse_iterations = 2'000;
  std::uint64_t dse_seed = 1;
  std::size_t dse_chains = 2;
  std::size_t dse_threads = 0;
  /// Plan attempts per app before the orchestrator gives up and escalates
  /// the app's origin ECU to limp-home.
  int retry_budget = 4;
  /// Backoff of the retry queue: attempt N waits retry_backoff * 2^(N-1),
  /// capped at retry_max_backoff.
  sim::Duration retry_backoff = 100 * sim::kMillisecond;
  sim::Duration retry_max_backoff = 1'600 * sim::kMillisecond;
  /// Also remap live apps sitting on cores whose utilization exceeds
  /// misplaced_util_threshold (only piggybacked onto a fault-triggered
  /// plan, never a plan of its own).
  bool relocate_misplaced = true;
  double misplaced_util_threshold = 1.0;
  /// Post-placement utilization cap per target core. A nominally-100%
  /// packed core passes the utilization admission test but misses
  /// deadlines in practice (dispatch overhead, TT window padding) — the
  /// soak gate would reject it after the fact; cheaper to never propose it.
  double placement_headroom = 0.90;
  /// Staged-migration tuning for live moves.
  UpdateConfig update;
  /// Test hook: abort the apply phase once this many steps have been
  /// journaled (0 = before the first step), forcing a whole-plan rollback.
  /// -1 = off.
  int inject_fail_after_steps = -1;
};

enum class PlanStatus : std::uint8_t {
  kPlanning,
  kApplying,
  kSoaking,
  kCommitted,
  kRolledBack,
};

const char* to_string(PlanStatus status);

enum class StepKind : std::uint8_t {
  kColdStart,  ///< app had no live instance: install + start on the target
  kMigration,  ///< app is alive but misplaced: staged cross-node migration
};

struct RecoveryStep {
  StepKind kind = StepKind::kColdStart;
  std::string app;
  /// Instance label on the origin node (migrations; may carry a "#vN"
  /// update suffix). Equals `app` for cold starts.
  std::string label;
  std::string from_ecu;  ///< dead or overloaded origin ("" if unknown)
  std::string to_ecu;
  model::AppClass app_class = model::AppClass::kNonDeterministic;
  model::Asil asil = model::Asil::kQM;
  bool applied = false;
};

/// Value snapshot of the vehicle-wide deployment: every hosted instance on
/// every node with its liveness flags, sorted for bit-exact comparison.
/// This is what a rolled-back plan must restore.
struct DeploymentSnapshot {
  struct Entry {
    std::string ecu;
    std::string label;
    bool running = false;
    bool active = false;
    bool operator==(const Entry& o) const {
      return ecu == o.ecu && label == o.label && running == o.running &&
             active == o.active;
    }
    bool operator<(const Entry& o) const {
      if (ecu != o.ecu) return ecu < o.ecu;
      return label < o.label;
    }
  };
  std::vector<Entry> entries;
  bool operator==(const DeploymentSnapshot& o) const {
    return entries == o.entries;
  }
};

struct RecoveryPlan {
  int id = 0;
  PlanStatus status = PlanStatus::kPlanning;
  sim::Time fault_detected_at = 0;
  sim::Time apply_started_at = 0;
  sim::Time finished_at = 0;
  std::vector<RecoveryStep> steps;
  /// Apps the plan could not place (admission or DSE infeasibility); they
  /// enter the retry queue, they do not fail the plan.
  std::vector<std::string> stranded;
  DeploymentSnapshot pre_plan;
  /// For kRolledBack plans: the post-rollback snapshot matched pre_plan
  /// exactly, compared over the nodes still alive at rollback time —
  /// entries on a node that died mid-plan are unrestorable regardless.
  /// (Trivially true for committed plans.)
  bool restored_exactly = true;
  std::string reason;
  std::uint64_t dse_candidates = 0;
};

class RecoveryOrchestrator {
 public:
  RecoveryOrchestrator(DynamicPlatform& platform, RecoveryConfig config = {});
  ~RecoveryOrchestrator();
  RecoveryOrchestrator(const RecoveryOrchestrator&) = delete;
  RecoveryOrchestrator& operator=(const RecoveryOrchestrator&) = delete;

  void engage();
  void disengage();

  /// Wires health escalation/clearing: committed plans lift kDegraded
  /// verdicts, an exhausted retry budget escalates to limp-home.
  void set_degradation(DegradationManager* degradation) {
    degradation_ = degradation;
  }

  /// Completed plans, in commit/rollback order. A plan in flight is not
  /// listed until it finishes.
  const std::vector<RecoveryPlan>& plans() const { return plans_; }
  /// Apps currently waiting in the retry queue.
  std::vector<std::string> stranded() const;
  /// Apps whose retry budget is exhausted (vehicle cannot self-heal them).
  const std::vector<std::string>& abandoned() const { return abandoned_; }
  bool plan_in_flight() const { return active_ != nullptr; }

  static DeploymentSnapshot snapshot(DynamicPlatform& platform);

 private:
  /// One app needing a new home.
  struct Displaced {
    const model::AppDef* def = nullptr;
    std::string from_ecu;    ///< dead host or overloaded live host
    std::string live_label;  ///< live instance label; empty => cold start
  };
  struct RetryState {
    int attempts = 0;
    sim::Time next_due = 0;
    std::string origin_ecu;
  };
  /// Undo record of one applied step (reverse-walked on rollback).
  struct JournalEntry {
    StepKind kind = StepKind::kColdStart;
    std::string app;
    std::string label;  ///< origin label (migrations)
    std::string from_ecu;
    std::string to_ecu;
    model::AppDef def;
    std::vector<std::uint8_t> state;  ///< pre-migration app state
  };
  struct Active {
    RecoveryPlan plan;
    std::vector<JournalEntry> journal;
    /// Monitor fault count per target node at soak start.
    std::map<std::string, std::size_t> fault_baseline;
  };

  void sweep();
  std::vector<Displaced> collect_displaced();
  void plan_and_apply(std::vector<Displaced> work);
  /// Whole-vehicle remap of `work` onto the surviving nodes; returns app ->
  /// target ECU for every placeable app (others are left out).
  std::map<std::string, std::string> solve_placement(
      const std::vector<Displaced>& work, std::uint64_t* candidates);
  bool admits(PlatformNode& node, const model::AppDef& def,
              std::vector<dse::AnalysisTask>* pending) const;
  void apply_step(std::size_t index);
  void begin_soak();
  void commit();
  void rollback(const std::string& reason);
  void finish_plan();
  /// Plan-time placement failure: backoff bookkeeping + escalation.
  void strand(const std::string& app, const std::string& origin_ecu);
  sim::Trace* vehicle_trace();
  /// Records a reached recovery phase in the vehicle trace's CoverageMap.
  void coverage_hit(const char* key);

  DynamicPlatform& platform_;
  RecoveryConfig config_;
  UpdateManager updates_;
  DegradationManager* degradation_ = nullptr;
  sim::EventId sweeper_;
  std::unique_ptr<Active> active_;
  std::vector<RecoveryPlan> plans_;
  std::map<std::string, RetryState> retries_;
  std::vector<std::string> abandoned_;
  std::set<std::string> abandoned_set_;
  int next_plan_id_ = 1;
  bool engaged_ = false;
};

}  // namespace dynaplat::platform
