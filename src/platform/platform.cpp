#include "platform/platform.hpp"

#include "dse/schedulability.hpp"

namespace dynaplat::platform {

DynamicPlatform::DynamicPlatform(sim::Simulator& simulator,
                                 model::SystemModel system_model,
                                 model::DeploymentDef deployment,
                                 PlatformConfig config)
    : sim_(simulator),
      model_(std::move(system_model)),
      deployment_(std::move(deployment)),
      config_(config),
      key_server_(config.security_seed) {
  backend_client_ =
      std::make_unique<::dynaplat::backend::BackendClient>(sim_);
  backend_client_->set_loopback(&backend_);
  verifier_.set_schedulability_hook(dse::make_verifier_hook());
  // Pre-assign service ids in model order so all nodes agree.
  for (const auto& interface : model_.interfaces()) {
    service_id(interface.name);
  }
}

PlatformNode& DynamicPlatform::add_node(os::Ecu& ecu, NodeConfig config) {
  auto node = std::make_unique<PlatformNode>(*this, ecu, config);
  PlatformNode& ref = *node;
  nodes_[ecu.name()] = std::move(node);
  if (config_.auth_mode != security::AuthMode::kNone ||
      config_.access_control) {
    auth_[ecu.name()] = std::make_unique<security::AuthenticationService>(
        ref.comm(), key_server_, config_.auth_mode,
        config_.access_control ? &access_matrix_ : nullptr);
  }
  return ref;
}

PlatformNode* DynamicPlatform::node(const std::string& ecu_name) {
  auto it = nodes_.find(ecu_name);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DynamicPlatform::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) names.push_back(name);
  return names;
}

PlatformNode* DynamicPlatform::node_hosting(const std::string& app_label) {
  for (auto& [name, node] : nodes_) {
    if (node->hosts(app_label)) return node.get();
  }
  return nullptr;
}

void DynamicPlatform::register_app(const std::string& app_name,
                                   AppFactory factory) {
  factories_[app_name] = std::move(factory);
}

AppFactory DynamicPlatform::factory_for(const std::string& app_name) const {
  auto it = factories_.find(app_name);
  return it == factories_.end() ? AppFactory{} : it->second;
}

std::vector<model::Violation> DynamicPlatform::verify() const {
  return verifier_.verify(model_, deployment_);
}

bool DynamicPlatform::install_all(std::string* reason) {
  if (config_.enforce_verification) {
    const auto violations = verify();
    if (model::Verifier::has_errors(violations)) {
      if (reason != nullptr) {
        for (const auto& violation : violations) {
          if (violation.severity == model::Severity::kError) {
            *reason = violation.rule + " " + violation.subject + ": " +
                      violation.message;
            break;
          }
        }
      }
      return false;
    }
  }
  if (config_.access_control) derive_access_matrix();

  for (const auto& binding : deployment_.bindings) {
    const model::AppDef* def = model_.app(binding.app);
    if (def == nullptr) {
      if (reason != nullptr) *reason = "unknown app '" + binding.app + "'";
      return false;
    }
    const int replicas = std::max(1, def->replicas);
    for (int replica = 0;
         replica < replicas &&
         replica < static_cast<int>(binding.candidates.size());
         ++replica) {
      const std::string& ecu_name =
          binding.candidates[static_cast<std::size_t>(replica)];
      PlatformNode* target = node(ecu_name);
      if (target == nullptr) {
        if (reason != nullptr) {
          *reason = "no platform node on ECU '" + ecu_name + "'";
        }
        return false;
      }
      AppFactory factory = factory_for(def->name);
      if (!factory) {
        if (reason != nullptr) {
          *reason = "no registered package for '" + def->name + "'";
        }
        return false;
      }
      std::string install_reason;
      if (!target->install(*def, factory, &install_reason)) {
        if (reason != nullptr) *reason = install_reason;
        return false;
      }
      // Replica 0 is the initial primary; the rest start as standbys
      // (active == false). RedundancyManager rotates ownership on failure.
      const bool standby = replica > 0;
      if (!target->start(def->name, standby)) {
        if (reason != nullptr) {
          *reason = "failed to start '" + def->name + "' on " + ecu_name;
        }
        return false;
      }
    }
  }
  return true;
}

middleware::ServiceId DynamicPlatform::service_id(
    const std::string& interface_name) {
  auto it = service_ids_.find(interface_name);
  if (it != service_ids_.end()) return it->second;
  const middleware::ServiceId id = next_service_id_++;
  service_ids_[interface_name] = id;
  return id;
}

net::Priority DynamicPlatform::interface_priority(
    const std::string& interface_name) const {
  // Criticality-ordered network priority (Sec. 3.1 "Hardware Access &
  // Communication"): the provider's ASIL decides. Streams ride low.
  const model::InterfaceDef* interface = model_.interface(interface_name);
  if (interface == nullptr) return net::kPriorityLowest;
  if (interface->paradigm == model::Paradigm::kStream) {
    return net::kPriorityLowest;
  }
  const model::AppDef* provider = model_.provider_of(interface_name);
  const model::Asil asil =
      provider != nullptr ? provider->asil : model::Asil::kQM;
  switch (asil) {
    case model::Asil::kD: return 0;
    case model::Asil::kC: return 1;
    case model::Asil::kB: return 2;
    case model::Asil::kA: return 3;
    case model::Asil::kQM: return 5;
  }
  return net::kPriorityLowest;
}

void DynamicPlatform::derive_access_matrix() {
  for (const auto& binding : deployment_.bindings) {
    const model::AppDef* app = model_.app(binding.app);
    if (app == nullptr) continue;
    const int replicas = std::max(1, app->replicas);
    for (int replica = 0;
         replica < replicas &&
         replica < static_cast<int>(binding.candidates.size());
         ++replica) {
      PlatformNode* host =
          node(binding.candidates[static_cast<std::size_t>(replica)]);
      if (host == nullptr) continue;
      const net::NodeId client = host->ecu().node_id();
      for (const auto& interface_name : app->consumes) {
        access_matrix_.allow(client, service_id(interface_name));
      }
      // Providers may also address their own service (replica state sync).
      for (const auto& interface_name : app->provides) {
        access_matrix_.allow(client, service_id(interface_name));
      }
    }
  }
}

::dynaplat::backend::BackendClient& DynamicPlatform::connect_backend(
    ::dynaplat::backend::FleetScheduleService& service,
    ::dynaplat::backend::ClientConfig client_config) {
  backend_client_ = std::make_unique<::dynaplat::backend::BackendClient>(
      sim_, client_config);
  backend_client_->connect(&service);
  return *backend_client_;
}

}  // namespace dynaplat::platform
