#include "platform/node.hpp"

#include "platform/platform.hpp"

namespace dynaplat::platform {

middleware::ServiceId AppContext::service_id(
    const std::string& interface_name) const {
  return node->platform().service_id(interface_name);
}

net::Priority AppContext::priority_of(
    const std::string& interface_name) const {
  return node->platform().interface_priority(interface_name);
}

PlatformNode::PlatformNode(DynamicPlatform& platform, os::Ecu& ecu,
                           NodeConfig config)
    : platform_(platform), ecu_(ecu), config_(config) {
  runtime_ =
      std::make_unique<middleware::ServiceRuntime>(ecu_, config_.middleware);
  monitor_ =
      std::make_unique<monitor::RuntimeMonitor>(ecu_, config_.monitor);
  tts_.resize(ecu_.core_count(), nullptr);
  for (std::size_t core = 0; core < ecu_.core_count(); ++core) {
    if (config_.time_triggered) {
      auto scheduler = std::make_unique<os::TimeTriggeredScheduler>(
          sim::kMillisecond, std::vector<os::TtWindow>{});
      tts_[core] = scheduler.get();
      ecu_.processor(core).set_scheduler(std::move(scheduler));
    }
    ecu_.processor(core).start();
  }
  if (config_.monitoring) monitor_->start();
}

PlatformNode::~PlatformNode() = default;

std::vector<dse::AnalysisTask> PlatformNode::analysis_tasks() const {
  std::vector<dse::AnalysisTask> tasks;
  for (std::size_t core = 0; core < ecu_.core_count(); ++core) {
    auto core_tasks = analysis_tasks(core);
    tasks.insert(tasks.end(), core_tasks.begin(), core_tasks.end());
  }
  return tasks;
}

std::vector<dse::AnalysisTask> PlatformNode::analysis_tasks(
    std::size_t core) const {
  std::vector<dse::AnalysisTask> tasks;
  for (const auto& [label, inst] : instances_) {
    if (!inst.running || inst.core != core) continue;
    auto app_tasks = dse::tasks_on(inst.def, ecu_.config().cpu.mips);
    // Key by instance label, not app name: during a staged update two
    // instances of the same app coexist and both need schedule windows.
    for (std::size_t i = 0; i < app_tasks.size(); ++i) {
      app_tasks[i].name = label + "." + inst.def.tasks[i].name;
    }
    tasks.insert(tasks.end(), app_tasks.begin(), app_tasks.end());
  }
  return tasks;
}

bool PlatformNode::install(const model::AppDef& def, AppFactory factory,
                           std::string* reason,
                           const std::string& label_suffix) {
  const std::string label = def.name + label_suffix;
  if (instances_.count(label) > 0) {
    if (reason != nullptr) *reason = "instance '" + label + "' already exists";
    return false;
  }
  // Core placement + admission: first core whose task set still admits the
  // newcomer (partitioned multicore scheduling). Without admission control,
  // the least-utilized core is chosen.
  std::size_t chosen_core = 0;
  if (config_.admission_control) {
    const auto incoming = dse::tasks_on(def, ecu_.config().cpu.mips);
    bool admitted = false;
    std::string last_reason;
    for (std::size_t core = 0; core < ecu_.core_count(); ++core) {
      const auto decision = admission_.admit(analysis_tasks(core), incoming);
      // The admission test itself costs ECU CPU time (on the tested core).
      ecu_.processor(core).submit("admission",
                                  decision.analysis_instructions, 9,
                                  os::TaskClass::kNonDeterministic, {});
      if (decision.admitted) {
        chosen_core = core;
        admitted = true;
        break;
      }
      last_reason = decision.reason;
    }
    if (!admitted) {
      if (reason != nullptr) *reason = last_reason;
      return false;
    }
  } else {
    double best_utilization = 2.0;
    for (std::size_t core = 0; core < ecu_.core_count(); ++core) {
      double utilization = 0.0;
      for (const auto& task : analysis_tasks(core)) {
        utilization += task.utilization();
      }
      if (utilization < best_utilization) {
        best_utilization = utilization;
        chosen_core = core;
      }
    }
  }
  // Process separation (Sec. 3.1 "Memory"): each app instance gets its own
  // process with a quota.
  const os::ProcessId process =
      ecu_.memory().create_process(label, def.memory_bytes);
  if (process == os::kInvalidProcess) {
    if (reason != nullptr) *reason = "insufficient memory for '" + label + "'";
    return false;
  }
  AppInstance inst;
  inst.def = def;
  inst.app = factory ? factory() : nullptr;
  inst.process = process;
  inst.label = label;
  inst.core = chosen_core;
  if (inst.app == nullptr) {
    ecu_.memory().destroy_process(process);
    if (reason != nullptr) *reason = "no factory for '" + def.name + "'";
    return false;
  }
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "install:" + label);
  }
  instances_.emplace(label, std::move(inst));
  return true;
}

void PlatformNode::bind_tasks(AppInstance& inst) {
  for (const auto& task_def : inst.def.tasks) {
    os::TaskConfig config;
    config.name = inst.label + "." + task_def.name;
    config.task_class =
        inst.def.app_class == model::AppClass::kDeterministic
            ? os::TaskClass::kDeterministic
            : os::TaskClass::kNonDeterministic;
    config.period = task_def.period;
    config.deadline = task_def.deadline;
    config.instructions = task_def.instructions;
    config.execution_jitter = task_def.execution_jitter;
    config.priority = task_def.priority;
    Application* app = inst.app.get();
    const std::string task_name = task_def.name;
    inst.tasks.push_back(ecu_.processor(inst.core).add_task(
        config, [app, task_name] { app->on_task(task_name); }));
  }
}

void PlatformNode::watch_tasks(AppInstance& inst) {
  if (!config_.monitoring) return;
  // DA apps carry strict contracts; NDA (QM) apps are watched too, with a
  // looser miss budget — the degradation manager can only shed a
  // misbehaving best-effort app if the monitor sees it misbehave.
  const bool deterministic =
      inst.def.app_class == model::AppClass::kDeterministic;
  for (std::size_t i = 0; i < inst.def.tasks.size(); ++i) {
    const auto& task_def = inst.def.tasks[i];
    monitor::Contract contract;
    contract.task = inst.tasks[i];
    contract.core = inst.core;
    contract.name = inst.label + "." + task_def.name;
    contract.period = task_def.period;
    contract.deadline =
        task_def.deadline > 0 ? task_def.deadline : task_def.period;
    contract.max_miss_ratio = deterministic ? 0.01 : 0.05;
    contract.process = inst.process;
    contract.max_memory_bytes = inst.def.memory_bytes;
    monitor_->watch(contract);
  }
}

void PlatformNode::offer_provided(AppInstance& inst) {
  for (const auto& interface_name : inst.def.provides) {
    // The offered version is the *interface* version from the model — the
    // owner evolves it with the app (Sec. 2.1).
    const model::InterfaceDef* interface =
        platform_.system_model().interface(interface_name);
    runtime_->offer(platform_.service_id(interface_name),
                    interface != nullptr ? interface->version
                                         : inst.def.version);
  }
}

void PlatformNode::withdraw_provided(AppInstance& inst) {
  for (const auto& interface_name : inst.def.provides) {
    runtime_->stop_offer(platform_.service_id(interface_name));
  }
}

bool PlatformNode::start(const std::string& label, bool shadow) {
  auto it = instances_.find(label);
  if (it == instances_.end() || it->second.running) return false;
  AppInstance& inst = it->second;
  bind_tasks(inst);
  inst.running = true;
  inst.app->set_active(!shadow);
  if (!shadow) offer_provided(inst);
  watch_tasks(inst);

  // Pin required interface versions before the app binds anything: Offers
  // below the pinned version never form a binding.
  for (const auto& [interface_name, min_version] : inst.def.min_versions) {
    runtime_->require_version(platform_.service_id(interface_name),
                              min_version);
  }

  AppContext context;
  context.node = this;
  context.def = &inst.def;
  context.comm = runtime_.get();
  context.simulator = &ecu_.simulator();
  inst.app->on_start(context);

  if (config_.time_triggered &&
      inst.def.app_class == model::AppClass::kDeterministic) {
    resync_schedule();
  }
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         std::string(shadow ? "start_shadow:" : "start:") +
                             label);
  }
  return true;
}

void PlatformNode::stop(const std::string& label) {
  auto it = instances_.find(label);
  if (it == instances_.end() || !it->second.running) return;
  AppInstance& inst = it->second;
  inst.app->on_stop();
  if (inst.app->active()) withdraw_provided(inst);
  for (os::TaskId task : inst.tasks) {
    monitor_->unwatch(task);
    ecu_.processor(inst.core).remove_task(task);
  }
  inst.tasks.clear();
  inst.running = false;
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "stop:" + label);
  }
  if (config_.time_triggered &&
      inst.def.app_class == model::AppClass::kDeterministic) {
    resync_schedule();
  }
}

void PlatformNode::uninstall(const std::string& label) {
  auto it = instances_.find(label);
  if (it == instances_.end()) return;
  if (it->second.running) stop(label);
  ecu_.memory().destroy_process(it->second.process);
  instances_.erase(it);
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "uninstall:" + label);
  }
}

void PlatformNode::redirect(const std::string& from_label,
                            const std::string& to_label) {
  AppInstance* from = instance(from_label);
  AppInstance* to = instance(to_label);
  if (from == nullptr || to == nullptr) return;
  // Atomic on this node: the old instance stops owning outputs, the new one
  // takes over offers and handlers within one simulation instant.
  from->app->set_active(false);
  withdraw_provided(*from);
  to->app->set_active(true);
  offer_provided(*to);
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "redirect:" + from_label + "->" + to_label);
  }
}

void PlatformNode::promote(const std::string& label) {
  AppInstance* inst = instance(label);
  if (inst == nullptr || !inst->running || inst->app->active()) return;
  inst->app->set_active(true);
  offer_provided(*inst);
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "promote:" + label);
  }
}

void PlatformNode::demote(const std::string& label) {
  AppInstance* inst = instance(label);
  if (inst == nullptr || !inst->app || !inst->app->active()) return;
  inst->app->set_active(false);
  withdraw_provided(*inst);
  if (ecu_.trace() != nullptr &&
      ecu_.trace()->enabled(sim::TraceCategory::kPlatform)) {
    ecu_.trace()->record(ecu_.simulator().now(),
                         sim::TraceCategory::kPlatform, ecu_.name(),
                         "demote:" + label);
  }
}

bool PlatformNode::resync_schedule(std::string* reason) {
  bool all_ok = true;
  for (std::size_t core = 0; core < tts_.size(); ++core) {
    if (tts_[core] == nullptr) continue;
    const auto tasks = analysis_tasks(core);
    // Resilient backend path: a fresh artifact or a cached one for this
    // exact topology installs normally; an ECU-local admission verdict
    // (backend down, nothing cached) keeps the previous TT table — the
    // task set is RTA-schedulable, so running stale is safe — and reports
    // failure so the caller's cadence retries once the uplink heals.
    const auto outcome = platform_.backend_client().synthesize(
        tasks, ecu_.config().cpu.mips,
        ::dynaplat::backend::Criticality::kResync);
    if (outcome.locally_admitted || !outcome.ok ||
        !outcome.artifact.feasible || !outcome.artifact.validated) {
      if (reason != nullptr) {
        *reason = outcome.source ==
                          ::dynaplat::backend::BackendOutcome::Source::kBackend
                      ? outcome.artifact.reason
                      : std::string("backend unreachable (") +
                            ::dynaplat::backend::to_string(outcome.source) +
                            " fallback)";
      }
      all_ok = false;
      continue;
    }
    const auto& artifact = outcome.artifact;
    // Map table task indices back to the processor's TaskIds by name.
    std::map<std::string, os::TaskId> by_name;
    for (const auto& [label, inst] : instances_) {
      if (!inst.running || inst.core != core) continue;
      for (std::size_t i = 0; i < inst.def.tasks.size(); ++i) {
        // analysis_tasks() names tasks "<label>.<task>".
        by_name[label + "." + inst.def.tasks[i].name] = inst.tasks[i];
      }
    }
    std::vector<os::TtWindow> windows;
    for (const auto& window : artifact.table.windows) {
      const auto& analysis_task = tasks[window.task];
      auto it = by_name.find(analysis_task.name);
      if (it == by_name.end()) continue;
      windows.push_back(
          os::TtWindow{window.offset, window.length, it->second});
    }
    tts_[core]->install_table(artifact.table.cycle, std::move(windows));
  }
  return all_ok;
}

AppInstance* PlatformNode::instance(const std::string& label) {
  auto it = instances_.find(label);
  return it == instances_.end() ? nullptr : &it->second;
}

const AppInstance* PlatformNode::instance(const std::string& label) const {
  auto it = instances_.find(label);
  return it == instances_.end() ? nullptr : &it->second;
}

std::vector<std::string> PlatformNode::instance_labels() const {
  std::vector<std::string> out;
  out.reserve(instances_.size());
  for (const auto& [label, inst] : instances_) out.push_back(label);
  return out;
}

std::vector<std::string> PlatformNode::running_instances() const {
  std::vector<std::string> out;
  for (const auto& [label, inst] : instances_) {
    if (inst.running) out.push_back(label);
  }
  return out;
}

void PlatformNode::persist(const std::string& key,
                           std::vector<std::uint8_t> value) {
  persistence_[key] = std::move(value);
}

std::optional<std::vector<std::uint8_t>> PlatformNode::recall(
    const std::string& key) const {
  auto it = persistence_.find(key);
  if (it == persistence_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dynaplat::platform
