// Vehicle-level diagnostics service (paper Sec. 1.1: "logging, persistence
// services, and diagnosis, which is especially important to the automotive
// industry"; Sec. 3.4: faults + conditions are transferred to the
// manufacturer when a connection exists).
//
// Aggregates every node monitor's fault records into one vehicle store,
// models the intermittent backend uplink (reports queue while offline and
// flush on reconnect) and renders the fleet-facing diagnostic report.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "backend/client.hpp"
#include "monitor/runtime_monitor.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"

namespace dynaplat::platform {

class DiagnosticsService {
 public:
  explicit DiagnosticsService(DynamicPlatform& platform)
      : platform_(platform) {}

  /// Hooks a node's monitor: its fault records flow into this service.
  /// Idempotent — re-attaching an already-attached node does not double
  /// fault forwarding. Adopts the node's metrics registry (via its trace)
  /// as the snapshot source unless set_metrics() chose one explicitly.
  void attach(PlatformNode& node);

  /// Explicit vehicle-wide metrics registry for metrics_snapshot(); wins
  /// over the registry adopted from the first attached traced node.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// JSON snapshot of the vehicle-wide metrics registry ("{}" when no
  /// registry is known) — the fleet-facing counterpart of vehicle_report().
  /// Refreshes the obs layer's self-health gauges (trace-ring retained/
  /// dropped, interner size, coverage keys) first when a trace is known.
  std::string metrics_snapshot() const;

  /// JSON snapshot of the vehicle trace's state-coverage counters ("{}"
  /// when no trace is known) — the input the coverage-guided chaos
  /// scheduler consumes.
  std::string coverage_snapshot() const;

  /// Models the vehicle's internet connection state. While offline,
  /// reports queue; on reconnect the backlog flushes to the uplink sink.
  void set_online(bool online);
  bool online() const { return online_; }

  /// Follows a BackendClient's circuit breaker: the uplink goes offline
  /// when the breaker opens and back online when it closes (after the
  /// client re-validated its stale artifacts). Call once after
  /// connect_backend(); the registered listener lives as long as the
  /// client does.
  void follow_backend(::dynaplat::backend::BackendClient& client);

  /// The manufacturer backend endpoint.
  void set_uplink(std::function<void(const monitor::FaultRecord&)> uplink) {
    uplink_ = std::move(uplink);
  }

  /// Caps the offline backlog (drop-oldest beyond it). A multi-hour
  /// outage must not grow pending_ without bound — dropped records are
  /// counted under `diag.uplink.dropped`. 0 disables queueing entirely.
  void set_uplink_queue_limit(std::size_t limit) {
    uplink_queue_limit_ = limit;
  }
  std::size_t uplink_queue_limit() const { return uplink_queue_limit_; }

  const std::vector<monitor::FaultRecord>& all_faults() const {
    return store_;
  }
  std::size_t queued_for_uplink() const { return pending_.size(); }
  std::uint64_t uplinked() const { return uplinked_; }
  std::uint64_t dropped_uplink() const { return dropped_uplink_; }

  /// Vehicle-wide diagnostic summary: per-ECU fault counts by kind plus
  /// each node's certification dataset (Sec. 3.4).
  std::string vehicle_report() const;

 private:
  void submit(const std::string& ecu, const monitor::FaultRecord& record);

  DynamicPlatform& platform_;
  obs::MetricsRegistry* metrics_ = nullptr;
  sim::Trace* trace_ = nullptr;  // adopted from the first traced node
  std::vector<PlatformNode*> nodes_;
  std::vector<monitor::FaultRecord> store_;
  std::vector<std::string> store_sources_;
  std::deque<monitor::FaultRecord> pending_;
  std::function<void(const monitor::FaultRecord&)> uplink_;
  bool online_ = true;
  std::uint64_t uplinked_ = 0;
  std::size_t uplink_queue_limit_ = 4'096;
  std::uint64_t dropped_uplink_ = 0;
};

}  // namespace dynaplat::platform
