// Per-ECU platform layer (one "dynamic platform" slice on one ECU).
//
// Owns the middleware runtime, runtime monitor and the application instances
// hosted on this ECU. Responsible for the per-node pieces of the paper's
// platform services: lifecycle (install/start/stop/uninstall), freedom from
// interference (process separation, admission control, TT schedule
// resynchronization), persistence and logging.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dse/admission.hpp"
#include "middleware/runtime.hpp"
#include "monitor/runtime_monitor.hpp"
#include "os/ecu.hpp"
#include "platform/application.hpp"

namespace dynaplat::platform {

class DynamicPlatform;

struct NodeConfig {
  /// Use a synthesized time-triggered table for deterministic apps
  /// (platform enforcement on; ablation for E1 turns it off).
  bool time_triggered = true;
  /// Run the local admission test before installing (Sec. 5.3 [6], [19]).
  bool admission_control = true;
  /// Start the runtime monitor (Sec. 3.4).
  bool monitoring = true;
  middleware::RuntimeConfig middleware;
  monitor::MonitorConfig monitor;
};

/// One hosted application instance. An app may briefly have two instances
/// on a node during a staged update (old + shadow).
struct AppInstance {
  model::AppDef def;
  std::unique_ptr<Application> app;
  os::ProcessId process = os::kInvalidProcess;
  std::vector<os::TaskId> tasks;
  bool running = false;
  /// Instance label: "<app>" or "<app>#<version>" for update shadows.
  std::string label;
  /// Core hosting this instance's tasks (partitioned multicore placement).
  std::size_t core = 0;
};

class PlatformNode {
 public:
  PlatformNode(DynamicPlatform& platform, os::Ecu& ecu, NodeConfig config);
  ~PlatformNode();
  PlatformNode(const PlatformNode&) = delete;
  PlatformNode& operator=(const PlatformNode&) = delete;

  /// Installs an instance: process creation + admission test. The instance
  /// is not running yet. Returns false (with reason) on rejection.
  bool install(const model::AppDef& def, AppFactory factory,
               std::string* reason = nullptr,
               const std::string& label_suffix = "");

  /// Starts a installed instance: binds tasks, offers provided interfaces
  /// (unless shadow), arms monitoring contracts, calls on_start.
  /// `shadow` instances run but neither offer nor publish (update phase 1).
  bool start(const std::string& label, bool shadow = false);

  /// Stops a running instance (tasks removed, offers withdrawn, on_stop).
  void stop(const std::string& label);

  /// Uninstalls: stop + destroy the process.
  void uninstall(const std::string& label);

  /// Makes a shadow instance the owner of the app's services (update
  /// phase 3 "redirect"): registers method handlers, offers interfaces and
  /// flips active flags.
  void redirect(const std::string& from_label, const std::string& to_label);

  /// Promotes a standby instance to active ownership (redundancy failover,
  /// Sec. 3.3): flips the active flag and offers the provided interfaces.
  void promote(const std::string& label);

  /// Demotes an active instance back to standby (the inverse of promote):
  /// clears the active flag and withdraws its offers. Used when a failed
  /// primary returns — the recovered replica must not reclaim services the
  /// standby now owns.
  void demote(const std::string& label);

  AppInstance* instance(const std::string& label);
  const AppInstance* instance(const std::string& label) const;
  std::vector<std::string> running_instances() const;
  /// Every hosted instance label (running or not), sorted — the raw
  /// material for deployment snapshots (platform/recovery.hpp).
  std::vector<std::string> instance_labels() const;
  bool hosts(const std::string& label) const {
    return instances_.count(label) > 0;
  }

  /// Regenerates and installs the TT tables for the current deterministic
  /// task sets of every core (delegated to the backend ScheduleServer).
  bool resync_schedule(std::string* reason = nullptr);

  /// Simple persistence service (Sec. 1.1 "persistence services, e.g. for
  /// configurations") — survives app restarts, not ECU failure.
  void persist(const std::string& key, std::vector<std::uint8_t> value);
  std::optional<std::vector<std::uint8_t>> recall(
      const std::string& key) const;

  middleware::ServiceRuntime& comm() { return *runtime_; }
  monitor::RuntimeMonitor& monitor() { return *monitor_; }
  os::Ecu& ecu() { return ecu_; }
  DynamicPlatform& platform() { return platform_; }
  const NodeConfig& config() const { return config_; }

  /// Current analysis task set of running instances (all cores).
  std::vector<dse::AnalysisTask> analysis_tasks() const;
  /// Analysis task set of the running instances placed on one core.
  std::vector<dse::AnalysisTask> analysis_tasks(std::size_t core) const;

 private:
  void bind_tasks(AppInstance& inst);
  void offer_provided(AppInstance& inst);
  void withdraw_provided(AppInstance& inst);
  void watch_tasks(AppInstance& inst);

  DynamicPlatform& platform_;
  os::Ecu& ecu_;
  NodeConfig config_;
  std::unique_ptr<middleware::ServiceRuntime> runtime_;
  std::unique_ptr<monitor::RuntimeMonitor> monitor_;
  /// Per-core TT schedulers (owned by the processors); empty entries when
  /// time-triggered enforcement is off.
  std::vector<os::TimeTriggeredScheduler*> tts_;
  std::map<std::string, AppInstance> instances_;
  std::map<std::string, std::vector<std::uint8_t>> persistence_;
  dse::AdmissionController admission_;
};

}  // namespace dynaplat::platform
