#include "platform/update.hpp"

#include <memory>

namespace dynaplat::platform {
namespace {

std::string versioned_label(const model::AppDef& def) {
  return def.name + "#v" + std::to_string(def.version);
}

// Update phases render as nested spans on the "<ecu>/update" timeline lane
// (obs/export.hpp): an outer span for the whole protocol, inner spans per
// phase. Every early-return path must close its open spans, or the exporter
// drops them as unbalanced.
void phase_mark(PlatformNode& node, const char* name, bool begin) {
  sim::Trace* trace = node.ecu().trace();
  if (trace == nullptr) return;
  // Coverage counts entered phases even when the trace ring is masked off.
  if (begin) trace->coverage().hit(std::string("update.") + name);
  if (!trace->enabled(sim::TraceCategory::kPlatform)) return;
  trace->record(node.ecu().simulator().now(), sim::TraceCategory::kPlatform,
                node.ecu().name() + "/update", name, 0,
                begin ? obs::EventType::kBegin : obs::EventType::kEnd);
}

std::uint64_t shadow_misses(PlatformNode& node, const std::string& label) {
  const AppInstance* inst = node.instance(label);
  if (inst == nullptr) return 0;
  std::uint64_t misses = 0;
  auto& cpu = node.ecu().processor(inst->core);
  for (os::TaskId task : inst->tasks) {
    if (cpu.has_task(task)) misses += cpu.stats(task).deadline_misses;
  }
  return misses;
}

}  // namespace

void UpdateManager::staged_update(PlatformNode& node,
                                  const std::string& current_label,
                                  model::AppDef new_def, AppFactory factory,
                                  UpdateConfig config, Done done) {
  auto report = std::make_shared<UpdateReport>();
  report->strategy = "staged";
  report->app = new_def.name;
  report->started = platform_.simulator().now();
  report->serving_label = current_label;
  const std::string new_label = versioned_label(new_def);
  phase_mark(node, "update:staged", true);
  phase_mark(node, "pkg_verify", true);

  // Package verification runs while the old version still serves: no
  // ownership gap accrues here.
  node.ecu().processor().submit(
      "pkg_verify", config.preinstall_instructions, 9,
      os::TaskClass::kNonDeterministic,
      [this, &node, current_label, new_def, new_label, factory, config,
       done, report]() mutable {
        auto& simulator = platform_.simulator();
        phase_mark(node, "pkg_verify", false);
        // Phase 1: start the new version in parallel (shadow).
        report->phase_reached = 1;
        phase_mark(node, "phase1_shadow", true);
        std::string why;
        const std::string suffix = "#v" + std::to_string(new_def.version);
        if (!node.install(new_def, factory, &why, suffix) ||
            !node.start(new_label, /*shadow=*/true)) {
          phase_mark(node, "phase1_shadow", false);
          phase_mark(node, "update:staged", false);
          report->success = false;
          report->reason = "phase 1 failed: " + why;
          report->finished = simulator.now();
          done(*report);
          return;
        }
        if (config.inject_failure_phase == 1) {
          node.uninstall(new_label);
          phase_mark(node, "phase1_shadow", false);
          phase_mark(node, "update:staged", false);
          report->success = false;
          report->reason = "phase 1 rollback: injected fault";
          report->finished = simulator.now();
          done(*report);
          return;
        }
        phase_mark(node, "phase1_shadow", false);
        phase_mark(node, "warmup", true);
        // Phase 2 after warm-up: verify shadow health, then sync state.
        simulator.schedule_in(config.parallel_warmup, [this, &node,
                                                       current_label,
                                                       new_label, config,
                                                       done, report] {
          auto& simulator = platform_.simulator();
          phase_mark(node, "warmup", false);
          if (config.verify_phases && shadow_misses(node, new_label) > 0) {
            // Rollback: the new version cannot hold its deadlines here.
            node.uninstall(new_label);
            phase_mark(node, "update:staged", false);
            report->success = false;
            report->reason = "phase 2 rollback: shadow missed deadlines";
            report->finished = simulator.now();
            done(*report);
            return;
          }
          report->phase_reached = 2;
          phase_mark(node, "phase2_state_sync", true);
          AppInstance* old_inst = node.instance(current_label);
          AppInstance* new_inst = node.instance(new_label);
          if (old_inst == nullptr || new_inst == nullptr) {
            phase_mark(node, "phase2_state_sync", false);
            phase_mark(node, "update:staged", false);
            report->success = false;
            report->reason = "phase 2 failed: instance vanished";
            report->finished = simulator.now();
            done(*report);
            return;
          }
          const auto state = old_inst->app->serialize_state();
          new_inst->app->restore_state(state);
          // State transfer costs CPU proportional to its size.
          const std::uint64_t sync_cost = 1'000 + 50ull * state.size();
          node.ecu().processor().submit(
              "state_sync", sync_cost, 9, os::TaskClass::kNonDeterministic,
              [this, &node, current_label, new_label, config, done, report] {
                auto& simulator = platform_.simulator();
                phase_mark(node, "phase2_state_sync", false);
                if (config.inject_failure_phase == 2) {
                  node.uninstall(new_label);
                  phase_mark(node, "update:staged", false);
                  report->success = false;
                  report->reason = "phase 2 rollback: injected fault";
                  report->finished = simulator.now();
                  done(*report);
                  return;
                }
                // Phase 3: redirect traffic (atomic on this node).
                report->phase_reached = 3;
                phase_mark(node, "phase3_redirect", true);
                node.redirect(current_label, new_label);
                if (config.inject_failure_phase == 3) {
                  // Undo the redirect in the same instant: ownership flips
                  // back before any traffic could be lost.
                  node.redirect(new_label, current_label);
                  node.uninstall(new_label);
                  phase_mark(node, "phase3_redirect", false);
                  phase_mark(node, "update:staged", false);
                  report->success = false;
                  report->reason = "phase 3 rollback: injected fault";
                  report->finished = simulator.now();
                  done(*report);
                  return;
                }
                phase_mark(node, "phase3_redirect", false);
                // Phase 4: stop and remove the old version.
                phase_mark(node, "phase4_stop_old", true);
                simulator.schedule_in(sim::kMillisecond, [&node,
                                                          current_label,
                                                          new_label, config,
                                                          done, report,
                                                          this] {
                  report->phase_reached = 4;
                  if (config.inject_failure_phase == 4) {
                    // The old version is still installed: hand ownership
                    // back and discard the new instance.
                    node.redirect(new_label, current_label);
                    node.uninstall(new_label);
                    phase_mark(node, "phase4_stop_old", false);
                    phase_mark(node, "update:staged", false);
                    report->success = false;
                    report->reason = "phase 4 rollback: injected fault";
                    report->finished = platform_.simulator().now();
                    done(*report);
                    return;
                  }
                  node.uninstall(current_label);
                  phase_mark(node, "phase4_stop_old", false);
                  phase_mark(node, "update:staged", false);
                  report->serving_label = new_label;
                  report->success = true;
                  report->reason = "staged update complete";
                  report->ownership_gap = 0;  // redirect was atomic
                  report->finished = platform_.simulator().now();
                  done(*report);
                });
              });
        });
      });
}

void UpdateManager::staged_migration(PlatformNode& from,
                                     const std::string& label,
                                     PlatformNode& to, UpdateConfig config,
                                     Done done) {
  auto report = std::make_shared<UpdateReport>();
  report->strategy = "staged_migration";
  report->started = platform_.simulator().now();
  report->serving_label = label;
  const AppInstance* origin = from.instance(label);
  if (origin == nullptr) {
    report->success = false;
    report->reason = "'" + label + "' not hosted on " + from.ecu().name();
    report->finished = report->started;
    done(*report);
    return;
  }
  const model::AppDef def = origin->def;
  report->app = def.name;
  AppFactory factory = platform_.factory_for(def.name);
  if (!factory) {
    report->success = false;
    report->reason = "no registered package for '" + def.name + "'";
    report->finished = report->started;
    done(*report);
    return;
  }
  const std::string new_label = def.name;  // plain name on the target
  phase_mark(to, "update:migration", true);
  phase_mark(to, "pkg_verify", true);

  // The target verifies/unpacks while the origin still serves.
  to.ecu().processor().submit(
      "pkg_verify", config.preinstall_instructions, 9,
      os::TaskClass::kNonDeterministic,
      [this, &from, &to, label, def, new_label, factory, config, done,
       report]() mutable {
        auto& simulator = platform_.simulator();
        phase_mark(to, "pkg_verify", false);
        // Phase 1: shadow instance on the target node.
        report->phase_reached = 1;
        phase_mark(to, "phase1_shadow", true);
        std::string why;
        if (!to.install(def, factory, &why) ||
            !to.start(new_label, /*shadow=*/true)) {
          phase_mark(to, "phase1_shadow", false);
          phase_mark(to, "update:migration", false);
          report->success = false;
          report->reason = "phase 1 failed: " + why;
          report->finished = simulator.now();
          done(*report);
          return;
        }
        if (config.inject_failure_phase == 1) {
          to.uninstall(new_label);
          phase_mark(to, "phase1_shadow", false);
          phase_mark(to, "update:migration", false);
          report->success = false;
          report->reason = "phase 1 rollback: injected fault";
          report->finished = simulator.now();
          done(*report);
          return;
        }
        phase_mark(to, "phase1_shadow", false);
        phase_mark(to, "warmup", true);
        simulator.schedule_in(config.parallel_warmup, [this, &from, &to,
                                                       label, new_label,
                                                       config, done,
                                                       report] {
          auto& simulator = platform_.simulator();
          phase_mark(to, "warmup", false);
          if (config.verify_phases && shadow_misses(to, new_label) > 0) {
            to.uninstall(new_label);
            phase_mark(to, "update:migration", false);
            report->success = false;
            report->reason = "phase 2 rollback: shadow missed deadlines";
            report->finished = simulator.now();
            done(*report);
            return;
          }
          report->phase_reached = 2;
          phase_mark(to, "phase2_state_sync", true);
          AppInstance* old_inst = from.instance(label);
          AppInstance* new_inst = to.instance(new_label);
          if (old_inst == nullptr || new_inst == nullptr) {
            to.uninstall(new_label);
            phase_mark(to, "phase2_state_sync", false);
            phase_mark(to, "update:migration", false);
            report->success = false;
            report->reason = "phase 2 failed: instance vanished";
            report->finished = simulator.now();
            done(*report);
            return;
          }
          const auto state = old_inst->app->serialize_state();
          new_inst->app->restore_state(state);
          const std::uint64_t sync_cost = 1'000 + 50ull * state.size();
          to.ecu().processor().submit(
              "state_sync", sync_cost, 9, os::TaskClass::kNonDeterministic,
              [this, &from, &to, label, new_label, config, done, report] {
                auto& simulator = platform_.simulator();
                phase_mark(to, "phase2_state_sync", false);
                if (config.inject_failure_phase == 2) {
                  to.uninstall(new_label);
                  phase_mark(to, "update:migration", false);
                  report->success = false;
                  report->reason = "phase 2 rollback: injected fault";
                  report->finished = simulator.now();
                  done(*report);
                  return;
                }
                // Phase 3: atomic cross-node ownership handover — the
                // origin stops offering and the target takes over within
                // one simulation instant, so ownership never gaps.
                report->phase_reached = 3;
                phase_mark(to, "phase3_handover", true);
                from.demote(label);
                to.promote(new_label);
                if (config.inject_failure_phase == 3) {
                  to.demote(new_label);
                  from.promote(label);
                  to.uninstall(new_label);
                  phase_mark(to, "phase3_handover", false);
                  phase_mark(to, "update:migration", false);
                  report->success = false;
                  report->reason = "phase 3 rollback: injected fault";
                  report->finished = simulator.now();
                  done(*report);
                  return;
                }
                phase_mark(to, "phase3_handover", false);
                // Phase 4: remove the origin instance.
                phase_mark(to, "phase4_stop_origin", true);
                simulator.schedule_in(sim::kMillisecond, [this, &from, &to,
                                                          label, new_label,
                                                          config, done,
                                                          report] {
                  report->phase_reached = 4;
                  if (config.inject_failure_phase == 4) {
                    to.demote(new_label);
                    from.promote(label);
                    to.uninstall(new_label);
                    phase_mark(to, "phase4_stop_origin", false);
                    phase_mark(to, "update:migration", false);
                    report->success = false;
                    report->reason = "phase 4 rollback: injected fault";
                    report->finished = platform_.simulator().now();
                    done(*report);
                    return;
                  }
                  from.uninstall(label);
                  phase_mark(to, "phase4_stop_origin", false);
                  phase_mark(to, "update:migration", false);
                  report->serving_label = new_label;
                  report->success = true;
                  report->reason = "staged migration complete";
                  report->ownership_gap = 0;  // handover was atomic
                  report->finished = platform_.simulator().now();
                  done(*report);
                });
              });
        });
      });
}

void UpdateManager::stop_restart_update(PlatformNode& node,
                                        const std::string& current_label,
                                        model::AppDef new_def,
                                        AppFactory factory,
                                        UpdateConfig config, Done done) {
  auto report = std::make_shared<UpdateReport>();
  report->strategy = "stop_restart";
  report->app = new_def.name;
  report->started = platform_.simulator().now();
  const std::string new_label = versioned_label(new_def);
  phase_mark(node, "update:stop_restart", true);

  // Service goes down immediately.
  node.uninstall(current_label);
  const sim::Time down_since = platform_.simulator().now();

  // Verification/flash happens inside the outage.
  node.ecu().processor().submit(
      "pkg_verify", config.preinstall_instructions, 9,
      os::TaskClass::kNonDeterministic,
      [this, &node, new_def, new_label, factory, done, report,
       down_since]() mutable {
        std::string why;
        if (!node.install(new_def, factory, &why,
                          "#v" + std::to_string(new_def.version)) ||
            !node.start(new_label)) {
          phase_mark(node, "update:stop_restart", false);
          report->success = false;
          report->reason = "reinstall failed: " + why;
          report->finished = platform_.simulator().now();
          report->ownership_gap = report->finished - down_since;
          done(*report);
          return;
        }
        phase_mark(node, "update:stop_restart", false);
        report->success = true;
        report->serving_label = new_label;
        report->reason = "stop-restart complete";
        report->finished = platform_.simulator().now();
        report->ownership_gap = report->finished - down_since;
        done(*report);
      });
}

void UpdateManager::distributed_update(std::vector<UpdateStep> path,
                                       UpdateConfig config,
                                       DistributedDone done) {
  auto report = std::make_shared<DistributedReport>();
  if (path.empty()) {
    report->success = true;
    report->reason = "empty path";
    done(*report);
    return;
  }
  auto shared_path =
      std::make_shared<std::vector<UpdateStep>>(std::move(path));
  run_distributed_step(shared_path, 0, config, report, std::move(done));
}

void UpdateManager::run_distributed_step(
    std::shared_ptr<std::vector<UpdateStep>> path, std::size_t index,
    UpdateConfig config, std::shared_ptr<DistributedReport> report,
    DistributedDone done) {
  if (index >= path->size()) {
    report->success = true;
    report->reason = "all steps complete";
    done(*report);
    return;
  }
  UpdateStep& step = (*path)[index];
  PlatformNode* node = platform_.node(step.ecu);
  if (node == nullptr || !node->hosts(step.current_label)) {
    report->success = false;
    report->reason = "step " + std::to_string(index) + ": '" +
                     step.current_label + "' not hosted on " + step.ecu;
    done(*report);
    return;
  }
  staged_update(
      *node, step.current_label, step.new_def, step.factory, config,
      [this, path, index, config, report,
       done = std::move(done)](UpdateReport step_report) mutable {
        report->steps.push_back(step_report);
        if (!step_report.success) {
          report->success = false;
          report->reason = "aborted at step " + std::to_string(index) +
                           ": " + step_report.reason;
          done(*report);
          return;
        }
        // Soak the new intermediate configuration before touching the next
        // component ("verifying the safety of every intermediate update
        // step").
        platform_.simulator().schedule_in(
            config.parallel_warmup,
            [this, path, index, config, report,
             done = std::move(done)]() mutable {
              run_distributed_step(path, index + 1, config, report,
                                   std::move(done));
            });
      });
}

void UpdateManager::central_switch_update(PlatformNode& node,
                                          const std::string& current_label,
                                          model::AppDef new_def,
                                          AppFactory factory,
                                          UpdateConfig config, Done done) {
  auto report = std::make_shared<UpdateReport>();
  report->strategy = "central_switch";
  report->app = new_def.name;
  report->started = platform_.simulator().now();
  const std::string new_label = versioned_label(new_def);
  phase_mark(node, "update:central_switch", true);

  // Pre-stage the new version (shadow) like the staged protocol would --
  // the difference under test is the *switchover*, not the staging.
  std::string why;
  if (!node.install(new_def, factory, &why,
                    "#v" + std::to_string(new_def.version)) ||
      !node.start(new_label, /*shadow=*/true)) {
    phase_mark(node, "update:central_switch", false);
    report->success = false;
    report->reason = "staging failed: " + why;
    report->finished = platform_.simulator().now();
    done(*report);
    return;
  }
  auto& simulator = platform_.simulator();
  const sim::Time switch_at = simulator.now() + config.parallel_warmup;
  // The "stop old" and "start new" commands are issued for the same instant
  // by the central coordinator, but arrive skewed by the clock error.
  simulator.schedule_at(switch_at, [&node, current_label] {
    AppInstance* old_inst = node.instance(current_label);
    if (old_inst != nullptr) old_inst->app->set_active(false);
  });
  simulator.schedule_at(
      switch_at + config.clock_error,
      [this, &node, current_label, new_label, config, done, report] {
        node.redirect(current_label, new_label);
        node.uninstall(current_label);
        phase_mark(node, "update:central_switch", false);
        report->success = true;
        report->serving_label = new_label;
        report->reason = "central switch complete";
        report->ownership_gap = config.clock_error;
        report->finished = platform_.simulator().now();
        done(*report);
      });
}

}  // namespace dynaplat::platform
