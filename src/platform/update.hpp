// Runtime update engine (paper Sec. 3.2).
//
// Three strategies, compared in E3:
//
//   staged (the paper's proposal for deterministic apps):
//     (1) start the updated binary in parallel (shadow, not offering),
//     (2) synchronize internal state old -> new,
//     (3) redirect all traffic to the new instance,
//     (4) stop the old version.
//     Every phase is health-verified; any failure rolls back to the old
//     version. Service ownership never gaps, so downtime is ~zero.
//
//   stop_restart (how NDAs and today's firmware images update):
//     stop -> uninstall -> verify/flash -> install -> start. The service is
//     down for the whole middle.
//
//   central_switch (the naive distributed alternative the paper warns
//     about): old stops at T, new starts at T + epsilon, where epsilon is
//     the clock-synchronization error between the coordinating parties —
//     "high accuracy clock synchronization is required and a single point
//     of failure is created".
#pragma once

#include <functional>
#include <string>

#include "platform/platform.hpp"

namespace dynaplat::platform {

struct UpdateConfig {
  /// Phase 1 -> 2: how long the shadow instance warms up under observation.
  sim::Duration parallel_warmup = 50 * sim::kMillisecond;
  /// CPU instructions to verify/unpack the package before installing
  /// (signature check + decompression). Staged pays this while the old
  /// version still serves; stop-restart pays it inside the outage.
  std::uint64_t preinstall_instructions = 5'000'000;
  /// Abort if the shadow instance misses any deadline during warm-up.
  bool verify_phases = true;
  /// Clock-sync error of the central_switch baseline.
  sim::Duration clock_error = 20 * sim::kMillisecond;
  /// Fault injection for rollback testing: abort the staged protocol at
  /// this phase (1..4) as if its health verification had failed there.
  /// Every injected abort must leave the original instance serving with a
  /// zero ownership gap and no shadow left on the node. 0 = off.
  int inject_failure_phase = 0;
};

struct UpdateReport {
  bool success = false;
  std::string strategy;
  std::string app;
  std::string reason;
  /// Label of the serving instance after the update ("app#vN" on success,
  /// the original label after a rollback).
  std::string serving_label;
  sim::Time started = 0;
  sim::Time finished = 0;
  /// Interval during which *no* active instance owned the app's services.
  sim::Duration ownership_gap = 0;
  int phase_reached = 0;  ///< staged: 1..4
};

class UpdateManager {
 public:
  explicit UpdateManager(DynamicPlatform& platform) : platform_(platform) {}

  using Done = std::function<void(UpdateReport)>;

  /// The paper's 4-phase staged update of `app` (currently served by
  /// `current_label` on `node`) to `new_def` built by `factory`.
  void staged_update(PlatformNode& node, const std::string& current_label,
                     model::AppDef new_def, AppFactory factory,
                     UpdateConfig config, Done done);

  /// Cross-node variant of the staged protocol (the recovery
  /// orchestrator's workhorse, Sec. 3.3): moves the instance serving
  /// `label` on `from` to `to` through the same four phases — shadow on
  /// the target, warm-up + health check, state sync, then an atomic
  /// ownership handover (demote on `from`, promote on `to`) and removal
  /// of the origin instance. Service ownership never gaps; any phase
  /// failure leaves the origin instance serving and the target clean.
  /// The migrated instance lands under the plain app name on `to`.
  void staged_migration(PlatformNode& from, const std::string& label,
                        PlatformNode& to, UpdateConfig config, Done done);

  /// Baseline: stop, verify, reinstall, restart.
  void stop_restart_update(PlatformNode& node,
                           const std::string& current_label,
                           model::AppDef new_def, AppFactory factory,
                           UpdateConfig config, Done done);

  /// Baseline: centrally coordinated switchover with clock error.
  void central_switch_update(PlatformNode& node,
                             const std::string& current_label,
                             model::AppDef new_def, AppFactory factory,
                             UpdateConfig config, Done done);

  /// One step of a distributed update path.
  struct UpdateStep {
    std::string ecu;            ///< node hosting the instance
    std::string current_label;  ///< label currently serving
    model::AppDef new_def;
    AppFactory factory;
  };

  struct DistributedReport {
    bool success = false;
    std::string reason;
    /// Reports of the steps that ran, in path order. On failure the first
    /// non-successful entry is the step that aborted the path; all earlier
    /// steps completed and stay in place (the paper's per-step safety
    /// argument: each intermediate configuration is itself verified).
    std::vector<UpdateReport> steps;
  };
  using DistributedDone = std::function<void(DistributedReport)>;

  /// Updates a distributed function "step-by-step via defined update paths"
  /// (Sec. 3.2): each step is a full staged update, and the next step only
  /// starts after the previous one completed and the updated instance
  /// stayed healthy for `config.parallel_warmup`. A failing step stops the
  /// path — earlier steps remain (every intermediate mix of old and new
  /// versions must itself be a safe configuration, which is why interface
  /// versions are checked at bind time).
  void distributed_update(std::vector<UpdateStep> path, UpdateConfig config,
                          DistributedDone done);

 private:
  void run_distributed_step(std::shared_ptr<std::vector<UpdateStep>> path,
                            std::size_t index, UpdateConfig config,
                            std::shared_ptr<DistributedReport> report,
                            DistributedDone done);

  DynamicPlatform& platform_;
};

}  // namespace dynaplat::platform
