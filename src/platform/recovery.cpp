#include "platform/recovery.hpp"

#include <algorithm>
#include <limits>

#include "dse/exploration.hpp"
#include "dse/schedulability.hpp"

namespace dynaplat::platform {

namespace {

/// True when `label` serves `app`: the plain name or an update-suffixed
/// instance ("App" matches "App" and "App#v2", never "AppX").
bool matches_app(const std::string& label, const std::string& app) {
  if (label == app) return true;
  return label.size() > app.size() && label[app.size()] == '#' &&
         label.compare(0, app.size(), app) == 0;
}

std::string base_app(const std::string& label) {
  const auto pos = label.find('#');
  return pos == std::string::npos ? label : label.substr(0, pos);
}

std::vector<double> latency_ms_buckets() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1'000, 2'000, 5'000};
}

double core_utilization(const std::vector<dse::AnalysisTask>& tasks) {
  double u = 0.0;
  for (const auto& task : tasks) u += task.utilization();
  return u;
}

}  // namespace

const char* to_string(PlanStatus status) {
  switch (status) {
    case PlanStatus::kPlanning: return "PLANNING";
    case PlanStatus::kApplying: return "APPLYING";
    case PlanStatus::kSoaking: return "SOAKING";
    case PlanStatus::kCommitted: return "COMMITTED";
    case PlanStatus::kRolledBack: return "ROLLED_BACK";
  }
  return "?";
}

RecoveryOrchestrator::RecoveryOrchestrator(DynamicPlatform& platform,
                                           RecoveryConfig config)
    : platform_(platform), config_(config), updates_(platform) {}

RecoveryOrchestrator::~RecoveryOrchestrator() { disengage(); }

void RecoveryOrchestrator::engage() {
  if (engaged_) return;
  engaged_ = true;
  sweeper_ = platform_.simulator().schedule_every(
      platform_.simulator().now() + config_.check_period,
      config_.check_period, [this] { sweep(); });
}

void RecoveryOrchestrator::disengage() {
  if (!engaged_) return;
  engaged_ = false;
  platform_.simulator().cancel(sweeper_);
  sweeper_ = {};
}

std::vector<std::string> RecoveryOrchestrator::stranded() const {
  std::vector<std::string> out;
  out.reserve(retries_.size());
  for (const auto& [app, state] : retries_) out.push_back(app);
  return out;
}

sim::Trace* RecoveryOrchestrator::vehicle_trace() {
  for (const auto& ecu_def : platform_.system_model().ecus()) {
    PlatformNode* node = platform_.node(ecu_def.name);
    if (node != nullptr && node->ecu().trace() != nullptr) {
      return node->ecu().trace();
    }
  }
  return nullptr;
}

void RecoveryOrchestrator::coverage_hit(const char* key) {
  sim::Trace* trace = vehicle_trace();
  if (trace != nullptr) trace->coverage().hit(key);
}

DeploymentSnapshot RecoveryOrchestrator::snapshot(DynamicPlatform& platform) {
  DeploymentSnapshot snap;
  for (const std::string& name : platform.node_names()) {
    PlatformNode* node = platform.node(name);
    if (node == nullptr) continue;
    for (const std::string& label : node->instance_labels()) {
      const AppInstance* inst = node->instance(label);
      if (inst == nullptr) continue;
      DeploymentSnapshot::Entry entry;
      entry.ecu = name;
      entry.label = label;
      entry.running = inst->running;
      entry.active = inst->app != nullptr && inst->app->active();
      snap.entries.push_back(std::move(entry));
    }
  }
  std::sort(snap.entries.begin(), snap.entries.end());
  return snap;
}

void RecoveryOrchestrator::sweep() {
  if (!engaged_ || active_ != nullptr) return;
  std::vector<Displaced> work = collect_displaced();
  if (work.empty()) return;
  plan_and_apply(std::move(work));
}

std::vector<RecoveryOrchestrator::Displaced>
RecoveryOrchestrator::collect_displaced() {
  const sim::Time now = platform_.simulator().now();
  struct LiveSite {
    std::string ecu;
    std::string label;
    std::size_t core = 0;
  };
  std::vector<Displaced> displaced;
  std::vector<std::pair<const model::AppDef*, LiveSite>> live_apps;
  for (const auto& binding : platform_.deployment().bindings) {
    const model::AppDef* def = platform_.system_model().app(binding.app);
    if (def == nullptr) continue;
    // Replicated apps have a warm standby: the RedundancyManager's domain.
    if (def->replicas > 1) continue;
    if (abandoned_set_.count(def->name) > 0) continue;
    auto retry = retries_.find(def->name);
    if (retry != retries_.end() && retry->second.next_due > now) continue;

    LiveSite site;
    std::string dead_host;
    bool parked_on_live = false;  // stopped on a live node: policy, not loss
    for (const std::string& name : platform_.node_names()) {
      PlatformNode* node = platform_.node(name);
      if (node == nullptr) continue;
      for (const std::string& label : node->instance_labels()) {
        if (!matches_app(label, def->name)) continue;
        const AppInstance* inst = node->instance(label);
        if (inst == nullptr) continue;
        if (node->ecu().failed()) {
          dead_host = name;
        } else if (inst->running) {
          site.ecu = name;
          site.label = label;
          site.core = inst->core;
        } else {
          // Someone (degradation shedding, an operator) deliberately
          // stopped this instance on a healthy node — re-hosting it would
          // second-guess that decision and risk duplicates.
          parked_on_live = true;
        }
      }
    }
    if (site.label.empty()) {
      if (!parked_on_live) displaced.push_back(Displaced{def, dead_host, ""});
    } else {
      live_apps.emplace_back(def, std::move(site));
    }
  }
  // Misplaced apps piggyback on a fault-triggered plan only: an otherwise
  // healthy vehicle is not continuously re-shuffled.
  if (!displaced.empty() && config_.relocate_misplaced) {
    for (const auto& [def, site] : live_apps) {
      PlatformNode* node = platform_.node(site.ecu);
      if (node == nullptr) continue;
      const double util = core_utilization(node->analysis_tasks(site.core));
      if (util > config_.misplaced_util_threshold) {
        displaced.push_back(Displaced{def, site.ecu, site.label});
      }
    }
  }
  return displaced;
}

bool RecoveryOrchestrator::admits(
    PlatformNode& node, const model::AppDef& def,
    std::vector<dse::AnalysisTask>* pending) const {
  const model::EcuDef* ecu_def =
      platform_.system_model().ecu(node.ecu().name());
  if (ecu_def == nullptr) return false;
  if (def.asil > ecu_def->max_asil) return false;
  if (def.app_class == model::AppClass::kDeterministic && !ecu_def->rtos) {
    return false;
  }
  std::vector<dse::AnalysisTask> incoming =
      dse::tasks_on(def, ecu_def->mips);
  // Admission is tested against the least-loaded core plus whatever this
  // plan already promised to the node.
  std::size_t best_core = 0;
  double best_util = std::numeric_limits<double>::max();
  for (std::size_t core = 0; core < node.ecu().core_count(); ++core) {
    const double util = core_utilization(node.analysis_tasks(core));
    if (util < best_util) {
      best_util = util;
      best_core = core;
    }
  }
  std::vector<dse::AnalysisTask> existing = node.analysis_tasks(best_core);
  existing.insert(existing.end(), pending->begin(), pending->end());
  double post_util = 0.0;
  for (const auto& task : existing) post_util += task.utilization();
  for (const auto& task : incoming) post_util += task.utilization();
  if (post_util > config_.placement_headroom) return false;
  dse::AdmissionController admission;
  if (!admission.admit(existing, incoming).admitted) return false;
  if (def.app_class == model::AppClass::kDeterministic) {
    // DA targets must also pass backend table synthesis + simulation
    // validation (Sec. 3.1 "CPU") before the plan relies on them. With
    // the backend unreachable, the resilient client's fallback ladder
    // decides instead: a cached artifact or the ECU-local admission fast
    // path lets recovery proceed degraded (the RTA test above already
    // passed) rather than stranding the vehicle; only a genuine
    // infeasibility — or no fallback at all — rejects the placement.
    std::vector<dse::AnalysisTask> all = existing;
    all.insert(all.end(), incoming.begin(), incoming.end());
    const auto outcome = platform_.backend_client().synthesize(
        all, ecu_def->mips, ::dynaplat::backend::Criticality::kRecovery);
    if (!outcome.ok) return false;
    if (outcome.source ==
            ::dynaplat::backend::BackendOutcome::Source::kBackend &&
        (!outcome.artifact.feasible || !outcome.artifact.validated)) {
      return false;
    }
  }
  pending->insert(pending->end(), incoming.begin(), incoming.end());
  return true;
}

std::map<std::string, std::string> RecoveryOrchestrator::solve_placement(
    const std::vector<Displaced>& work, std::uint64_t* candidates) {
  std::map<std::string, std::string> out;
  std::set<std::string> movable;
  for (const Displaced& item : work) movable.insert(item.def->name);

  // Sub-model of the surviving vehicle: live ECUs derated by their fixed
  // (non-movable) load, movable apps stripped of interface edges (their
  // peers are not part of the sub-model).
  model::SystemModel sub;
  for (const auto& net : platform_.system_model().networks()) {
    sub.add_network(net);
  }
  std::vector<std::string> live;
  for (const auto& ecu_def : platform_.system_model().ecus()) {
    PlatformNode* node = platform_.node(ecu_def.name);
    if (node == nullptr || node->ecu().failed()) continue;
    live.push_back(ecu_def.name);
    model::EcuDef derated = ecu_def;
    double fixed_util = 0.0;
    std::size_t fixed_memory = 0;
    for (const std::string& label : node->instance_labels()) {
      const AppInstance* inst = node->instance(label);
      if (inst == nullptr || movable.count(base_app(label)) > 0) continue;
      fixed_memory += inst->def.memory_bytes;
      if (inst->running) {
        fixed_util += inst->def.utilization_on(ecu_def.mips);
      }
    }
    const double headroom = std::max(0.0, 1.0 - fixed_util);
    derated.mips = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(ecu_def.mips) * headroom));
    derated.memory_bytes = ecu_def.memory_bytes > fixed_memory
                               ? ecu_def.memory_bytes - fixed_memory
                               : 0;
    sub.add_ecu(derated);
  }
  if (live.empty()) return out;
  for (const Displaced& item : work) {
    model::AppDef app = *item.def;
    app.provides.clear();
    app.consumes.clear();
    app.min_versions.clear();
    app.replicas = 1;
    sub.add_app(app);
  }

  dse::Explorer explorer(sub);
  // The seed is perturbed per plan: a placement the soak gate rejected must
  // not be re-proposed verbatim on every retry.
  dse::ExplorationResult result = explorer.simulated_annealing(
      config_.dse_iterations,
      config_.dse_seed + static_cast<std::uint64_t>(next_plan_id_),
      config_.dse_chains, config_.dse_threads);
  *candidates += result.candidates_evaluated;
  if (!result.feasible) {
    result = explorer.greedy();
    *candidates += result.candidates_evaluated;
  }

  // Admission-check every DSE target on the *real* nodes; apps the DSE
  // could not serve fall back to first-fit-decreasing over the survivors.
  std::vector<const model::AppDef*> order;
  order.reserve(work.size());
  for (const Displaced& item : work) order.push_back(item.def);
  std::stable_sort(order.begin(), order.end(),
                   [](const model::AppDef* a, const model::AppDef* b) {
                     const double ua = a->utilization_on(1'000);
                     const double ub = b->utilization_on(1'000);
                     if (ua != ub) return ua > ub;
                     return a->name < b->name;
                   });
  std::map<std::string, std::vector<dse::AnalysisTask>> pending;
  for (const model::AppDef* def : order) {
    std::string preferred;
    if (result.feasible) {
      auto it = result.assignment.placement.find(def->name);
      if (it != result.assignment.placement.end() && !it->second.empty()) {
        preferred = it->second.front();
      }
    }
    auto try_target = [&](const std::string& name) {
      PlatformNode* node = platform_.node(name);
      if (node == nullptr || node->ecu().failed()) return false;
      if (!admits(*node, *def, &pending[name])) return false;
      out[def->name] = name;
      return true;
    };
    if (!preferred.empty() && try_target(preferred)) continue;
    for (const std::string& name : live) {
      if (name == preferred) continue;
      if (try_target(name)) break;
    }
  }
  return out;
}

void RecoveryOrchestrator::plan_and_apply(std::vector<Displaced> work) {
  coverage_hit("recovery.detect");
  const sim::Time now = platform_.simulator().now();
  auto active = std::make_unique<Active>();
  RecoveryPlan& plan = active->plan;
  plan.id = next_plan_id_++;
  plan.fault_detected_at = now;
  plan.pre_plan = snapshot(platform_);

  std::uint64_t candidates = 0;
  const auto placement = solve_placement(work, &candidates);
  plan.dse_candidates = candidates;
  coverage_hit("recovery.remap");

  for (const Displaced& item : work) {
    auto it = placement.find(item.def->name);
    if (it == placement.end()) {
      plan.stranded.push_back(item.def->name);
      strand(item.def->name, item.from_ecu);
      continue;
    }
    // A "misplaced" app the DSE kept on its current host is fine where it
    // is — no step.
    if (!item.live_label.empty() && it->second == item.from_ecu) continue;
    RecoveryStep step;
    step.kind =
        item.live_label.empty() ? StepKind::kColdStart : StepKind::kMigration;
    step.app = item.def->name;
    step.label = item.live_label.empty() ? item.def->name : item.live_label;
    step.from_ecu = item.from_ecu;
    step.to_ecu = it->second;
    step.app_class = item.def->app_class;
    step.asil = item.def->asil;
    plan.steps.push_back(std::move(step));
  }
  if (plan.steps.empty()) return;  // only stranding bookkeeping this sweep

  // Criticality order: deterministic before best-effort, higher ASIL and
  // heavier apps first, name as the deterministic tie-break.
  const auto& model = platform_.system_model();
  std::stable_sort(
      plan.steps.begin(), plan.steps.end(),
      [&model](const RecoveryStep& a, const RecoveryStep& b) {
        const bool da_a = a.app_class == model::AppClass::kDeterministic;
        const bool da_b = b.app_class == model::AppClass::kDeterministic;
        if (da_a != da_b) return da_a;
        if (a.asil != b.asil) return a.asil > b.asil;
        const model::AppDef* def_a = model.app(a.app);
        const model::AppDef* def_b = model.app(b.app);
        const double ua = def_a != nullptr ? def_a->utilization_on(1'000) : 0;
        const double ub = def_b != nullptr ? def_b->utilization_on(1'000) : 0;
        if (ua != ub) return ua > ub;
        return a.app < b.app;
      });

  plan.status = PlanStatus::kApplying;
  plan.apply_started_at = now;
  if (sim::Trace* trace = vehicle_trace()) {
    if (trace->enabled(sim::TraceCategory::kPlatform)) {
      trace->record(now, sim::TraceCategory::kPlatform, "recovery",
                    "plan#" + std::to_string(plan.id),
                    static_cast<std::int64_t>(plan.steps.size()),
                    obs::EventType::kBegin);
    }
  }
  active_ = std::move(active);
  apply_step(0);
}

void RecoveryOrchestrator::apply_step(std::size_t index) {
  if (active_ == nullptr) return;
  RecoveryPlan& plan = active_->plan;
  if (config_.inject_fail_after_steps >= 0 &&
      static_cast<int>(active_->journal.size()) >=
          config_.inject_fail_after_steps) {
    rollback("injected fault after " +
             std::to_string(active_->journal.size()) + " steps");
    return;
  }
  if (index >= plan.steps.size()) {
    begin_soak();
    return;
  }
  RecoveryStep& step = plan.steps[index];
  coverage_hit("recovery.apply");
  PlatformNode* to = platform_.node(step.to_ecu);
  if (to == nullptr || to->ecu().failed()) {
    rollback("target " + step.to_ecu + " died mid-plan");
    return;
  }
  const int plan_id = plan.id;
  auto continue_with_next = [this, plan_id, index] {
    platform_.simulator().schedule_in(
        config_.step_spacing, [this, plan_id, index] {
          if (active_ == nullptr || active_->plan.id != plan_id) return;
          apply_step(index + 1);
        });
  };
  if (sim::Trace* trace = vehicle_trace()) {
    if (trace->enabled(sim::TraceCategory::kPlatform)) {
      trace->record(platform_.simulator().now(),
                    sim::TraceCategory::kPlatform, "recovery",
                    "step:" + step.app + "->" + step.to_ecu);
    }
  }
  if (step.kind == StepKind::kColdStart) {
    const model::AppDef* def = platform_.system_model().app(step.app);
    AppFactory factory = platform_.factory_for(step.app);
    std::string why;
    if (def == nullptr || !factory) {
      rollback("no package for '" + step.app + "'");
      return;
    }
    if (!to->install(*def, factory, &why)) {
      rollback("install of " + step.app + " on " + step.to_ecu +
               " failed: " + why);
      return;
    }
    if (!to->start(step.app)) {
      to->uninstall(step.app);
      rollback("start of " + step.app + " on " + step.to_ecu + " failed");
      return;
    }
    JournalEntry entry;
    entry.kind = StepKind::kColdStart;
    entry.app = step.app;
    entry.label = step.app;
    entry.from_ecu = step.from_ecu;
    entry.to_ecu = step.to_ecu;
    entry.def = *def;
    active_->journal.push_back(std::move(entry));
    step.applied = true;
    continue_with_next();
    return;
  }
  // Live move: staged cross-node migration, journaled with the app state
  // captured *before* the move so rollback can restore it on the origin.
  PlatformNode* from = platform_.node(step.from_ecu);
  AppInstance* inst = from != nullptr ? from->instance(step.label) : nullptr;
  if (from == nullptr || from->ecu().failed() || inst == nullptr ||
      inst->app == nullptr) {
    rollback("origin instance '" + step.label + "' on " + step.from_ecu +
             " vanished");
    return;
  }
  JournalEntry entry;
  entry.kind = StepKind::kMigration;
  entry.app = step.app;
  entry.label = step.label;
  entry.from_ecu = step.from_ecu;
  entry.to_ecu = step.to_ecu;
  entry.def = inst->def;
  entry.state = inst->app->serialize_state();
  updates_.staged_migration(
      *from, step.label, *to, config_.update,
      [this, plan_id, index, continue_with_next,
       entry = std::move(entry)](const UpdateReport& report) mutable {
        if (active_ == nullptr || active_->plan.id != plan_id) return;
        if (!report.success) {
          // The migration protocol already reverted itself; only the
          // earlier journaled steps need undoing.
          rollback("migration of " + entry.app + " failed: " +
                   report.reason);
          return;
        }
        active_->plan.steps[index].applied = true;
        active_->journal.push_back(std::move(entry));
        continue_with_next();
      });
}

void RecoveryOrchestrator::begin_soak() {
  coverage_hit("recovery.soak");
  RecoveryPlan& plan = active_->plan;
  plan.status = PlanStatus::kSoaking;
  for (const RecoveryStep& step : plan.steps) {
    if (!step.applied) continue;
    PlatformNode* node = platform_.node(step.to_ecu);
    if (node != nullptr) {
      active_->fault_baseline[step.to_ecu] = node->monitor().faults().size();
    }
  }
  const int plan_id = plan.id;
  platform_.simulator().schedule_in(config_.commit_soak, [this, plan_id] {
    if (active_ == nullptr || active_->plan.id != plan_id) return;
    for (const RecoveryStep& step : active_->plan.steps) {
      if (!step.applied) continue;
      PlatformNode* node = platform_.node(step.to_ecu);
      if (node == nullptr || node->ecu().failed()) {
        rollback("target " + step.to_ecu + " failed during soak");
        return;
      }
      const AppInstance* inst = node->instance(step.app);
      if (inst == nullptr || !inst->running) {
        rollback("'" + step.app + "' not running on " + step.to_ecu +
                 " after soak");
        return;
      }
    }
    for (const auto& [ecu, baseline] : active_->fault_baseline) {
      PlatformNode* node = platform_.node(ecu);
      if (node == nullptr) continue;
      const auto& faults = node->monitor().faults();
      for (std::size_t i = baseline; i < faults.size(); ++i) {
        if (faults[i].kind == "deadline_miss") {
          rollback("deadline misses on " + ecu + " during soak");
          return;
        }
      }
    }
    commit();
  });
}

void RecoveryOrchestrator::commit() {
  coverage_hit("recovery.commit");
  RecoveryPlan& plan = active_->plan;
  plan.status = PlanStatus::kCommitted;
  plan.finished_at = platform_.simulator().now();
  plan.reason = "committed";
  std::set<std::string> involved;
  for (const RecoveryStep& step : plan.steps) {
    retries_.erase(step.app);
    if (!step.from_ecu.empty()) involved.insert(step.from_ecu);
    involved.insert(step.to_ecu);
  }
  if (degradation_ != nullptr) {
    for (const std::string& ecu : involved) {
      PlatformNode* node = platform_.node(ecu);
      if (node != nullptr && !node->ecu().failed()) {
        degradation_->report_recovery_committed(ecu);
      }
    }
  }
  if (sim::Trace* trace = vehicle_trace()) {
    trace->metrics().counter("recovery.plans_committed").add();
    trace->metrics()
        .counter("recovery.steps_applied")
        .add(active_->journal.size());
    trace->metrics()
        .histogram("recovery.latency_ms", latency_ms_buckets())
        .observe(static_cast<double>(plan.finished_at -
                                     plan.fault_detected_at) /
                 static_cast<double>(sim::kMillisecond));
    if (trace->enabled(sim::TraceCategory::kPlatform)) {
      trace->record(plan.finished_at, sim::TraceCategory::kPlatform,
                    "recovery", "plan#" + std::to_string(plan.id), 0,
                    obs::EventType::kEnd);
    }
  }
  finish_plan();
}

void RecoveryOrchestrator::rollback(const std::string& reason) {
  coverage_hit("recovery.rollback");
  RecoveryPlan& plan = active_->plan;
  plan.reason = reason;
  bool exact = true;
  for (auto it = active_->journal.rbegin(); it != active_->journal.rend();
       ++it) {
    if (it->kind == StepKind::kColdStart) {
      PlatformNode* node = platform_.node(it->to_ecu);
      // A target that died mid-plan needs no undo: its bookkeeping is
      // unreachable either way, and the live-topology comparison below
      // excludes it.
      if (node != nullptr && !node->ecu().failed()) {
        node->uninstall(it->app);
      }
      continue;
    }
    // Migration undo: rebuild the instance on its origin (shadow), restore
    // the journaled state, then the same atomic handover — backwards.
    PlatformNode* from = platform_.node(it->from_ecu);
    PlatformNode* to = platform_.node(it->to_ecu);
    if (from == nullptr || from->ecu().failed()) {
      // The origin is gone: keep the migrated copy alive rather than
      // killing the only instance (availability beats bookkeeping).
      exact = false;
      continue;
    }
    const std::string suffix = it->label.size() > it->app.size()
                                   ? it->label.substr(it->app.size())
                                   : "";
    std::string why;
    AppFactory factory = platform_.factory_for(it->app);
    if (!factory || !from->install(it->def, factory, &why, suffix) ||
        !from->start(it->label, /*shadow=*/true)) {
      exact = false;
      continue;
    }
    AppInstance* inst = from->instance(it->label);
    if (inst != nullptr && inst->app != nullptr) {
      inst->app->restore_state(it->state);
    }
    if (to != nullptr && !to->ecu().failed()) to->demote(it->app);
    from->promote(it->label);
    if (to != nullptr && !to->ecu().failed()) to->uninstall(it->app);
  }
  plan.status = PlanStatus::kRolledBack;
  plan.finished_at = platform_.simulator().now();
  // Exactness is judged over the nodes still alive *now*: entries on a node
  // that died between plan start and rollback are unrestorable no matter
  // what the orchestrator does, and blaming the rollback for them would
  // flag every mid-plan ECU loss as a broken transaction.
  auto live_subset = [this](const DeploymentSnapshot& snap) {
    DeploymentSnapshot out;
    for (const auto& entry : snap.entries) {
      PlatformNode* node = platform_.node(entry.ecu);
      if (node != nullptr && !node->ecu().failed()) out.entries.push_back(entry);
    }
    return out;
  };
  plan.restored_exactly =
      exact && live_subset(snapshot(platform_)) == live_subset(plan.pre_plan);
  // Everything the plan tried to move goes back through the retry queue.
  for (const RecoveryStep& step : plan.steps) {
    strand(step.app, step.from_ecu);
  }
  if (sim::Trace* trace = vehicle_trace()) {
    trace->metrics().counter("recovery.plans_rolled_back").add();
    if (trace->enabled(sim::TraceCategory::kPlatform)) {
      trace->record(plan.finished_at, sim::TraceCategory::kPlatform,
                    "recovery", "plan#" + std::to_string(plan.id), 0,
                    obs::EventType::kEnd);
    }
  }
  finish_plan();
}

void RecoveryOrchestrator::finish_plan() {
  plans_.push_back(std::move(active_->plan));
  active_.reset();
}

void RecoveryOrchestrator::strand(const std::string& app,
                                  const std::string& origin_ecu) {
  if (abandoned_set_.count(app) > 0) return;
  RetryState& retry = retries_[app];
  retry.attempts += 1;
  if (!origin_ecu.empty()) retry.origin_ecu = origin_ecu;
  if (sim::Trace* trace = vehicle_trace()) {
    trace->metrics().counter("recovery.stranded").add();
  }
  if (retry.attempts > config_.retry_budget) {
    const std::string origin = retry.origin_ecu;
    abandoned_.push_back(app);
    abandoned_set_.insert(app);
    retries_.erase(app);
    if (sim::Trace* trace = vehicle_trace()) {
      trace->metrics().counter("recovery.abandoned").add();
    }
    if (degradation_ != nullptr && !origin.empty()) {
      degradation_->report_recovery_exhausted(origin);
    }
    return;
  }
  const int shift = std::min(retry.attempts - 1, 16);
  const sim::Duration backoff =
      std::min(config_.retry_backoff * (sim::Duration{1} << shift),
               config_.retry_max_backoff);
  retry.next_due = platform_.simulator().now() + backoff;
}

}  // namespace dynaplat::platform
