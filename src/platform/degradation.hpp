// Graceful degradation (paper Sec. 3.3 "fail-operational").
//
// "The fail-safe state of an autonomous vehicle is not necessarily a safe
// shutdown": when an ECU accumulates runtime-monitor faults or loses its
// redundancy heartbeats, the platform must keep the deterministic (DA,
// safety-relevant) applications alive and shed the non-deterministic (NDA)
// comfort load that competes with them for CPU and bandwidth.
//
// The DegradationManager is the vehicle-wide health state machine:
//
//   kOk --------- >= faults_for_degraded in fault_window ------> kDegraded
//   kOk/kDegraded  >= faults_for_limp_home, or heartbeat loss -> kLimpHome
//   kDegraded ---- fault-free for recovery_window -------------> kOk
//
// Entering kDegraded or kLimpHome stops every running NDA instance on the
// affected ECU (freedom from interference by subtraction); returning to kOk
// restarts what was shed. kLimpHome is sticky — limp-home means "reach the
// workshop", not "self-heal" — so only an explicit reset() clears it.
//
// Fault evidence arrives from each node's RuntimeMonitor (sink chained via
// add_report_sink) and from external supervisors (report_heartbeat_loss,
// typically wired to RedundancyManager failovers or a fault campaign's
// invariant checker). All transitions are traced on the kFault category
// under "degradation/<ecu>" so they land in the Perfetto fault lane.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace dynaplat::platform {

enum class HealthState : std::uint8_t { kOk, kDegraded, kLimpHome };

const char* to_string(HealthState state);

struct DegradationConfig {
  /// Monitor faults within fault_window that move an ECU kOk -> kDegraded.
  int faults_for_degraded = 3;
  /// Faults within fault_window that force kLimpHome (from any state).
  int faults_for_limp_home = 10;
  /// Sliding window over which faults are counted.
  sim::Duration fault_window = 1 * sim::kSecond;
  /// A degraded ECU that stays fault-free this long recovers to kOk.
  sim::Duration recovery_window = 2 * sim::kSecond;
  /// Health evaluation period (the state machine's clock tick).
  sim::Duration evaluation_period = 50 * sim::kMillisecond;
};

struct HealthTransition {
  sim::Time at = 0;
  std::string ecu;
  HealthState from = HealthState::kOk;
  HealthState to = HealthState::kOk;
  /// What triggered it: "monitor_faults" | "heartbeat_loss" | "recovery".
  std::string cause;
};

class DegradationManager {
 public:
  DegradationManager(DynamicPlatform& platform, DegradationConfig config = {});
  ~DegradationManager();

  /// Chains into every registered node's monitor and starts the periodic
  /// health evaluation. Call after all add_node()s.
  void engage();
  void disengage();

  /// External escalation: redundancy heartbeats from `ecu_name` were lost.
  /// Moves the ECU straight to kLimpHome.
  void report_heartbeat_loss(const std::string& ecu_name);

  /// A committed recovery plan re-hosted the load the ECU was degraded
  /// over: a kDegraded verdict lifts back to kOk (cause "recovery_plan").
  /// kLimpHome stays sticky — a plan does not substitute for a workshop.
  void report_recovery_committed(const std::string& ecu_name);

  /// The recovery orchestrator exhausted its retry budget for an app whose
  /// home was `ecu_name`: the vehicle cannot self-heal that loss, so the
  /// ECU's verdict escalates to sticky kLimpHome (cause
  /// "recovery_exhausted").
  void report_recovery_exhausted(const std::string& ecu_name);

  /// Backend uplink lost (the vehicle's BackendClient breaker opened):
  /// records a vehicle-wide kDegraded verdict under kBackendUplink that
  /// *holds* — the periodic evaluator never auto-lifts it — until
  /// report_backend_restored(). Wire these to BackendClient listeners so
  /// the verdict only lifts after stale artifacts were re-validated.
  void report_backend_lost();
  void report_backend_restored();
  bool backend_lost() const;
  /// Pseudo-ECU name carrying the vehicle-wide backend uplink verdict.
  static constexpr const char* kBackendUplink = "backend-uplink";

  /// Clears a sticky kLimpHome verdict (vehicle serviced / operator reset)
  /// back to kOk and restores shed applications.
  void reset(const std::string& ecu_name);

  HealthState state(const std::string& ecu_name) const;
  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }
  std::uint64_t apps_shed() const { return apps_shed_; }
  std::uint64_t apps_restored() const { return apps_restored_; }

 private:
  struct EcuHealth {
    HealthState state = HealthState::kOk;
    std::deque<sim::Time> fault_times;  ///< within fault_window, oldest first
    sim::Time last_fault = 0;
    std::vector<std::string> shed_labels;  ///< NDA instances stopped by us
    /// Held by an external condition (backend uplink loss): the evaluator
    /// must not auto-lift a kDegraded verdict while set.
    bool hold = false;
  };

  void evaluate();
  void transition(const std::string& ecu_name, EcuHealth& health,
                  HealthState to, const std::string& cause);
  void shed_nda(const std::string& ecu_name, EcuHealth& health);
  void restore_shed(const std::string& ecu_name, EcuHealth& health);
  void trace_transition(const HealthTransition& event);

  DynamicPlatform& platform_;
  DegradationConfig config_;
  std::map<std::string, EcuHealth> health_;
  std::vector<HealthTransition> transitions_;
  sim::EventId evaluator_;
  std::uint64_t apps_shed_ = 0;
  std::uint64_t apps_restored_ = 0;
  bool engaged_ = false;
};

}  // namespace dynaplat::platform
