#include "platform/reconfiguration.hpp"

#include <algorithm>

namespace dynaplat::platform {

ReconfigurationManager::ReconfigurationManager(DynamicPlatform& platform,
                                               ReconfigConfig config)
    : platform_(platform), config_(config) {}

ReconfigurationManager::~ReconfigurationManager() { disengage(); }

void ReconfigurationManager::engage() {
  if (engaged_) return;
  engaged_ = true;
  sweeper_ = platform_.simulator().schedule_every(
      platform_.simulator().now() + config_.check_period,
      config_.check_period, [this] { sweep(); });
}

void ReconfigurationManager::disengage() {
  if (!engaged_) return;
  engaged_ = false;
  platform_.simulator().cancel(sweeper_);
  sweeper_ = {};
}

sim::Trace* ReconfigurationManager::vehicle_trace() {
  for (const auto& ecu_def : platform_.system_model().ecus()) {
    PlatformNode* node = platform_.node(ecu_def.name);
    if (node != nullptr && node->ecu().trace() != nullptr) {
      return node->ecu().trace();
    }
  }
  return nullptr;
}

bool ReconfigurationManager::alive_somewhere(const std::string& app) {
  for (const auto& ecu_def : platform_.system_model().ecus()) {
    PlatformNode* node = platform_.node(ecu_def.name);
    if (node == nullptr || node->ecu().failed()) continue;
    const AppInstance* inst = node->instance(app);
    if (inst != nullptr && inst->running) return true;
  }
  return false;
}

std::string ReconfigurationManager::place(
    const model::AppDef& def, const std::vector<std::string>& preferred,
    const std::string& exclude_ecu) {
  AppFactory factory = platform_.factory_for(def.name);
  if (!factory) return {};

  auto try_node = [&](const std::string& ecu_name) -> bool {
    if (ecu_name == exclude_ecu) return false;
    PlatformNode* node = platform_.node(ecu_name);
    if (node == nullptr || node->ecu().failed()) return false;
    if (node->hosts(def.name)) return false;  // stale duplicate
    std::string why;
    if (!node->install(def, factory, &why)) return false;
    if (!node->start(def.name)) {
      node->uninstall(def.name);
      return false;
    }
    return true;
  };

  for (const auto& candidate : preferred) {
    if (try_node(candidate)) return candidate;
  }
  if (config_.allow_any_node) {
    for (const auto& ecu_def : platform_.system_model().ecus()) {
      if (std::find(preferred.begin(), preferred.end(), ecu_def.name) !=
          preferred.end()) {
        continue;  // already tried
      }
      if (try_node(ecu_def.name)) return ecu_def.name;
    }
  }
  return {};
}

void ReconfigurationManager::sweep() {
  if (!engaged_) return;
  previously_stranded_ = stranded_;
  stranded_.clear();
  // Collect every displaced app first, then place heaviest-first
  // (first-fit decreasing): greedy placement in declaration order packed
  // small apps early and stranded the big ones fragmentation could no
  // longer fit.
  std::vector<std::pair<const model::AppDef*,
                        const model::DeploymentDef::Binding*>>
      displaced;
  for (const auto& binding : platform_.deployment().bindings) {
    const model::AppDef* def =
        platform_.system_model().app(binding.app);
    if (def == nullptr) continue;
    // Replicated apps: the RedundancyManager owns their failover.
    if (def->replicas > 1) continue;
    if (alive_somewhere(def->name)) continue;
    displaced.emplace_back(def, &binding);
  }
  std::stable_sort(displaced.begin(), displaced.end(),
                   [](const auto& a, const auto& b) {
                     // mips-independent ordering: same reference speed for
                     // both sides.
                     return a.first->utilization_on(1'000) >
                            b.first->utilization_on(1'000);
                   });
  for (const auto& [def, binding_ptr] : displaced) {
    const auto& binding = *binding_ptr;

    // Find the dead host (for reporting + exclusion).
    std::string dead_host;
    for (const auto& candidate : binding.candidates) {
      PlatformNode* node = platform_.node(candidate);
      if (node != nullptr && node->hosts(def->name)) {
        dead_host = candidate;
        break;
      }
    }
    // Also consider earlier migrations' hosts.
    for (auto it = migrations_.rbegin(); it != migrations_.rend(); ++it) {
      if (it->app == def->name && it->success) {
        PlatformNode* node = platform_.node(it->to_ecu);
        if (node != nullptr && node->hosts(def->name)) {
          dead_host = it->to_ecu;
        }
        break;
      }
    }

    Migration migration;
    migration.at = platform_.simulator().now();
    migration.app = def->name;
    migration.from_ecu = dead_host;
    migration.to_ecu = place(*def, binding.candidates, dead_host);
    migration.success = !migration.to_ecu.empty();
    sim::Trace* trace = vehicle_trace();
    const bool was_stranded =
        std::find(previously_stranded_.begin(), previously_stranded_.end(),
                  def->name) != previously_stranded_.end();
    if (!migration.success) {
      stranded_.push_back(def->name);
      // Record the failure once per stranding episode, not per sweep; the
      // placement itself is retried every sweep (capacity may free up).
      if (!was_stranded) {
        migrations_.push_back(migration);
        if (trace != nullptr) {
          trace->metrics().counter("reconfig.failed_migrations").add();
          // A stranding episode renders as a span on the "reconfig" lane:
          // open while the app has no live host.
          if (trace->enabled(sim::TraceCategory::kPlatform)) {
            trace->record(migration.at, sim::TraceCategory::kPlatform,
                          "reconfig", "stranded:" + migration.app, 0,
                          obs::EventType::kBegin);
          }
        }
      }
    } else {
      migrations_.push_back(migration);
      if (trace != nullptr) {
        trace->metrics().counter("reconfig.migrations").add();
        if (was_stranded &&
            trace->enabled(sim::TraceCategory::kPlatform)) {
          trace->record(migration.at, sim::TraceCategory::kPlatform,
                        "reconfig", "stranded:" + migration.app, 0,
                        obs::EventType::kEnd);
        }
      }
    }
    if (migration.success && platform_.node(migration.to_ecu) != nullptr) {
      auto* target = platform_.node(migration.to_ecu)->ecu().trace();
      if (target != nullptr &&
          target->enabled(sim::TraceCategory::kPlatform)) {
        target->record(migration.at, sim::TraceCategory::kPlatform,
                       migration.to_ecu, "reconfig:" + migration.app);
      }
    }
  }
}

}  // namespace dynaplat::platform
