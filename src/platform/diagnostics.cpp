#include "platform/diagnostics.hpp"

#include <map>
#include <sstream>

namespace dynaplat::platform {

void DiagnosticsService::attach(PlatformNode& node) {
  nodes_.push_back(&node);
  const std::string ecu_name = node.ecu().name();
  node.monitor().set_report_sink(
      [this, ecu_name](const monitor::FaultRecord& record) {
        submit(ecu_name, record);
      });
}

void DiagnosticsService::submit(const std::string& ecu,
                                const monitor::FaultRecord& record) {
  store_.push_back(record);
  store_sources_.push_back(ecu);
  if (online_ && uplink_) {
    uplink_(record);
    ++uplinked_;
  } else {
    pending_.push_back(record);
  }
}

void DiagnosticsService::set_online(bool online) {
  online_ = online;
  if (online_ && uplink_) {
    while (!pending_.empty()) {
      uplink_(pending_.front());
      pending_.pop_front();
      ++uplinked_;
    }
  }
}

std::string DiagnosticsService::vehicle_report() const {
  std::ostringstream os;
  os << "# vehicle diagnostic report\n";
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (std::size_t i = 0; i < store_.size(); ++i) {
    ++counts[{store_sources_[i], store_[i].kind}];
  }
  os << "# faults by (ecu, kind):\n";
  for (const auto& [key, count] : counts) {
    os << key.first << " " << key.second << " " << count << "\n";
  }
  for (PlatformNode* node : nodes_) {
    os << node->monitor().certification_report();
  }
  return os.str();
}

}  // namespace dynaplat::platform
