#include "platform/diagnostics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace dynaplat::platform {

void DiagnosticsService::attach(PlatformNode& node) {
  if (std::find(nodes_.begin(), nodes_.end(), &node) == nodes_.end()) {
    nodes_.push_back(&node);
  }
  if (metrics_ == nullptr && node.ecu().trace() != nullptr) {
    metrics_ = &node.ecu().trace()->metrics();
  }
  if (trace_ == nullptr) trace_ = node.ecu().trace();
  // Re-attach just replaces the sink with an equivalent one, so fault
  // records are never forwarded twice.
  const std::string ecu_name = node.ecu().name();
  node.monitor().set_report_sink(
      [this, ecu_name](const monitor::FaultRecord& record) {
        submit(ecu_name, record);
      });
}

std::string DiagnosticsService::metrics_snapshot() const {
  if (trace_ != nullptr) trace_->refresh_self_metrics();
  if (metrics_ == nullptr) return "{}";
  return metrics_->snapshot_json();
}

std::string DiagnosticsService::coverage_snapshot() const {
  if (trace_ == nullptr) return "{}";
  return trace_->coverage().snapshot_json();
}

void DiagnosticsService::submit(const std::string& ecu,
                                const monitor::FaultRecord& record) {
  store_.push_back(record);
  store_sources_.push_back(ecu);
  if (metrics_ != nullptr) {
    metrics_->counter("diag.faults." + ecu + "." + record.kind).add();
  }
  if (online_ && uplink_) {
    uplink_(record);
    ++uplinked_;
  } else {
    // Bounded backlog: a multi-hour offline window sheds the oldest
    // records instead of growing without limit.
    if (uplink_queue_limit_ == 0) {
      ++dropped_uplink_;
      if (metrics_ != nullptr) metrics_->counter("diag.uplink.dropped").add();
      return;
    }
    while (pending_.size() >= uplink_queue_limit_) {
      pending_.pop_front();
      ++dropped_uplink_;
      if (metrics_ != nullptr) metrics_->counter("diag.uplink.dropped").add();
    }
    pending_.push_back(record);
  }
}

void DiagnosticsService::follow_backend(
    ::dynaplat::backend::BackendClient& client) {
  set_online(client.breaker() == ::dynaplat::backend::BreakerState::kClosed);
  client.add_listener([this](::dynaplat::backend::BreakerState,
                             ::dynaplat::backend::BreakerState next) {
    set_online(next == ::dynaplat::backend::BreakerState::kClosed);
  });
}

void DiagnosticsService::set_online(bool online) {
  online_ = online;
  if (online_ && uplink_) {
    while (!pending_.empty()) {
      uplink_(pending_.front());
      pending_.pop_front();
      ++uplinked_;
    }
  }
}

std::string DiagnosticsService::vehicle_report() const {
  std::ostringstream os;
  os << "# vehicle diagnostic report\n";
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (std::size_t i = 0; i < store_.size(); ++i) {
    ++counts[{store_sources_[i], store_[i].kind}];
  }
  os << "# faults by (ecu, kind):\n";
  for (const auto& [key, count] : counts) {
    os << key.first << " " << key.second << " " << count << "\n";
  }
  for (PlatformNode* node : nodes_) {
    os << node->monitor().certification_report();
  }
  return os.str();
}

}  // namespace dynaplat::platform
