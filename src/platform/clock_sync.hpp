// Master-slave clock synchronization over the middleware.
//
// A minimal gPTP-flavoured protocol: the master broadcasts its local time
// every sync period; each slave corrects its LocalClock by the difference
// between the announced time (plus a static path-delay estimate) and its
// own reading at reception. Good enough to bound the inter-ECU error to a
// few network-jitter units — and to *measure* the residual error that the
// central-switch update baseline (Sec. 3.2) and distributed TT tables
// implicitly rely on.
#pragma once

#include "middleware/runtime.hpp"
#include "os/clock.hpp"
#include "sim/stats.hpp"

namespace dynaplat::platform {

inline constexpr middleware::ServiceId kClockSyncServiceId = 0xF010;
inline constexpr middleware::ElementId kSyncEvent = 1;

struct ClockSyncConfig {
  sim::Duration sync_period = 100 * sim::kMillisecond;
  /// Static one-way path-delay compensation added to announced timestamps.
  sim::Duration path_delay_estimate = 20 * sim::kMicrosecond;
};

class ClockSyncService {
 public:
  /// Master: broadcasts its clock. Slave: subscribes and corrects `clock`.
  ClockSyncService(middleware::ServiceRuntime& runtime, os::LocalClock& clock,
                   bool master, ClockSyncConfig config = {});
  ~ClockSyncService();

  bool is_master() const { return master_; }
  /// Residual |local - global| sampled at every correction (slaves only).
  const sim::Stats& residual_error() const { return residual_; }
  std::uint64_t corrections() const { return corrections_; }

 private:
  middleware::ServiceRuntime& runtime_;
  os::LocalClock& clock_;
  bool master_;
  ClockSyncConfig config_;
  sim::EventId beacon_;
  sim::Stats residual_;
  std::uint64_t corrections_ = 0;
};

}  // namespace dynaplat::platform
