#include "platform/redundancy.hpp"

#include "middleware/payload.hpp"

namespace dynaplat::platform {

namespace {
constexpr middleware::ElementId kHeartbeatEvent = 1;
}

RedundancyManager::RedundancyManager(DynamicPlatform& platform,
                                     std::string app_name,
                                     RedundancyConfig config)
    : platform_(platform), app_name_(std::move(app_name)), config_(config),
      hb_service_(platform_.service_id(app_name_ + "/__heartbeat")) {
  const auto* binding = platform_.deployment().find(app_name_);
  const model::AppDef* def = platform_.system_model().app(app_name_);
  if (binding == nullptr || def == nullptr) return;
  const int replicas = std::max(1, def->replicas);
  for (int rank = 0; rank < replicas &&
                     rank < static_cast<int>(binding->candidates.size());
       ++rank) {
    Replica replica;
    replica.ecu_name = binding->candidates[static_cast<std::size_t>(rank)];
    replica.node = platform_.node(replica.ecu_name);
    replicas_.push_back(std::move(replica));
  }
}

RedundancyManager::~RedundancyManager() { disengage(); }

std::size_t RedundancyManager::primary_rank() const {
  for (std::size_t rank = 0; rank < replicas_.size(); ++rank) {
    const Replica& replica = replicas_[rank];
    if (replica.node == nullptr) continue;
    const AppInstance* inst = replica.node->instance(app_name_);
    if (inst != nullptr && inst->running && inst->app->active() &&
        !replica.node->ecu().failed()) {
      return rank;
    }
  }
  return replicas_.size();
}

std::vector<std::string> RedundancyManager::replica_ecus() const {
  std::vector<std::string> names;
  names.reserve(replicas_.size());
  for (const Replica& replica : replicas_) names.push_back(replica.ecu_name);
  return names;
}

std::string RedundancyManager::current_primary() const {
  const std::size_t rank = primary_rank();
  return rank < replicas_.size() ? replicas_[rank].ecu_name : "";
}

void RedundancyManager::engage() {
  if (engaged_ || replicas_.empty()) return;
  engaged_ = true;
  active_rank_ = primary_rank();
  // Every replica subscribes to the heartbeat/state channel — including the
  // initial primary, so that after being deposed it can rebind to the new
  // leader's heartbeats instead of promoting itself on stale silence.
  for (std::size_t rank = 0; rank < replicas_.size(); ++rank) {
    Replica& replica = replicas_[rank];
    if (replica.node == nullptr) continue;
    replica.last_heartbeat_seen = platform_.simulator().now();
    Replica* self = &replica;
    const std::string app = app_name_;
    replica.node->comm().subscribe(
        hb_service_, kHeartbeatEvent,
        [this, self, app](std::vector<std::uint8_t> data, net::NodeId) {
          self->last_heartbeat_seen = platform_.simulator().now();
          // Restore shipped state into the standby instance.
          if (self->node == nullptr || data.empty()) return;
          AppInstance* inst = self->node->instance(app);
          if (inst != nullptr && inst->running && !inst->app->active()) {
            try {
              middleware::PayloadReader reader(data);
              reader.u64();  // sequence
              const auto state = reader.blob();
              if (!state.empty()) inst->app->restore_state(state);
            } catch (const std::out_of_range&) {
              // Corrupt heartbeat: count as missed (no timestamp update
              // rollback needed; the state simply is not applied).
            }
          }
        });
    if (rank != active_rank_) supervise(rank);
  }
  start_heartbeats(active_rank_);
}

std::size_t RedundancyManager::stagger_of(std::size_t rank) const {
  const std::size_t n = replicas_.size();
  if (n == 0 || rank == active_rank_) return 0;
  return rank > active_rank_ ? rank - active_rank_
                             : n - active_rank_ + rank;
}

void RedundancyManager::disengage() {
  if (!engaged_) return;
  engaged_ = false;
  platform_.simulator().cancel(heartbeat_timer_);
  heartbeat_timer_ = {};
  for (auto& replica : replicas_) {
    platform_.simulator().cancel(replica.supervisor);
    replica.supervisor = {};
  }
}

void RedundancyManager::start_heartbeats(std::size_t rank) {
  if (rank >= replicas_.size()) return;
  platform_.simulator().cancel(heartbeat_timer_);
  Replica* primary = &replicas_[rank];
  // The heartbeat service is offered by whichever node currently leads.
  if (primary->node != nullptr) {
    primary->node->comm().offer(hb_service_);
  }
  heartbeat_timer_ = platform_.simulator().schedule_every(
      platform_.simulator().now() + config_.heartbeat_period,
      config_.heartbeat_period, [this, primary] {
        if (!engaged_ || primary->node == nullptr ||
            primary->node->ecu().failed()) {
          return;  // dead primaries do not heartbeat; standbys notice
        }
        AppInstance* inst = primary->node->instance(app_name_);
        if (inst == nullptr || !inst->running || !inst->app->active()) {
          return;
        }
        middleware::PayloadWriter writer;
        writer.u64(heartbeat_seq_++);
        const bool ship_state =
            config_.state_every_n_heartbeats > 0 &&
            heartbeat_seq_ %
                    static_cast<std::uint64_t>(
                        config_.state_every_n_heartbeats) ==
                0;
        writer.blob(ship_state ? inst->app->serialize_state()
                               : std::vector<std::uint8_t>{});
        ++heartbeats_sent_;
        primary->node->comm().publish(hb_service_, kHeartbeatEvent,
                                      writer.take(),
                                      net::kPriorityHighest);
      });
}

void RedundancyManager::supervise(std::size_t rank) {
  Replica& replica = replicas_[rank];
  if (replica.node == nullptr) return;
  // Staggered timeout: rank k waits k * missed * period before promoting,
  // so lower-ranked standbys always win the race.
  const sim::Duration check_period = config_.heartbeat_period;
  replica.supervisor = platform_.simulator().schedule_every(
      platform_.simulator().now() + check_period, check_period,
      [this, rank] {
        if (!engaged_) return;
        Replica& self = replicas_[rank];
        if (self.node == nullptr) return;
        if (self.node->ecu().failed()) {
          self.alive = false;
          return;
        }
        if (!self.alive) {
          // Crash-restart: rejoin as a standby. The heartbeat service may
          // have failed over while this node was dead, so its provider
          // binding is stale — rediscover it, and restart the silence
          // clock so the rejoiner waits a full staggered timeout before
          // ever racing for promotion.
          self.alive = true;
          self.last_heartbeat_seen = platform_.simulator().now();
          self.node->comm().rebind(hb_service_);
          return;
        }
        const AppInstance* inst = self.node->instance(app_name_);
        if (inst == nullptr || !inst->running) return;
        if (inst->app->active()) return;  // already primary
        const sim::Duration silence =
            platform_.simulator().now() - self.last_heartbeat_seen;
        const sim::Duration limit =
            static_cast<sim::Duration>(stagger_of(rank)) *
            static_cast<sim::Duration>(config_.missed_for_failover) *
            config_.heartbeat_period;
        if (silence <= limit) return;
        if (!self.node->comm().provider_of(hb_service_)) {
          // Silent *and* no known heartbeat provider: this replica was
          // deposed or is rejoining, and cannot distinguish "primary dead"
          // from "I am partitioned away" — so it must not promote
          // (consistency over availability). Keep re-running discovery;
          // heartbeats resume once the partition heals or the new primary
          // answers the Find. Silence only accumulates while a provider is
          // bound — otherwise discovery completing just before the first
          // heartbeat would read as a full outage and flap leadership back.
          self.last_heartbeat_seen = platform_.simulator().now();
          self.node->comm().rebind(hb_service_);
          return;
        }
        promote(rank);
      });
}

void RedundancyManager::promote(std::size_t rank) {
  Replica& replica = replicas_[rank];
  if (replica.node == nullptr) return;
  FailoverEvent event;
  event.detected_at = platform_.simulator().now();
  // Fence the deposed primary (and any other stale active instance): a
  // crashed replica that later restarts must come back as a standby, not
  // reclaim the services its successor now owns.
  for (std::size_t other = 0; other < replicas_.size(); ++other) {
    if (other == rank || replicas_[other].node == nullptr) continue;
    replicas_[other].node->demote(app_name_);
    // The deposed primary also stops offering the heartbeat channel, so a
    // rejoining node's rediscovery binds to the new leader's offer.
    if (replicas_[other].node->comm().offers(hb_service_)) {
      replicas_[other].node->comm().stop_offer(hb_service_);
    }
    // Every demoted replica rebuilds its heartbeat binding towards the new
    // leader (its old binding may point at itself or at the dead primary).
    replicas_[other].node->comm().rebind(hb_service_);
  }
  replica.node->promote(app_name_);
  event.promoted_at = platform_.simulator().now();
  event.new_primary = replica.node->ecu().node_id();
  event.outage = event.promoted_at - replica.last_heartbeat_seen;
  failovers_.push_back(event);
  // The new primary starts heartbeating so deeper standbys stand down; its
  // own supervisor is no longer needed.
  platform_.simulator().cancel(replica.supervisor);
  replica.supervisor = {};
  active_rank_ = rank;
  replica.last_heartbeat_seen = platform_.simulator().now();
  // Re-anchor the staggered timeouts of the remaining standbys to the new
  // primary (the deposed one rejoins the back of the line once it recovers).
  for (std::size_t other = 0; other < replicas_.size(); ++other) {
    if (other == rank || replicas_[other].node == nullptr) continue;
    platform_.simulator().cancel(replicas_[other].supervisor);
    replicas_[other].last_heartbeat_seen = platform_.simulator().now();
    supervise(other);
  }
  start_heartbeats(rank);
}

}  // namespace dynaplat::platform
