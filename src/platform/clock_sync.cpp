#include "platform/clock_sync.hpp"

#include <cstdlib>

#include "middleware/payload.hpp"

namespace dynaplat::platform {

ClockSyncService::ClockSyncService(middleware::ServiceRuntime& runtime,
                                   os::LocalClock& clock, bool master,
                                   ClockSyncConfig config)
    : runtime_(runtime), clock_(clock), master_(master), config_(config) {
  auto& simulator = runtime_.ecu().simulator();
  if (master_) {
    runtime_.offer(kClockSyncServiceId);
    beacon_ = simulator.schedule_every(
        simulator.now() + config_.sync_period, config_.sync_period, [this] {
          middleware::PayloadWriter writer;
          writer.i64(clock_.now());
          runtime_.publish(kClockSyncServiceId, kSyncEvent, writer.take(),
                           net::kPriorityHighest);
        });
  } else {
    runtime_.subscribe(
        kClockSyncServiceId, kSyncEvent,
        [this](std::vector<std::uint8_t> data, net::NodeId) {
          try {
            middleware::PayloadReader reader(data);
            const sim::Time master_time = reader.i64();
            const sim::Time local_time = clock_.now();
            // Sample the *pre-correction* error: the worst drift the node
            // accumulated since the previous sync — the figure distributed
            // TT tables and central switchovers actually suffer from.
            residual_.add(
                static_cast<double>(std::llabs(clock_.true_error())));
            // The announcement aged by ~path delay on its way here.
            const sim::Duration correction =
                (master_time + config_.path_delay_estimate) - local_time;
            clock_.adjust(correction);
            ++corrections_;
          } catch (const std::out_of_range&) {
          }
        });
  }
}

ClockSyncService::~ClockSyncService() {
  if (beacon_.valid()) runtime_.ecu().simulator().cancel(beacon_);
}

}  // namespace dynaplat::platform
