// The dynamic platform (paper Fig. 2): the distributed layer hosting
// deterministic and non-deterministic applications side by side across the
// vehicle's ECUs.
//
// The DynamicPlatform owns the *vehicle-wide* concerns:
//   - the system model + deployment and their verification (Sec. 2.2/2.3),
//   - the interface-name -> ServiceId registry and criticality -> network
//     priority mapping (Sec. 3.1 "Hardware Access & Communication"),
//   - the package registry of installable app factories (+ signed packages,
//     Sec. 4.1),
//   - the backend ScheduleServer used by nodes to resynchronize TT tables
//     (Sec. 3.1 "CPU", [21]),
//   - the model-derived access-control matrix (Sec. 4.2).
// Per-ECU mechanics live in PlatformNode; cross-node protocols (staged
// updates, redundancy) in UpdateManager / RedundancyManager.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/client.hpp"
#include "dse/admission.hpp"
#include "model/system_model.hpp"
#include "model/verifier.hpp"
#include "platform/node.hpp"
#include "security/auth.hpp"

namespace dynaplat::platform {

struct PlatformConfig {
  /// Refuse start-up when the verification engine reports errors.
  bool enforce_verification = true;
  /// Authentication mode applied to every node's middleware.
  security::AuthMode auth_mode = security::AuthMode::kNone;
  /// Enforce the model-derived access matrix on every node.
  bool access_control = false;
  std::uint64_t security_seed = 42;
};

class DynamicPlatform {
 public:
  DynamicPlatform(sim::Simulator& simulator, model::SystemModel system_model,
                  model::DeploymentDef deployment,
                  PlatformConfig config = {});

  /// Registers the per-ECU platform slice. The node name must match an ECU
  /// in the model.
  PlatformNode& add_node(os::Ecu& ecu, NodeConfig config = {});
  PlatformNode* node(const std::string& ecu_name);
  PlatformNode* node_hosting(const std::string& app_label);
  /// Names of every registered node (vehicle-wide iteration order is the
  /// sorted ECU name, so traversals are deterministic).
  std::vector<std::string> node_names() const;

  /// Registers an installable application version ("the app store").
  void register_app(const std::string& app_name, AppFactory factory);
  AppFactory factory_for(const std::string& app_name) const;

  /// Verifies the model + deployment; with enforce_verification, install_all
  /// refuses on errors.
  std::vector<model::Violation> verify() const;

  /// Installs and starts every deployed app on its node(s) per the
  /// deployment (replicas land on their first N candidates). Returns false
  /// if verification or any installation fails.
  bool install_all(std::string* reason = nullptr);

  // --- Registries ------------------------------------------------------------
  middleware::ServiceId service_id(const std::string& interface_name);
  net::Priority interface_priority(const std::string& interface_name) const;
  const model::SystemModel& system_model() const { return model_; }
  const model::DeploymentDef& deployment() const { return deployment_; }
  const PlatformConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  /// Backend schedule server (runs "in the cloud": its compute cost is not
  /// charged to any ECU). Kept for tests and tooling that talk to the
  /// engine directly; vehicle-side synthesis goes through backend_client().
  dse::ScheduleServer& backend() { return backend_; }

  /// Resilient path to the backend: every vehicle-side synthesis call
  /// (node resync, recovery planning) goes through this client. Defaults
  /// to loopback on the in-process ScheduleServer above — zero behavior
  /// change for single-vehicle scenarios.
  ::dynaplat::backend::BackendClient& backend_client() {
    return *backend_client_;
  }

  /// Points the vehicle at a fleet backend service instead of the
  /// loopback engine. Replaces the client (the old one's breaker state,
  /// cache and listeners are discarded), so call this before wiring
  /// degradation / diagnostics listeners onto backend_client().
  backend::BackendClient& connect_backend(
      ::dynaplat::backend::FleetScheduleService& service,
      ::dynaplat::backend::ClientConfig client_config = {});

  security::KeyServer& key_server() { return key_server_; }
  security::AccessMatrix& access_matrix() { return access_matrix_; }

  /// Builds the access matrix from the model: a node may address a service
  /// iff an app deployed on it consumes (or provides) the interface
  /// (Sec. 4.2 "automatically extracted from the modeling approach").
  void derive_access_matrix();

 private:
  sim::Simulator& sim_;
  model::SystemModel model_;
  model::DeploymentDef deployment_;
  PlatformConfig config_;
  model::Verifier verifier_;
  dse::ScheduleServer backend_;
  std::unique_ptr<::dynaplat::backend::BackendClient> backend_client_;
  security::KeyServer key_server_;
  security::AccessMatrix access_matrix_;

  std::map<std::string, std::unique_ptr<PlatformNode>> nodes_;
  std::map<std::string, std::unique_ptr<security::AuthenticationService>>
      auth_;
  std::map<std::string, AppFactory> factories_;
  std::map<std::string, middleware::ServiceId> service_ids_;
  middleware::ServiceId next_service_id_ = 1;
};

}  // namespace dynaplat::platform
