#include "model/system_model.hpp"

#include <algorithm>

namespace dynaplat::model {

const char* to_string(Asil asil) {
  switch (asil) {
    case Asil::kQM: return "QM";
    case Asil::kA: return "A";
    case Asil::kB: return "B";
    case Asil::kC: return "C";
    case Asil::kD: return "D";
  }
  return "?";
}

bool parse_asil(const std::string& text, Asil& out) {
  if (text == "QM" || text == "qm") out = Asil::kQM;
  else if (text == "A" || text == "a") out = Asil::kA;
  else if (text == "B" || text == "b") out = Asil::kB;
  else if (text == "C" || text == "c") out = Asil::kC;
  else if (text == "D" || text == "d") out = Asil::kD;
  else return false;
  return true;
}

const char* to_string(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::kEvent: return "event";
    case Paradigm::kMessage: return "message";
    case Paradigm::kStream: return "stream";
  }
  return "?";
}

bool parse_paradigm(const std::string& text, Paradigm& out) {
  if (text == "event") out = Paradigm::kEvent;
  else if (text == "message") out = Paradigm::kMessage;
  else if (text == "stream") out = Paradigm::kStream;
  else return false;
  return true;
}

const char* to_string(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kCan: return "can";
    case NetworkKind::kEthernet: return "ethernet";
    case NetworkKind::kTsn: return "tsn";
    case NetworkKind::kFlexRay: return "flexray";
  }
  return "?";
}

void SystemModel::add_network(NetworkDef network) {
  networks_.push_back(std::move(network));
}
void SystemModel::add_ecu(EcuDef ecu) { ecus_.push_back(std::move(ecu)); }
void SystemModel::add_interface(InterfaceDef interface) {
  interfaces_.push_back(std::move(interface));
}
void SystemModel::add_app(AppDef app) { apps_.push_back(std::move(app)); }

namespace {
template <typename T>
const T* find_by_name(const std::vector<T>& items, const std::string& name) {
  for (const auto& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}
}  // namespace

const NetworkDef* SystemModel::network(const std::string& name) const {
  return find_by_name(networks_, name);
}
const EcuDef* SystemModel::ecu(const std::string& name) const {
  return find_by_name(ecus_, name);
}
const InterfaceDef* SystemModel::interface(const std::string& name) const {
  return find_by_name(interfaces_, name);
}
const AppDef* SystemModel::app(const std::string& name) const {
  return find_by_name(apps_, name);
}

const AppDef* SystemModel::provider_of(
    const std::string& interface_name) const {
  for (const auto& app : apps_) {
    if (std::find(app.provides.begin(), app.provides.end(), interface_name) !=
        app.provides.end()) {
      return &app;
    }
  }
  return nullptr;
}

std::vector<const AppDef*> SystemModel::consumers_of(
    const std::string& interface_name) const {
  std::vector<const AppDef*> out;
  for (const auto& app : apps_) {
    if (std::find(app.consumes.begin(), app.consumes.end(), interface_name) !=
        app.consumes.end()) {
      out.push_back(&app);
    }
  }
  return out;
}

std::vector<const AppDef*> SystemModel::dependencies_of(
    const AppDef& app) const {
  std::vector<const AppDef*> out;
  for (const auto& interface_name : app.consumes) {
    const AppDef* provider = provider_of(interface_name);
    if (provider != nullptr && provider != &app &&
        std::find(out.begin(), out.end(), provider) == out.end()) {
      out.push_back(provider);
    }
  }
  return out;
}

}  // namespace dynaplat::model
