// Text parser for the dynaplat system-description DSLs.
//
// One compact line-oriented format covers the paper's three DSL domains
// (Sec. 2.2): hardware architecture, interfaces, applications, deployment.
// Example:
//
//   network Backbone kind=tsn bitrate=1G
//   ecu Central mips=10000 memory=512M mmu=yes crypto=yes asil=D
//       os=rtos network=Backbone           (single line in real input)
//   interface BrakeStatus paradigm=event payload=8 period=10ms
//       max_latency=5ms                    (single line in real input)
//   app BrakeController class=deterministic asil=D memory=4M replicas=2
//     task control period=10ms wcet=20000 priority=1
//     provides BrakeStatus
//     consumes WheelSpeed
//   deploy BrakeController -> Central | Backup
//
// Durations accept ns/us/ms/s suffixes; sizes accept K/M/G; bitrates accept
// K/M/G (bits per second). Indented `task`/`provides`/`consumes` lines
// belong to the preceding `app`. `deploy` lines with `|` list variant
// candidates (Sec. 2.3). `#` starts a comment.
#pragma once

#include <stdexcept>
#include <string>

#include "model/system_model.hpp"

namespace dynaplat::model {

/// Error with 1-based line number context.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct ParsedSystem {
  SystemModel model;
  DeploymentDef deployment;
};

/// Parses the DSL text; throws ParseError on malformed input.
ParsedSystem parse_system(const std::string& text);

/// Parses a duration literal like "10ms", "500us", "1s", "250" (ns).
sim::Duration parse_duration(const std::string& text);

/// Parses a size literal like "4M", "512K", "1G", "1024" (bytes).
std::uint64_t parse_size(const std::string& text);

/// Serializes a model + deployment back to DSL text (round-trippable).
std::string to_dsl(const SystemModel& model, const DeploymentDef& deployment);

}  // namespace dynaplat::model
