// Verification engine (paper Sec. 2.2: "an attached verification engine
// should ensure that the interconnections and deployment mappings fulfill
// the defined requirements"; Sec. 2.3: "every possible mapping [must be]
// functional, safe, and secure").
//
// Rules implemented (paper rationale in parentheses):
//   structure.*    referenced names exist, one owner per interface,
//                  every consumed interface has a provider (Sec. 2.1/2.2)
//   memory.*       per-ECU memory capacity; MMU present when apps share an
//                  ECU (Sec. 3.1 "Memory")
//   cpu.*          utilization feasibility; deterministic apps only on RTOS
//                  ECUs (Sec. 1.1, 3.1 "CPU")
//   asil.*         app ASIL within ECU certification; providers carry at
//                  least their consumers' ASIL (Sec. 3 "correct safety
//                  ratings for all dependencies")
//   redundancy.*   replica count satisfiable on distinct ECUs (Sec. 3.3)
//   security.*     crypto-demanding apps on capable ECUs or flagged for
//                  update-master delegation (Sec. 4.1)
//   network.*      shared medium between communicating apps, latency
//                  requirement vs. medium floor, stream bandwidth budget
//                  (Sec. 2.2 interface attributes)
//
// Variant-bearing deployments are expanded (capped) and each concrete
// assignment verified, implementing Sec. 2.3 literally.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "model/system_model.hpp"

namespace dynaplat::model {

enum class Severity : std::uint8_t { kError, kWarning };

struct Violation {
  Severity severity = Severity::kError;
  std::string rule;     ///< e.g. "asil.dependency"
  std::string subject;  ///< offending app/ecu/interface
  std::string message;
};

/// One concrete placement: app name -> ECU names hosting it (one entry per
/// replica; size == AppDef::replicas).
struct Assignment {
  std::map<std::string, std::vector<std::string>> placement;

  /// Apps hosted on `ecu` (replicas count once per hosting).
  std::vector<std::string> apps_on(const std::string& ecu) const;
};

/// Thread-safety contract: a configured Verifier is immutable — verify()
/// and verify_assignment() are const, keep no per-call state on the object
/// and may be invoked concurrently from any number of threads (the DSE
/// explorer's parallel fitness workers share one instance). The one
/// configuration mutator, set_schedulability_hook(), must happen-before the
/// first concurrent use, and the installed hook itself must be reentrant
/// (dse::make_verifier_hook()'s is: it captures nothing and only touches
/// locals).
class Verifier {
 public:
  /// Optional exact schedulability test (provided by dse::); receives the
  /// apps placed on one ECU. Returning false adds a cpu.schedulability
  /// error with `why`.
  using SchedulabilityHook = std::function<bool(
      const EcuDef& ecu, const std::vector<const AppDef*>& apps,
      std::string* why)>;

  void set_schedulability_hook(SchedulabilityHook hook) {
    sched_hook_ = std::move(hook);
  }

  /// Expands deployment variants (up to `max_variants` combinations) and
  /// verifies every concrete assignment. Violations are deduplicated by
  /// (rule, subject).
  std::vector<Violation> verify(const SystemModel& model,
                                const DeploymentDef& deployment,
                                std::size_t max_variants = 4096) const;

  /// Verifies one concrete assignment.
  std::vector<Violation> verify_assignment(const SystemModel& model,
                                           const Assignment& assignment) const;

  /// Expands a deployment into concrete assignments. Apps with replicas == n
  /// occupy their first n candidates in every variant; single-replica apps
  /// range over all their candidates. Truncated at `max_variants`.
  static std::vector<Assignment> expand(const SystemModel& model,
                                        const DeploymentDef& deployment,
                                        std::size_t max_variants = 4096);

  static bool has_errors(const std::vector<Violation>& violations);

 private:
  void check_structure(const SystemModel& model, const Assignment& assignment,
                       std::vector<Violation>& out) const;
  void check_capacity(const SystemModel& model, const Assignment& assignment,
                      std::vector<Violation>& out) const;
  void check_safety(const SystemModel& model, const Assignment& assignment,
                    std::vector<Violation>& out) const;
  void check_security(const SystemModel& model, const Assignment& assignment,
                      std::vector<Violation>& out) const;
  void check_network(const SystemModel& model, const Assignment& assignment,
                     std::vector<Violation>& out) const;

  SchedulabilityHook sched_hook_;
};

/// Minimum achievable one-way latency of a payload on a network kind
/// (transmission time only) — the floor an interface requirement is checked
/// against.
sim::Duration network_latency_floor(const NetworkDef& network,
                                    std::size_t payload_bytes);

}  // namespace dynaplat::model
