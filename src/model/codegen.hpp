// Artifact generation from the system model (paper Sec. 2.2):
// "Integration is key for a modeling approach. It can, e.g., be used to
// generate code stubs, configurations for communication stacks and a
// middleware on devices, or input for simulation environments."
//
// Three generators, all pure functions of the model:
//   app skeletons   — a C++ Application subclass per app with one
//                     on_task branch per modeled task and typed publish/
//                     subscribe wiring for its provides/consumes,
//   middleware config — the service-id table, per-interface priority and
//                     payload budget each node's communication stack loads,
//   simulation input — the canonical DSL (to_dsl) is already round-trip
//                     parseable, so it doubles as the simulation input.
#pragma once

#include <string>

#include "model/system_model.hpp"

namespace dynaplat::model {

/// C++ skeleton for one application: compiles against platform/application.hpp
/// once the TODO bodies are filled in.
std::string generate_app_skeleton(const SystemModel& model,
                                  const AppDef& app);

/// Middleware configuration table (one text block for the whole vehicle):
/// interface -> service id, paradigm, version, priority hint, payload.
/// Service ids are assigned in model order, matching
/// platform::DynamicPlatform's registry.
std::string generate_middleware_config(const SystemModel& model);

/// All artifacts bundled: skeletons for every app + the middleware config.
std::string generate_all(const SystemModel& model);

}  // namespace dynaplat::model
