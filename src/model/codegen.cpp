#include "model/codegen.hpp"

#include <cctype>
#include <sstream>

namespace dynaplat::model {
namespace {

/// "BrakeController" -> "brake_controller"; leaves other identifiers sane.
std::string to_snake(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (!out.empty() && out.back() != '_') out.push_back('_');
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

std::string generate_app_skeleton(const SystemModel& model,
                                  const AppDef& app) {
  std::ostringstream os;
  os << "// Generated from the system model -- app '" << app.name << "'\n";
  os << "// class: "
     << (app.app_class == AppClass::kDeterministic ? "deterministic"
                                                   : "non-deterministic")
     << ", ASIL " << to_string(app.asil) << ", version " << app.version
     << "\n";
  os << "#include \"platform/application.hpp\"\n";
  os << "#include \"middleware/payload.hpp\"\n\n";
  os << "class " << app.name << "App final : public dynaplat::platform::Application {\n";
  os << " public:\n";
  os << "  void on_start(const dynaplat::platform::AppContext& context) override {\n";
  os << "    Application::on_start(context);\n";
  for (const auto& consumed : app.consumes) {
    const InterfaceDef* interface = model.interface(consumed);
    const char* paradigm =
        interface != nullptr ? to_string(interface->paradigm) : "event";
    os << "    // consumes '" << consumed << "' (" << paradigm;
    auto pinned = app.min_versions.find(consumed);
    if (pinned != app.min_versions.end()) {
      os << ", requires version >= " << pinned->second;
    }
    os << ")\n";
    os << "    context_.comm->subscribe(\n"
       << "        context_.service_id(\"" << consumed << "\"), 1,\n"
       << "        [this](std::vector<std::uint8_t> data, dynaplat::net::NodeId) {\n"
       << "          // TODO: deserialize and handle '" << consumed << "'\n"
       << "          (void)data;\n"
       << "        });\n";
  }
  os << "  }\n\n";
  os << "  void on_task(const std::string& task) override {\n";
  os << "    if (!active()) return;\n";
  bool first = true;
  for (const auto& task : app.tasks) {
    os << "    " << (first ? "" : "else ") << "if (task == \"" << task.name
       << "\") {  // period " << task.period << " ns, wcet ~"
       << task.instructions << " instr\n";
    os << "      " << to_snake(task.name) << "();\n";
    os << "    }\n";
    first = false;
  }
  os << "  }\n\n";
  os << " private:\n";
  for (const auto& task : app.tasks) {
    os << "  void " << to_snake(task.name) << "() {\n";
    for (const auto& provided : app.provides) {
      os << "    // provides '" << provided << "': publish from here.\n";
      os << "    // dynaplat::middleware::PayloadWriter writer;\n";
      os << "    // context_.comm->publish(context_.service_id(\"" << provided
         << "\"), 1, writer.take(),\n"
         << "    //                        context_.priority_of(\"" << provided
         << "\"));\n";
    }
    os << "    // TODO: implement\n  }\n";
  }
  os << "};\n";
  return os.str();
}

std::string generate_middleware_config(const SystemModel& model) {
  std::ostringstream os;
  os << "# middleware configuration (generated; service ids in model order\n";
  os << "# matching platform::DynamicPlatform::service_id assignment)\n";
  os << "# interface\tservice_id\tparadigm\tversion\tpayload\tprovider\n";
  std::uint16_t next_id = 1;
  for (const auto& interface : model.interfaces()) {
    const AppDef* provider = model.provider_of(interface.name);
    os << interface.name << "\t" << next_id++ << "\t"
       << to_string(interface.paradigm) << "\t" << interface.version << "\t"
       << interface.payload_bytes << "\t"
       << (provider != nullptr ? provider->name : "-") << "\n";
  }
  return os.str();
}

std::string generate_all(const SystemModel& model) {
  std::ostringstream os;
  os << generate_middleware_config(model) << "\n";
  for (const auto& app : model.apps()) {
    os << generate_app_skeleton(model, app) << "\n";
  }
  return os.str();
}

}  // namespace dynaplat::model
