#include "model/parser.hpp"

#include <cctype>
#include <map>
#include <sstream>

namespace dynaplat::model {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

/// Splits "key=value" tokens into a map; positional tokens go to `positional`.
std::map<std::string, std::string> split_attrs(
    const std::vector<std::string>& tokens, std::size_t first,
    std::size_t line_no) {
  std::map<std::string, std::string> attrs;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError(line_no, "expected key=value, got '" + tokens[i] + "'");
    }
    attrs[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return attrs;
}

bool parse_bool(const std::string& text, std::size_t line_no) {
  if (text == "yes" || text == "true" || text == "1") return true;
  if (text == "no" || text == "false" || text == "0") return false;
  throw ParseError(line_no, "expected yes/no, got '" + text + "'");
}

std::uint64_t parse_scaled(const std::string& text, std::uint64_t k) {
  if (text.empty()) throw std::invalid_argument("empty numeric literal");
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  std::uint64_t scale = 1;
  if (pos < text.size()) {
    switch (text[pos]) {
      case 'K': case 'k': scale = k; break;
      case 'M': case 'm': scale = k * k; break;
      case 'G': case 'g': scale = k * k * k; break;
      default:
        throw std::invalid_argument("bad suffix in '" + text + "'");
    }
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(scale));
}

}  // namespace

sim::Duration parse_duration(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty duration");
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  const std::string suffix = text.substr(pos);
  double scale = 1;  // default nanoseconds
  if (suffix == "ns" || suffix.empty()) scale = 1;
  else if (suffix == "us") scale = 1e3;
  else if (suffix == "ms") scale = 1e6;
  else if (suffix == "s") scale = 1e9;
  else throw std::invalid_argument("bad duration suffix '" + suffix + "'");
  return static_cast<sim::Duration>(value * scale);
}

std::uint64_t parse_size(const std::string& text) {
  return parse_scaled(text, 1024);
}

ParsedSystem parse_system(const std::string& text) {
  ParsedSystem out;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  AppDef* current_app = nullptr;

  auto get = [](const std::map<std::string, std::string>& attrs,
                const std::string& key) -> const std::string* {
    auto it = attrs.find(key);
    return it == attrs.end() ? nullptr : &it->second;
  };

  while (std::getline(stream, line)) {
    ++line_no;
    const bool indented =
        !line.empty() && (line[0] == ' ' || line[0] == '\t');
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    try {
      if (keyword == "network") {
        current_app = nullptr;
        if (tokens.size() < 2) throw ParseError(line_no, "network needs a name");
        NetworkDef def;
        def.name = tokens[1];
        const auto attrs = split_attrs(tokens, 2, line_no);
        if (const auto* v = get(attrs, "kind")) {
          if (*v == "can") def.kind = NetworkKind::kCan;
          else if (*v == "ethernet") def.kind = NetworkKind::kEthernet;
          else if (*v == "tsn") def.kind = NetworkKind::kTsn;
          else if (*v == "flexray") def.kind = NetworkKind::kFlexRay;
          else throw ParseError(line_no, "unknown network kind '" + *v + "'");
        }
        if (const auto* v = get(attrs, "bitrate")) {
          def.bitrate_bps = parse_scaled(*v, 1000);
        }
        out.model.add_network(std::move(def));

      } else if (keyword == "ecu") {
        current_app = nullptr;
        if (tokens.size() < 2) throw ParseError(line_no, "ecu needs a name");
        EcuDef def;
        def.name = tokens[1];
        const auto attrs = split_attrs(tokens, 2, line_no);
        if (const auto* v = get(attrs, "mips")) def.mips = parse_scaled(*v, 1000);
        if (const auto* v = get(attrs, "cores")) def.cores = std::stoi(*v);
        if (const auto* v = get(attrs, "memory")) def.memory_bytes = parse_size(*v);
        if (const auto* v = get(attrs, "mmu")) def.has_mmu = parse_bool(*v, line_no);
        if (const auto* v = get(attrs, "crypto")) {
          def.crypto_accelerator = parse_bool(*v, line_no);
        }
        if (const auto* v = get(attrs, "asil")) {
          if (!parse_asil(*v, def.max_asil)) {
            throw ParseError(line_no, "bad asil '" + *v + "'");
          }
        }
        if (const auto* v = get(attrs, "os")) {
          if (*v == "rtos") def.rtos = true;
          else if (*v == "posix" || *v == "gpos") def.rtos = false;
          else throw ParseError(line_no, "unknown os '" + *v + "'");
        }
        if (const auto* v = get(attrs, "network")) def.network = *v;
        out.model.add_ecu(std::move(def));

      } else if (keyword == "interface") {
        current_app = nullptr;
        if (tokens.size() < 2) {
          throw ParseError(line_no, "interface needs a name");
        }
        InterfaceDef def;
        def.name = tokens[1];
        const auto attrs = split_attrs(tokens, 2, line_no);
        if (const auto* v = get(attrs, "paradigm")) {
          if (!parse_paradigm(*v, def.paradigm)) {
            throw ParseError(line_no, "bad paradigm '" + *v + "'");
          }
        }
        if (const auto* v = get(attrs, "version")) {
          def.version = static_cast<std::uint32_t>(std::stoul(*v));
        }
        if (const auto* v = get(attrs, "payload")) {
          def.payload_bytes = parse_size(*v);
        }
        if (const auto* v = get(attrs, "period")) {
          def.period = parse_duration(*v);
        }
        if (const auto* v = get(attrs, "max_latency")) {
          def.max_latency = parse_duration(*v);
        }
        if (const auto* v = get(attrs, "max_jitter")) {
          def.max_jitter = parse_duration(*v);
        }
        if (const auto* v = get(attrs, "bandwidth")) {
          def.bandwidth_bps = parse_scaled(*v, 1000);
        }
        out.model.add_interface(std::move(def));

      } else if (keyword == "app") {
        if (tokens.size() < 2) throw ParseError(line_no, "app needs a name");
        AppDef def;
        def.name = tokens[1];
        const auto attrs = split_attrs(tokens, 2, line_no);
        if (const auto* v = get(attrs, "class")) {
          if (*v == "deterministic" || *v == "da") {
            def.app_class = AppClass::kDeterministic;
          } else if (*v == "nondeterministic" || *v == "nda") {
            def.app_class = AppClass::kNonDeterministic;
          } else {
            throw ParseError(line_no, "unknown app class '" + *v + "'");
          }
        }
        if (const auto* v = get(attrs, "asil")) {
          if (!parse_asil(*v, def.asil)) {
            throw ParseError(line_no, "bad asil '" + *v + "'");
          }
        }
        if (const auto* v = get(attrs, "version")) {
          def.version = static_cast<std::uint32_t>(std::stoul(*v));
        }
        if (const auto* v = get(attrs, "memory")) {
          def.memory_bytes = parse_size(*v);
        }
        if (const auto* v = get(attrs, "crypto")) {
          def.needs_crypto = parse_bool(*v, line_no);
        }
        if (const auto* v = get(attrs, "replicas")) {
          def.replicas = std::stoi(*v);
        }
        out.model.add_app(std::move(def));
        // Safe: add_app stores by value in a vector we only append to
        // before the next lookup; re-find to keep a stable pointer.
        current_app = const_cast<AppDef*>(out.model.app(tokens[1]));

      } else if (keyword == "task") {
        if (!indented || current_app == nullptr) {
          throw ParseError(line_no, "task outside app block");
        }
        if (tokens.size() < 2) throw ParseError(line_no, "task needs a name");
        TaskDef def;
        def.name = tokens[1];
        const auto attrs = split_attrs(tokens, 2, line_no);
        if (const auto* v = get(attrs, "period")) {
          def.period = parse_duration(*v);
        }
        if (const auto* v = get(attrs, "deadline")) {
          def.deadline = parse_duration(*v);
        }
        if (const auto* v = get(attrs, "wcet")) {
          def.instructions = parse_scaled(*v, 1000);
        }
        if (const auto* v = get(attrs, "jitter")) {
          def.execution_jitter = std::stod(*v);
        }
        if (const auto* v = get(attrs, "priority")) {
          def.priority = std::stoi(*v);
        }
        current_app->tasks.push_back(std::move(def));

      } else if (keyword == "provides") {
        if (!indented || current_app == nullptr) {
          throw ParseError(line_no, "provides outside app block");
        }
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          current_app->provides.push_back(tokens[i]);
        }

      } else if (keyword == "consumes") {
        if (!indented || current_app == nullptr) {
          throw ParseError(line_no, "consumes outside app block");
        }
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          // "Name@N" pins a minimum interface version.
          const auto at = tokens[i].find('@');
          if (at == std::string::npos) {
            current_app->consumes.push_back(tokens[i]);
          } else {
            const std::string name = tokens[i].substr(0, at);
            current_app->consumes.push_back(name);
            current_app->min_versions[name] = static_cast<std::uint32_t>(
                std::stoul(tokens[i].substr(at + 1)));
          }
        }

      } else if (keyword == "deploy") {
        current_app = nullptr;
        // deploy <app> -> <ecu> [| <ecu> ...]
        if (tokens.size() < 4 || tokens[2] != "->") {
          throw ParseError(line_no, "expected: deploy <app> -> <ecu> [| ...]");
        }
        DeploymentDef::Binding binding;
        binding.app = tokens[1];
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          if (tokens[i] == "|") continue;
          binding.candidates.push_back(tokens[i]);
        }
        if (binding.candidates.empty()) {
          throw ParseError(line_no, "deploy needs at least one candidate");
        }
        out.deployment.bindings.push_back(std::move(binding));

      } else {
        throw ParseError(line_no, "unknown keyword '" + keyword + "'");
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception& e) {
      throw ParseError(line_no, e.what());
    }
  }
  return out;
}

std::string to_dsl(const SystemModel& model,
                   const DeploymentDef& deployment) {
  std::ostringstream os;
  for (const auto& n : model.networks()) {
    os << "network " << n.name << " kind=" << to_string(n.kind)
       << " bitrate=" << n.bitrate_bps << "\n";
  }
  for (const auto& e : model.ecus()) {
    os << "ecu " << e.name << " mips=" << e.mips << " cores=" << e.cores
       << " memory=" << e.memory_bytes << " mmu=" << (e.has_mmu ? "yes" : "no")
       << " crypto=" << (e.crypto_accelerator ? "yes" : "no")
       << " asil=" << to_string(e.max_asil)
       << " os=" << (e.rtos ? "rtos" : "posix");
    if (!e.network.empty()) os << " network=" << e.network;
    os << "\n";
  }
  for (const auto& i : model.interfaces()) {
    os << "interface " << i.name << " paradigm=" << to_string(i.paradigm)
       << " version=" << i.version << " payload=" << i.payload_bytes;
    if (i.period > 0) os << " period=" << i.period << "ns";
    if (i.max_latency > 0) os << " max_latency=" << i.max_latency << "ns";
    if (i.max_jitter > 0) os << " max_jitter=" << i.max_jitter << "ns";
    if (i.bandwidth_bps > 0) os << " bandwidth=" << i.bandwidth_bps;
    os << "\n";
  }
  for (const auto& a : model.apps()) {
    os << "app " << a.name << " class="
       << (a.app_class == AppClass::kDeterministic ? "deterministic"
                                                   : "nondeterministic")
       << " asil=" << to_string(a.asil) << " version=" << a.version
       << " memory=" << a.memory_bytes
       << " crypto=" << (a.needs_crypto ? "yes" : "no")
       << " replicas=" << a.replicas << "\n";
    for (const auto& t : a.tasks) {
      os << "  task " << t.name;
      if (t.period > 0) os << " period=" << t.period << "ns";
      if (t.deadline > 0) os << " deadline=" << t.deadline << "ns";
      os << " wcet=" << t.instructions << " priority=" << t.priority;
      if (t.execution_jitter > 0) os << " jitter=" << t.execution_jitter;
      os << "\n";
    }
    if (!a.provides.empty()) {
      os << "  provides";
      for (const auto& p : a.provides) os << " " << p;
      os << "\n";
    }
    if (!a.consumes.empty()) {
      os << "  consumes";
      for (const auto& c : a.consumes) {
        os << " " << c;
        auto pinned = a.min_versions.find(c);
        if (pinned != a.min_versions.end()) os << "@" << pinned->second;
      }
      os << "\n";
    }
  }
  for (const auto& b : deployment.bindings) {
    os << "deploy " << b.app << " ->";
    for (std::size_t i = 0; i < b.candidates.size(); ++i) {
      if (i > 0) os << " |";
      os << " " << b.candidates[i];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dynaplat::model
