// Aggregated system model with name-based lookups and structural checks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace dynaplat::model {

class SystemModel {
 public:
  void add_network(NetworkDef network);
  void add_ecu(EcuDef ecu);
  void add_interface(InterfaceDef interface);
  void add_app(AppDef app);

  const NetworkDef* network(const std::string& name) const;
  const EcuDef* ecu(const std::string& name) const;
  const InterfaceDef* interface(const std::string& name) const;
  const AppDef* app(const std::string& name) const;

  const std::vector<NetworkDef>& networks() const { return networks_; }
  const std::vector<EcuDef>& ecus() const { return ecus_; }
  const std::vector<InterfaceDef>& interfaces() const { return interfaces_; }
  const std::vector<AppDef>& apps() const { return apps_; }

  /// The app owning (providing) an interface, if any. The owner controls
  /// the interface description and version (Sec. 2.1).
  const AppDef* provider_of(const std::string& interface_name) const;

  /// All apps that require an interface.
  std::vector<const AppDef*> consumers_of(
      const std::string& interface_name) const;

  /// Apps that `app` depends on (providers of its required interfaces).
  std::vector<const AppDef*> dependencies_of(const AppDef& app) const;

 private:
  std::vector<NetworkDef> networks_;
  std::vector<EcuDef> ecus_;
  std::vector<InterfaceDef> interfaces_;
  std::vector<AppDef> apps_;
};

}  // namespace dynaplat::model
