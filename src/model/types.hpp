// Model vocabulary: the three DSL domains of Sec. 2.2 (hardware
// architecture, application interfaces, deployment) as typed definitions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dynaplat::model {

/// ISO 26262 Automotive Safety Integrity Level. Ordered: QM < A < ... < D.
enum class Asil : std::uint8_t { kQM = 0, kA, kB, kC, kD };

const char* to_string(Asil asil);
bool parse_asil(const std::string& text, Asil& out);

/// Communication paradigms of Sec. 2.1 / Fig. 3.
enum class Paradigm : std::uint8_t { kEvent, kMessage, kStream };

const char* to_string(Paradigm paradigm);
bool parse_paradigm(const std::string& text, Paradigm& out);

/// Application classes of Sec. 3.1.
enum class AppClass : std::uint8_t { kDeterministic, kNonDeterministic };

/// Network technology of a communication system in the hardware model.
enum class NetworkKind : std::uint8_t { kCan, kEthernet, kTsn, kFlexRay };

const char* to_string(NetworkKind kind);

/// --- Hardware architecture DSL ---------------------------------------------

struct NetworkDef {
  std::string name;
  NetworkKind kind = NetworkKind::kEthernet;
  std::uint64_t bitrate_bps = 100'000'000;
};

struct EcuDef {
  std::string name;
  std::uint64_t mips = 200;
  int cores = 1;
  std::size_t memory_bytes = 64ull << 20;
  bool has_mmu = true;
  bool crypto_accelerator = false;
  /// Highest ASIL the ECU hardware + OS is certified to host.
  Asil max_asil = Asil::kQM;
  /// Whether an RTOS runs here (deterministic apps require one, Sec. 1.1).
  bool rtos = true;
  std::string network;  ///< name of the attached NetworkDef
};

/// --- Interface DSL -----------------------------------------------------------

/// Every interface has exactly one owner who controls description and
/// version (Sec. 2.1). Requirements are "complex objects, defined by complex
/// data types" — modeled here as the attribute set the verification engine
/// checks.
struct InterfaceDef {
  std::string name;
  Paradigm paradigm = Paradigm::kEvent;
  std::uint32_t version = 1;
  std::size_t payload_bytes = 8;
  sim::Duration period = 0;          ///< publication period (event/stream)
  sim::Duration max_latency = 0;     ///< end-to-end requirement; 0 = none
  sim::Duration max_jitter = 0;      ///< delivery jitter requirement
  std::uint64_t bandwidth_bps = 0;   ///< stream sustained bandwidth
};

/// --- Application DSL -----------------------------------------------------------

struct TaskDef {
  std::string name;
  sim::Duration period = 0;
  sim::Duration deadline = 0;  ///< 0 => implicit deadline (== period)
  std::uint64_t instructions = 1000;
  double execution_jitter = 0.0;
  int priority = 16;
};

struct AppDef {
  std::string name;
  AppClass app_class = AppClass::kNonDeterministic;
  Asil asil = Asil::kQM;
  std::uint32_t version = 1;
  std::size_t memory_bytes = 1ull << 20;
  bool needs_crypto = false;
  /// Fail-operational replica count (Sec. 3.3); 1 = no redundancy.
  int replicas = 1;
  std::vector<TaskDef> tasks;
  std::vector<std::string> provides;  ///< interface names owned by this app
  std::vector<std::string> consumes;  ///< interface names consumed
  /// Minimum interface version required per consumed interface ("X@2" in
  /// the DSL). Absent entry = any version. The owner evolves the interface
  /// version (Sec. 2.1); consumers pin what they were built against.
  std::map<std::string, std::uint32_t> min_versions;

  double utilization_on(std::uint64_t mips) const {
    double u = 0.0;
    for (const auto& t : tasks) {
      if (t.period > 0) {
        u += static_cast<double>(t.instructions) * 1000.0 /
             static_cast<double>(mips) / static_cast<double>(t.period);
      }
    }
    return u;
  }
};

/// --- Deployment DSL -------------------------------------------------------------

/// A concrete or variant-bearing mapping of applications onto ECUs. Variant
/// support (Sec. 2.3): an app may list several candidate ECUs; the DSE picks
/// the binding, and the verification engine must pass *every* allowed one.
struct DeploymentDef {
  struct Binding {
    std::string app;
    std::vector<std::string> candidates;  ///< 1 entry = fixed binding
  };
  std::vector<Binding> bindings;

  const Binding* find(const std::string& app) const {
    for (const auto& b : bindings) {
      if (b.app == app) return &b;
    }
    return nullptr;
  }
};

}  // namespace dynaplat::model
