#include "model/verifier.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace dynaplat::model {

std::vector<std::string> Assignment::apps_on(const std::string& ecu) const {
  std::vector<std::string> out;
  for (const auto& [app, ecus] : placement) {
    for (const auto& host : ecus) {
      if (host == ecu) {
        out.push_back(app);
        break;
      }
    }
  }
  return out;
}

bool Verifier::has_errors(const std::vector<Violation>& violations) {
  return std::any_of(violations.begin(), violations.end(),
                     [](const Violation& v) {
                       return v.severity == Severity::kError;
                     });
}

std::vector<Assignment> Verifier::expand(const SystemModel& model,
                                         const DeploymentDef& deployment,
                                         std::size_t max_variants) {
  // Replica apps pin their first `replicas` candidates; single-replica apps
  // contribute a free choice each.
  std::vector<Assignment> variants(1);
  for (const auto& binding : deployment.bindings) {
    const AppDef* app = model.app(binding.app);
    const int replicas = app != nullptr ? app->replicas : 1;
    if (replicas > 1) {
      std::vector<std::string> hosts;
      for (int i = 0; i < replicas &&
                      i < static_cast<int>(binding.candidates.size());
           ++i) {
        hosts.push_back(binding.candidates[static_cast<std::size_t>(i)]);
      }
      for (auto& variant : variants) {
        variant.placement[binding.app] = hosts;
      }
      continue;
    }
    std::vector<Assignment> next;
    next.reserve(variants.size() * binding.candidates.size());
    for (const auto& variant : variants) {
      for (const auto& candidate : binding.candidates) {
        Assignment extended = variant;
        extended.placement[binding.app] = {candidate};
        next.push_back(std::move(extended));
        if (next.size() >= max_variants) break;
      }
      if (next.size() >= max_variants) break;
    }
    variants = std::move(next);
    if (variants.size() >= max_variants) break;
  }
  return variants;
}

std::vector<Violation> Verifier::verify(const SystemModel& model,
                                        const DeploymentDef& deployment,
                                        std::size_t max_variants) const {
  std::vector<Violation> all;
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& assignment : expand(model, deployment, max_variants)) {
    for (auto& violation : verify_assignment(model, assignment)) {
      if (seen.insert({violation.rule, violation.subject}).second) {
        all.push_back(std::move(violation));
      }
    }
  }
  return all;
}

std::vector<Violation> Verifier::verify_assignment(
    const SystemModel& model, const Assignment& assignment) const {
  std::vector<Violation> out;
  check_structure(model, assignment, out);
  check_capacity(model, assignment, out);
  check_safety(model, assignment, out);
  check_security(model, assignment, out);
  check_network(model, assignment, out);
  return out;
}

void Verifier::check_structure(const SystemModel& model,
                               const Assignment& assignment,
                               std::vector<Violation>& out) const {
  // Referenced names resolve.
  for (const auto& [app_name, hosts] : assignment.placement) {
    if (model.app(app_name) == nullptr) {
      out.push_back({Severity::kError, "structure.unknown-app", app_name,
                     "deployed app is not defined in the model"});
    }
    for (const auto& host : hosts) {
      if (model.ecu(host) == nullptr) {
        out.push_back({Severity::kError, "structure.unknown-ecu", host,
                       "deployment targets an undefined ECU"});
      }
    }
  }
  for (const auto& ecu : model.ecus()) {
    if (!ecu.network.empty() && model.network(ecu.network) == nullptr) {
      out.push_back({Severity::kError, "structure.unknown-network", ecu.name,
                     "ECU references undefined network '" + ecu.network + "'"});
    }
  }
  // One owner per interface; every consumed interface provided; referenced
  // interfaces defined.
  for (const auto& interface : model.interfaces()) {
    int providers = 0;
    for (const auto& app : model.apps()) {
      providers += static_cast<int>(
          std::count(app.provides.begin(), app.provides.end(),
                     interface.name));
    }
    if (providers > 1) {
      out.push_back({Severity::kError, "structure.multiple-owners",
                     interface.name,
                     "interface has more than one provider/owner"});
    }
  }
  for (const auto& app : model.apps()) {
    for (const auto& name : app.provides) {
      if (model.interface(name) == nullptr) {
        out.push_back({Severity::kError, "structure.unknown-interface",
                       app.name, "provides undefined interface '" + name + "'"});
      }
    }
    for (const auto& name : app.consumes) {
      const InterfaceDef* interface = model.interface(name);
      if (interface == nullptr) {
        out.push_back({Severity::kError, "structure.unknown-interface",
                       app.name,
                       "consumes undefined interface '" + name + "'"});
      } else if (model.provider_of(name) == nullptr) {
        out.push_back({Severity::kError, "structure.unprovided-interface",
                       name, "consumed by " + app.name +
                                 " but no app provides it"});
      } else {
        auto pinned = app.min_versions.find(name);
        if (pinned != app.min_versions.end() &&
            interface->version < pinned->second) {
          std::ostringstream msg;
          msg << "requires '" << name << "' version >= " << pinned->second
              << " but the model defines version " << interface->version;
          out.push_back({Severity::kError, "structure.version-mismatch",
                         app.name, msg.str()});
        }
      }
    }
    if (assignment.placement.count(app.name) == 0) {
      out.push_back({Severity::kWarning, "structure.undeployed-app", app.name,
                     "app is modeled but not deployed"});
    }
  }
}

void Verifier::check_capacity(const SystemModel& model,
                              const Assignment& assignment,
                              std::vector<Violation>& out) const {
  for (const auto& ecu : model.ecus()) {
    const auto apps = assignment.apps_on(ecu.name);
    std::size_t memory = 0;
    double utilization = 0.0;
    std::vector<const AppDef*> defs;
    bool any_da = false;
    for (const auto& app_name : apps) {
      const AppDef* app = model.app(app_name);
      if (app == nullptr) continue;
      defs.push_back(app);
      memory += app->memory_bytes;
      utilization += app->utilization_on(ecu.mips);
      any_da = any_da || app->app_class == AppClass::kDeterministic;
    }
    if (memory > ecu.memory_bytes) {
      std::ostringstream msg;
      msg << "apps need " << memory << " B but ECU has " << ecu.memory_bytes
          << " B";
      out.push_back({Severity::kError, "memory.capacity", ecu.name,
                     msg.str()});
    }
    if (apps.size() > 1 && !ecu.has_mmu) {
      out.push_back({Severity::kError, "memory.mmu-required", ecu.name,
                     "multiple apps share this ECU but it has no MMU "
                     "(freedom from interference, Sec. 3.1)"});
    }
    const double capacity = std::max(1, ecu.cores);
    if (utilization > capacity) {
      std::ostringstream msg;
      msg << "utilization " << utilization << " exceeds " << capacity
          << " core(s)";
      out.push_back({Severity::kError, "cpu.overload", ecu.name, msg.str()});
    } else if (any_da && utilization > 0.69 * capacity && !sched_hook_) {
      out.push_back({Severity::kWarning, "cpu.high-utilization", ecu.name,
                     "deterministic apps above the Liu-Layland bound; exact "
                     "schedulability analysis required"});
    }
    if (sched_hook_ && !defs.empty()) {
      std::string why;
      if (!sched_hook_(ecu, defs, &why)) {
        out.push_back({Severity::kError, "cpu.schedulability", ecu.name,
                       why.empty() ? "task set not schedulable" : why});
      }
    }
  }
}

void Verifier::check_safety(const SystemModel& model,
                            const Assignment& assignment,
                            std::vector<Violation>& out) const {
  for (const auto& [app_name, hosts] : assignment.placement) {
    const AppDef* app = model.app(app_name);
    if (app == nullptr) continue;
    for (const auto& host : hosts) {
      const EcuDef* ecu = model.ecu(host);
      if (ecu == nullptr) continue;
      if (app->asil > ecu->max_asil) {
        out.push_back({Severity::kError, "asil.ecu-certification", app_name,
                       "app ASIL " + std::string(to_string(app->asil)) +
                           " exceeds ECU '" + host + "' certification " +
                           to_string(ecu->max_asil)});
      }
      if (app->app_class == AppClass::kDeterministic && !ecu->rtos) {
        out.push_back({Severity::kError, "cpu.rtos-required", app_name,
                       "deterministic app on non-RTOS ECU '" + host + "'"});
      }
    }
    // Dependency safety: every provider of a consumed interface must carry
    // at least this app's ASIL.
    for (const AppDef* dep : model.dependencies_of(*app)) {
      if (dep->asil < app->asil) {
        out.push_back({Severity::kError, "asil.dependency", app_name,
                       "depends on '" + dep->name + "' (ASIL " +
                           to_string(dep->asil) + ") below own ASIL " +
                           to_string(app->asil)});
      }
    }
    // Redundancy: replicas on distinct, live ECUs.
    if (app->replicas > 1) {
      std::set<std::string> distinct(hosts.begin(), hosts.end());
      if (static_cast<int>(distinct.size()) < app->replicas) {
        std::ostringstream msg;
        msg << "needs " << app->replicas << " replicas on distinct ECUs, got "
            << distinct.size();
        out.push_back({Severity::kError, "redundancy.placement", app_name,
                       msg.str()});
      }
    }
  }
}

void Verifier::check_security(const SystemModel& model,
                              const Assignment& assignment,
                              std::vector<Violation>& out) const {
  for (const auto& [app_name, hosts] : assignment.placement) {
    const AppDef* app = model.app(app_name);
    if (app == nullptr || !app->needs_crypto) continue;
    for (const auto& host : hosts) {
      const EcuDef* ecu = model.ecu(host);
      if (ecu == nullptr) continue;
      if (!ecu->crypto_accelerator && ecu->mips < 1000) {
        out.push_back(
            {Severity::kWarning, "security.weak-crypto-host", app_name,
             "crypto-demanding app on weak ECU '" + host +
                 "' without accelerator; delegate verification to an "
                 "update master (Sec. 4.1)"});
      }
    }
  }
}

sim::Duration network_latency_floor(const NetworkDef& network,
                                    std::size_t payload_bytes) {
  std::size_t on_wire_bits = 0;
  switch (network.kind) {
    case NetworkKind::kCan: {
      // Segmentation into 8-byte frames, 135 worst-case bits each.
      const std::size_t frames = (payload_bytes + 7) / 8;
      on_wire_bits = frames * 135;
      break;
    }
    case NetworkKind::kEthernet:
    case NetworkKind::kTsn: {
      const std::size_t frames = (payload_bytes + 1499) / 1500;
      const std::size_t last = payload_bytes - (frames - 1) * 1500;
      on_wire_bits = (frames - 1) * (1500 + 42) * 8 +
                     (std::max<std::size_t>(last, 46) + 42) * 8;
      // Two hops through the switch.
      on_wire_bits *= 2;
      break;
    }
    case NetworkKind::kFlexRay: {
      const std::size_t frames = (payload_bytes + 253) / 254;
      on_wire_bits = frames * (254 + 10) * 8;
      break;
    }
  }
  return static_cast<sim::Duration>(
      static_cast<std::uint64_t>(on_wire_bits) * sim::kSecond /
      network.bitrate_bps);
}

void Verifier::check_network(const SystemModel& model,
                             const Assignment& assignment,
                             std::vector<Violation>& out) const {
  // Bandwidth budget per network and latency floors per interface.
  std::map<std::string, std::uint64_t> stream_load;

  for (const auto& interface : model.interfaces()) {
    const AppDef* provider = model.provider_of(interface.name);
    if (provider == nullptr) continue;
    const auto provider_hosts = assignment.placement.find(provider->name);
    if (provider_hosts == assignment.placement.end()) continue;

    for (const AppDef* consumer : model.consumers_of(interface.name)) {
      const auto consumer_hosts = assignment.placement.find(consumer->name);
      if (consumer_hosts == assignment.placement.end()) continue;
      // Cross-ECU pairs must share a network; latency floor applies.
      for (const auto& ph : provider_hosts->second) {
        for (const auto& ch : consumer_hosts->second) {
          if (ph == ch) continue;  // co-located: RTE-local, no network
          const EcuDef* pe = model.ecu(ph);
          const EcuDef* ce = model.ecu(ch);
          if (pe == nullptr || ce == nullptr) continue;
          if (pe->network.empty() || pe->network != ce->network) {
            out.push_back({Severity::kError, "network.unreachable",
                           interface.name,
                           "provider on '" + ph + "' and consumer on '" + ch +
                               "' share no network"});
            continue;
          }
          const NetworkDef* net = model.network(pe->network);
          if (net == nullptr) continue;
          if (interface.max_latency > 0) {
            const sim::Duration floor =
                network_latency_floor(*net, interface.payload_bytes);
            if (interface.max_latency < floor) {
              std::ostringstream msg;
              msg << "latency requirement " << interface.max_latency
                  << " ns below network floor " << floor << " ns on "
                  << net->name;
              out.push_back({Severity::kError, "network.latency-floor",
                             interface.name, msg.str()});
            }
          }
          if (interface.paradigm == Paradigm::kStream &&
              interface.bandwidth_bps > 0) {
            stream_load[net->name] += interface.bandwidth_bps;
          }
        }
      }
    }
  }

  for (const auto& [net_name, load] : stream_load) {
    const NetworkDef* net = model.network(net_name);
    if (net == nullptr) continue;
    // 75% usable capacity keeps queues bounded.
    if (load > net->bitrate_bps * 3 / 4) {
      std::ostringstream msg;
      msg << "aggregate stream bandwidth " << load << " bps exceeds 75% of "
          << net->bitrate_bps << " bps";
      out.push_back(
          {Severity::kError, "network.bandwidth", net_name, msg.str()});
    }
  }
}

}  // namespace dynaplat::model
