// ChaCha20 block function (RFC 8439) used as a deterministic random byte
// generator (DRBG) for session keys, nonces and challenges.
//
// In a vehicle this seed material would come from an HSM TRNG; in the
// simulation the DRBG is seeded from the scenario seed so security handshakes
// are reproducible (DESIGN.md determinism contract).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dynaplat::crypto {

class ChaCha20Drbg {
 public:
  /// Seeds from 32 bytes of key material.
  explicit ChaCha20Drbg(const std::array<std::uint8_t, 32>& seed);
  /// Convenience: expands a 64-bit seed via repeated mixing.
  explicit ChaCha20Drbg(std::uint64_t seed);

  /// Fills `out` with pseudo-random bytes.
  void generate(std::uint8_t* out, std::size_t len);
  std::vector<std::uint8_t> generate(std::size_t len);

  std::uint64_t next_u64();

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // empty
  std::uint64_t counter_ = 0;
};

}  // namespace dynaplat::crypto
