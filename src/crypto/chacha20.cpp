#include "crypto/chacha20.hpp"

#include <cstring>

namespace dynaplat::crypto {
namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

}  // namespace

ChaCha20Drbg::ChaCha20Drbg(const std::array<std::uint8_t, 32>& seed) {
  // "expand 32-byte k" constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = std::uint32_t(seed[i * 4]) |
                    (std::uint32_t(seed[i * 4 + 1]) << 8) |
                    (std::uint32_t(seed[i * 4 + 2]) << 16) |
                    (std::uint32_t(seed[i * 4 + 3]) << 24);
  }
  state_[12] = 0;  // block counter (low)
  state_[13] = 0;  // block counter (high)
  state_[14] = 0;  // nonce
  state_[15] = 0;
}

ChaCha20Drbg::ChaCha20Drbg(std::uint64_t seed)
    : ChaCha20Drbg([seed] {
        std::array<std::uint8_t, 32> key{};
        std::uint64_t x = seed;
        for (int i = 0; i < 4; ++i) {
          // splitmix64 expansion of the 64-bit seed into key material.
          x += 0x9E3779B97F4A7C15ULL;
          std::uint64_t z = x;
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
          z ^= z >> 31;
          std::memcpy(key.data() + i * 8, &z, 8);
        }
        return key;
      }()) {}

void ChaCha20Drbg::refill() {
  state_[12] = static_cast<std::uint32_t>(counter_);
  state_[13] = static_cast<std::uint32_t>(counter_ >> 32);
  ++counter_;
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = x[i] + state_[i];
    block_[i * 4] = static_cast<std::uint8_t>(word);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(word >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(word >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  block_pos_ = 0;
}

void ChaCha20Drbg::generate(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (block_pos_ == block_.size()) refill();
    const std::size_t take = std::min(len, block_.size() - block_pos_);
    std::memcpy(out, block_.data() + block_pos_, take);
    block_pos_ += take;
    out += take;
    len -= take;
  }
}

std::vector<std::uint8_t> ChaCha20Drbg::generate(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  generate(out.data(), len);
  return out;
}

std::uint64_t ChaCha20Drbg::next_u64() {
  std::uint8_t buf[8];
  generate(buf, 8);
  std::uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

}  // namespace dynaplat::crypto
