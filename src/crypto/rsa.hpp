// RSA signatures for package security (paper Sec. 4.1).
//
// Textbook-correct RSASSA with PKCS#1 v1.5-style padding over SHA-256.
// Key generation uses Miller-Rabin with a caller-supplied deterministic RNG,
// so test keys are reproducible. Because on-target key generation is never
// needed in a vehicle (keys are provisioned), tests and benches use the
// pre-generated vectors from test_keys.hpp where speed matters.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/sha256.hpp"
#include "sim/random.hpp"

namespace dynaplat::crypto {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent (65537)
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  BigNum n;
  BigNum d;  // private exponent
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;

  /// Generates a fresh key pair with modulus of `bits` bits. Deterministic in
  /// the RNG state. Intended for tests with small sizes (256-768 bits);
  /// larger sizes work but take seconds.
  static RsaKeyPair generate(std::size_t bits, sim::Random& rng);
};

/// Miller-Rabin probabilistic primality test, `rounds` random bases.
bool is_probable_prime(const BigNum& n, sim::Random& rng, int rounds = 24);

/// Signs SHA-256(message) with PKCS#1 v1.5 EMSA padding. Returns a signature
/// of exactly modulus_bytes() bytes.
std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   const std::vector<std::uint8_t>& message);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key,
                const std::vector<std::uint8_t>& message,
                const std::vector<std::uint8_t>& signature);

/// Signs a precomputed digest (used when the payload was hashed streamily).
std::vector<std::uint8_t> rsa_sign_digest(const RsaPrivateKey& key,
                                          const Digest256& digest);
bool rsa_verify_digest(const RsaPublicKey& key, const Digest256& digest,
                       const std::vector<std::uint8_t>& signature);

}  // namespace dynaplat::crypto
