// Arbitrary-precision unsigned integers for RSA.
//
// A minimal, correct bignum sufficient for 2048-bit modular exponentiation,
// Miller-Rabin primality testing and RSA key generation. Limbs are 32-bit so
// products fit in 64-bit intermediates portably.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dynaplat::crypto {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);

  /// Parses big-endian bytes (as found in signatures / moduli on the wire).
  static BigNum from_bytes(const std::vector<std::uint8_t>& be);
  /// Parses a hex string (no 0x prefix).
  static BigNum from_hex(const std::string& hex);
  /// Uniform random value with exactly `bits` bits (msb set), from caller RNG
  /// words supplied by `next_word`.
  template <typename Rng>
  static BigNum random_bits(std::size_t bits, Rng&& next_word) {
    BigNum r;
    const std::size_t limbs = (bits + 31) / 32;
    r.limbs_.resize(limbs);
    for (auto& limb : r.limbs_) {
      limb = static_cast<std::uint32_t>(next_word());
    }
    const std::size_t top_bit = (bits - 1) % 32;
    r.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu
                                       : ((1u << (top_bit + 1)) - 1);
    r.limbs_.back() |= (1u << top_bit);
    r.trim();
    return r;
  }

  /// Big-endian byte rendering, zero-padded/truncated to `size` bytes.
  std::vector<std::uint8_t> to_bytes(std::size_t size) const;
  std::vector<std::uint8_t> to_bytes() const;  // minimal length
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  // Value semantics; all operations are non-mutating.
  friend BigNum operator+(const BigNum& a, const BigNum& b);
  friend BigNum operator-(const BigNum& a, const BigNum& b);  // requires a>=b
  friend BigNum operator*(const BigNum& a, const BigNum& b);
  friend BigNum operator%(const BigNum& a, const BigNum& m);
  friend BigNum operator/(const BigNum& a, const BigNum& b);
  friend bool operator==(const BigNum& a, const BigNum& b);
  friend bool operator<(const BigNum& a, const BigNum& b);
  friend bool operator<=(const BigNum& a, const BigNum& b);
  friend bool operator>(const BigNum& a, const BigNum& b) { return b < a; }
  friend bool operator!=(const BigNum& a, const BigNum& b) {
    return !(a == b);
  }

  BigNum shifted_left(std::size_t bits) const;
  BigNum shifted_right(std::size_t bits) const;

  /// (this ^ e) mod m via square-and-multiply. m must be > 1.
  BigNum mod_pow(const BigNum& e, const BigNum& m) const;

  /// Modular inverse via extended Euclid; returns zero BigNum if gcd != 1.
  BigNum mod_inverse(const BigNum& m) const;

  static BigNum gcd(BigNum a, BigNum b);

 private:
  void trim();
  static void div_mod(const BigNum& a, const BigNum& b, BigNum& quotient,
                      BigNum& remainder);

  // Little-endian limbs; empty == zero. Invariant: no trailing zero limb.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace dynaplat::crypto
