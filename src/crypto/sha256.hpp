// SHA-256 (FIPS 180-4) — from-scratch implementation.
//
// Package integrity (Sec. 4.1), HMAC session authentication (Sec. 4.2) and
// RSA signatures all hash through this code path. The implementation is a
// straightforward portable Merkle-Damgard compression loop; dynaplat models
// its *cost* on weak ECUs separately via os::CpuModel cycle accounting, so
// this code only needs to be correct, not fast.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dynaplat::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  /// Absorbs `len` bytes.
  void update(const void* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }
  void update(const std::string& s) { update(s.data(), s.size()); }
  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without reset().
  Digest256 finish();
  void reset();

  /// One-shot convenience.
  static Digest256 digest(const void* data, std::size_t len);
  static Digest256 digest(const std::vector<std::uint8_t>& data) {
    return digest(data.data(), data.size());
  }
  static Digest256 digest(const std::string& s) {
    return digest(s.data(), s.size());
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Lowercase hex rendering of a digest.
std::string to_hex(const Digest256& d);

/// HMAC-SHA256 (RFC 2104).
Digest256 hmac_sha256(const std::vector<std::uint8_t>& key, const void* data,
                      std::size_t len);
Digest256 hmac_sha256(const std::vector<std::uint8_t>& key,
                      const std::vector<std::uint8_t>& data);

/// Constant-time digest comparison.
bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace dynaplat::crypto
