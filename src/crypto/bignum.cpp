#include "crypto/bignum.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dynaplat::crypto {

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(const std::vector<std::uint8_t>& be) {
  BigNum r;
  r.limbs_.assign((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::size_t byte_from_lsb = be.size() - 1 - i;
    r.limbs_[byte_from_lsb / 4] |= std::uint32_t(be[i])
                                   << (8 * (byte_from_lsb % 4));
  }
  r.trim();
  return r;
}

BigNum BigNum::from_hex(const std::string& hex) {
  std::vector<std::uint8_t> bytes;
  std::string h = hex;
  if (h.size() % 2) h.insert(h.begin(), '0');
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw std::invalid_argument("bad hex digit");
  };
  for (std::size_t i = 0; i + 1 < h.size() + 1; i += 2) {
    bytes.push_back(static_cast<std::uint8_t>((nibble(h[i]) << 4) |
                                              nibble(h[i + 1])));
  }
  return from_bytes(bytes);
}

std::vector<std::uint8_t> BigNum::to_bytes() const {
  const std::size_t bits = bit_length();
  return to_bytes(bits == 0 ? 1 : (bits + 7) / 8);
}

std::vector<std::uint8_t> BigNum::to_bytes(std::size_t size) const {
  std::vector<std::uint8_t> out(size, 0);
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t byte_from_lsb = size - 1 - i;
    const std::size_t limb = byte_from_lsb / 4;
    if (limb < limbs_.size()) {
      out[i] = static_cast<std::uint8_t>(limbs_[limb] >>
                                         (8 * (byte_from_lsb % 4)));
    }
  }
  return out;
}

std::string BigNum::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto b : to_bytes()) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  // Strip leading zero nibble if present.
  if (out.size() > 1 && out[0] == '0') out.erase(out.begin());
  return out;
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

bool operator==(const BigNum& a, const BigNum& b) {
  return a.limbs_ == b.limbs_;
}

bool operator<(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  }
  return false;
}

bool operator<=(const BigNum& a, const BigNum& b) { return !(b < a); }

BigNum operator+(const BigNum& a, const BigNum& b) {
  BigNum r;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    r.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  r.limbs_[n] = static_cast<std::uint32_t>(carry);
  r.trim();
  return r;
}

BigNum operator-(const BigNum& a, const BigNum& b) {
  assert(b <= a && "BigNum subtraction underflow");
  BigNum r;
  r.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = std::int64_t(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t(1) << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  r.trim();
  return r;
}

BigNum operator*(const BigNum& a, const BigNum& b) {
  if (a.is_zero() || b.is_zero()) return BigNum();
  BigNum r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = std::uint64_t(a.limbs_[i]) * b.limbs_[j] +
                          r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      std::uint64_t cur = std::uint64_t(r.limbs_[k]) + carry;
      r.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  r.trim();
  return r;
}

BigNum BigNum::shifted_left(std::size_t bits) const {
  if (is_zero()) return BigNum();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum r;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift) {
      r.limbs_[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(std::uint64_t(limbs_[i]) >>
                                     (32 - bit_shift));
    }
  }
  r.trim();
  return r;
}

BigNum BigNum::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum r;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      r.limbs_[i] |= static_cast<std::uint32_t>(
          std::uint64_t(limbs_[i + limb_shift + 1]) << (32 - bit_shift));
    }
  }
  r.trim();
  return r;
}

void BigNum::div_mod(const BigNum& a, const BigNum& b, BigNum& quotient,
                     BigNum& remainder) {
  if (b.is_zero()) throw std::domain_error("BigNum division by zero");
  quotient = BigNum();
  remainder = BigNum();
  if (a < b) {
    remainder = a;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Short division by a single limb.
    const std::uint64_t d = b.limbs_[0];
    quotient.limbs_.assign(a.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.trim();
    if (rem) remainder.limbs_.push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm 4.3.1-D with 32-bit limbs.
  // Normalize so the divisor's top limb has its msb set.
  int shift = 0;
  for (std::uint32_t top = b.limbs_.back(); !(top & 0x80000000u); top <<= 1) {
    ++shift;
  }
  const BigNum u = a.shifted_left(shift);
  const BigNum v = b.shifted_left(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u[m+n] slot
  const std::vector<std::uint32_t>& vn = v.limbs_;
  quotient.limbs_.assign(m + 1, 0);

  const std::uint64_t base = std::uint64_t(1) << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat = (un[j+n]*base + un[j+n-1]) / vn[n-1].
    std::uint64_t num = (std::uint64_t(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= base ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= base) break;
    }
    // Multiply and subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          std::int64_t(un[i + j]) - borrow - std::int64_t(p & 0xFFFFFFFFu);
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t =
        std::int64_t(un[j + n]) - borrow - std::int64_t(carry);
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large; add back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = std::uint64_t(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  quotient.trim();

  remainder.limbs_.assign(un.begin(), un.begin() + static_cast<long>(n));
  remainder.trim();
  remainder = remainder.shifted_right(static_cast<std::size_t>(shift));
}

BigNum operator%(const BigNum& a, const BigNum& m) {
  BigNum q, r;
  BigNum::div_mod(a, m, q, r);
  return r;
}

BigNum operator/(const BigNum& a, const BigNum& b) {
  BigNum q, r;
  BigNum::div_mod(a, b, q, r);
  return q;
}

BigNum BigNum::mod_pow(const BigNum& e, const BigNum& m) const {
  assert(!m.is_zero());
  BigNum result(1);
  BigNum base = *this % m;
  const std::size_t bits = e.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (e.bit(i)) result = (result * base) % m;
    base = (base * base) % m;
  }
  return result % m;
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigNum BigNum::mod_inverse(const BigNum& m) const {
  // Extended Euclid over non-negative values: track coefficients of `this`
  // modulo m using (sign, magnitude) pairs folded into mod-m arithmetic.
  BigNum r0 = m, r1 = *this % m;
  BigNum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    BigNum q = r0 / r1;
    BigNum r2 = r0 - q * r1;
    // t2 = t0 - q*t1 with signs.
    BigNum qt = q * t1;
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 < qt) {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      } else {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (!(r0 == BigNum(1))) return BigNum();  // not invertible
  BigNum inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace dynaplat::crypto
