#include "crypto/rsa.hpp"

#include <stdexcept>

namespace dynaplat::crypto {
namespace {

// Small-prime trial division sieve to cheaply reject most candidates.
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103,
    107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173,
    179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241,
    251, 257, 263, 269, 271, 277, 281, 283, 293};

bool divisible_by_small_prime(const BigNum& n) {
  for (std::uint32_t p : kSmallPrimes) {
    if ((n % BigNum(p)).is_zero() && !(n == BigNum(p))) return true;
  }
  return false;
}

BigNum random_prime(std::size_t bits, sim::Random& rng) {
  for (;;) {
    BigNum candidate =
        BigNum::random_bits(bits, [&rng] { return rng.next_u64(); });
    // Force odd.
    candidate = candidate + BigNum(candidate.is_odd() ? 0 : 1);
    if (divisible_by_small_prime(candidate)) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `len` bytes:
// 0x00 0x01 FF..FF 0x00 | DigestInfo(SHA-256) | digest
std::vector<std::uint8_t> emsa_encode(const Digest256& digest,
                                      std::size_t len) {
  static const std::uint8_t kSha256DigestInfo[] = {
      0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
      0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  if (len < t_len + 11) throw std::invalid_argument("RSA modulus too small");
  std::vector<std::uint8_t> em(len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[len - t_len - 1] = 0x00;
  std::size_t pos = len - t_len;
  for (auto b : kSha256DigestInfo) em[pos++] = b;
  for (auto b : digest) em[pos++] = b;
  return em;
}

}  // namespace

bool is_probable_prime(const BigNum& n, sim::Random& rng, int rounds) {
  if (n < BigNum(2)) return false;
  if (n == BigNum(2) || n == BigNum(3)) return true;
  if (!n.is_odd()) return false;

  // n - 1 = d * 2^r with d odd.
  const BigNum n_minus_1 = n - BigNum(1);
  BigNum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }

  const std::size_t bits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2]; sampling `bits-1` random bits then reducing is
    // fine for a probabilistic test.
    BigNum a = BigNum::random_bits(bits > 2 ? bits - 1 : 2,
                                   [&rng] { return rng.next_u64(); }) %
               n_minus_1;
    if (a < BigNum(2)) a = BigNum(2);
    BigNum x = a.mod_pow(d, n);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

RsaKeyPair RsaKeyPair::generate(std::size_t bits, sim::Random& rng) {
  if (bits < 128) throw std::invalid_argument("RSA modulus below 128 bits");
  const BigNum e(65537);
  for (;;) {
    const BigNum p = random_prime(bits / 2, rng);
    const BigNum q = random_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigNum n = p * q;
    const BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    if (!(BigNum::gcd(e, phi) == BigNum(1))) continue;
    const BigNum d = e.mod_inverse(phi);
    if (d.is_zero()) continue;
    RsaKeyPair kp;
    kp.pub = RsaPublicKey{n, e};
    kp.priv = RsaPrivateKey{n, d};
    return kp;
  }
}

std::vector<std::uint8_t> rsa_sign_digest(const RsaPrivateKey& key,
                                          const Digest256& digest) {
  const std::size_t k = key.modulus_bytes();
  const BigNum em = BigNum::from_bytes(emsa_encode(digest, k));
  return em.mod_pow(key.d, key.n).to_bytes(k);
}

bool rsa_verify_digest(const RsaPublicKey& key, const Digest256& digest,
                       const std::vector<std::uint8_t>& signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigNum s = BigNum::from_bytes(signature);
  if (!(s < key.n)) return false;
  const std::vector<std::uint8_t> em = s.mod_pow(key.e, key.n).to_bytes(k);
  const std::vector<std::uint8_t> expected = emsa_encode(digest, k);
  // Not secret data; plain comparison is fine for verification.
  return em == expected;
}

std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   const std::vector<std::uint8_t>& message) {
  return rsa_sign_digest(key, Sha256::digest(message));
}

bool rsa_verify(const RsaPublicKey& key,
                const std::vector<std::uint8_t>& message,
                const std::vector<std::uint8_t>& signature) {
  return rsa_verify_digest(key, Sha256::digest(message), signature);
}

}  // namespace dynaplat::crypto
