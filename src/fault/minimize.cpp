#include "fault/minimize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/json.hpp"

namespace dynaplat::fault {

namespace {

/// An episode is the atom of minimization: a Start event with its matching
/// End (same target, paired kind, first later occurrence), or a lone event.
struct Episode {
  std::vector<FaultEvent> events;
};

std::vector<Episode> group_episodes(const std::vector<FaultEvent>& plan) {
  std::vector<FaultEvent> sorted = plan;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  std::vector<Episode> episodes;
  // (end-kind, target) -> episode index awaiting that End.
  std::map<std::pair<int, std::string>, std::size_t> open;
  for (const FaultEvent& event : sorted) {
    const auto key =
        std::make_pair(static_cast<int>(event.kind), event.target);
    auto it = open.find(key);
    if (it != open.end()) {
      episodes[it->second].events.push_back(event);
      open.erase(it);
      continue;
    }
    episodes.push_back({{event}});
    FaultKind end_kind;
    if (fault_kind_end_of(event.kind, &end_kind)) {
      open[{static_cast<int>(end_kind), event.target}] = episodes.size() - 1;
    }
  }
  return episodes;
}

std::vector<FaultEvent> flatten(const std::vector<Episode>& episodes) {
  std::vector<FaultEvent> plan;
  for (const Episode& episode : episodes) {
    plan.insert(plan.end(), episode.events.begin(), episode.events.end());
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace

Minimizer::Minimizer(MinimizeConfig config, PlanRunner runner)
    : config_(config), runner_(std::move(runner)) {}

bool Minimizer::fails(const std::vector<FaultEvent>& plan,
                      sim::Duration horizon, const std::string& target,
                      std::string* detail) {
  if (runs_ >= config_.max_runs) return false;  // budget-exhausted = "pass"
  ++runs_;
  const ProbeVerdict verdict = runner_(plan, horizon);
  if (!verdict.violated) return false;
  if (!target.empty() && verdict.invariant != target) return false;
  if (detail != nullptr) *detail = verdict.detail;
  return true;
}

Repro Minimizer::minimize(std::vector<FaultEvent> plan, sim::Duration horizon,
                          std::string target_invariant) {
  runs_ = 0;
  Repro repro;
  repro.original_events = plan.size();
  repro.horizon = horizon;

  // Pin the target: the repro must trip the *same* invariant as the input.
  {
    ++runs_;
    const ProbeVerdict verdict = runner_(plan, horizon);
    if (!verdict.violated ||
        (!target_invariant.empty() &&
         verdict.invariant != target_invariant)) {
      repro.runs_used = runs_;
      return repro;  // nothing (matching) to minimize
    }
    if (target_invariant.empty()) target_invariant = verdict.invariant;
    repro.invariant = target_invariant;
    repro.detail = verdict.detail;
  }
  repro.failing = true;

  // --- Pass 1: ddmin over episodes -----------------------------------------
  std::vector<Episode> episodes = group_episodes(plan);
  std::size_t granularity = 2;
  while (episodes.size() >= 2 && runs_ < config_.max_runs) {
    const std::size_t n = std::min(granularity, episodes.size());
    const std::size_t chunk = (episodes.size() + n - 1) / n;
    bool reduced = false;
    // Try each chunk alone ("can this slice reproduce it by itself?").
    for (std::size_t c = 0; c * chunk < episodes.size() && !reduced; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, episodes.size());
      if (hi - lo == episodes.size()) continue;
      std::vector<Episode> subset(episodes.begin() + lo,
                                  episodes.begin() + hi);
      std::string detail;
      if (fails(flatten(subset), horizon, target_invariant, &detail)) {
        episodes = std::move(subset);
        repro.detail = detail;
        granularity = 2;
        reduced = true;
      }
    }
    // Then each complement ("is this slice irrelevant?").
    for (std::size_t c = 0; c * chunk < episodes.size() && !reduced; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, episodes.size());
      if (hi - lo == episodes.size()) continue;
      std::vector<Episode> rest(episodes.begin(), episodes.begin() + lo);
      rest.insert(rest.end(), episodes.begin() + hi, episodes.end());
      std::string detail;
      if (fails(flatten(rest), horizon, target_invariant, &detail)) {
        episodes = std::move(rest);
        repro.detail = detail;
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= episodes.size()) break;  // 1-minimal
      granularity = std::min(granularity * 2, episodes.size());
    }
  }
  repro.plan = flatten(episodes);

  // --- Pass 2: horizon bisection --------------------------------------------
  // The violation may need slack after the last event (failover detection,
  // TTL sweeps), so bisect between the last event time and the original
  // horizon rather than assuming either bound.
  sim::Time last_event = 0;
  for (const FaultEvent& event : repro.plan) {
    last_event = std::max(last_event, event.at);
  }
  sim::Duration lo = last_event;  // known insufficient (events still firing)
  sim::Duration hi = horizon;    // known failing
  while (hi - lo > config_.horizon_resolution && runs_ < config_.max_runs) {
    const sim::Duration mid = lo + (hi - lo) / 2;
    std::string detail;
    if (fails(repro.plan, mid, target_invariant, &detail)) {
      hi = mid;
      repro.detail = detail;
    } else {
      lo = mid;
    }
  }
  repro.horizon = hi;

  // --- Pass 3: magnitude bisection ------------------------------------------
  for (std::size_t i = 0;
       i < repro.plan.size() && runs_ < config_.max_runs; ++i) {
    if (repro.plan[i].magnitude <= 0.0) continue;
    double mag_lo = 0.0;
    double mag_hi = repro.plan[i].magnitude;  // known failing
    for (int step = 0;
         step < config_.magnitude_steps && runs_ < config_.max_runs;
         ++step) {
      const double mid = (mag_lo + mag_hi) / 2.0;
      std::vector<FaultEvent> probe = repro.plan;
      probe[i].magnitude = mid;
      std::string detail;
      if (fails(probe, repro.horizon, target_invariant, &detail)) {
        mag_hi = mid;
        repro.detail = detail;
      } else {
        mag_lo = mid;
      }
    }
    repro.plan[i].magnitude = mag_hi;
  }

  repro.runs_used = runs_;
  return repro;
}

std::string repro_json(const Repro& repro) {
  std::string out = "{\n  \"kind\": \"dynaplat_fault_repro\",\n";
  char buf[64];
  auto field_u64 = [&](const char* name, std::uint64_t value, bool comma) {
    std::snprintf(buf, sizeof buf, "  \"%s\": %llu%s\n", name,
                  static_cast<unsigned long long>(value), comma ? "," : "");
    out += buf;
  };
  out += "  \"failing\": ";
  out += repro.failing ? "true,\n" : "false,\n";
  out += "  \"invariant\": \"" + obs::json::escape(repro.invariant) + "\",\n";
  out += "  \"detail\": \"" + obs::json::escape(repro.detail) + "\",\n";
  // Hex string: a full-range 64-bit seed does not survive a double
  // round-trip through the JSON number path.
  std::snprintf(buf, sizeof buf, "  \"seed\": \"%016llx\",\n",
                static_cast<unsigned long long>(repro.seed));
  out += buf;
  field_u64("horizon_ns", static_cast<std::uint64_t>(repro.horizon), true);
  field_u64("original_events", repro.original_events, true);
  field_u64("runs_used", repro.runs_used, true);
  out += "  \"events\": [";
  for (std::size_t i = 0; i < repro.plan.size(); ++i) {
    const FaultEvent& event = repro.plan[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(event.at));
    out += "    {\"at_ns\": ";
    out += buf;
    out += ", \"kind\": \"";
    out += to_string(event.kind);
    out += "\", \"target\": \"" + obs::json::escape(event.target) + "\"";
    std::snprintf(buf, sizeof buf, "%.17g", event.magnitude);
    out += ", \"magnitude\": ";
    out += buf;
    if (!event.island.empty()) {
      out += ", \"island\": [";
      bool first = true;
      for (const net::NodeId node : event.island) {
        if (!first) out += ", ";
        first = false;
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(node));
        out += buf;
      }
      out += "]";
    }
    out += "}";
  }
  out += repro.plan.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write_repro_file(const Repro& repro, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = repro_json(repro);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

bool load_repro(std::string_view json_text, Repro* out) {
  obs::json::Value doc;
  if (!obs::json::parse(json_text, &doc) || !doc.is_object()) return false;
  if (doc.at("kind").string != "dynaplat_fault_repro") return false;
  Repro repro;
  repro.failing = doc.at("failing").boolean;
  repro.invariant = doc.at("invariant").string;
  repro.detail = doc.at("detail").string;
  repro.seed = std::strtoull(doc.at("seed").string.c_str(), nullptr, 16);
  repro.horizon = static_cast<sim::Duration>(doc.at("horizon_ns").number);
  repro.original_events =
      static_cast<std::size_t>(doc.at("original_events").number);
  repro.runs_used = static_cast<std::size_t>(doc.at("runs_used").number);
  const obs::json::Value& events = doc.at("events");
  if (!events.is_array()) return false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& entry = events[i];
    FaultEvent event;
    event.at = static_cast<sim::Time>(entry.at("at_ns").number);
    if (!fault_kind_from_string(entry.at("kind").string, &event.kind)) {
      return false;
    }
    event.target = entry.at("target").string;
    event.magnitude = entry.at("magnitude").number;
    const obs::json::Value& island = entry.at("island");
    for (std::size_t j = 0; j < island.size(); ++j) {
      event.island.insert(static_cast<net::NodeId>(island[j].number));
    }
    repro.plan.push_back(std::move(event));
  }
  *out = std::move(repro);
  return true;
}

}  // namespace dynaplat::fault
