// Campaign invariant checker: machine-checked fail-operational properties.
//
// A fault campaign is only evidence if the run is judged against explicit
// invariants — the properties the platform claims to uphold *under* faults
// (paper Sec. 3.3/3.4: fail-operational behaviour, runtime monitoring as
// certification input). The checker evaluates its registered invariants at
// end of run and produces a verdict per invariant plus an overall pass.
//
// Built-in invariants:
//   - failover outage below a bound (RedundancyManager timeline),
//   - zero deadline misses for deterministic (DA) applications,
//   - every injected, detectable fault was observed by the platform
//     (task overruns -> runtime-monitor faults; replica-ECU crashes ->
//     failover events),
//   - no stranded reassembly state in any node's transport (TTL eviction
//     actually reclaimed partial messages).
//
// Custom invariants compose via add(); all checks are deterministic reads
// of simulation state, so verdicts are reproducible along with the run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "backend/fleet.hpp"
#include "fault/campaign.hpp"
#include "platform/platform.hpp"
#include "platform/recovery.hpp"
#include "platform/redundancy.hpp"
#include "sim/trace.hpp"

namespace dynaplat::fault {

struct InvariantResult {
  std::string name;
  bool passed = false;
  std::string detail;  ///< violation description, empty when passed
};

struct InvariantReport {
  bool passed = false;
  std::vector<InvariantResult> results;
  /// Path of the post-mortem flight-recorder bundle dumped on the first
  /// violation; empty when all invariants passed or no recorder was set.
  std::string bundle_path;
  std::string summary() const;
};

/// Post-mortem flight recorder: on the *first* violated invariant of a
/// run() the checker dumps one JSON bundle — trace-ring tail, metrics
/// snapshot, coverage snapshot, and the offending scenario seed — so the
/// failure is triagable without re-running the campaign.
struct FlightRecorderConfig {
  sim::Trace* trace = nullptr;  ///< trace + metrics + coverage source
  std::uint64_t seed = 0;       ///< campaign seed to replay
  std::string path = "postmortem.json";
  std::size_t trace_tail = 256;  ///< newest trace events in the bundle
};

class InvariantChecker {
 public:
  /// A check returns true on pass; on failure it describes the violation
  /// through `detail`.
  using Check = std::function<bool(std::string& detail)>;

  void add(std::string name, Check check);

  /// Every observed failover completed within `bound` of the last
  /// heartbeat (outage = silence + promotion latency).
  void require_failover_outage_below(const platform::RedundancyManager& rm,
                                     sim::Duration bound);

  /// Deterministic (DA) apps never missed a deadline: every running DA
  /// instance's tasks report zero misses. Tasks lost to an ECU crash are
  /// skipped (their processor was rebuilt); surviving replicas are the
  /// ones carrying the claim.
  void require_no_da_deadline_misses(platform::DynamicPlatform& platform);

  /// Every injected detectable fault was observed by the platform:
  /// kTaskOverrun -> a runtime-monitor fault on the targeted ECU at or
  /// after the injection; kEcuCrash of the then-primary replica -> a
  /// failover event detected at or after the crash (pass `rm` as nullptr
  /// to skip crash correlation). A primary crash whose matching restart
  /// lands within `detection_window` is excused: it healed before the
  /// standbys' staggered heartbeat timeout could possibly fire, so "no
  /// failover" is the correct outcome, not a missed detection. Pass the
  /// supervision limit (missed_for_failover * heartbeat_period plus one
  /// supervisor tick); 0 demands a failover for every primary crash.
  void require_faults_detected(const FaultCampaign& campaign,
                               platform::DynamicPlatform& platform,
                               const platform::RedundancyManager* rm,
                               sim::Duration detection_window = 0);

  /// No node's transport holds partial reassembly state at end of run.
  void require_no_stranded_reassembly(platform::DynamicPlatform& platform);

  /// Recovery plans are atomic transactions: every finished plan either
  /// committed or rolled back, no plan is still mid-flight at end of run,
  /// and every rolled-back plan restored the journaled pre-plan deployment
  /// bit-exactly.
  void require_plan_atomicity(
      const platform::RecoveryOrchestrator& orchestrator);

  /// Every committed recovery plan finished within `bound` of the fault
  /// being detected (the paper's bounded-outage claim applied to
  /// whole-vehicle remaps).
  void require_recovery_latency_below(
      const platform::RecoveryOrchestrator& orchestrator,
      sim::Duration bound);

  /// The fleet backend holds no outstanding requests at end of run: every
  /// accepted request was answered (or explicitly dropped by a partition),
  /// nothing leaked in the queue.
  void require_backend_drained(
      const ::dynaplat::backend::FleetScheduleService& service);

  /// The robustness headline (ISSUE 9): no vehicle session ended the run
  /// unsafe, and no session's unsafe window ever exceeded `max_unsafe` —
  /// the client fallback ladder made unsafety *transient* even while the
  /// backend was down.
  void require_no_stranded_vehicles(
      const ::dynaplat::backend::FleetDriver& fleet,
      sim::Duration max_unsafe);

  /// Bounded recovery completion after heal: once the driver-injected
  /// backend outage healed, every degraded session obtained a fresh
  /// artifact within `bound` (and none is still re-submitting at end of
  /// run).
  void require_fleet_recovery_bounded(
      const ::dynaplat::backend::FleetDriver& fleet, sim::Duration bound);

  /// Arms the post-mortem flight recorder (see FlightRecorderConfig).
  void set_flight_recorder(FlightRecorderConfig config) {
    recorder_ = std::move(config);
  }

  /// Evaluates all registered invariants. With a flight recorder armed,
  /// the first violation across all run() calls dumps the bundle (later
  /// violations are usually cascade noise from the same root cause) and
  /// per-invariant pass/fail counts land in the trace's CoverageMap.
  InvariantReport run() const;

 private:
  std::vector<std::pair<std::string, Check>> checks_;
  FlightRecorderConfig recorder_;
  mutable bool dumped_ = false;
};

}  // namespace dynaplat::fault
