#include "fault/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "obs/postmortem.hpp"
#include "sim/trace.hpp"

namespace dynaplat::fault {

std::string InvariantReport::summary() const {
  std::ostringstream out;
  out << (passed ? "PASS" : "FAIL") << " (" << results.size()
      << " invariants)";
  for (const InvariantResult& result : results) {
    out << "\n  [" << (result.passed ? "ok" : "VIOLATED") << "] "
        << result.name;
    if (!result.detail.empty()) out << ": " << result.detail;
  }
  return out.str();
}

void InvariantChecker::add(std::string name, Check check) {
  checks_.emplace_back(std::move(name), std::move(check));
}

void InvariantChecker::require_failover_outage_below(
    const platform::RedundancyManager& rm, sim::Duration bound) {
  add("failover_outage_below_bound", [&rm, bound](std::string& detail) {
    for (const platform::FailoverEvent& event : rm.failovers()) {
      if (event.outage > bound) {
        std::ostringstream out;
        out << "outage " << event.outage << "ns > bound " << bound
            << "ns (promoted at " << event.promoted_at << "ns)";
        detail = out.str();
        return false;
      }
    }
    return true;
  });
}

void InvariantChecker::require_no_da_deadline_misses(
    platform::DynamicPlatform& platform) {
  add("zero_da_deadline_misses", [&platform](std::string& detail) {
    for (const std::string& ecu_name : platform.node_names()) {
      platform::PlatformNode* node = platform.node(ecu_name);
      if (node == nullptr) continue;
      for (const std::string& label : node->running_instances()) {
        const platform::AppInstance* inst = node->instance(label);
        if (inst == nullptr ||
            inst->def.app_class != model::AppClass::kDeterministic) {
          continue;
        }
        const os::Processor& cpu = node->ecu().processor(inst->core);
        for (os::TaskId task : inst->tasks) {
          // A crash-rebuilt processor no longer knows pre-crash tasks;
          // the surviving replicas carry the deadline claim.
          if (!cpu.has_task(task)) continue;
          const std::uint64_t misses = cpu.stats(task).deadline_misses;
          if (misses > 0) {
            std::ostringstream out;
            out << label << " on " << ecu_name << ": " << misses
                << " deadline miss(es)";
            detail = out.str();
            return false;
          }
        }
      }
    }
    return true;
  });
}

void InvariantChecker::require_faults_detected(
    const FaultCampaign& campaign, platform::DynamicPlatform& platform,
    const platform::RedundancyManager* rm, sim::Duration detection_window) {
  add("injected_faults_detected",
      [&campaign, &platform, rm, detection_window](std::string& detail) {
        const std::vector<std::string> replicas =
            rm != nullptr ? rm->replica_ecus() : std::vector<std::string>{};
        // Reconstruct which replica led at time t from the failover log:
        // rank 0 leads initially, each failover hands over to new_primary.
        const auto primary_at = [&](sim::Time t) -> std::string {
          std::string primary = replicas.empty() ? std::string{} : replicas[0];
          for (const platform::FailoverEvent& failover : rm->failovers()) {
            if (failover.detected_at > t) break;
            for (const std::string& name : replicas) {
              platform::PlatformNode* node = platform.node(name);
              if (node != nullptr &&
                  node->ecu().node_id() == failover.new_primary) {
                primary = name;
                break;
              }
            }
          }
          return primary;
        };
        for (const FaultEvent& event : campaign.injected()) {
          if (event.kind == FaultKind::kTaskOverrun) {
            // Target label is "<ecu>/<task>"; the ECU's monitor must have
            // raised at least one fault after the injection.
            const std::string ecu_name =
                event.target.substr(0, event.target.find('/'));
            platform::PlatformNode* node = platform.node(ecu_name);
            if (node == nullptr) continue;
            const auto& faults = node->monitor().faults();
            const bool seen = std::any_of(
                faults.begin(), faults.end(),
                [&event](const monitor::FaultRecord& record) {
                  return record.at >= event.at;
                });
            if (!seen) {
              detail = "task overrun on " + event.target +
                       " produced no monitor fault";
              return false;
            }
          } else if (event.kind == FaultKind::kEcuCrash && rm != nullptr) {
            if (event.target != primary_at(event.at)) {
              continue;  // standby or non-replica crash: no failover expected
            }
            if (detection_window > 0) {
              // A crash healed inside the detection window never starved
              // the standbys of enough heartbeats to react.
              bool blip = false;
              for (const FaultEvent& other : campaign.injected()) {
                if (other.kind == FaultKind::kEcuRestart &&
                    other.target == event.target && other.at >= event.at) {
                  blip = other.at - event.at <= detection_window;
                  break;
                }
              }
              if (blip) continue;
            }
            const auto& failovers = rm->failovers();
            const bool seen = std::any_of(
                failovers.begin(), failovers.end(),
                [&event](const platform::FailoverEvent& failover) {
                  return failover.detected_at >= event.at;
                });
            if (!seen) {
              detail = "crash of replica ECU " + event.target +
                       " triggered no failover";
              return false;
            }
          }
        }
        return true;
      });
}

void InvariantChecker::require_no_stranded_reassembly(
    platform::DynamicPlatform& platform) {
  add("no_stranded_reassembly", [&platform](std::string& detail) {
    for (const std::string& ecu_name : platform.node_names()) {
      platform::PlatformNode* node = platform.node(ecu_name);
      if (node == nullptr) continue;
      const std::size_t partials = node->comm().transport().partial_count();
      if (partials > 0) {
        std::ostringstream out;
        out << ecu_name << " holds " << partials
            << " partial reassembly buffer(s)";
        detail = out.str();
        return false;
      }
    }
    return true;
  });
}

void InvariantChecker::require_plan_atomicity(
    const platform::RecoveryOrchestrator& orchestrator) {
  add("recovery_plan_atomicity", [&orchestrator](std::string& detail) {
    if (orchestrator.plan_in_flight()) {
      detail = "a recovery plan is still in flight at end of run";
      return false;
    }
    for (const platform::RecoveryPlan& plan : orchestrator.plans()) {
      if (plan.status != platform::PlanStatus::kCommitted &&
          plan.status != platform::PlanStatus::kRolledBack) {
        detail = "plan#" + std::to_string(plan.id) + " finished as " +
                 platform::to_string(plan.status);
        return false;
      }
      if (plan.status == platform::PlanStatus::kRolledBack &&
          !plan.restored_exactly) {
        detail = "plan#" + std::to_string(plan.id) +
                 " rolled back but did not restore the pre-plan "
                 "deployment exactly (" +
                 plan.reason + ")";
        return false;
      }
    }
    return true;
  });
}

void InvariantChecker::require_recovery_latency_below(
    const platform::RecoveryOrchestrator& orchestrator, sim::Duration bound) {
  add("recovery_latency_below_bound", [&orchestrator,
                                       bound](std::string& detail) {
    for (const platform::RecoveryPlan& plan : orchestrator.plans()) {
      if (plan.status != platform::PlanStatus::kCommitted) continue;
      const sim::Duration latency = plan.finished_at - plan.fault_detected_at;
      if (latency > bound) {
        std::ostringstream out;
        out << "plan#" << plan.id << " committed after " << latency
            << "ns > bound " << bound << "ns";
        detail = out.str();
        return false;
      }
    }
    return true;
  });
}

void InvariantChecker::require_backend_drained(
    const ::dynaplat::backend::FleetScheduleService& service) {
  add("backend_drained", [&service](std::string& detail) {
    if (service.queue_depth() != 0) {
      std::ostringstream out;
      out << service.queue_depth() << " request(s) still outstanding at end"
          << " of run (of " << service.requests_total() << " total)";
      detail = out.str();
      return false;
    }
    return true;
  });
}

void InvariantChecker::require_no_stranded_vehicles(
    const ::dynaplat::backend::FleetDriver& fleet, sim::Duration max_unsafe) {
  add("no_stranded_vehicles", [&fleet, max_unsafe](std::string& detail) {
    if (fleet.unsafe_now() != 0) {
      std::ostringstream out;
      out << fleet.unsafe_now() << " session(s) still unsafe at end of run"
          << " (peak " << fleet.peak_unsafe() << ")";
      detail = out.str();
      return false;
    }
    if (fleet.max_unsafe_duration() > max_unsafe) {
      std::ostringstream out;
      out << "a session stayed unsafe " << fleet.max_unsafe_duration()
          << "ns > bound " << max_unsafe << "ns";
      detail = out.str();
      return false;
    }
    return true;
  });
}

void InvariantChecker::require_fleet_recovery_bounded(
    const ::dynaplat::backend::FleetDriver& fleet, sim::Duration bound) {
  add("fleet_recovery_bounded", [&fleet, bound](std::string& detail) {
    if (fleet.recoveries_outstanding() != 0) {
      std::ostringstream out;
      out << fleet.recoveries_outstanding()
          << " recovery(ies) still pending at end of run";
      detail = out.str();
      return false;
    }
    if (fleet.heal_time() > 0 && fleet.last_recovery_completed() > 0 &&
        fleet.last_recovery_completed() > fleet.heal_time() + bound) {
      std::ostringstream out;
      out << "last recovery finished "
          << (fleet.last_recovery_completed() - fleet.heal_time())
          << "ns after heal > bound " << bound << "ns";
      detail = out.str();
      return false;
    }
    return true;
  });
}

InvariantReport InvariantChecker::run() const {
  InvariantReport report;
  report.passed = true;
  for (const auto& [name, check] : checks_) {
    InvariantResult result;
    result.name = name;
    result.passed = check(result.detail);
    if (recorder_.trace != nullptr) {
      recorder_.trace->coverage().hit("invariant." + name +
                                      (result.passed ? ".pass" : ".fail"));
    }
    if (!result.passed) {
      report.passed = false;
      // First violation wins the bundle: later failures in the same run (or
      // later runs of the same checker) are usually cascade noise from the
      // same root cause, and the earliest state snapshot is the closest to it.
      // An empty path means "coverage verdicts only, no bundle" — the fuzz
      // scheduler runs thousands of campaigns and dumps bundles itself,
      // only for the failures that survive minimization.
      if (recorder_.trace != nullptr && !recorder_.path.empty() && !dumped_) {
        obs::PostMortemInput input;
        input.trace = &recorder_.trace->buffer();
        input.metrics = &recorder_.trace->metrics();
        input.coverage = &recorder_.trace->coverage();
        input.seed = recorder_.seed;
        input.verdict = result.name;
        input.detail = result.detail;
        input.trace_tail = recorder_.trace_tail;
        if (obs::write_postmortem_file(input, recorder_.path)) {
          report.bundle_path = recorder_.path;
          dumped_ = true;
        }
      }
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

}  // namespace dynaplat::fault
