#include "fault/shard.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define DYNAPLAT_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DYNAPLAT_HAS_FORK 0
#endif

namespace dynaplat::fault {

namespace {

#if DYNAPLAT_HAS_FORK

/// Parent -> child "no more work" sentinel.
constexpr std::uint64_t kQuit = ~0ull;

bool read_exact(int fd, void* buffer, std::size_t size) {
  auto* bytes = static_cast<std::uint8_t*>(buffer);
  while (size > 0) {
    const ssize_t got = ::read(fd, bytes, size);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;
    }
    bytes += got;
    size -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const void* buffer, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(buffer);
  while (size > 0) {
    const ssize_t put = ::write(fd, bytes, size);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      return false;
    }
    bytes += put;
    size -= static_cast<std::size_t>(put);
  }
  return true;
}

/// Child main loop: pull an index, run the job, stream the result back as
/// [index u64][busy_ms double][size u64][bytes]. Exits the process — never
/// returns into the caller's stack (gtest, bench main, ...).
[[noreturn]] void child_loop(int fd, const ShardJob& job) {
  for (;;) {
    std::uint64_t index = 0;
    if (!read_exact(fd, &index, sizeof(index))) ::_exit(2);
    if (index == kQuit) ::_exit(0);
    const auto started = std::chrono::steady_clock::now();
    std::string blob;
    try {
      blob = job(static_cast<std::size_t>(index));
    } catch (...) {
      ::_exit(3);  // parent sees EOF and reports the dead shard
    }
    const double busy_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    const std::uint64_t size = blob.size();
    if (!write_exact(fd, &index, sizeof(index)) ||
        !write_exact(fd, &busy_ms, sizeof(busy_ms)) ||
        !write_exact(fd, &size, sizeof(size)) ||
        !write_exact(fd, blob.data(), blob.size())) {
      ::_exit(2);
    }
  }
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  bool live = false;
};

void reap(std::vector<Worker>& workers) {
  for (Worker& worker : workers) {
    if (worker.fd >= 0) ::close(worker.fd);
    worker.fd = -1;
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }
}

#endif  // DYNAPLAT_HAS_FORK

}  // namespace

ProcessSweep::ProcessSweep(ShardConfig config) : config_(config) {}

bool ProcessSweep::supported() { return DYNAPLAT_HAS_FORK != 0; }

std::vector<std::string> ProcessSweep::run_inline(std::size_t n,
                                                  const ShardJob& job) {
  std::vector<std::string> results(n);
  stats_.jobs.assign(1, n);
  stats_.busy_ms.assign(1, 0.0);
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) results[i] = job(i);
  stats_.busy_ms[0] = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  return results;
}

std::vector<std::string> ProcessSweep::run(std::size_t n,
                                           const ShardJob& job) {
#if DYNAPLAT_HAS_FORK
  const std::size_t shards = std::min(config_.shards, n);
  if (shards < 1) return run_inline(n, job);

  std::vector<Worker> workers(shards);
  stats_.jobs.assign(shards, 0);
  stats_.busy_ms.assign(shards, 0.0);
  for (std::size_t w = 0; w < shards; ++w) {
    int pair[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
      reap(workers);
      throw std::runtime_error("ProcessSweep: socketpair failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pair[0]);
      ::close(pair[1]);
      reap(workers);
      throw std::runtime_error("ProcessSweep: fork failed");
    }
    if (pid == 0) {
      // Child: drop the parent ends we inherited, keep only our socket.
      for (const Worker& other : workers) {
        if (other.fd >= 0) ::close(other.fd);
      }
      ::close(pair[0]);
      child_loop(pair[1], job);
    }
    ::close(pair[1]);
    workers[w] = {pid, pair[0], true};
  }

  std::vector<std::string> results(n);
  std::vector<bool> done(n, false);
  std::size_t next = 0;
  std::size_t completed = 0;
  auto dispatch = [&](Worker& worker) -> bool {
    const std::uint64_t index = next < n ? next++ : kQuit;
    if (!write_exact(worker.fd, &index, sizeof(index))) return false;
    if (index == kQuit) worker.live = false;
    return true;
  };
  // Prime every worker with one job; from here on each finished job pulls
  // the next index, so fast shards naturally steal the slow shards' share.
  for (Worker& worker : workers) {
    if (!dispatch(worker)) {
      reap(workers);
      throw std::runtime_error("ProcessSweep: worker rejected first job");
    }
  }

  std::vector<pollfd> fds(shards);
  while (completed < n) {
    std::size_t live = 0;
    for (std::size_t w = 0; w < shards; ++w) {
      fds[w].fd = workers[w].live ? workers[w].fd : -1;
      fds[w].events = POLLIN;
      fds[w].revents = 0;
      if (workers[w].live) ++live;
    }
    if (live == 0) break;
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      reap(workers);
      throw std::runtime_error("ProcessSweep: poll failed");
    }
    for (std::size_t w = 0; w < shards; ++w) {
      if (!workers[w].live || (fds[w].revents & (POLLIN | POLLHUP)) == 0) {
        continue;
      }
      std::uint64_t index = 0;
      double busy_ms = 0.0;
      std::uint64_t size = 0;
      if (!read_exact(workers[w].fd, &index, sizeof(index)) ||
          !read_exact(workers[w].fd, &busy_ms, sizeof(busy_ms)) ||
          !read_exact(workers[w].fd, &size, sizeof(size)) || index >= n) {
        reap(workers);
        throw std::runtime_error("ProcessSweep: shard " + std::to_string(w) +
                                 " died mid-sweep");
      }
      std::string blob(size, '\0');
      if (!read_exact(workers[w].fd, blob.data(), blob.size())) {
        reap(workers);
        throw std::runtime_error("ProcessSweep: truncated result from shard " +
                                 std::to_string(w));
      }
      if (done[index]) {
        reap(workers);
        throw std::runtime_error("ProcessSweep: duplicate result for job " +
                                 std::to_string(index));
      }
      results[index] = std::move(blob);
      done[index] = true;
      ++completed;
      stats_.jobs[w] += 1;
      stats_.busy_ms[w] += busy_ms;
      if (!dispatch(workers[w])) {
        reap(workers);
        throw std::runtime_error("ProcessSweep: shard " + std::to_string(w) +
                                 " rejected job");
      }
    }
  }
  reap(workers);
  if (completed != n) {
    throw std::runtime_error("ProcessSweep: sweep ended with " +
                             std::to_string(n - completed) + " jobs missing");
  }
  return results;
#else
  return run_inline(n, job);
#endif
}

}  // namespace dynaplat::fault
