// Delta-debugging crash minimizer: shrinks an invariant-violating fault
// campaign to a minimal replayable repro.
//
// A fuzzer-found failure is a whole campaign plan — dozens of fault events
// over seconds of simulated time, most of them irrelevant noise around the
// one interaction that breaks the invariant. The minimizer reduces that to
// a triage-sized artifact in three deterministic passes:
//
//   1. ddmin over *episodes* (Start/End pairs kept together, via
//      fault_kind_end_of): classic delta debugging with granularity
//      doubling finds a 1-minimal episode subset that still violates the
//      same invariant.
//   2. horizon bisection: binary-searches the shortest run_until that
//      still reproduces the violation.
//   3. magnitude bisection: per surviving event, binary-searches the
//      smallest intensity that still fails.
//
// Every probe is a fresh scenario run through the caller's PlanRunner (a
// pure function of the plan — the FaultCampaign determinism contract), so
// the minimization itself is bit-reproducible: same failing campaign in,
// bit-identical minimal repro out, independent of shard count or host.
// The result serializes as a flight-recorder-style JSON bundle
// (repro_json / write_repro_file) and loads back (load_repro) for replay.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"

namespace dynaplat::fault {

/// Verdict of one minimization probe: did the scenario violate an
/// invariant, and which one.
struct ProbeVerdict {
  bool violated = false;
  std::string invariant;  ///< first violated invariant name
  std::string detail;
};

/// Runs one scenario from an explicit (scripted) plan with the given
/// horizon and reports the verdict. Must be a pure function of its inputs.
using PlanRunner = std::function<ProbeVerdict(
    const std::vector<FaultEvent>& plan, sim::Duration horizon)>;

struct MinimizeConfig {
  /// Probe budget; the minimizer returns its best-so-far when exhausted.
  std::size_t max_runs = 512;
  /// Horizon bisection stops when the bracket is narrower than this.
  sim::Duration horizon_resolution = 25 * sim::kMillisecond;
  /// Magnitude bisection steps per surviving event (0 disables the pass).
  int magnitude_steps = 4;
};

/// A minimal reproducer: the surviving plan plus the invariant it trips.
struct Repro {
  bool failing = false;  ///< false = input campaign passed; plan is empty
  std::vector<FaultEvent> plan;
  sim::Duration horizon = 0;
  std::string invariant;
  std::string detail;
  std::uint64_t seed = 0;       ///< originating campaign seed (provenance)
  std::size_t original_events = 0;
  std::size_t runs_used = 0;    ///< probes spent minimizing
};

class Minimizer {
 public:
  Minimizer(MinimizeConfig config, PlanRunner runner);

  /// Shrinks `plan` to a minimal repro of the violation it produces. When
  /// `target_invariant` is non-empty only that invariant counts as a
  /// reproduction; otherwise the first violation of the full plan pins the
  /// target, so the repro always trips the *same* invariant as the input.
  /// A passing plan returns a non-failing Repro with an empty plan.
  Repro minimize(std::vector<FaultEvent> plan, sim::Duration horizon,
                 std::string target_invariant = {});

 private:
  bool fails(const std::vector<FaultEvent>& plan, sim::Duration horizon,
             const std::string& target, std::string* detail);

  MinimizeConfig config_;
  PlanRunner runner_;
  std::size_t runs_ = 0;
};

/// Renders the repro as a flight-recorder-style JSON bundle.
std::string repro_json(const Repro& repro);
bool write_repro_file(const Repro& repro, const std::string& path);
/// Parses a repro_json() document back; returns false on malformed input.
bool load_repro(std::string_view json_text, Repro* out);

}  // namespace dynaplat::fault
