// Process-level scenario sharding: a fork-based sweep driver with a
// work-stealing job queue and index-ordered result merge.
//
// sim::ScenarioSweep parallelizes across *threads*, which is enough for
// in-process determinism A/Bs but caps out where thread scaling is capped
// (allocator contention, cgroup quotas, 1-thread CI boxes measuring pool
// overhead). ProcessSweep forks real worker processes instead: each child
// owns the whole address space copy, runs jobs one at a time, and streams
// length-prefixed result blobs back over a socketpair. The parent hands
// out job indices dynamically — an idle child pulls the next index the
// moment it finishes, which is work stealing with the queue held on the
// parent side — and stores blobs index-addressed, so the merged output is
// a pure function of the job set, bit-identical to a serial in-process
// run at any shard count.
//
// Jobs must be pure functions of their index (the ScenarioSweep contract):
// the distribution order is timing-dependent, only the index->blob mapping
// is promised. Blobs are opaque bytes; campaign sweeps serialize outcome
// JSON, the fuzzer serializes coverage snapshots + verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dynaplat::fault {

struct ShardConfig {
  /// Worker processes. 0 runs every job inline on the calling process —
  /// the same code path minus fork, so 0 vs N shards is a determinism A/B.
  std::size_t shards = 0;
};

/// Maps a job index to an opaque result blob. Runs in the child process
/// (or inline when shards == 0); must not depend on anything but `index`.
using ShardJob = std::function<std::string(std::size_t index)>;

/// Per-shard accounting from the last run(): how many jobs each worker
/// pulled and how long it was busy (child-measured, so parent-side IO wait
/// is excluded). Inline runs report one pseudo-shard.
struct ShardStats {
  std::vector<std::size_t> jobs;
  std::vector<double> busy_ms;
};

class ProcessSweep {
 public:
  explicit ProcessSweep(ShardConfig config);

  /// Runs jobs [0, n) across the worker pool (forked per call, reaped
  /// before returning) and returns the blobs in index order. Throws
  /// std::runtime_error if a worker dies or the pipe protocol breaks.
  std::vector<std::string> run(std::size_t n, const ShardJob& job);

  const ShardStats& stats() const { return stats_; }
  std::size_t shards() const { return config_.shards; }

  /// False on platforms without fork(); run() then always executes inline.
  static bool supported();

 private:
  std::vector<std::string> run_inline(std::size_t n, const ShardJob& job);

  ShardConfig config_;
  ShardStats stats_;
};

}  // namespace dynaplat::fault
