// Deterministic fault-injection campaigns (paper Sec. 2.4, Sec. 3.3/3.4).
//
// The paper's certification argument rests on exercising the platform's
// fail-operational machinery under faults *reproducibly*: "testing against
// uncertainty" needs the same campaign to produce the same fault sequence,
// failover timeline and invariant verdicts on every run. A FaultCampaign is
// therefore a pure function of (seed, registered targets, config): it first
// *plans* a time-sorted list of typed fault events, then *arms* them on the
// simulator. Nothing inside execution consumes fresh randomness, so the
// injected log — and its fingerprint — is bit-for-bit stable.
//
// Event taxonomy (each Start is paired with its End/heal in the plan):
//   kEcuCrash / kEcuRestart       — os::Ecu::fail/recover
//   kBusPartition / kBusHeal      — net::Medium::set_partition/heal_partition
//   kBabbleStart / kBabbleEnd     — babbling-idiot flooding at top priority
//   kBurstLossStart / kBurstLossEnd — Gilbert-Elliott bursty frame loss
//   kCorruptionStart / kCorruptionEnd — payload bit-flip corruption
//   kTaskOverrun / kTaskOverrunEnd — os::Processor execution-time inflation
//   kMemoryPressure / kMemoryRelease — hog process squeezing free memory
//   kBackendCrash / kBackendRestart — fleet schedule backend process loss
//   kUplinkPartition / kUplinkHeal  — vehicle <-> backend uplink severed
//   kBackendSlow / kBackendSlowEnd  — backend slow-responder latency spike
//
// Campaigns can also be scripted exactly (schedule()) — generation and
// scripting compose; the plan is always sorted before arming.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "backend/service.hpp"
#include "net/medium.hpp"
#include "os/ecu.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace dynaplat::fault {

enum class FaultKind : std::uint8_t {
  kEcuCrash,
  kEcuRestart,
  kBusPartition,
  kBusHeal,
  kBabbleStart,
  kBabbleEnd,
  kBurstLossStart,
  kBurstLossEnd,
  kCorruptionStart,
  kCorruptionEnd,
  kTaskOverrun,
  kTaskOverrunEnd,
  kMemoryPressure,
  kMemoryRelease,
  kBackendCrash,
  kBackendRestart,
  kUplinkPartition,
  kUplinkHeal,
  kBackendSlow,
  kBackendSlowEnd,
};

const char* to_string(FaultKind kind);

/// Inverse of to_string (exact match); returns false for unknown names.
/// Used by the repro/journal JSON loaders.
bool fault_kind_from_string(std::string_view name, FaultKind* out);

/// The End/heal kind paired with a Start kind (kEcuCrash -> kEcuRestart,
/// ...); returns false for kinds that are themselves End events. The
/// minimizer uses this to keep Start/End pairs together as one episode.
bool fault_kind_end_of(FaultKind start, FaultKind* end);

struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kEcuCrash;
  /// ECU name, medium name, or overrun-target label (see add_overrun_target).
  std::string target;
  /// Kind-specific intensity: burst/corruption loss probability, overrun
  /// scale factor, memory-pressure fraction of free bytes, babble frames
  /// per millisecond.
  double magnitude = 0.0;
  /// Partition island (kBusPartition only); empty lets the engine carve
  /// half of the attached nodes deterministically.
  std::set<net::NodeId> island;
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  /// Campaign window: events are planned in [start, start + horizon].
  sim::Time start = 0;
  sim::Duration horizon = 1 * sim::kSecond;
  /// Number of random fault episodes generate() plans (each episode is a
  /// Start/End pair). Scripted events via schedule() come on top.
  int episodes = 8;
  /// Episode duration range.
  sim::Duration min_duration = 20 * sim::kMillisecond;
  sim::Duration max_duration = 200 * sim::kMillisecond;
  /// Relative weights per episode family; 0 disables a family. Families
  /// without a registered target are skipped regardless of weight.
  double weight_crash = 1.0;
  double weight_partition = 1.0;
  double weight_babble = 1.0;
  double weight_burst = 1.0;
  double weight_corruption = 1.0;
  double weight_overrun = 1.0;
  double weight_memory = 1.0;
  /// Backend-fault families (need an add_backend target). Default 0.0 so
  /// existing seeds keep bit-identical draw sequences — same identity
  /// pattern as magnitude_scale: a zero-weight family never enters the
  /// family list, so nothing about the legacy plan changes.
  double weight_backend_crash = 0.0;
  double weight_uplink = 0.0;
  double weight_backend_slow = 0.0;
  /// Post-draw scale applied to generated episode magnitudes (burst loss
  /// probability, babble rate, corruption rate, overrun factor, memory
  /// fraction), clamped to each family's sane range. The RNG draw sequence
  /// is untouched, so 1.0 is the exact identity: legacy plans and
  /// fingerprints are bit-for-bit unchanged. The fuzzer mutates this to
  /// push intensities past what the seeded ranges alone can reach.
  double magnitude_scale = 1.0;
  /// Overrides the island size of generated bus partitions as a fraction
  /// of the attached nodes (clamped to [1, n-1]); 0 keeps the seeded
  /// random island size. Again draw-sequence-neutral, so 0 is the exact
  /// identity. Lets the fuzzer steer partition topology.
  double partition_fraction = 0.0;
};

class FaultCampaign {
 public:
  FaultCampaign(sim::Simulator& simulator, CampaignConfig config = {});
  ~FaultCampaign();
  FaultCampaign(const FaultCampaign&) = delete;
  FaultCampaign& operator=(const FaultCampaign&) = delete;

  // --- Target registration (order matters: it is part of the seed contract) --
  void add_ecu(os::Ecu& ecu);
  void add_medium(net::Medium& medium);
  /// Registers a fleet schedule backend for the kBackend*/kUplink*
  /// families (events address it by its name()).
  void add_backend(::dynaplat::backend::FleetScheduleService& service);
  /// Registers a task for overrun injection under `label`
  /// (conventionally "<ecu>/<task-name>").
  void add_overrun_target(std::string label, os::Processor& processor,
                          os::TaskId task);
  /// Fault events are mirrored into this trace (kFault category, source
  /// "fault/<target>") so they land in the exporter's fault lane.
  void set_trace(sim::Trace* trace) { trace_ = trace; }

  // --- Planning --------------------------------------------------------------
  /// Appends one scripted event (its End must be scripted too if needed).
  void schedule(FaultEvent event);
  /// Plans `config.episodes` random Start/End pairs from the seed.
  void generate();
  /// Sorts the plan and schedules every event on the simulator.
  void arm();

  const std::vector<FaultEvent>& plan() const { return plan_; }
  /// Events actually executed, in execution order, stamped with sim time.
  const std::vector<FaultEvent>& injected() const { return injected_; }
  /// FNV-1a fingerprint of the injected log: equal seeds + equal targets
  /// must yield equal fingerprints across runs (reproducibility check).
  std::uint64_t fingerprint() const;

  /// Number of injected events of one kind (invariant-checker helper).
  std::size_t injected_count(FaultKind kind) const;

 private:
  void execute(const FaultEvent& event);
  os::Ecu* ecu_by_name(const std::string& name);
  net::Medium* medium_by_name(const std::string& name);
  ::dynaplat::backend::FleetScheduleService* backend_by_name(
      const std::string& name);
  void start_babble(net::Medium& medium, double frames_per_ms);
  void stop_babble(const std::string& medium_name);
  void sort_plan();

  struct OverrunTarget {
    os::Processor* processor = nullptr;
    os::TaskId task = os::kInvalidTask;
  };
  struct Babbler {
    sim::EventId timer;
  };
  struct MemoryHog {
    os::Ecu* ecu = nullptr;
    os::ProcessId process = os::kInvalidProcess;
  };

  sim::Simulator& sim_;
  CampaignConfig config_;
  std::vector<os::Ecu*> ecus_;
  std::vector<net::Medium*> media_;
  std::vector<::dynaplat::backend::FleetScheduleService*> backends_;
  std::vector<std::pair<std::string, OverrunTarget>> overruns_;
  std::vector<FaultEvent> plan_;
  std::vector<FaultEvent> injected_;
  std::map<std::string, Babbler> babblers_;
  std::map<std::string, MemoryHog> hogs_;
  std::vector<sim::EventId> armed_;
  sim::Trace* trace_ = nullptr;
  bool armed_once_ = false;
};

}  // namespace dynaplat::fault
