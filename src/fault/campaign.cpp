#include "fault/campaign.hpp"

#include <algorithm>

namespace dynaplat::fault {

namespace {

// FNV-1a 64-bit, folded incrementally over the injected log.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// Node id used as the source of babbling-idiot flood frames. Outside the
/// normal allocation range, so the flood is attributable in traces.
constexpr net::NodeId kBabblerNode = 0xBABB1E;

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEcuCrash: return "ecu_crash";
    case FaultKind::kEcuRestart: return "ecu_restart";
    case FaultKind::kBusPartition: return "bus_partition";
    case FaultKind::kBusHeal: return "bus_heal";
    case FaultKind::kBabbleStart: return "babble_start";
    case FaultKind::kBabbleEnd: return "babble_end";
    case FaultKind::kBurstLossStart: return "burst_loss_start";
    case FaultKind::kBurstLossEnd: return "burst_loss_end";
    case FaultKind::kCorruptionStart: return "corruption_start";
    case FaultKind::kCorruptionEnd: return "corruption_end";
    case FaultKind::kTaskOverrun: return "task_overrun";
    case FaultKind::kTaskOverrunEnd: return "task_overrun_end";
    case FaultKind::kMemoryPressure: return "memory_pressure";
    case FaultKind::kMemoryRelease: return "memory_release";
    case FaultKind::kBackendCrash: return "backend_crash";
    case FaultKind::kBackendRestart: return "backend_restart";
    case FaultKind::kUplinkPartition: return "uplink_partition";
    case FaultKind::kUplinkHeal: return "uplink_heal";
    case FaultKind::kBackendSlow: return "backend_slow";
    case FaultKind::kBackendSlowEnd: return "backend_slow_end";
  }
  return "?";
}

bool fault_kind_from_string(std::string_view name, FaultKind* out) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kBackendSlowEnd); ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == to_string(kind)) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

bool fault_kind_end_of(FaultKind start, FaultKind* end) {
  FaultKind paired;
  switch (start) {
    case FaultKind::kEcuCrash: paired = FaultKind::kEcuRestart; break;
    case FaultKind::kBusPartition: paired = FaultKind::kBusHeal; break;
    case FaultKind::kBabbleStart: paired = FaultKind::kBabbleEnd; break;
    case FaultKind::kBurstLossStart: paired = FaultKind::kBurstLossEnd; break;
    case FaultKind::kCorruptionStart:
      paired = FaultKind::kCorruptionEnd;
      break;
    case FaultKind::kTaskOverrun: paired = FaultKind::kTaskOverrunEnd; break;
    case FaultKind::kMemoryPressure:
      paired = FaultKind::kMemoryRelease;
      break;
    case FaultKind::kBackendCrash: paired = FaultKind::kBackendRestart; break;
    case FaultKind::kUplinkPartition: paired = FaultKind::kUplinkHeal; break;
    case FaultKind::kBackendSlow: paired = FaultKind::kBackendSlowEnd; break;
    default: return false;
  }
  if (end != nullptr) *end = paired;
  return true;
}

FaultCampaign::FaultCampaign(sim::Simulator& simulator, CampaignConfig config)
    : sim_(simulator), config_(config) {}

FaultCampaign::~FaultCampaign() {
  for (auto& [name, babbler] : babblers_) sim_.cancel(babbler.timer);
  for (const auto& id : armed_) sim_.cancel(id);
}

void FaultCampaign::add_ecu(os::Ecu& ecu) { ecus_.push_back(&ecu); }

void FaultCampaign::add_medium(net::Medium& medium) {
  media_.push_back(&medium);
}

void FaultCampaign::add_backend(
    ::dynaplat::backend::FleetScheduleService& service) {
  backends_.push_back(&service);
}

void FaultCampaign::add_overrun_target(std::string label,
                                       os::Processor& processor,
                                       os::TaskId task) {
  overruns_.push_back({std::move(label), {&processor, task}});
}

void FaultCampaign::schedule(FaultEvent event) {
  plan_.push_back(std::move(event));
}

void FaultCampaign::generate() {
  sim::Random rng(config_.seed);

  // Episode families available given the registered targets.
  struct Family {
    FaultKind start;
    FaultKind end;
    double weight;
    std::size_t targets;
  };
  std::vector<Family> families;
  if (!ecus_.empty() && config_.weight_crash > 0.0) {
    families.push_back({FaultKind::kEcuCrash, FaultKind::kEcuRestart,
                        config_.weight_crash, ecus_.size()});
  }
  if (!media_.empty()) {
    if (config_.weight_partition > 0.0) {
      families.push_back({FaultKind::kBusPartition, FaultKind::kBusHeal,
                          config_.weight_partition, media_.size()});
    }
    if (config_.weight_babble > 0.0) {
      families.push_back({FaultKind::kBabbleStart, FaultKind::kBabbleEnd,
                          config_.weight_babble, media_.size()});
    }
    if (config_.weight_burst > 0.0) {
      families.push_back({FaultKind::kBurstLossStart, FaultKind::kBurstLossEnd,
                          config_.weight_burst, media_.size()});
    }
    if (config_.weight_corruption > 0.0) {
      families.push_back({FaultKind::kCorruptionStart,
                          FaultKind::kCorruptionEnd,
                          config_.weight_corruption, media_.size()});
    }
  }
  if (!overruns_.empty() && config_.weight_overrun > 0.0) {
    families.push_back({FaultKind::kTaskOverrun, FaultKind::kTaskOverrunEnd,
                        config_.weight_overrun, overruns_.size()});
  }
  if (!ecus_.empty() && config_.weight_memory > 0.0) {
    families.push_back({FaultKind::kMemoryPressure, FaultKind::kMemoryRelease,
                        config_.weight_memory, ecus_.size()});
  }
  // Backend families append *after* the legacy ones, and their weights
  // default to 0.0, so campaigns that never opt in keep bit-identical
  // family lists and draw sequences.
  if (!backends_.empty()) {
    if (config_.weight_backend_crash > 0.0) {
      families.push_back({FaultKind::kBackendCrash, FaultKind::kBackendRestart,
                          config_.weight_backend_crash, backends_.size()});
    }
    if (config_.weight_uplink > 0.0) {
      families.push_back({FaultKind::kUplinkPartition, FaultKind::kUplinkHeal,
                          config_.weight_uplink, backends_.size()});
    }
    if (config_.weight_backend_slow > 0.0) {
      families.push_back({FaultKind::kBackendSlow, FaultKind::kBackendSlowEnd,
                          config_.weight_backend_slow, backends_.size()});
    }
  }
  if (families.empty()) return;

  double total_weight = 0.0;
  for (const Family& family : families) total_weight += family.weight;

  const sim::Duration span =
      std::max<sim::Duration>(config_.max_duration, 1);
  for (int episode = 0; episode < config_.episodes; ++episode) {
    // Weighted family pick, then target / time / duration / magnitude —
    // always in this order, so the plan is a pure function of the seed.
    double roll = rng.uniform01() * total_weight;
    std::size_t pick = 0;
    while (pick + 1 < families.size() && roll >= families[pick].weight) {
      roll -= families[pick].weight;
      ++pick;
    }
    const Family& family = families[pick];
    const std::size_t target_index = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(family.targets)));
    const sim::Duration window =
        config_.horizon > span ? config_.horizon - span : 1;
    const sim::Time t0 =
        config_.start + static_cast<sim::Time>(rng.next_below(
                            static_cast<std::uint64_t>(window)));
    const sim::Duration duration =
        config_.min_duration +
        static_cast<sim::Duration>(rng.next_below(static_cast<std::uint64_t>(
            std::max<sim::Duration>(
                config_.max_duration - config_.min_duration, 1))));
    const double intensity = rng.uniform01();
    // Post-draw magnitude shaping: scale 1.0 must be the exact identity
    // (bit-for-bit legacy plans), so the clamp only engages when the
    // fuzzer actually dialed the scale away from 1.0.
    const auto shaped = [this](double base, double lo, double hi) {
      if (config_.magnitude_scale == 1.0) return base;
      return std::clamp(base * config_.magnitude_scale, lo, hi);
    };

    FaultEvent start;
    start.at = t0;
    start.kind = family.start;
    FaultEvent end;
    end.at = t0 + duration;
    end.kind = family.end;

    switch (family.start) {
      case FaultKind::kEcuCrash:
      case FaultKind::kMemoryPressure:
        start.target = end.target = ecus_[target_index]->name();
        start.magnitude = family.start == FaultKind::kMemoryPressure
                              ? shaped(0.5 + 0.4 * intensity, 0.05, 0.95)
                              : 0.0;
        break;
      case FaultKind::kBusPartition: {
        net::Medium* medium = media_[target_index];
        start.target = end.target = medium->name();
        const auto nodes = medium->attached_nodes();
        if (nodes.size() >= 2) {
          std::size_t island_size =
              1 + static_cast<std::size_t>(rng.next_below(nodes.size() - 1));
          if (config_.partition_fraction > 0.0) {
            // Draw-sequence-neutral override: the random size above was
            // still consumed, the topology bias just replaces the value.
            island_size = std::clamp<std::size_t>(
                static_cast<std::size_t>(config_.partition_fraction *
                                         static_cast<double>(nodes.size())),
                1, nodes.size() - 1);
          }
          start.island.insert(nodes.begin(),
                              nodes.begin() +
                                  static_cast<std::ptrdiff_t>(island_size));
        }
        break;
      }
      case FaultKind::kBabbleStart:
        start.target = end.target = media_[target_index]->name();
        // frames per millisecond
        start.magnitude = shaped(5.0 + 15.0 * intensity, 0.5, 200.0);
        break;
      case FaultKind::kBurstLossStart:
        start.target = end.target = media_[target_index]->name();
        // loss prob in Bad state
        start.magnitude = shaped(0.5 + 0.5 * intensity, 0.05, 0.995);
        break;
      case FaultKind::kCorruptionStart:
        start.target = end.target = media_[target_index]->name();
        start.magnitude = shaped(0.05 + 0.15 * intensity, 0.005, 0.9);
        break;
      case FaultKind::kTaskOverrun:
        start.target = end.target = overruns_[target_index].first;
        // execution-time scale
        start.magnitude = shaped(1.5 + 2.5 * intensity, 1.1, 64.0);
        break;
      case FaultKind::kBackendCrash:
      case FaultKind::kUplinkPartition:
        start.target = end.target = backends_[target_index]->name();
        break;
      case FaultKind::kBackendSlow:
        start.target = end.target = backends_[target_index]->name();
        // service-time multiplier
        start.magnitude = shaped(2.0 + 8.0 * intensity, 1.5, 100.0);
        break;
      default:
        break;
    }
    plan_.push_back(std::move(start));
    plan_.push_back(std::move(end));
  }
  sort_plan();
}

void FaultCampaign::sort_plan() {
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

void FaultCampaign::arm() {
  if (armed_once_) return;
  armed_once_ = true;
  sort_plan();
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const sim::Time at = std::max(plan_[i].at, sim_.now());
    armed_.push_back(
        sim_.schedule_at(at, [this, i] { execute(plan_[i]); }));
  }
}

os::Ecu* FaultCampaign::ecu_by_name(const std::string& name) {
  for (os::Ecu* ecu : ecus_) {
    if (ecu->name() == name) return ecu;
  }
  return nullptr;
}

net::Medium* FaultCampaign::medium_by_name(const std::string& name) {
  for (net::Medium* medium : media_) {
    if (medium->name() == name) return medium;
  }
  return nullptr;
}

::dynaplat::backend::FleetScheduleService* FaultCampaign::backend_by_name(
    const std::string& name) {
  for (::dynaplat::backend::FleetScheduleService* service : backends_) {
    if (service->name() == name) return service;
  }
  return nullptr;
}

void FaultCampaign::execute(const FaultEvent& event) {
  FaultEvent logged = event;
  logged.at = sim_.now();
  if (trace_ != nullptr) {
    if (trace_->enabled(sim::TraceCategory::kFault)) {
      trace_->record(logged.at, sim::TraceCategory::kFault,
                     "fault/" + event.target, to_string(event.kind),
                     static_cast<std::int64_t>(event.magnitude * 1000.0));
    }
    // Which fault kinds actually fired is itself state coverage: the fuzzer
    // rewards plans that exercise families a blind sweep's weights skip.
    trace_->coverage().hit(std::string("fault.injected.") +
                           to_string(event.kind));
  }

  switch (event.kind) {
    case FaultKind::kEcuCrash: {
      os::Ecu* ecu = ecu_by_name(event.target);
      if (ecu != nullptr) ecu->fail();
      break;
    }
    case FaultKind::kEcuRestart: {
      os::Ecu* ecu = ecu_by_name(event.target);
      if (ecu != nullptr) ecu->recover();
      break;
    }
    case FaultKind::kBusPartition: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium == nullptr) break;
      std::set<net::NodeId> island = event.island;
      if (island.empty()) {
        const auto nodes = medium->attached_nodes();
        // Deterministic default: the lower half of the attached ids.
        for (std::size_t i = 0; i < nodes.size() / 2; ++i) {
          island.insert(nodes[i]);
        }
      }
      if (!island.empty()) medium->set_partition(std::move(island));
      break;
    }
    case FaultKind::kBusHeal: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium != nullptr) medium->heal_partition();
      break;
    }
    case FaultKind::kBabbleStart: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium != nullptr) start_babble(*medium, event.magnitude);
      break;
    }
    case FaultKind::kBabbleEnd:
      stop_babble(event.target);
      break;
    case FaultKind::kBurstLossStart: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium == nullptr) break;
      net::GilbertElliott burst;
      burst.p_good_to_bad = 0.05;
      burst.p_bad_to_good = 0.2;
      burst.loss_good = 0.0;
      burst.loss_bad = event.magnitude;
      medium->set_burst_loss(burst);  // seed derived from the medium name
      break;
    }
    case FaultKind::kBurstLossEnd: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium != nullptr) medium->clear_loss();
      break;
    }
    case FaultKind::kCorruptionStart: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium != nullptr) medium->set_corruption(event.magnitude);
      break;
    }
    case FaultKind::kCorruptionEnd: {
      net::Medium* medium = medium_by_name(event.target);
      if (medium != nullptr) medium->set_corruption(0.0);
      break;
    }
    case FaultKind::kTaskOverrun:
    case FaultKind::kTaskOverrunEnd: {
      for (auto& [label, target] : overruns_) {
        if (label != event.target || target.processor == nullptr) continue;
        if (event.kind == FaultKind::kTaskOverrun) {
          target.processor->inject_overrun(target.task, event.magnitude);
        } else {
          target.processor->clear_overrun(target.task);
        }
      }
      break;
    }
    case FaultKind::kMemoryPressure: {
      os::Ecu* ecu = ecu_by_name(event.target);
      if (ecu == nullptr || hogs_.count(event.target) > 0) break;
      const std::size_t grab = static_cast<std::size_t>(
          static_cast<double>(ecu->memory().available()) * event.magnitude);
      if (grab == 0) break;
      const os::ProcessId hog =
          ecu->memory().create_process("__fault_hog", grab);
      if (hog == os::kInvalidProcess) break;
      ecu->memory().allocate(hog, grab);
      hogs_[event.target] = {ecu, hog};
      break;
    }
    case FaultKind::kMemoryRelease: {
      auto it = hogs_.find(event.target);
      if (it == hogs_.end()) break;
      it->second.ecu->memory().destroy_process(it->second.process);
      hogs_.erase(it);
      break;
    }
    case FaultKind::kBackendCrash: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->crash();
      break;
    }
    case FaultKind::kBackendRestart: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->restart();
      break;
    }
    case FaultKind::kUplinkPartition: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->set_partitioned(true);
      break;
    }
    case FaultKind::kUplinkHeal: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->set_partitioned(false);
      break;
    }
    case FaultKind::kBackendSlow: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->set_slow_factor(event.magnitude);
      break;
    }
    case FaultKind::kBackendSlowEnd: {
      auto* service = backend_by_name(event.target);
      if (service != nullptr) service->set_slow_factor(1.0);
      break;
    }
  }
  injected_.push_back(std::move(logged));
}

void FaultCampaign::start_babble(net::Medium& medium, double frames_per_ms) {
  const std::string& name = medium.name();
  if (babblers_.count(name) > 0) return;
  const double rate = std::max(frames_per_ms, 0.1);
  const sim::Duration period = std::max<sim::Duration>(
      static_cast<sim::Duration>(static_cast<double>(sim::kMillisecond) /
                                 rate),
      1);
  net::Medium* target = &medium;
  const std::size_t size = std::min<std::size_t>(target->max_payload(), 64);
  babblers_[name].timer = sim_.schedule_every(
      sim_.now() + period, period, [target, size] {
        // A babbling idiot floods at top priority: on CAN this starves
        // arbitration, on switched media it fills the high-priority queue.
        net::Frame frame;
        frame.flow_id = 0;
        frame.src = kBabblerNode;
        frame.dst = net::kBroadcast;
        frame.priority = net::kPriorityHighest;
        frame.payload.assign(size, 0xAA);
        target->send(std::move(frame));
      });
}

void FaultCampaign::stop_babble(const std::string& medium_name) {
  auto it = babblers_.find(medium_name);
  if (it == babblers_.end()) return;
  sim_.cancel(it->second.timer);
  babblers_.erase(it);
}

std::uint64_t FaultCampaign::fingerprint() const {
  std::uint64_t hash = kFnvOffset;
  for (const FaultEvent& event : injected_) {
    hash = fnv1a(hash, &event.at, sizeof(event.at));
    const auto kind = static_cast<std::uint8_t>(event.kind);
    hash = fnv1a(hash, &kind, sizeof(kind));
    hash = fnv1a(hash, event.target.data(), event.target.size());
    hash = fnv1a(hash, &event.magnitude, sizeof(event.magnitude));
    for (const net::NodeId node : event.island) {
      hash = fnv1a(hash, &node, sizeof(node));
    }
  }
  return hash;
}

std::size_t FaultCampaign::injected_count(FaultKind kind) const {
  std::size_t count = 0;
  for (const FaultEvent& event : injected_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

}  // namespace dynaplat::fault
