// Coverage-guided chaos fuzzer: searches the campaign-configuration space
// instead of blindly enumerating seeds.
//
// PR 3-5 built seed-deterministic fault campaigns and a parallel seed
// sweep, but a blind sweep spends almost all its compute re-visiting the
// same platform states — the paper's "million scenarios" claim needs the
// scenarios to be *different*. obs::CoverageMap (PR 7) records exactly
// which states a run reached: degradation edges, recovery/update phases,
// invariant verdicts, transport edge paths, injected fault kinds. This
// scheduler treats a CampaignConfig (seed + fault-type mix + timing +
// magnitudes + partition topology) as a corpus entry, scores every run by
// the coverage it adds, and mutates high-yield entries toward unexplored
// states — AFL's loop, with campaign plans instead of byte buffers.
//
// The search is batch-synchronous so it stays seed-deterministic AND
// shardable: each round derives its candidate batch from the corpus state
// at round start via Random::stream(master_seed, round) only, the batch
// runs anywhere (inline, or fanned across ProcessSweep worker processes),
// and results merge in index order. Same master seed => bit-identical
// corpus, journal and coverage at any shard count. The journal serializes
// every candidate (parent, operator, full config, verdict), so a campaign
// found at round 37 replays from the journal alone.
//
// Failing candidates (invariant violations) are retained for the
// delta-debugging minimizer (fault/minimize.hpp) to shrink into repro
// bundles.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/shard.hpp"
#include "obs/coverage.hpp"

namespace dynaplat::fault {

/// What one campaign run reports back to the scheduler. The runner must be
/// a pure function of the config (the FaultCampaign determinism contract):
/// the fuzzer replays, journals and process-shards on that assumption.
struct FuzzRunResult {
  obs::CoverageMap coverage;
  std::uint64_t fingerprint = 0;
  bool invariants_passed = true;
  std::string violated;  ///< first violated invariant, empty when passed
  std::string detail;
};

using ScenarioRunner = std::function<FuzzRunResult(const CampaignConfig&)>;

/// Mutation operators over a corpus entry's CampaignConfig.
enum class MutationOp : std::uint8_t {
  kSeedEntry,     ///< corpus bootstrap (journal bookkeeping, not a mutation)
  kReseed,        ///< fresh campaign seed
  kSpliceSeeds,   ///< seed derived from two parents via Random::stream
  kFaultMix,      ///< rescale one fault-family weight
  kEpisodes,      ///< episode-count jitter
  kTiming,        ///< episode duration-range jitter
  kHorizon,       ///< campaign window jitter
  kMagnitude,     ///< post-draw magnitude_scale jitter
  kPartition,     ///< partition_fraction (island topology) jitter
};

const char* to_string(MutationOp op);

struct FuzzConfig {
  std::uint64_t master_seed = 1;
  /// Corpus entry 0; the blind-sweep baseline starts from the same config,
  /// so fuzz-vs-blind A/Bs compare search, not starting points.
  CampaignConfig base;
  int rounds = 8;
  int batch = 8;  ///< candidates per round (the shardable unit)
  std::size_t max_corpus = 64;
  std::size_t max_failures = 16;  ///< failing configs retained for triage
  /// ProcessSweep worker processes per round; 0 runs candidates inline.
  /// Results are identical either way (index-ordered merge).
  std::size_t shards = 0;
};

struct CorpusEntry {
  CampaignConfig config;
  std::size_t new_edges = 0;  ///< coverage novelty when admitted (energy)
  std::uint64_t fingerprint = 0;
  int round = -1;             ///< admission round, -1 = seed entry
  std::size_t parent = 0;     ///< corpus index mutated from
  MutationOp op = MutationOp::kSeedEntry;
};

/// One failing candidate, kept verbatim for minimization.
struct FuzzFailure {
  CampaignConfig config;
  std::string violated;
  std::string detail;
  std::uint64_t fingerprint = 0;
};

/// One journal line per executed candidate — the replay record.
struct JournalRecord {
  int round = -1;
  int index = 0;  ///< position within the round's batch
  std::size_t parent = 0;
  MutationOp op = MutationOp::kSeedEntry;
  CampaignConfig config;
  std::size_t new_edges = 0;
  bool admitted = false;
  bool invariants_passed = true;
  std::string violated;
};

class FuzzScheduler {
 public:
  FuzzScheduler(FuzzConfig config, ScenarioRunner runner);

  /// Runs the configured rounds. budget_ms > 0 additionally time-boxes the
  /// search, checked at round boundaries so completed rounds stay
  /// deterministic (the journal is always a whole-round prefix).
  void run(double budget_ms = 0.0);

  /// Accumulated coverage across every executed candidate.
  const obs::CoverageMap& coverage() const { return coverage_; }
  /// Covered (nonzero-count) keys in the accumulated map.
  std::size_t unique_keys() const { return coverage_.unique_hit_count(); }
  /// unique_keys() after each executed scenario, in execution index order —
  /// the coverage-over-time curve of the search.
  const std::vector<std::size_t>& timeline() const { return timeline_; }

  const std::vector<CorpusEntry>& corpus() const { return corpus_; }
  const std::vector<FuzzFailure>& failures() const { return failures_; }
  const std::vector<JournalRecord>& journal() const { return journal_; }
  std::size_t executed() const { return executed_; }
  int rounds_completed() const { return rounds_done_; }

  /// Full search journal as one JSON document (configs inline): the replay
  /// artifact and the CI coverage-snapshot companion.
  std::string journal_json() const;

 private:
  struct Candidate {
    CampaignConfig config;
    std::size_t parent = 0;
    MutationOp op = MutationOp::kSeedEntry;
  };

  std::vector<Candidate> plan_round(int round);
  void execute_batch(int round, const std::vector<Candidate>& batch);
  void merge_result(int round, int index, const Candidate& candidate,
                    const FuzzRunResult& result);
  std::size_t pick_parent(sim::Random& rng) const;

  FuzzConfig config_;
  ScenarioRunner runner_;
  obs::CoverageMap coverage_;
  /// AFL-style hit-count bucketing: per key, the highest log2 bucket any
  /// single run reached. A run that hits a known key 100x when the best
  /// was 2x still counts as novelty.
  std::vector<std::uint8_t> best_bucket_;  // indexed by coverage_ key index
  std::vector<CorpusEntry> corpus_;
  std::vector<FuzzFailure> failures_;
  std::vector<JournalRecord> journal_;
  std::vector<std::size_t> timeline_;
  std::size_t executed_ = 0;
  int rounds_done_ = 0;
  bool bootstrapped_ = false;
};

/// CampaignConfig <-> JSON (journal records, repro bundles, CLI replay).
std::string campaign_config_json(const CampaignConfig& config);
bool campaign_config_from_json(std::string_view json_text,
                               CampaignConfig* out);

}  // namespace dynaplat::fault
