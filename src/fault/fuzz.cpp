#include "fault/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

namespace dynaplat::fault {

namespace {

/// Salt separating the mutation-RNG stream family from every other
/// Random::stream user (sweep indices, DSE chains, ...).
constexpr std::uint64_t kFuzzSalt = 0x46555A5Aull;  // "FUZZ"

/// AFL-style hit-count bucket: the bit width of the per-run count, so
/// 1, 2-3, 4-7, 8-15, ... are distinct "edges".
std::uint8_t bucket_of(std::uint64_t count) {
  std::uint8_t width = 0;
  while (count > 0) {
    ++width;
    count >>= 1;
  }
  return width;
}

std::string u64_hex(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string fmt_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string encode_result(const FuzzRunResult& result) {
  std::string out = "{\"fp\":\"" + u64_hex(result.fingerprint) +
                    "\",\"passed\":";
  out += result.invariants_passed ? "true" : "false";
  out += ",\"violated\":\"" + obs::json::escape(result.violated) +
         "\",\"detail\":\"" + obs::json::escape(result.detail) +
         "\",\"cov\":" + result.coverage.snapshot_json() + "}";
  return out;
}

bool decode_result(const std::string& blob, FuzzRunResult* out) {
  obs::json::Value doc;
  if (!obs::json::parse(blob, &doc) || !doc.is_object()) return false;
  FuzzRunResult result;
  result.fingerprint =
      std::strtoull(doc.at("fp").string.c_str(), nullptr, 16);
  result.invariants_passed = doc.at("passed").boolean;
  result.violated = doc.at("violated").string;
  result.detail = doc.at("detail").string;
  const obs::json::Value& cov = doc.at("cov");
  if (!cov.is_object()) return false;
  // std::map iterates sorted by key — the same interning order
  // merge_snapshot_json produces, so sharded and inline maps agree.
  for (const auto& [name, value] : cov.object) {
    if (!value.is_number()) return false;
    const auto count = static_cast<std::uint64_t>(std::llround(value.number));
    if (count == 0) {
      result.coverage.key(name);
    } else {
      result.coverage.hit(result.coverage.key(name), count);
    }
  }
  *out = std::move(result);
  return true;
}

}  // namespace

const char* to_string(MutationOp op) {
  switch (op) {
    case MutationOp::kSeedEntry: return "seed_entry";
    case MutationOp::kReseed: return "reseed";
    case MutationOp::kSpliceSeeds: return "splice_seeds";
    case MutationOp::kFaultMix: return "fault_mix";
    case MutationOp::kEpisodes: return "episodes";
    case MutationOp::kTiming: return "timing";
    case MutationOp::kHorizon: return "horizon";
    case MutationOp::kMagnitude: return "magnitude";
    case MutationOp::kPartition: return "partition";
  }
  return "?";
}

FuzzScheduler::FuzzScheduler(FuzzConfig config, ScenarioRunner runner)
    : config_(config), runner_(std::move(runner)) {}

std::size_t FuzzScheduler::pick_parent(sim::Random& rng) const {
  std::uint64_t total = 0;
  for (const CorpusEntry& entry : corpus_) {
    total += 1 + std::min<std::uint64_t>(entry.new_edges, 64);
  }
  std::uint64_t roll = rng.next_below(total);
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    const std::uint64_t weight =
        1 + std::min<std::uint64_t>(corpus_[i].new_edges, 64);
    if (roll < weight) return i;
    roll -= weight;
  }
  return 0;
}

std::vector<FuzzScheduler::Candidate> FuzzScheduler::plan_round(int round) {
  // Candidate generation depends ONLY on (master seed, round, corpus state
  // at round start): this is what makes the search deterministic at any
  // shard count — execution order inside the batch cannot feed back.
  sim::Random rng = sim::Random::stream(config_.master_seed ^ kFuzzSalt,
                                        static_cast<std::uint64_t>(round));
  std::vector<Candidate> batch;
  batch.reserve(static_cast<std::size_t>(config_.batch));
  for (int i = 0; i < config_.batch; ++i) {
    Candidate candidate;
    candidate.parent = pick_parent(rng);
    candidate.config = corpus_[candidate.parent].config;
    CampaignConfig& mutated = candidate.config;
    // Draw order is fixed per operator — part of the replay contract.
    switch (rng.next_below(8)) {
      case 0:
        candidate.op = MutationOp::kReseed;
        mutated.seed = rng.next_u64();
        break;
      case 1: {
        candidate.op = MutationOp::kSpliceSeeds;
        const CorpusEntry& other = corpus_[static_cast<std::size_t>(
            rng.next_below(corpus_.size()))];
        // Splice via the stream derivation: a pure, collision-guarded
        // function of both parent seeds (see Random::stream).
        mutated.seed =
            sim::Random::stream(mutated.seed, other.config.seed).next_u64();
        break;
      }
      case 2: {
        candidate.op = MutationOp::kFaultMix;
        double* weights[] = {&mutated.weight_crash, &mutated.weight_partition,
                             &mutated.weight_babble, &mutated.weight_burst,
                             &mutated.weight_corruption,
                             &mutated.weight_overrun, &mutated.weight_memory};
        // Skewed high on purpose: a family enabled at a whisper (0.25 vs
        // six families at 1.0) rarely wins an episode, so the run yields
        // no new coverage and the search never learns the family exists.
        constexpr double kLevels[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
        double* chosen = weights[rng.next_below(7)];
        *chosen = kLevels[rng.next_below(6)];
        break;
      }
      case 3:
        candidate.op = MutationOp::kEpisodes;
        mutated.episodes = std::clamp<int>(
            mutated.episodes +
                static_cast<int>(rng.uniform_int(-3, 4)),
            1, 24);
        break;
      case 4: {
        candidate.op = MutationOp::kTiming;
        const double factor = std::exp2(rng.uniform(-1.0, 1.0));
        mutated.min_duration = std::clamp<sim::Duration>(
            static_cast<sim::Duration>(
                static_cast<double>(mutated.min_duration) * factor),
            1 * sim::kMillisecond, 250 * sim::kMillisecond);
        mutated.max_duration = std::clamp<sim::Duration>(
            static_cast<sim::Duration>(
                static_cast<double>(mutated.max_duration) * factor),
            mutated.min_duration + sim::kMillisecond, 500 * sim::kMillisecond);
        break;
      }
      case 5: {
        candidate.op = MutationOp::kHorizon;
        const double factor = std::exp2(rng.uniform(-0.5, 0.75));
        mutated.horizon = std::clamp<sim::Duration>(
            static_cast<sim::Duration>(
                static_cast<double>(mutated.horizon) * factor),
            500 * sim::kMillisecond, 5 * sim::kSecond);
        break;
      }
      case 6:
        candidate.op = MutationOp::kMagnitude;
        mutated.magnitude_scale = std::clamp(
            mutated.magnitude_scale * std::exp2(rng.uniform(-1.0, 1.5)),
            0.25, 8.0);
        break;
      default: {
        candidate.op = MutationOp::kPartition;
        constexpr double kFractions[] = {0.0, 0.25, 0.5, 0.75};
        mutated.partition_fraction = kFractions[rng.next_below(4)];
        break;
      }
    }
    batch.push_back(std::move(candidate));
  }
  return batch;
}

void FuzzScheduler::merge_result(int round, int index,
                                 const Candidate& candidate,
                                 const FuzzRunResult& result) {
  // Novelty: keys this run covered that the whole search had not, plus
  // AFL-style hit-count bucket upgrades. Computed name-keyed, so the sum
  // is independent of either map's interning order.
  std::size_t new_edges = 0;
  result.coverage.for_each([&](std::string_view name, std::uint64_t count) {
    if (count == 0) return;
    const bool newly_covered = coverage_.count(name) == 0;
    const std::uint32_t key = coverage_.key(name);
    if (key >= best_bucket_.size()) best_bucket_.resize(key + 1, 0);
    const std::uint8_t bucket = bucket_of(count);
    if (newly_covered) {
      ++new_edges;
    } else if (bucket > best_bucket_[key]) {
      ++new_edges;
    }
    best_bucket_[key] = std::max(best_bucket_[key], bucket);
  });
  coverage_.merge_from(result.coverage);
  ++executed_;
  timeline_.push_back(coverage_.unique_hit_count());

  bool admitted = false;
  if (new_edges > 0) {
    CorpusEntry entry;
    entry.config = candidate.config;
    entry.new_edges = new_edges;
    entry.fingerprint = result.fingerprint;
    entry.round = round;
    entry.parent = candidate.parent;
    entry.op = candidate.op;
    if (corpus_.size() < config_.max_corpus) {
      corpus_.push_back(std::move(entry));
      admitted = true;
    } else if (corpus_.size() > 1) {
      // Replace the weakest non-seed entry if strictly stronger (first
      // minimum wins, so eviction is deterministic).
      std::size_t weakest = 1;
      for (std::size_t i = 2; i < corpus_.size(); ++i) {
        if (corpus_[i].new_edges < corpus_[weakest].new_edges) weakest = i;
      }
      if (corpus_[weakest].new_edges < new_edges) {
        corpus_[weakest] = std::move(entry);
        admitted = true;
      }
    }
  }
  if (!result.invariants_passed && failures_.size() < config_.max_failures) {
    failures_.push_back({candidate.config, result.violated, result.detail,
                         result.fingerprint});
  }

  JournalRecord record;
  record.round = round;
  record.index = index;
  record.parent = candidate.parent;
  record.op = candidate.op;
  record.config = candidate.config;
  record.new_edges = new_edges;
  record.admitted = admitted;
  record.invariants_passed = result.invariants_passed;
  record.violated = result.violated;
  journal_.push_back(std::move(record));
}

void FuzzScheduler::execute_batch(int round,
                                  const std::vector<Candidate>& batch) {
  if (config_.shards > 0 && ProcessSweep::supported()) {
    ProcessSweep sweep({config_.shards});
    const std::vector<std::string> blobs = sweep.run(
        batch.size(), [&](std::size_t i) {
          return encode_result(runner_(batch[i].config));
        });
    for (std::size_t i = 0; i < blobs.size(); ++i) {
      FuzzRunResult result;
      if (!decode_result(blobs[i], &result)) {
        throw std::runtime_error("FuzzScheduler: undecodable shard result");
      }
      merge_result(round, static_cast<int>(i), batch[i], result);
    }
    return;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    merge_result(round, static_cast<int>(i), batch[i],
                 runner_(batch[i].config));
  }
}

void FuzzScheduler::run(double budget_ms) {
  const auto started = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (budget_ms <= 0.0) return false;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started)
               .count() >= budget_ms;
  };
  if (!bootstrapped_) {
    Candidate seed_entry;
    seed_entry.config = config_.base;
    execute_batch(-1, {seed_entry});
    if (corpus_.empty()) {
      // A run with no coverage wiring still needs a corpus to mutate from.
      CorpusEntry entry;
      entry.config = config_.base;
      corpus_.push_back(std::move(entry));
    }
    bootstrapped_ = true;
  }
  while (rounds_done_ < config_.rounds && !out_of_time()) {
    execute_batch(rounds_done_, plan_round(rounds_done_));
    ++rounds_done_;
  }
}

std::string FuzzScheduler::journal_json() const {
  std::string out = "{\n  \"kind\": \"dynaplat_fuzz_journal\",\n";
  out += "  \"master_seed\": \"" + u64_hex(config_.master_seed) + "\",\n";
  out += "  \"rounds_completed\": " + std::to_string(rounds_done_) + ",\n";
  out += "  \"batch\": " + std::to_string(config_.batch) + ",\n";
  out += "  \"executed\": " + std::to_string(executed_) + ",\n";
  out += "  \"unique_keys\": " + std::to_string(unique_keys()) + ",\n";
  out += "  \"base\": " + campaign_config_json(config_.base) + ",\n";
  out += "  \"records\": [";
  for (std::size_t i = 0; i < journal_.size(); ++i) {
    const JournalRecord& record = journal_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"round\": " + std::to_string(record.round) +
           ", \"index\": " + std::to_string(record.index) +
           ", \"parent\": " + std::to_string(record.parent) + ", \"op\": \"" +
           to_string(record.op) + "\", \"new_edges\": " +
           std::to_string(record.new_edges) + ", \"admitted\": " +
           (record.admitted ? "true" : "false") + ", \"passed\": " +
           (record.invariants_passed ? "true" : "false") +
           ", \"violated\": \"" + obs::json::escape(record.violated) +
           "\", \"config\": " + campaign_config_json(record.config) + "}";
  }
  out += journal_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"coverage\": " + coverage_.snapshot_json() + "\n}\n";
  return out;
}

std::string campaign_config_json(const CampaignConfig& config) {
  std::string out = "{\"seed\": \"" + u64_hex(config.seed) + "\"";
  out += ", \"start_ns\": " +
         std::to_string(static_cast<std::uint64_t>(config.start));
  out += ", \"horizon_ns\": " +
         std::to_string(static_cast<std::uint64_t>(config.horizon));
  out += ", \"episodes\": " + std::to_string(config.episodes);
  out += ", \"min_duration_ns\": " +
         std::to_string(static_cast<std::uint64_t>(config.min_duration));
  out += ", \"max_duration_ns\": " +
         std::to_string(static_cast<std::uint64_t>(config.max_duration));
  out += ", \"weight_crash\": " + fmt_double(config.weight_crash);
  out += ", \"weight_partition\": " + fmt_double(config.weight_partition);
  out += ", \"weight_babble\": " + fmt_double(config.weight_babble);
  out += ", \"weight_burst\": " + fmt_double(config.weight_burst);
  out += ", \"weight_corruption\": " + fmt_double(config.weight_corruption);
  out += ", \"weight_overrun\": " + fmt_double(config.weight_overrun);
  out += ", \"weight_memory\": " + fmt_double(config.weight_memory);
  out += ", \"magnitude_scale\": " + fmt_double(config.magnitude_scale);
  out += ", \"partition_fraction\": " + fmt_double(config.partition_fraction);
  out += "}";
  return out;
}

bool campaign_config_from_json(std::string_view json_text,
                               CampaignConfig* out) {
  obs::json::Value doc;
  if (!obs::json::parse(json_text, &doc) || !doc.is_object()) return false;
  CampaignConfig config;
  if (!doc.at("seed").is_string()) return false;
  config.seed = std::strtoull(doc.at("seed").string.c_str(), nullptr, 16);
  config.start = static_cast<sim::Time>(doc.at("start_ns").number);
  config.horizon = static_cast<sim::Duration>(doc.at("horizon_ns").number);
  config.episodes = static_cast<int>(doc.at("episodes").number);
  config.min_duration =
      static_cast<sim::Duration>(doc.at("min_duration_ns").number);
  config.max_duration =
      static_cast<sim::Duration>(doc.at("max_duration_ns").number);
  config.weight_crash = doc.at("weight_crash").number;
  config.weight_partition = doc.at("weight_partition").number;
  config.weight_babble = doc.at("weight_babble").number;
  config.weight_burst = doc.at("weight_burst").number;
  config.weight_corruption = doc.at("weight_corruption").number;
  config.weight_overrun = doc.at("weight_overrun").number;
  config.weight_memory = doc.at("weight_memory").number;
  config.magnitude_scale = doc.at("magnitude_scale").number;
  config.partition_fraction = doc.at("partition_fraction").number;
  *out = config;
  return true;
}

}  // namespace dynaplat::fault
