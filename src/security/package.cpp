#include "security/package.hpp"

#include "middleware/payload.hpp"

namespace dynaplat::security {

std::vector<std::uint8_t> PackageManifest::canonical_bytes() const {
  middleware::PayloadWriter w;
  w.str(app_name);
  w.u32(version);
  w.u64(binary_size);
  w.raw(binary_digest.data(), binary_digest.size());
  w.str(min_platform);
  return w.take();
}

SignedPackage PackageSigner::sign(std::string app_name, std::uint32_t version,
                                  std::vector<std::uint8_t> binary) const {
  SignedPackage package;
  package.manifest.app_name = std::move(app_name);
  package.manifest.version = version;
  package.manifest.binary_size = binary.size();
  package.manifest.binary_digest = crypto::Sha256::digest(binary);
  package.binary = std::move(binary);
  package.signature =
      crypto::rsa_sign(key_.priv, package.manifest.canonical_bytes());
  return package;
}

VerifyResult PackageVerifier::verify(const SignedPackage& package) const {
  if (package.binary.size() != package.manifest.binary_size) {
    return VerifyResult::kSizeMismatch;
  }
  const crypto::Digest256 digest = crypto::Sha256::digest(package.binary);
  if (!crypto::digest_equal(digest, package.manifest.binary_digest)) {
    return VerifyResult::kDigestMismatch;
  }
  if (!crypto::rsa_verify(oem_public_, package.manifest.canonical_bytes(),
                          package.signature)) {
    return VerifyResult::kBadSignature;
  }
  return VerifyResult::kOk;
}

std::uint64_t PackageVerifier::verification_cost(std::size_t binary_size,
                                                 std::size_t modulus_bits) {
  const std::uint64_t hash_cost = 20ull * binary_size;
  // Public-exponent RSA (e = 65537): ~17 modular multiplications; each is
  // O(n^2) in the modulus words. Normalized to ~2.5M instructions at 2048
  // bits on a plain in-order core.
  const std::uint64_t words = modulus_bits / 32;
  const std::uint64_t rsa_cost = 17ull * words * words * 36ull;
  return hash_cost + rsa_cost;
}

}  // namespace dynaplat::security
