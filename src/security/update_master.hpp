// Update master (paper Sec. 4.1).
//
// "Not all ECUs might have sufficient power to perform cryptographic
// operations at runtime. For such ECUs we propose to use an update master to
// which a trust relationship can be established. ... To avoid a single point
// of failure, the update master would need to be instantiated in a redundant
// fashion."
//
// The UpdateMasterService runs on strong ECUs and offers an RPC service
// (kUpdateMasterServiceId) that verifies package signatures on behalf of
// clients. A weak ECU's UpdateMasterClient ships the package manifest +
// signature (not the binary: it sends the binary digest it computed locally
// — hashing is cheap, RSA is not) and receives an HMAC-attested verdict over
// the pre-established session key. Multiple masters may offer the service on
// distinct service ids; the client tries them in order (redundancy).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "middleware/runtime.hpp"
#include "security/auth.hpp"
#include "security/package.hpp"

namespace dynaplat::security {

inline constexpr middleware::ServiceId kUpdateMasterServiceId = 0xF000;
inline constexpr middleware::ElementId kVerifyMethod = 1;

/// Server side: hosts the OEM public key on a strong ECU.
class UpdateMasterService {
 public:
  UpdateMasterService(middleware::ServiceRuntime& runtime,
                      crypto::RsaPublicKey oem_public,
                      middleware::ServiceId service_id =
                          kUpdateMasterServiceId);

  std::uint64_t verifications_served() const { return served_; }

 private:
  middleware::ServiceRuntime& runtime_;
  crypto::RsaPublicKey oem_public_;
  std::uint64_t served_ = 0;
};

/// Client side: delegates the RSA verification, paying only for hashing the
/// binary locally plus the (cheap) session-authenticated RPC.
///
/// "To avoid a single point of failure, the update master would need to be
/// instantiated in a redundant fashion" (Sec. 4.1): the client accepts a
/// prioritized list of master service ids and fails over to the next when a
/// call errors or times out.
class UpdateMasterClient {
 public:
  UpdateMasterClient(middleware::ServiceRuntime& runtime,
                     middleware::ServiceId service_id =
                         kUpdateMasterServiceId);
  UpdateMasterClient(middleware::ServiceRuntime& runtime,
                     std::vector<middleware::ServiceId> masters);

  /// Verifies `package` via the first reachable master. `done(true)` on a
  /// positive verdict; `done(false)` on rejection *or* when every master is
  /// unreachable. Hashing the binary is charged to the local CPU; the
  /// signature check runs on the chosen master's CPU.
  void verify(const SignedPackage& package, std::function<void(bool)> done);

  /// Index of the master that served the last completed verification
  /// (for observability in tests/benches); -1 if none.
  int last_master_used() const { return last_master_used_; }

 private:
  void try_master(std::size_t index,
                  std::shared_ptr<std::vector<std::uint8_t>> request,
                  std::function<void(bool)> done);

  middleware::ServiceRuntime& runtime_;
  std::vector<middleware::ServiceId> masters_;
  int last_master_used_ = -1;
};

/// Encodes manifest + signature + locally computed digest for the wire.
std::vector<std::uint8_t> encode_verify_request(
    const PackageManifest& manifest, const std::vector<std::uint8_t>& signature,
    const crypto::Digest256& local_digest);
bool decode_verify_request(const std::vector<std::uint8_t>& wire,
                           PackageManifest& manifest,
                           std::vector<std::uint8_t>& signature,
                           crypto::Digest256& local_digest);

}  // namespace dynaplat::security
