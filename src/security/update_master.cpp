#include "security/update_master.hpp"

#include <cstring>

namespace dynaplat::security {

std::vector<std::uint8_t> encode_verify_request(
    const PackageManifest& manifest,
    const std::vector<std::uint8_t>& signature,
    const crypto::Digest256& local_digest) {
  middleware::PayloadWriter w;
  w.str(manifest.app_name);
  w.u32(manifest.version);
  w.u64(manifest.binary_size);
  w.raw(manifest.binary_digest.data(), manifest.binary_digest.size());
  w.str(manifest.min_platform);
  w.blob(signature);
  w.raw(local_digest.data(), local_digest.size());
  return w.take();
}

bool decode_verify_request(const std::vector<std::uint8_t>& wire,
                           PackageManifest& manifest,
                           std::vector<std::uint8_t>& signature,
                           crypto::Digest256& local_digest) {
  try {
    middleware::PayloadReader r(wire);
    manifest.app_name = r.str();
    manifest.version = r.u32();
    manifest.binary_size = r.u64();
    for (auto& byte : manifest.binary_digest) byte = r.u8();
    manifest.min_platform = r.str();
    signature = r.blob();
    for (auto& byte : local_digest) byte = r.u8();
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

UpdateMasterService::UpdateMasterService(middleware::ServiceRuntime& runtime,
                                         crypto::RsaPublicKey oem_public,
                                         middleware::ServiceId service_id)
    : runtime_(runtime), oem_public_(std::move(oem_public)) {
  runtime_.offer(service_id);
  runtime_.provide_method(
      service_id, kVerifyMethod,
      [this](const std::vector<std::uint8_t>& request)
          -> std::vector<std::uint8_t> {
        PackageManifest manifest;
        std::vector<std::uint8_t> signature;
        crypto::Digest256 local_digest;
        if (!decode_verify_request(request, manifest, signature,
                                   local_digest)) {
          return {0};
        }
        ++served_;
        // The master charges *its own* CPU for the RSA check.
        runtime_.ecu().processor().submit(
            "verify_rsa",
            PackageVerifier::verification_cost(0),  // signature only
            6, os::TaskClass::kNonDeterministic, {});
        // Trust model: the client hashed the binary locally; the master
        // checks that digest against the signed manifest.
        const bool digest_ok =
            crypto::digest_equal(local_digest, manifest.binary_digest);
        // Only the signature is re-checked here; the binary never leaves
        // the client (it hashed locally).
        const bool signature_ok = crypto::rsa_verify(
            oem_public_, manifest.canonical_bytes(), signature);
        return {static_cast<std::uint8_t>(digest_ok && signature_ok ? 1 : 0)};
      });
}

UpdateMasterClient::UpdateMasterClient(middleware::ServiceRuntime& runtime,
                                       middleware::ServiceId service_id)
    : runtime_(runtime), masters_{service_id} {}

UpdateMasterClient::UpdateMasterClient(
    middleware::ServiceRuntime& runtime,
    std::vector<middleware::ServiceId> masters)
    : runtime_(runtime), masters_(std::move(masters)) {}

void UpdateMasterClient::try_master(
    std::size_t index, std::shared_ptr<std::vector<std::uint8_t>> request,
    std::function<void(bool)> done) {
  if (index >= masters_.size()) {
    done(false);  // every master unreachable
    return;
  }
  runtime_.call(
      masters_[index], kVerifyMethod, *request,
      [this, index, request, done = std::move(done)](
          bool ok, std::vector<std::uint8_t> response) mutable {
        if (!ok) {
          // This master is down or unreachable: fail over to the next.
          try_master(index + 1, std::move(request), std::move(done));
          return;
        }
        last_master_used_ = static_cast<int>(index);
        done(!response.empty() && response[0] == 1);
      },
      net::kPriorityHighest);
}

void UpdateMasterClient::verify(const SignedPackage& package,
                                std::function<void(bool)> done) {
  // Local hashing cost (cheap even on weak cores).
  const std::uint64_t hash_cost = 20ull * package.binary.size();
  const crypto::Digest256 local_digest =
      crypto::Sha256::digest(package.binary);
  auto request = std::make_shared<std::vector<std::uint8_t>>(
      encode_verify_request(package.manifest, package.signature,
                            local_digest));
  runtime_.ecu().processor().submit(
      "hash_pkg", hash_cost, 6, os::TaskClass::kNonDeterministic,
      [this, request = std::move(request), done = std::move(done)]() mutable {
        try_master(0, std::move(request), std::move(done));
      });
}

}  // namespace dynaplat::security
