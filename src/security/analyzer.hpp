// Probabilistic architecture security analysis (paper Sec. 5.4, [11]).
//
// Models the E/E architecture as an attack graph: components (ECUs, buses,
// apps, external interfaces) with per-step exploit probabilities, connected
// by reachability edges. A discrete-time Markov propagation computes, for a
// given attacker entry set, the probability that each component is
// compromised within k steps, and the expected time-to-compromise of
// designated assets. Used both to *rank* candidate architectures (E12) and
// to judge single components — "judge the security of the architecture or
// single components, based on the security evaluations of single
// components" [11].
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynaplat::security {

struct AttackComponent {
  std::string name;
  /// Probability that an attacker with access to a neighbour compromises
  /// this component in one step (per-step exploitability).
  double exploitability = 0.1;
  bool attacker_entry = false;  ///< e.g. telematics, OBD port
  bool asset = false;           ///< e.g. brake actuation
};

struct AttackGraph {
  std::vector<AttackComponent> components;
  /// Directed edges: compromise of `from` exposes `to`.
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  std::size_t add(AttackComponent component);
  void connect(std::size_t from, std::size_t to);
  void biconnect(std::size_t a, std::size_t b);
  std::size_t index_of(const std::string& name) const;
};

struct SecurityReport {
  /// P(compromised within horizon) per component, aligned with the graph.
  std::vector<double> compromise_probability;
  /// Expected steps until the first asset is compromised (horizon+1 if the
  /// asset survives the whole horizon with high probability).
  double expected_steps_to_asset = 0.0;
  /// Probability any asset is compromised within the horizon — the paper's
  /// single-number architecture security score (lower is better).
  double asset_risk = 0.0;
};

class SecurityAnalyzer {
 public:
  /// Propagates compromise probabilities for `horizon` steps.
  SecurityReport analyze(const AttackGraph& graph, int horizon = 50) const;

  /// Marginal value of hardening one component: asset risk delta when its
  /// exploitability is scaled by `factor` (< 1). Ranks countermeasures.
  double hardening_gain(const AttackGraph& graph, std::size_t component,
                        double factor, int horizon = 50) const;
};

}  // namespace dynaplat::security
