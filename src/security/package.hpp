// Package security (paper Sec. 4.1).
//
// A software package (app binary + metadata) ships with a signed manifest.
// The backend signs with the OEM key; ECUs verify signature and content hash
// before installation. Verification cost is expressed in CPU instructions so
// weak ECUs pay realistically more simulated time than the central platform
// (E6: the update-master delegation crossover).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace dynaplat::security {

struct PackageManifest {
  std::string app_name;
  std::uint32_t version = 1;
  std::size_t binary_size = 0;
  crypto::Digest256 binary_digest{};
  std::string min_platform;  ///< compatibility constraint

  std::vector<std::uint8_t> canonical_bytes() const;
};

struct SignedPackage {
  PackageManifest manifest;
  std::vector<std::uint8_t> binary;
  std::vector<std::uint8_t> signature;  ///< RSA over manifest bytes
};

/// Backend-side signer (holds the OEM private key).
class PackageSigner {
 public:
  explicit PackageSigner(crypto::RsaKeyPair oem_key)
      : key_(std::move(oem_key)) {}

  SignedPackage sign(std::string app_name, std::uint32_t version,
                     std::vector<std::uint8_t> binary) const;

  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

 private:
  crypto::RsaKeyPair key_;
};

enum class VerifyResult : std::uint8_t {
  kOk,
  kBadSignature,
  kDigestMismatch,
  kSizeMismatch,
};

/// ECU-side verifier (holds only the OEM public key).
class PackageVerifier {
 public:
  explicit PackageVerifier(crypto::RsaPublicKey oem_public)
      : oem_public_(std::move(oem_public)) {}

  VerifyResult verify(const SignedPackage& package) const;

  /// CPU instruction estimate for verifying a package of `binary_size`
  /// bytes: SHA-256 at ~20 instr/byte plus a fixed RSA public-exponent
  /// operation (~2.5M instr for a 2048-bit modulus, scaled by size).
  static std::uint64_t verification_cost(std::size_t binary_size,
                                         std::size_t modulus_bits = 2048);

 private:
  crypto::RsaPublicKey oem_public_;
};

}  // namespace dynaplat::security
