#include "security/analyzer.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynaplat::security {

std::size_t AttackGraph::add(AttackComponent component) {
  components.push_back(std::move(component));
  return components.size() - 1;
}

void AttackGraph::connect(std::size_t from, std::size_t to) {
  edges.emplace_back(from, to);
}

void AttackGraph::biconnect(std::size_t a, std::size_t b) {
  connect(a, b);
  connect(b, a);
}

std::size_t AttackGraph::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (components[i].name == name) return i;
  }
  throw std::out_of_range("unknown component '" + name + "'");
}

SecurityReport SecurityAnalyzer::analyze(const AttackGraph& graph,
                                         int horizon) const {
  const std::size_t n = graph.components.size();
  // p[i] = P(component i compromised by step t). Entries start compromised
  // with probability 1 (the attacker owns the entry surface).
  std::vector<double> p(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.components[i].attacker_entry) p[i] = 1.0;
  }

  // Adjacency: for each node, list of predecessors.
  std::vector<std::vector<std::size_t>> preds(n);
  for (const auto& [from, to] : graph.edges) preds[to].push_back(from);

  double survival = 1.0;  // P(no asset compromised yet)
  double expected_steps = 0.0;
  double prev_asset_prob = 0.0;

  auto asset_prob = [&](const std::vector<double>& probs) {
    double none = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (graph.components[i].asset) none *= (1.0 - probs[i]);
    }
    return 1.0 - none;
  };

  for (int step = 1; step <= horizon; ++step) {
    std::vector<double> next = p;
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] >= 1.0) continue;
      // P(at least one compromised predecessor exploits i this step).
      double no_attack = 1.0;
      for (std::size_t pred : preds[i]) {
        no_attack *= 1.0 - p[pred] * graph.components[i].exploitability;
      }
      const double attack_prob = 1.0 - no_attack;
      next[i] = p[i] + (1.0 - p[i]) * attack_prob;
    }
    p = std::move(next);
    const double now_prob = asset_prob(p);
    expected_steps += static_cast<double>(step) *
                      std::max(0.0, now_prob - prev_asset_prob);
    survival = 1.0 - now_prob;
    prev_asset_prob = now_prob;
  }

  SecurityReport report;
  report.compromise_probability = p;
  report.asset_risk = prev_asset_prob;
  // Mass that never compromises within the horizon sits at horizon+1.
  report.expected_steps_to_asset =
      expected_steps + survival * static_cast<double>(horizon + 1);
  return report;
}

double SecurityAnalyzer::hardening_gain(const AttackGraph& graph,
                                        std::size_t component, double factor,
                                        int horizon) const {
  const double before = analyze(graph, horizon).asset_risk;
  AttackGraph hardened = graph;
  hardened.components[component].exploitability *= factor;
  const double after = analyze(hardened, horizon).asset_risk;
  return before - after;
}

}  // namespace dynaplat::security
