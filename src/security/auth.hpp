// Lightweight authentication and authorization (paper Sec. 4.2, [10]).
//
// Follows the LASAN idea: expensive asymmetric cryptography only at session
// establishment, cheap symmetric HMAC tags on every message afterwards. A
// KeyServer (the vehicle's security master) registers nodes and issues
// per-pair session keys; the AuthenticationService on each ECU then
//   - tags outbound middleware messages (truncated HMAC-SHA256 in the
//     8-byte header field), and
//   - verifies + filters inbound messages,
// charging the CPU for each crypto operation so the cost asymmetry between
// per-message asymmetric auth and session HMAC auth is measurable (E7).
//
// Authorization: an AccessMatrix derived from the system model (which app
// consumes which interface) is enforced in the same inbound filter — the
// "distributed access control method ... automatically extracted from the
// modeling approach" of Sec. 4.2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "middleware/runtime.hpp"

namespace dynaplat::security {

using SessionKey = std::vector<std::uint8_t>;

/// Vehicle-central key authority. In a real vehicle this runs on the HSM of
/// a gateway ECU; here it is a passive object the per-ECU services query
/// (key distribution frames are small and rare; their latency is not the
/// object of study, the per-message costs are).
class KeyServer {
 public:
  explicit KeyServer(std::uint64_t seed) : drbg_(seed) {}

  /// Registers a node; models the one-time asymmetric handshake.
  void register_node(net::NodeId node);
  bool registered(net::NodeId node) const { return nodes_.count(node) > 0; }

  /// Session key for an (a, b) pair; created on first use. Both directions
  /// share one key. Fails (nullopt) if either node is unregistered.
  std::optional<SessionKey> session_key(net::NodeId a, net::NodeId b);

  /// Number of sessions established (cost accounting).
  std::size_t sessions() const { return keys_.size(); }

  /// Instruction cost of the asymmetric session establishment (client side):
  /// two RSA-2048 private operations' worth of work, per [10]'s handshake.
  static std::uint64_t handshake_cost() { return 120'000'000; }
  /// Instruction cost of one HMAC-SHA256 tag over `bytes` payload bytes.
  static std::uint64_t hmac_cost(std::size_t bytes) {
    return 4'000 + 20ull * bytes;
  }

 private:
  crypto::ChaCha20Drbg drbg_;
  std::set<net::NodeId> nodes_;
  std::map<std::pair<net::NodeId, net::NodeId>, SessionKey> keys_;
};

/// Access matrix: which sender node may address which service. Built from
/// the model's consumes/provides relations by the platform.
class AccessMatrix {
 public:
  void allow(net::NodeId client, middleware::ServiceId service);
  void revoke(net::NodeId client, middleware::ServiceId service);
  bool allowed(net::NodeId client, middleware::ServiceId service) const;
  /// Wildcard grant (the "data logger" case of Sec. 4.2) — audited set.
  void allow_all(net::NodeId client);
  std::size_t rules() const { return rules_.size(); }

 private:
  std::set<std::pair<net::NodeId, middleware::ServiceId>> rules_;
  std::set<net::NodeId> wildcard_;
};

enum class AuthMode : std::uint8_t {
  kNone,       ///< no tags, no checks (baseline)
  kSession,    ///< LASAN-style: HMAC with per-pair session keys
  kAsymmetric  ///< per-message RSA signature (costly baseline for E7)
};

struct AuthStats {
  std::uint64_t tagged = 0;
  std::uint64_t verified = 0;
  std::uint64_t rejected_tag = 0;
  std::uint64_t rejected_access = 0;
  std::uint64_t handshakes = 0;
};

/// Per-ECU authentication/authorization layer wired into a ServiceRuntime.
class AuthenticationService {
 public:
  AuthenticationService(middleware::ServiceRuntime& runtime,
                        KeyServer& key_server, AuthMode mode,
                        const AccessMatrix* access = nullptr);

  const AuthStats& stats() const { return stats_; }
  AuthMode mode() const { return mode_; }

  /// Truncated-HMAC tag for a header+body under the session key with `peer`.
  std::uint64_t compute_tag(const middleware::MessageHeader& header,
                            const std::vector<std::uint8_t>& body,
                            net::NodeId peer);

 private:
  std::uint64_t on_outbound(net::NodeId dst,
                            const middleware::MessageHeader& header,
                            const std::vector<std::uint8_t>& body);
  bool on_inbound(const middleware::MessageHeader& header,
                  const std::vector<std::uint8_t>& body);
  /// Charges CPU for crypto work (fire-and-forget; models throughput).
  void charge_crypto(std::uint64_t instructions);
  SessionKey* key_for(net::NodeId peer);

  middleware::ServiceRuntime& runtime_;
  KeyServer& key_server_;
  AuthMode mode_;
  const AccessMatrix* access_;
  std::map<net::NodeId, SessionKey> session_cache_;
  AuthStats stats_;
};

}  // namespace dynaplat::security
