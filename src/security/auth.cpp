#include "security/auth.hpp"

#include <cstring>

namespace dynaplat::security {

void KeyServer::register_node(net::NodeId node) { nodes_.insert(node); }

std::optional<SessionKey> KeyServer::session_key(net::NodeId a,
                                                 net::NodeId b) {
  if (!registered(a) || !registered(b)) return std::nullopt;
  const auto key_id = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = keys_.find(key_id);
  if (it == keys_.end()) {
    it = keys_.emplace(key_id, drbg_.generate(32)).first;
  }
  return it->second;
}

void AccessMatrix::allow(net::NodeId client, middleware::ServiceId service) {
  rules_.insert({client, service});
}

void AccessMatrix::revoke(net::NodeId client, middleware::ServiceId service) {
  rules_.erase({client, service});
}

void AccessMatrix::allow_all(net::NodeId client) { wildcard_.insert(client); }

bool AccessMatrix::allowed(net::NodeId client,
                           middleware::ServiceId service) const {
  return wildcard_.count(client) > 0 || rules_.count({client, service}) > 0;
}

AuthenticationService::AuthenticationService(
    middleware::ServiceRuntime& runtime, KeyServer& key_server, AuthMode mode,
    const AccessMatrix* access)
    : runtime_(runtime), key_server_(key_server), mode_(mode),
      access_(access) {
  key_server_.register_node(runtime_.node());
  if (mode_ != AuthMode::kNone || access_ != nullptr) {
    runtime_.set_outbound_tagger(
        [this](net::NodeId dst, const middleware::MessageHeader& header,
               const std::vector<std::uint8_t>& body) {
          return on_outbound(dst, header, body);
        });
    runtime_.set_inbound_filter(
        [this](const middleware::MessageHeader& header,
               const std::vector<std::uint8_t>& body) {
          return on_inbound(header, body);
        });
  }
}

void AuthenticationService::charge_crypto(std::uint64_t instructions) {
  auto& ecu = runtime_.ecu();
  if (ecu.failed() || ecu.processor().halted()) return;
  const sim::Duration cost =
      ecu.config().cpu.duration_for_crypto(instructions);
  // Fire-and-forget work item: occupies the CPU for `cost`, modelling the
  // crypto throughput ceiling without serializing the message path.
  ecu.processor().submit(
      "crypto", static_cast<std::uint64_t>(cost) * ecu.config().cpu.mips /
                    1000,
      6, os::TaskClass::kNonDeterministic, {});
}

SessionKey* AuthenticationService::key_for(net::NodeId peer) {
  auto it = session_cache_.find(peer);
  if (it == session_cache_.end()) {
    auto key = key_server_.session_key(runtime_.node(), peer);
    if (!key) return nullptr;
    // First contact with this peer: pay the asymmetric handshake once.
    charge_crypto(KeyServer::handshake_cost());
    ++stats_.handshakes;
    it = session_cache_.emplace(peer, std::move(*key)).first;
  }
  return &it->second;
}

std::uint64_t AuthenticationService::compute_tag(
    const middleware::MessageHeader& header,
    const std::vector<std::uint8_t>& body, net::NodeId peer) {
  SessionKey* key = key_for(peer);
  if (key == nullptr) return 0;
  // MAC over the authenticated header fields and the body.
  middleware::PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(header.type));
  w.u16(header.service);
  w.u16(header.element);
  w.u32(header.session);
  w.u32(header.sender);
  w.raw(body.data(), body.size());
  const crypto::Digest256 mac = crypto::hmac_sha256(*key, w.bytes());
  std::uint64_t tag;
  std::memcpy(&tag, mac.data(), sizeof(tag));
  // Reserve 0 as "untagged".
  return tag == 0 ? 1 : tag;
}

std::uint64_t AuthenticationService::on_outbound(
    net::NodeId dst, const middleware::MessageHeader& header,
    const std::vector<std::uint8_t>& body) {
  if (mode_ == AuthMode::kNone) return 0;
  // Broadcast discovery stays untagged: Offers/Finds carry no authority;
  // bindings are authorized at subscribe/call time.
  if (dst == net::kBroadcast ||
      header.type == middleware::MsgType::kOffer ||
      header.type == middleware::MsgType::kFind) {
    return 0;
  }
  ++stats_.tagged;
  if (mode_ == AuthMode::kAsymmetric) {
    // Per-message signature: pay a private-key operation per message. The
    // tag is modeled as the truncated digest; the CPU cost dominates.
    charge_crypto(60'000'000);
    const crypto::Digest256 digest =
        crypto::Sha256::digest(body.data(), body.size());
    std::uint64_t tag;
    std::memcpy(&tag, digest.data(), sizeof(tag));
    return tag == 0 ? 1 : tag;
  }
  charge_crypto(KeyServer::hmac_cost(body.size()));
  // Pairwise session key with the destination; both ends derive the same
  // key because the KeyServer canonicalizes the (a, b) pair.
  return compute_tag(header, body, dst);
}

bool AuthenticationService::on_inbound(
    const middleware::MessageHeader& header,
    const std::vector<std::uint8_t>& body) {
  // Authorization first: is this sender allowed to address this service?
  if (access_ != nullptr) {
    const bool discovery = header.type == middleware::MsgType::kOffer ||
                           header.type == middleware::MsgType::kFind;
    const bool needs_authz =
        header.type == middleware::MsgType::kSubscribe ||
        header.type == middleware::MsgType::kRequest;
    if (!discovery && needs_authz &&
        !access_->allowed(header.sender, header.service)) {
      ++stats_.rejected_access;
      return false;
    }
  }
  if (mode_ == AuthMode::kNone) return true;
  if (header.type == middleware::MsgType::kOffer ||
      header.type == middleware::MsgType::kFind) {
    return true;
  }
  if (mode_ == AuthMode::kAsymmetric) {
    charge_crypto(3'000'000);  // signature verification (public exponent)
    const crypto::Digest256 digest =
        crypto::Sha256::digest(body.data(), body.size());
    std::uint64_t tag;
    std::memcpy(&tag, digest.data(), sizeof(tag));
    if (tag == 0) tag = 1;
    if (tag != header.auth_tag) {
      ++stats_.rejected_tag;
      return false;
    }
    ++stats_.verified;
    return true;
  }
  charge_crypto(KeyServer::hmac_cost(body.size()));
  // Verify against the sender's group key (see on_outbound).
  middleware::MessageHeader copy = header;
  const std::uint64_t expected = [&] {
    SessionKey* key = key_for(header.sender);
    if (key == nullptr) return std::uint64_t{0};
    middleware::PayloadWriter w;
    w.u8(static_cast<std::uint8_t>(copy.type));
    w.u16(copy.service);
    w.u16(copy.element);
    w.u32(copy.session);
    w.u32(copy.sender);
    w.raw(body.data(), body.size());
    const crypto::Digest256 mac = crypto::hmac_sha256(*key, w.bytes());
    std::uint64_t tag;
    std::memcpy(&tag, mac.data(), sizeof(tag));
    return tag == 0 ? std::uint64_t{1} : tag;
  }();
  if (expected == 0 || expected != header.auth_tag) {
    ++stats_.rejected_tag;
    return false;
  }
  ++stats_.verified;
  return true;
}

}  // namespace dynaplat::security
