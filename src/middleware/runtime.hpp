// Service-oriented middleware runtime (one instance per ECU).
//
// Implements the paper's three communication paradigms (Sec. 2.1, Fig. 3)
// over SOME/IP-style service discovery:
//   Event   — publish/subscribe one-way notifications; producer owns the
//             interface.
//   Message — two-way request/response (RPC); the service provider owns the
//             interface.
//   Stream  — one-way sequenced continuous data with loss accounting.
//
// Dynamic binding: consumers may subscribe/call before the provider exists;
// the runtime broadcasts a Find, parks the work and flushes it when an Offer
// arrives. This is the "RTE can link services and clients dynamically during
// runtime" behaviour the paper attributes to AUTOSAR Adaptive (Sec. 5.2).
//
// Middleware processing consumes CPU via Processor::submit, so a loaded ECU
// slows its own communication stack (and the platform's isolation machinery
// is measurably necessary, E1/E2).
//
// Security integration: an outbound tagger stamps MessageHeader::auth_tag
// and an inbound filter may reject messages (authentication + authorization,
// Sec. 4.2) — wired up by security::AuthenticationService.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "middleware/message.hpp"
#include "middleware/transport.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "os/ecu.hpp"

namespace dynaplat::middleware {

struct RuntimeConfig {
  /// Route middleware processing through the CPU scheduler.
  bool charge_cpu = true;
  std::uint64_t instructions_per_message = 2000;
  std::uint64_t instructions_per_kib = 500;
  /// Priority of middleware work items (NDA class).
  int service_priority = 8;
  /// RPC timeout.
  sim::Duration call_timeout = 100 * sim::kMillisecond;
  /// How long a Find waits for an Offer before parked work fails.
  sim::Duration find_timeout = 200 * sim::kMillisecond;
  /// Segmentation/reassembly + reliability knobs (TTL eviction, CRC32 +
  /// ack/retry reliable mode). Enable `transport.reliable` on every node of
  /// a platform at once — the flag changes the unicast wire format.
  TransportConfig transport;
  /// Causal chain tracing: sample 1 in N outbound chains (publish / RPC /
  /// stream) with an obs::TraceContext on the wire. 0 disables tracing
  /// entirely; only effective when the ECU carries a sim::Trace.
  std::uint32_t trace_sample_every = 1;
};

using EventHandler =
    std::function<void(std::vector<std::uint8_t> data, net::NodeId source)>;
using StreamHandler =
    std::function<void(std::uint32_t sequence, std::vector<std::uint8_t>)>;
using MethodHandler = std::function<std::vector<std::uint8_t>(
    const std::vector<std::uint8_t>& request)>;
using ResponseHandler =
    std::function<void(bool ok, std::vector<std::uint8_t> response)>;

/// Stamps outbound headers (returns the auth tag for the message). `dst` is
/// the destination node (kBroadcast for discovery), so pairwise session keys
/// can be selected.
using OutboundTagger = std::function<std::uint64_t(
    net::NodeId dst, const MessageHeader&,
    const std::vector<std::uint8_t>& body)>;
/// Vets inbound messages; false drops the message.
using InboundFilter = std::function<bool(
    const MessageHeader&, const std::vector<std::uint8_t>& body)>;

class ServiceRuntime {
 public:
  explicit ServiceRuntime(os::Ecu& ecu, RuntimeConfig config = {});

  // --- Discovery -------------------------------------------------------------
  /// Announces this node as the provider of `service` (broadcast Offer).
  void offer(ServiceId service, std::uint32_t version = 1);
  void stop_offer(ServiceId service);
  bool offers(ServiceId service) const { return offered_.count(service) > 0; }
  /// Known provider of a service (self or learned from Offers).
  std::optional<net::NodeId> provider_of(ServiceId service) const;
  /// Learned interface version of a provider's offer.
  std::optional<std::uint32_t> provider_version(ServiceId service) const;

  /// Requires at least `min_version` of a service: Offers announcing an
  /// older version are ignored (the binding never forms — uncertainty
  /// about interface evolution is contained at discovery time).
  void require_version(ServiceId service, std::uint32_t min_version);

  /// Crash-restart recovery: forgets the learned provider of `service` and
  /// re-runs discovery, re-sending Subscribe for every local subscription
  /// once the (possibly relocated) provider answers the Find. A node that
  /// was dead while the service failed over rejoins the new provider
  /// instead of trusting its stale binding.
  void rebind(ServiceId service);
  std::uint64_t stale_offers_ignored() const { return stale_offers_; }

  // --- Event paradigm ----------------------------------------------------------
  void subscribe(ServiceId service, ElementId event, EventHandler handler);
  void unsubscribe(ServiceId service, ElementId event);
  void publish(ServiceId service, ElementId event,
               std::vector<std::uint8_t> data,
               net::Priority priority = net::kPriorityLowest);

  // --- Message paradigm (RPC) ---------------------------------------------------
  void provide_method(ServiceId service, ElementId method,
                      MethodHandler handler);
  void call(ServiceId service, ElementId method,
            std::vector<std::uint8_t> request, ResponseHandler on_response,
            net::Priority priority = net::kPriorityLowest);

  // --- Field paradigm (SOME/IP-style get/set/notify state) --------------------
  // A field is replicated state owned by the service provider: consumers
  // read it (get), request changes (set) and observe changes (notify).
  // Built from one method pair + one event per field, so it inherits the
  // transport, security and CPU-cost machinery of those paradigms.

  /// Provider side: hosts the field with an initial value.
  void provide_field(ServiceId service, ElementId field,
                     std::vector<std::uint8_t> initial_value);
  /// Current value on the provider (provider-side accessor).
  std::optional<std::vector<std::uint8_t>> field_value(ServiceId service,
                                                       ElementId field) const;
  /// Consumer side: one-shot read.
  void field_get(ServiceId service, ElementId field,
                 ResponseHandler on_value);
  /// Consumer side: request a change; responds with the accepted value.
  void field_set(ServiceId service, ElementId field,
                 std::vector<std::uint8_t> value, ResponseHandler on_result);
  /// Consumer side: notification on every change (plus one initial read).
  void subscribe_field(ServiceId service, ElementId field,
                       EventHandler on_change);

  /// Element-id encoding of a field's getter/setter/notifier; exposed for
  /// access-matrix derivation and tests.
  static ElementId field_getter(ElementId field) {
    return static_cast<ElementId>(0x8000u | field);
  }
  static ElementId field_setter(ElementId field) {
    return static_cast<ElementId>(0x9000u | field);
  }
  static ElementId field_notifier(ElementId field) {
    return static_cast<ElementId>(0xA000u | field);
  }

  // --- Stream paradigm ------------------------------------------------------------
  void subscribe_stream(ServiceId service, ElementId stream,
                        StreamHandler handler);
  void stream_send(ServiceId service, ElementId stream,
                   std::vector<std::uint8_t> data,
                   net::Priority priority = net::kPriorityLowest);
  /// Frames lost (sequence gaps) on a subscribed stream.
  std::uint64_t stream_losses(ServiceId service, ElementId stream) const;

  // --- Security hooks ----------------------------------------------------------------
  void set_outbound_tagger(OutboundTagger tagger) {
    tagger_ = std::move(tagger);
  }
  void set_inbound_filter(InboundFilter filter) {
    filter_ = std::move(filter);
  }

  // --- Introspection ------------------------------------------------------------------
  std::uint64_t messages_sent() const { return transport_.messages_sent(); }
  std::uint64_t messages_received() const {
    return transport_.messages_received();
  }
  std::uint64_t rejected_messages() const { return rejected_; }
  std::uint64_t failed_calls() const { return failed_calls_; }
  net::NodeId node() const { return ecu_.node_id(); }
  os::Ecu& ecu() { return ecu_; }

  /// The segmentation/reliability layer (retry/CRC/eviction statistics).
  Transport& transport() { return transport_; }
  const Transport& transport() const { return transport_; }

  /// Chain tracer (sampling counters); null when tracing is not wired up.
  const obs::ChainTracer* tracer() const { return tracer_.get(); }

  /// Invoked when a reliable message exhausts its retries (bounded-retry
  /// error surface; also counted in transport().delivery_failures()).
  void set_delivery_failure_handler(DeliveryFailureHandler handler) {
    transport_.set_delivery_failure_handler(std::move(handler));
  }

 private:
  struct Subscription {
    EventHandler event_handler;
    StreamHandler stream_handler;
    std::uint32_t next_sequence = 0;
    std::uint64_t losses = 0;
    bool subscribed_remotely = false;
  };

  struct PendingCall {
    ResponseHandler handler;
    sim::EventId timeout;
  };

  using Key = std::pair<ServiceId, ElementId>;

  void send_message(net::NodeId dst, MessageHeader header,
                    const std::vector<std::uint8_t>& body,
                    net::Priority priority, obs::TraceContext ctx = {});
  /// Zero-copy send: `body` is a refcounted block shared across
  /// destinations (publish/stream fan-out wraps the caller's vector once).
  void send_message_block(net::NodeId dst, MessageHeader header,
                          const net::BufferRef& body, net::Priority priority,
                          obs::TraceContext ctx = {});
  void on_message(net::NodeId src, net::Payload wire,
                  obs::TraceContext ctx = {});
  void dispatch(MessageHeader header, std::vector<std::uint8_t> body,
                const obs::TraceContext& ctx = {});
  /// Runs `fn` after charging message-processing CPU time.
  void charge(std::size_t bytes, std::function<void()> fn);
  /// Ensures a provider is known, parking `work` until the Offer arrives.
  void when_provider_known(ServiceId service, std::function<void()> work);
  void flush_parked(ServiceId service);
  std::uint32_t flow_for(ServiceId service, ElementId element) const;
  void note_failed_call() {
    ++failed_calls_;
    if (failed_calls_counter_ != nullptr) failed_calls_counter_->add();
  }

  os::Ecu& ecu_;
  RuntimeConfig config_;
  Transport transport_;
  // Chain tracing policy (sampling + hop attribution); null when the ECU
  // has no trace or trace_sample_every == 0.
  std::unique_ptr<obs::ChainTracer> tracer_;

  std::map<ServiceId, std::uint32_t> offered_;           // service -> version
  std::map<ServiceId, net::NodeId> providers_;           // learned offers
  std::map<ServiceId, std::uint32_t> provider_versions_;
  std::map<Key, std::set<net::NodeId>> remote_subscribers_;
  std::map<Key, Subscription> subscriptions_;
  std::map<Key, MethodHandler> methods_;
  std::map<Key, std::vector<std::uint8_t>> fields_;
  std::map<std::uint32_t, PendingCall> pending_calls_;
  std::map<Key, std::uint32_t> stream_sequences_;
  std::map<ServiceId, std::deque<std::function<void()>>> parked_;
  std::map<ServiceId, sim::EventId> find_timeouts_;
  std::map<ServiceId, std::uint32_t> required_versions_;
  std::uint64_t stale_offers_ = 0;

  OutboundTagger tagger_;
  InboundFilter filter_;
  std::uint32_t next_session_ = 1;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_calls_ = 0;

  // Cached instruments (registered under "mw.<ecu>.*" when the ECU carries
  // a trace); null when observability is not wired up.
  obs::Counter* offers_counter_ = nullptr;
  obs::Counter* subscribes_counter_ = nullptr;
  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* failed_calls_counter_ = nullptr;
  obs::Histogram* call_latency_ns_ = nullptr;
  obs::Histogram* bind_latency_ns_ = nullptr;
};

}  // namespace dynaplat::middleware
