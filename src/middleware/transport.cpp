#include "middleware/transport.hpp"

#include <cassert>

namespace dynaplat::middleware {

Transport::Transport(std::function<void(net::Frame)> send_frame,
                     std::size_t max_frame_payload)
    : send_frame_(std::move(send_frame)),
      max_frame_payload_(max_frame_payload) {
  assert(max_frame_payload_ > kFragmentHeader &&
         "medium payload too small for fragment header");
}

std::size_t Transport::fragments_for(std::size_t size) const {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  return size == 0 ? 1 : (size + chunk - 1) / chunk;
}

void Transport::send(net::NodeId dst, net::Priority priority,
                     std::uint32_t flow_id,
                     const std::vector<std::uint8_t>& message) {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  const std::size_t count = fragments_for(message.size());
  const std::uint16_t id = next_message_id_++;
  ++messages_sent_;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(begin + chunk, message.size());
    net::Frame frame;
    frame.dst = dst;
    frame.priority = priority;
    frame.flow_id = flow_id;
    frame.payload.reserve(kFragmentHeader + (end - begin));
    frame.payload.push_back(static_cast<std::uint8_t>(id));
    frame.payload.push_back(static_cast<std::uint8_t>(id >> 8));
    frame.payload.push_back(static_cast<std::uint8_t>(i));
    frame.payload.push_back(static_cast<std::uint8_t>(i >> 8));
    frame.payload.push_back(static_cast<std::uint8_t>(count));
    frame.payload.push_back(static_cast<std::uint8_t>(count >> 8));
    frame.payload.insert(frame.payload.end(),
                         message.begin() + static_cast<long>(begin),
                         message.begin() + static_cast<long>(end));
    send_frame_(std::move(frame));
  }
}

void Transport::on_frame(const net::Frame& frame) {
  if (frame.payload.size() < kFragmentHeader) {
    ++reassembly_failures_;
    return;
  }
  const std::uint16_t id = static_cast<std::uint16_t>(
      frame.payload[0] | (frame.payload[1] << 8));
  const std::uint16_t index = static_cast<std::uint16_t>(
      frame.payload[2] | (frame.payload[3] << 8));
  const std::uint16_t count = static_cast<std::uint16_t>(
      frame.payload[4] | (frame.payload[5] << 8));
  if (count == 0 || index >= count) {
    ++reassembly_failures_;
    return;
  }

  // Fast path: single-fragment message.
  std::vector<std::uint8_t> body(
      frame.payload.begin() + static_cast<long>(kFragmentHeader),
      frame.payload.end());
  if (count == 1) {
    ++messages_received_;
    if (handler_) handler_(frame.src, std::move(body));
    return;
  }

  const auto key = std::make_pair(frame.src, id);
  auto it = partial_.find(key);
  if (it == partial_.end()) {
    it = partial_.emplace(key, PartialMessage{}).first;
    it->second.fragments.resize(count);
  } else if (it->second.fragments.size() != count) {
    // Sender reused the id for a different message: restart reassembly.
    it->second = PartialMessage{};
    it->second.fragments.resize(count);
    ++reassembly_failures_;
  }
  PartialMessage& partial = it->second;
  if (partial.fragments[index].empty()) ++partial.received;
  partial.fragments[index] = std::move(body);

  if (partial.received == partial.fragments.size()) {
    std::vector<std::uint8_t> message;
    for (auto& fragment : partial.fragments) {
      message.insert(message.end(), fragment.begin(), fragment.end());
    }
    partial_.erase(it);
    ++messages_received_;
    if (handler_) handler_(frame.src, std::move(message));
  }
}

}  // namespace dynaplat::middleware
