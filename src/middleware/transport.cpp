#include "middleware/transport.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

namespace dynaplat::middleware {

namespace {

// Slicing-by-8 CRC32 (IEEE 802.3, reflected 0xEDB88320). Table 0 is the
// classic byte-at-a-time table; tables 1..7 shift each entry one byte
// further, so eight input bytes fold in one step. Produces bit-identical
// results to the byte loop — only the throughput changes.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const CrcTables& crc_tables() {
  static const CrcTables tables = make_crc_tables();
  return tables;
}

std::uint32_t crc32_feed(std::uint32_t crc, const std::uint8_t* data,
                         std::size_t size) {
  const CrcTables& t = crc_tables();
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    data += 8;
    size -= 8;
  }
#endif
  for (std::size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  return crc32_feed(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const net::Payload& payload, std::size_t length) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < payload.slice_count() && length > 0; ++i) {
    const net::BufferSlice& s = payload.slice(i);
    const std::size_t take = std::min<std::size_t>(s.size, length);
    crc = crc32_feed(crc, s.data(), take);
    length -= take;
  }
  return crc ^ 0xFFFFFFFFu;
}

Transport::Transport(std::function<void(net::Frame)> send_frame,
                     std::size_t max_frame_payload, sim::Simulator* simulator,
                     TransportConfig config)
    : send_frame_(std::move(send_frame)),
      max_frame_payload_(max_frame_payload),
      sim_(simulator),
      config_(config),
      retry_rng_(
          sim::Random::stream(config.jitter_seed, config.jitter_stream)) {
  assert(max_frame_payload_ > kFragmentHeader &&
         "medium payload too small for fragment header");
  if (sim_ != nullptr && config_.reassembly_ttl > 0) {
    sweep_timer_ = sim_->schedule_every(
        sim_->now() + config_.reassembly_ttl, config_.reassembly_ttl,
        [this] { evict_stale(); });
  }
}

Transport::~Transport() {
  if (sim_ == nullptr) return;
  sim_->cancel(sweep_timer_);
  for (auto& [id, pending] : pending_reliable_) sim_->cancel(pending.timer);
}

void Transport::set_coverage(obs::CoverageMap* coverage) {
  coverage_ = coverage;
  if (coverage_ == nullptr) return;
  cov_retransmit_ = coverage_->key("transport.retransmit");
  cov_dup_drop_ = coverage_->key("transport.dup_drop");
  cov_ttl_evict_ = coverage_->key("transport.ttl_evict");
  cov_coalesce_ = coverage_->key("transport.fragment_coalesce");
}

void Transport::set_metrics(obs::MetricsRegistry& metrics,
                            const std::string& prefix) {
  evictions_counter_ = &metrics.counter(prefix + "reassembly_evictions");
  retries_counter_ = &metrics.counter(prefix + "retries");
  crc_failures_counter_ = &metrics.counter(prefix + "crc_failures");
  duplicates_counter_ = &metrics.counter(prefix + "duplicates_suppressed");
  delivery_failures_counter_ = &metrics.counter(prefix + "delivery_failures");
}

std::size_t Transport::fragments_for(std::size_t size) const {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  // Single-fragment messages skip the division (runtime divisor, and this
  // sits on the per-message fast path).
  return size <= chunk ? 1 : (size + chunk - 1) / chunk;
}

net::BufferRef Transport::make_fragment_header(std::uint16_t id,
                                               std::uint16_t index,
                                               std::uint16_t count) {
  net::BufferRef header = arena_.alloc(kFragmentHeader);
  std::uint8_t* p = header->data();
  p[0] = static_cast<std::uint8_t>(id);
  p[1] = static_cast<std::uint8_t>(id >> 8);
  p[2] = static_cast<std::uint8_t>(index);
  p[3] = static_cast<std::uint8_t>(index >> 8);
  p[4] = static_cast<std::uint8_t>(count);
  p[5] = static_cast<std::uint8_t>(count >> 8);
  return header;
}

void Transport::send_fragments(std::uint16_t id, net::NodeId dst,
                               net::Priority priority, std::uint32_t flow_id,
                               const net::Payload& message, bool traced) {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  const std::size_t count = fragments_for(message.size());
  const std::uint16_t flag = traced ? kTracedFlag : 0;
  if (count == 1) {
    net::Frame frame;
    frame.dst = dst;
    frame.priority = priority;
    frame.flow_id = flow_id;
    if (message.slice_count() > 0) {
      const net::BufferSlice& first = message.slice(0);
      if (first.offset >= kFragmentHeader && first.buf->unique()) {
        // Fastest path: the chain's first block has headroom (PayloadWriter
        // reserves it) and nobody else references it, so the header is
        // written in place just before the payload bytes (skb_push). The
        // frame rides the message's own block as a single slice: no header
        // block, no extra slice, and every single-slice fast path downstream
        // fires. Retransmissions rewrite the same bytes — idempotent.
        const std::uint16_t wire_count = 1 | flag;
        std::uint8_t* p = first.buf->data() + first.offset - kFragmentHeader;
        p[0] = static_cast<std::uint8_t>(id);
        p[1] = static_cast<std::uint8_t>(id >> 8);
        p[2] = 0;
        p[3] = 0;
        p[4] = static_cast<std::uint8_t>(wire_count);
        p[5] = static_cast<std::uint8_t>(wire_count >> 8);
        net::BufferSlice merged;
        merged.buf = first.buf;
        merged.offset = first.offset - kFragmentHeader;
        merged.size = first.size + kFragmentHeader;
        frame.payload.append(std::move(merged));
        for (std::size_t i = 1; i < message.slice_count(); ++i) {
          frame.payload.append(message.slice(i));
        }
        send_frame_(std::move(frame));
        return;
      }
    }
    // Fast path: one frame = header block + the whole message chain.
    frame.payload.append(make_fragment_header(id, 0, 1 | flag), 0,
                         kFragmentHeader);
    frame.payload.append(message);
    send_frame_(std::move(frame));
    return;
  }
  burst_.clear();
  burst_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(begin + chunk, message.size());
    net::Frame frame;
    frame.dst = dst;
    frame.priority = priority;
    frame.flow_id = flow_id;
    frame.payload.append(
        make_fragment_header(id, static_cast<std::uint16_t>(i),
                             static_cast<std::uint16_t>(count) | flag),
        0, kFragmentHeader);
    frame.payload.append(message.subspan(begin, end - begin));
    burst_.push_back(std::move(frame));
  }
  if (send_batch_) {
    send_batch_(burst_);
  } else {
    for (net::Frame& frame : burst_) send_frame_(std::move(frame));
    burst_.clear();
  }
}

net::Payload Transport::prepend_context(const obs::TraceContext& ctx,
                                        net::Payload message) {
  std::uint8_t wire[obs::TraceContext::kWireSize];
  ctx.encode(wire);
  const std::size_t n = obs::TraceContext::kWireSize;
  if (message.slice_count() > 0) {
    const net::BufferSlice& first = message.slice(0);
    if (first.offset >= n && first.buf->unique()) {
      // The first block has headroom (PayloadWriter reserves enough for the
      // context *and* the fragment header below it): write in place and
      // extend the slice downward, keeping the chain single-block.
      std::memcpy(first.buf->data() + first.offset - n, wire, n);
      net::Payload out;
      net::BufferSlice merged;
      merged.buf = first.buf;
      merged.offset = first.offset - static_cast<std::uint32_t>(n);
      merged.size = first.size + static_cast<std::uint32_t>(n);
      out.append(std::move(merged));
      for (std::size_t i = 1; i < message.slice_count(); ++i) {
        out.append(message.slice(i));
      }
      return out;
    }
  }
  net::BufferRef block = arena_.alloc(n);
  std::memcpy(block->data(), wire, n);
  net::Payload out;
  out.append(std::move(block), 0, n);
  out.append(message);
  return out;
}

void Transport::send(net::NodeId dst, net::Priority priority,
                     std::uint32_t flow_id, net::Payload message,
                     obs::TraceContext ctx) {
  const std::uint16_t id = next_message_id_++;
  if (next_message_id_ == 0) next_message_id_ = 1;  // 0 never used
  ++messages_sent_;
  const bool traced = ctx.active();
  if (traced) {
    ctx.sent_ns = sim_ != nullptr ? static_cast<std::uint64_t>(sim_->now())
                                  : ctx.origin_ns;
    message = prepend_context(ctx, std::move(message));
    if (tracer_ != nullptr && ctx.sampled()) tracer_->on_send(ctx);
  }
  const bool reliable =
      config_.reliable && sim_ != nullptr && dst != net::kBroadcast;
  if (!reliable) {
    send_fragments(id, dst, priority, flow_id, message, traced);
    return;
  }
  // Reliable: append the end-to-end CRC, pin the chain for retransmission
  // (refcount, no duplicate), arm the ack timer.
  PendingReliable pending;
  pending.dst = dst;
  pending.priority = priority;
  pending.flow_id = flow_id;
  const std::uint32_t crc = crc32(message, message.size());
  net::BufferRef trailer = arena_.alloc(kCrcTrailer);
  std::uint8_t* p = trailer->data();
  p[0] = static_cast<std::uint8_t>(crc);
  p[1] = static_cast<std::uint8_t>(crc >> 8);
  p[2] = static_cast<std::uint8_t>(crc >> 16);
  p[3] = static_cast<std::uint8_t>(crc >> 24);
  pending.message = std::move(message);
  pending.message.append(trailer, 0, kCrcTrailer);
  pending.traced = traced;
  pending.backoff = config_.ack_timeout;
  auto [it, inserted] =
      pending_reliable_.insert_or_assign(id, std::move(pending));
  (void)inserted;
  send_fragments(id, dst, priority, flow_id, it->second.message, traced);
  arm_retry(id);
}

void Transport::arm_retry(std::uint16_t id) {
  auto it = pending_reliable_.find(id);
  if (it == pending_reliable_.end()) return;
  PendingReliable& pending = it->second;
  // Jitter desynchronizes peers whose losses (and therefore backoff
  // schedules) are correlated — a healed partition otherwise produces a
  // lockstep retry storm that collides all over again. pending.backoff
  // itself stays the pure exponential base so the cap logic is unchanged.
  sim::Duration delay = pending.backoff;
  if (config_.retry_jitter > 0.0) {
    const double factor =
        1.0 + config_.retry_jitter * (2.0 * retry_rng_.uniform01() - 1.0);
    delay = std::max<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(delay) * factor), 1);
  }
  pending.timer = sim_->schedule_in(delay, [this, id] {
    auto it = pending_reliable_.find(id);
    if (it == pending_reliable_.end()) return;  // acked meanwhile
    PendingReliable& pending = it->second;
    if (pending.retries >= config_.max_retries) {
      ++delivery_failures_;
      if (delivery_failures_counter_ != nullptr) {
        delivery_failures_counter_->add();
      }
      const net::NodeId dst = pending.dst;
      pending_reliable_.erase(it);
      if (on_delivery_failure_) on_delivery_failure_(dst, id);
      return;
    }
    ++pending.retries;
    ++retries_;
    if (retries_counter_ != nullptr) retries_counter_->add();
    if (coverage_ != nullptr) coverage_->hit(cov_retransmit_);
    pending.backoff = std::min<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(pending.backoff) *
                                   config_.backoff_factor),
        config_.max_backoff);
    send_fragments(id, pending.dst, pending.priority, pending.flow_id,
                   pending.message, pending.traced);
    arm_retry(id);
  });
}

void Transport::send_ack(net::NodeId dst, std::uint16_t id) {
  net::Frame frame;
  frame.dst = dst;
  frame.priority = net::kPriorityHighest;
  frame.flow_id = 0;
  // {id_lo, id_hi, control code 0 = ACK, count 0 = control frame}
  net::BufferRef header = arena_.alloc(kFragmentHeader);
  std::uint8_t* p = header->data();
  p[0] = static_cast<std::uint8_t>(id);
  p[1] = static_cast<std::uint8_t>(id >> 8);
  p[2] = p[3] = p[4] = p[5] = 0;
  frame.payload.append(header, 0, kFragmentHeader);
  ++acks_sent_;
  send_frame_(std::move(frame));
}

void Transport::on_ack(std::uint16_t id) {
  auto it = pending_reliable_.find(id);
  if (it == pending_reliable_.end()) return;  // duplicate / late ack
  if (sim_ != nullptr) sim_->cancel(it->second.timer);
  pending_reliable_.erase(it);
}

void Transport::evict_stale() {
  if (sim_ == nullptr || config_.reassembly_ttl == 0) return;
  const sim::Time now = sim_->now();
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.last_update > config_.reassembly_ttl) {
      ++reassembly_failures_;
      ++reassembly_evictions_;
      if (evictions_counter_ != nullptr) evictions_counter_->add();
      if (coverage_ != nullptr) coverage_->hit(cov_ttl_evict_);
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Transport::remember_delivery(net::NodeId src, std::uint16_t id) {
  if (config_.dedup_window == 0) return true;
  PeerHistory& history = delivered_history_[src];
  if (!history.seen) {
    history.seen = std::make_unique<std::uint64_t[]>(PeerHistory::kBitmapWords);
    std::fill_n(history.seen.get(), PeerHistory::kBitmapWords, 0);
    history.ring.resize(config_.dedup_window, 0);
  }
  std::uint64_t& word = history.seen[id >> 6];
  const std::uint64_t bit = 1ull << (id & 63);
  if ((word & bit) != 0) return false;  // duplicate
  if (history.count == history.ring.size()) {
    // Window full: forget the oldest id. Ring entries are distinct (ids are
    // only inserted when their bit is clear), so clearing is safe.
    const std::uint16_t old = history.ring[history.head];
    history.seen[old >> 6] &= ~(1ull << (old & 63));
  } else {
    ++history.count;
  }
  word |= bit;
  history.ring[history.head] = id;
  if (++history.head == history.ring.size()) history.head = 0;
  return true;
}

void Transport::deliver(net::NodeId src, net::Payload message,
                        const obs::TraceContext& ctx) {
  ++messages_received_;
  if (traced_handler_) {
    traced_handler_(src, std::move(message), ctx);
  } else if (chain_handler_) {
    chain_handler_(src, std::move(message));
  } else if (handler_) {
    handler_(src, message.to_vector());
  }
}

void Transport::complete(net::NodeId src, std::uint16_t id, bool unicast,
                         bool traced, sim::Time first_arrival,
                         net::Payload message) {
  const bool reliable = config_.reliable && sim_ != nullptr && unicast;
  if (reliable) {
    if (message.size() < kCrcTrailer) {
      ++reassembly_failures_;
      return;
    }
    const std::size_t body = message.size() - kCrcTrailer;
    const std::uint32_t expected =
        static_cast<std::uint32_t>(message.byte(body)) |
        static_cast<std::uint32_t>(message.byte(body + 1)) << 8 |
        static_cast<std::uint32_t>(message.byte(body + 2)) << 16 |
        static_cast<std::uint32_t>(message.byte(body + 3)) << 24;
    if (crc32(message, body) != expected) {
      // Corrupt: no ack, the sender's retry delivers a clean copy (the
      // pinned chain is never the mutated one — corruption copies on
      // write).
      ++crc_failures_;
      if (crc_failures_counter_ != nullptr) crc_failures_counter_->add();
      ++reassembly_failures_;
      return;
    }
    message.truncate(body);
    send_ack(src, id);
    if (!remember_delivery(src, id)) {
      // Duplicate from a retry: dropped *before* the context is accounted,
      // so a traced hop is counted exactly once.
      ++duplicates_suppressed_;
      if (duplicates_counter_ != nullptr) duplicates_counter_->add();
      if (coverage_ != nullptr) coverage_->hit(cov_dup_drop_);
      return;
    }
  }
  obs::TraceContext ctx;
  if (traced) {
    constexpr std::size_t n = obs::TraceContext::kWireSize;
    if (message.size() < n) {
      ++reassembly_failures_;
      return;
    }
    std::size_t prefix_len = 0;
    const std::uint8_t* prefix = message.contiguous_prefix(&prefix_len);
    std::uint8_t wire[n];
    if (prefix_len < n) {
      for (std::size_t i = 0; i < n; ++i) wire[i] = message.byte(i);
      prefix = wire;
    }
    ctx = obs::TraceContext::decode(prefix);
    message = message.subspan(n);
    if (tracer_ != nullptr && ctx.sampled()) {
      const std::uint64_t now =
          sim_ != nullptr ? static_cast<std::uint64_t>(sim_->now()) : 0;
      tracer_->on_receive(ctx, static_cast<std::uint64_t>(first_arrival), now);
    }
  }
  deliver(src, std::move(message), ctx);
}

void Transport::on_frame(const net::Frame& frame) {
  // TTL eviction runs on the periodic sweep timer; only sim-less transports
  // (no timer) sweep inline as a fallback.
  if (sim_ == nullptr) evict_stale();
  if (frame.payload.size() < kFragmentHeader) {
    ++reassembly_failures_;
    return;
  }
  // A fragment's first slice is its header block, so the contiguous prefix
  // covers all six bytes except after corruption linearized the chain — in
  // which case it covers the whole payload.
  std::size_t prefix_len = 0;
  const std::uint8_t* prefix = frame.payload.contiguous_prefix(&prefix_len);
  std::uint8_t header[kFragmentHeader];
  if (prefix_len < kFragmentHeader) {
    for (std::size_t i = 0; i < kFragmentHeader; ++i) {
      header[i] = frame.payload.byte(i);
    }
    prefix = header;
  }
  const std::uint16_t id =
      static_cast<std::uint16_t>(prefix[0] | (prefix[1] << 8));
  const std::uint16_t index =
      static_cast<std::uint16_t>(prefix[2] | (prefix[3] << 8));
  const std::uint16_t raw_count =
      static_cast<std::uint16_t>(prefix[4] | (prefix[5] << 8));
  if (raw_count == 0) {
    // Control frame. Code 0 = ACK; unknown codes are ignored so the wire
    // format can grow without breaking old receivers.
    if (index == 0) on_ack(id);
    return;
  }
  const bool traced = (raw_count & kTracedFlag) != 0;
  const std::uint16_t count = raw_count & static_cast<std::uint16_t>(~kTracedFlag);
  if (count == 0 || index >= count) {
    // A traced flag with a zero fragment count is malformed (corruption).
    ++reassembly_failures_;
    return;
  }
  const bool unicast = frame.dst != net::kBroadcast;
  const sim::Time now = sim_ != nullptr ? sim_->now() : 0;

  // Fragment body: a view into the frame's buffers, no copy. Single-slice
  // frames (the prepended-header fast path) skip the subspan walk.
  net::Payload body;
  if (frame.payload.slice_count() == 1) {
    const net::BufferSlice& s = frame.payload.slice(0);
    body.append(s.buf, s.offset + kFragmentHeader, s.size - kFragmentHeader);
  } else {
    body = frame.payload.subspan(kFragmentHeader);
  }
  if (count == 1) {
    complete(frame.src, id, unicast, traced, now, std::move(body));
    return;
  }

  const auto key = std::make_pair(frame.src, id);
  auto it = partial_.find(key);
  if (it == partial_.end()) {
    it = partial_.emplace(key, PartialMessage{}).first;
    it->second.fragments.resize(count);
    it->second.first_arrival = now;
  } else if (it->second.fragments.size() != count) {
    // Sender reused the id for a different message: restart reassembly.
    it->second = PartialMessage{};
    it->second.fragments.resize(count);
    it->second.first_arrival = now;
    ++reassembly_failures_;
  }
  PartialMessage& partial = it->second;
  partial.last_update = now;
  partial.unicast = unicast;
  partial.traced = traced;
  if (partial.fragments[index].empty()) ++partial.received;
  partial.fragments[index] = std::move(body);

  if (partial.received == partial.fragments.size()) {
    // Deliver the ordered chain; adjacent views of one block (fragments of
    // a single transmission) coalesce back into the original slices.
    net::Payload message;
    for (net::Payload& fragment : partial.fragments) {
      message.append(fragment);
    }
    const bool was_unicast = partial.unicast;
    const bool was_traced = partial.traced;
    const sim::Time first_arrival = partial.first_arrival;
    partial_.erase(it);
    if (coverage_ != nullptr) coverage_->hit(cov_coalesce_);
    complete(frame.src, id, was_unicast, was_traced, first_arrival,
             std::move(message));
  }
}

}  // namespace dynaplat::middleware
