#include "middleware/transport.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace dynaplat::middleware {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Transport::Transport(std::function<void(net::Frame)> send_frame,
                     std::size_t max_frame_payload, sim::Simulator* simulator,
                     TransportConfig config)
    : send_frame_(std::move(send_frame)),
      max_frame_payload_(max_frame_payload),
      sim_(simulator),
      config_(config) {
  assert(max_frame_payload_ > kFragmentHeader &&
         "medium payload too small for fragment header");
  if (sim_ != nullptr && config_.reassembly_ttl > 0) {
    sweep_timer_ = sim_->schedule_every(
        sim_->now() + config_.reassembly_ttl, config_.reassembly_ttl,
        [this] { evict_stale(); });
  }
}

Transport::~Transport() {
  if (sim_ == nullptr) return;
  sim_->cancel(sweep_timer_);
  for (auto& [id, pending] : pending_reliable_) sim_->cancel(pending.timer);
}

void Transport::set_metrics(obs::MetricsRegistry& metrics,
                            const std::string& prefix) {
  evictions_counter_ = &metrics.counter(prefix + "reassembly_evictions");
  retries_counter_ = &metrics.counter(prefix + "retries");
  crc_failures_counter_ = &metrics.counter(prefix + "crc_failures");
  duplicates_counter_ = &metrics.counter(prefix + "duplicates_suppressed");
  delivery_failures_counter_ = &metrics.counter(prefix + "delivery_failures");
}

std::size_t Transport::fragments_for(std::size_t size) const {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  return size == 0 ? 1 : (size + chunk - 1) / chunk;
}

void Transport::send_fragments(std::uint16_t id, net::NodeId dst,
                               net::Priority priority, std::uint32_t flow_id,
                               const std::vector<std::uint8_t>& message) {
  const std::size_t chunk = max_frame_payload_ - kFragmentHeader;
  const std::size_t count = fragments_for(message.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(begin + chunk, message.size());
    net::Frame frame;
    frame.dst = dst;
    frame.priority = priority;
    frame.flow_id = flow_id;
    frame.payload.reserve(kFragmentHeader + (end - begin));
    frame.payload.push_back(static_cast<std::uint8_t>(id));
    frame.payload.push_back(static_cast<std::uint8_t>(id >> 8));
    frame.payload.push_back(static_cast<std::uint8_t>(i));
    frame.payload.push_back(static_cast<std::uint8_t>(i >> 8));
    frame.payload.push_back(static_cast<std::uint8_t>(count));
    frame.payload.push_back(static_cast<std::uint8_t>(count >> 8));
    frame.payload.insert(frame.payload.end(),
                         message.begin() + static_cast<long>(begin),
                         message.begin() + static_cast<long>(end));
    send_frame_(std::move(frame));
  }
}

void Transport::send(net::NodeId dst, net::Priority priority,
                     std::uint32_t flow_id,
                     const std::vector<std::uint8_t>& message) {
  const std::uint16_t id = next_message_id_++;
  if (next_message_id_ == 0) next_message_id_ = 1;  // 0 never used
  ++messages_sent_;
  const bool reliable =
      config_.reliable && sim_ != nullptr && dst != net::kBroadcast;
  if (!reliable) {
    send_fragments(id, dst, priority, flow_id, message);
    return;
  }
  // Reliable: append the end-to-end CRC, remember the message for
  // retransmission, arm the ack timer.
  PendingReliable pending;
  pending.dst = dst;
  pending.priority = priority;
  pending.flow_id = flow_id;
  pending.message = message;
  const std::uint32_t crc = crc32(message.data(), message.size());
  pending.message.push_back(static_cast<std::uint8_t>(crc));
  pending.message.push_back(static_cast<std::uint8_t>(crc >> 8));
  pending.message.push_back(static_cast<std::uint8_t>(crc >> 16));
  pending.message.push_back(static_cast<std::uint8_t>(crc >> 24));
  pending.backoff = config_.ack_timeout;
  auto [it, inserted] = pending_reliable_.insert_or_assign(id, std::move(pending));
  (void)inserted;
  send_fragments(id, dst, priority, flow_id, it->second.message);
  arm_retry(id);
}

void Transport::arm_retry(std::uint16_t id) {
  auto it = pending_reliable_.find(id);
  if (it == pending_reliable_.end()) return;
  PendingReliable& pending = it->second;
  pending.timer = sim_->schedule_in(pending.backoff, [this, id] {
    auto it = pending_reliable_.find(id);
    if (it == pending_reliable_.end()) return;  // acked meanwhile
    PendingReliable& pending = it->second;
    if (pending.retries >= config_.max_retries) {
      ++delivery_failures_;
      if (delivery_failures_counter_ != nullptr) {
        delivery_failures_counter_->add();
      }
      const net::NodeId dst = pending.dst;
      pending_reliable_.erase(it);
      if (on_delivery_failure_) on_delivery_failure_(dst, id);
      return;
    }
    ++pending.retries;
    ++retries_;
    if (retries_counter_ != nullptr) retries_counter_->add();
    pending.backoff = std::min<sim::Duration>(
        static_cast<sim::Duration>(static_cast<double>(pending.backoff) *
                                   config_.backoff_factor),
        config_.max_backoff);
    send_fragments(id, pending.dst, pending.priority, pending.flow_id,
                   pending.message);
    arm_retry(id);
  });
}

void Transport::send_ack(net::NodeId dst, std::uint16_t id) {
  net::Frame frame;
  frame.dst = dst;
  frame.priority = net::kPriorityHighest;
  frame.flow_id = 0;
  frame.payload = {static_cast<std::uint8_t>(id),
                   static_cast<std::uint8_t>(id >> 8),
                   0, 0,   // control code 0 = ACK
                   0, 0};  // count 0 marks a control frame
  ++acks_sent_;
  send_frame_(std::move(frame));
}

void Transport::on_ack(std::uint16_t id) {
  auto it = pending_reliable_.find(id);
  if (it == pending_reliable_.end()) return;  // duplicate / late ack
  if (sim_ != nullptr) sim_->cancel(it->second.timer);
  pending_reliable_.erase(it);
}

void Transport::evict_stale() {
  if (sim_ == nullptr || config_.reassembly_ttl == 0) return;
  const sim::Time now = sim_->now();
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.last_update > config_.reassembly_ttl) {
      ++reassembly_failures_;
      ++reassembly_evictions_;
      if (evictions_counter_ != nullptr) evictions_counter_->add();
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Transport::remember_delivery(net::NodeId src, std::uint16_t id) {
  PeerHistory& history = delivered_history_[src];
  if (history.ids.count(id) > 0) return false;  // duplicate
  history.ids.insert(id);
  history.order.push_back(id);
  while (history.order.size() > config_.dedup_window) {
    history.ids.erase(history.order.front());
    history.order.pop_front();
  }
  return true;
}

void Transport::complete(net::NodeId src, std::uint16_t id, bool unicast,
                         std::vector<std::uint8_t> message) {
  const bool reliable = config_.reliable && sim_ != nullptr && unicast;
  if (reliable) {
    if (message.size() < kCrcTrailer) {
      ++reassembly_failures_;
      return;
    }
    const std::size_t body = message.size() - kCrcTrailer;
    const std::uint32_t expected =
        static_cast<std::uint32_t>(message[body]) |
        static_cast<std::uint32_t>(message[body + 1]) << 8 |
        static_cast<std::uint32_t>(message[body + 2]) << 16 |
        static_cast<std::uint32_t>(message[body + 3]) << 24;
    if (crc32(message.data(), body) != expected) {
      // Corrupt: no ack, the sender's retry delivers a clean copy.
      ++crc_failures_;
      if (crc_failures_counter_ != nullptr) crc_failures_counter_->add();
      ++reassembly_failures_;
      return;
    }
    message.resize(body);
    send_ack(src, id);
    if (!remember_delivery(src, id)) {
      ++duplicates_suppressed_;
      if (duplicates_counter_ != nullptr) duplicates_counter_->add();
      return;
    }
  }
  ++messages_received_;
  if (handler_) handler_(src, std::move(message));
}

void Transport::on_frame(const net::Frame& frame) {
  evict_stale();
  if (frame.payload.size() < kFragmentHeader) {
    ++reassembly_failures_;
    return;
  }
  const std::uint16_t id = static_cast<std::uint16_t>(
      frame.payload[0] | (frame.payload[1] << 8));
  const std::uint16_t index = static_cast<std::uint16_t>(
      frame.payload[2] | (frame.payload[3] << 8));
  const std::uint16_t count = static_cast<std::uint16_t>(
      frame.payload[4] | (frame.payload[5] << 8));
  if (count == 0) {
    // Control frame. Code 0 = ACK; unknown codes are ignored so the wire
    // format can grow without breaking old receivers.
    if (index == 0) on_ack(id);
    return;
  }
  if (index >= count) {
    ++reassembly_failures_;
    return;
  }
  const bool unicast = frame.dst != net::kBroadcast;

  // Fast path: single-fragment message.
  std::vector<std::uint8_t> body(
      frame.payload.begin() + static_cast<long>(kFragmentHeader),
      frame.payload.end());
  if (count == 1) {
    complete(frame.src, id, unicast, std::move(body));
    return;
  }

  const auto key = std::make_pair(frame.src, id);
  auto it = partial_.find(key);
  if (it == partial_.end()) {
    it = partial_.emplace(key, PartialMessage{}).first;
    it->second.fragments.resize(count);
  } else if (it->second.fragments.size() != count) {
    // Sender reused the id for a different message: restart reassembly.
    it->second = PartialMessage{};
    it->second.fragments.resize(count);
    ++reassembly_failures_;
  }
  PartialMessage& partial = it->second;
  partial.last_update = sim_ != nullptr ? sim_->now() : 0;
  partial.unicast = unicast;
  if (partial.fragments[index].empty()) ++partial.received;
  partial.fragments[index] = std::move(body);

  if (partial.received == partial.fragments.size()) {
    std::vector<std::uint8_t> message;
    for (auto& fragment : partial.fragments) {
      message.insert(message.end(), fragment.begin(), fragment.end());
    }
    const bool was_unicast = partial.unicast;
    partial_.erase(it);
    complete(frame.src, id, was_unicast, std::move(message));
  }
}

}  // namespace dynaplat::middleware
