#include "middleware/payload.hpp"

#include <cstring>

namespace dynaplat::middleware {

std::uint8_t* PayloadWriter::grow(std::size_t n) {
  if (arena_ == nullptr) {
    total_ += n;
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    return bytes_.data() + at;
  }
  open_block(n);
  std::uint8_t* p = wp_;
  wp_ += n;
  total_ += n;
  return p;
}

void PayloadWriter::open_block(std::size_t need) {
  // Only the very first block carries headroom — fragment headers prepend
  // at the front of the message, never mid-chain.
  const bool first = !cur_ && chain_.slice_count() == 0;
  flush_block();
  const std::size_t head = first ? kHeadroom : 0;
  // Size the first block for the whole expected message (hint) so small and
  // mid-size messages stay single-slice; later blocks are bulk overflow.
  const std::size_t goal = std::max(need + head, hint_ + head);
  // First block small when the message looks small (headers are 21 bytes);
  // any overflow block is bulk data and jumps straight to the large class.
  const std::size_t want =
      first && goal <= net::BufferArena::kSmallCapacity
          ? net::BufferArena::kSmallCapacity
          : std::max(goal, net::BufferArena::kLargeCapacity);
  cur_ = arena_->alloc(want);
  cur_base_ = head;
  wp_ = cur_->data() + head;
  end_ = cur_->data() + cur_->capacity();
}

void PayloadWriter::flush_block() {
  if (!cur_) return;
  const std::size_t used = static_cast<std::size_t>(wp_ - cur_->data());
  if (used > cur_base_) {
    cur_->set_size(used);
    chain_.append(cur_, cur_base_, used - cur_base_);
  }
  cur_.reset();
  wp_ = nullptr;
  end_ = nullptr;
  cur_base_ = 0;
}

net::Payload PayloadWriter::take_chain() {
  if (arena_ == nullptr) {
    net::Payload chain(std::move(bytes_));
    bytes_.clear();
    total_ = 0;
    return chain;
  }
  flush_block();
  total_ = 0;
  return std::move(chain_);  // move leaves chain_ empty, ready for reuse
}

void PayloadWriter::u16(std::uint16_t v) {
  std::uint8_t* p = reserve(2);
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void PayloadWriter::u32(std::uint32_t v) {
  std::uint8_t* p = reserve(4);
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PayloadWriter::u64(std::uint64_t v) {
  std::uint8_t* p = reserve(8);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void PayloadWriter::blob(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b.data(), b.size());
}

void PayloadWriter::raw(const std::uint8_t* data, std::size_t len) {
  if (len == 0) return;
  if (static_cast<std::size_t>(end_ - wp_) >= len) {
    std::memcpy(wp_, data, len);
    wp_ += len;
    total_ += len;
    return;
  }
  if (arena_ == nullptr) {
    total_ += len;
    bytes_.insert(bytes_.end(), data, data + len);
    return;
  }
  // May span blocks: fill the current one, then continue in fresh ones.
  while (len > 0) {
    if (wp_ == end_) open_block(len);
    const std::size_t take =
        std::min(static_cast<std::size_t>(end_ - wp_), len);
    std::memcpy(wp_, data, take);
    wp_ += take;
    total_ += take;
    data += take;
    len -= take;
  }
}

PayloadReader::PayloadReader(const net::Payload& payload)
    : size_(payload.size()) {
  if (payload.slice_count() <= 1) {
    std::size_t prefix = 0;
    data_ = payload.contiguous_prefix(&prefix);
  } else {
    chain_ = &payload;
  }
}

void PayloadReader::read(std::uint8_t* dst, std::size_t n) {
  if (data_ != nullptr) {
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return;
  }
  while (n > 0) {
    const net::BufferSlice& s = chain_->slice(slice_idx_);
    const std::size_t avail = s.size - slice_off_;
    const std::size_t take = std::min(avail, n);
    std::memcpy(dst, s.data() + slice_off_, take);
    dst += take;
    n -= take;
    pos_ += take;
    slice_off_ += take;
    if (slice_off_ == s.size) {
      ++slice_idx_;
      slice_off_ = 0;
    }
  }
}

std::uint64_t PayloadReader::scalar(std::size_t n) {
  need(n);
  std::uint8_t buf[8];
  read(buf, n);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v |= std::uint64_t(buf[i]) << (8 * i);
  return v;
}

std::uint8_t PayloadReader::u8() {
  return static_cast<std::uint8_t>(scalar(1));
}

std::uint16_t PayloadReader::u16() {
  return static_cast<std::uint16_t>(scalar(2));
}

std::uint32_t PayloadReader::u32() {
  return static_cast<std::uint32_t>(scalar(4));
}

std::uint64_t PayloadReader::u64() { return scalar(8); }

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(len, '\0');
  if (len > 0) read(reinterpret_cast<std::uint8_t*>(s.data()), len);
  return s;
}

std::vector<std::uint8_t> PayloadReader::blob() {
  const std::uint32_t len = u32();
  need(len);
  std::vector<std::uint8_t> b(len);
  if (len > 0) read(b.data(), len);
  return b;
}

}  // namespace dynaplat::middleware
