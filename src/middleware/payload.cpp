#include "middleware/payload.hpp"

#include <cstring>

namespace dynaplat::middleware {

void PayloadWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PayloadWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PayloadWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadWriter::blob(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  bytes_.insert(bytes_.end(), b.begin(), b.end());
}

void PayloadWriter::raw(const std::uint8_t* data, std::size_t len) {
  bytes_.insert(bytes_.end(), data, data + len);
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      bytes_[pos_] | (bytes_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(bytes_.begin() + static_cast<long>(pos_),
                bytes_.begin() + static_cast<long>(pos_ + len));
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> PayloadReader::blob() {
  const std::uint32_t len = u32();
  need(len);
  std::vector<std::uint8_t> b(bytes_.begin() + static_cast<long>(pos_),
                              bytes_.begin() + static_cast<long>(pos_ + len));
  pos_ += len;
  return b;
}

}  // namespace dynaplat::middleware
