// Segmentation/reassembly transport over any net::Medium.
//
// Media have maximum frame payloads (CAN: 8 B, Ethernet: 1500 B); middleware
// messages can be larger. The Transport fragments a message into numbered
// segments and reassembles on the far side, preserving the frame priority
// so urgent control messages keep their precedence per fragment.
//
// Fragment wire format (6-byte header per fragment):
//   [u16 message id][u16 fragment index][u16 fragment count] payload...
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/frame.hpp"
#include "net/medium.hpp"

namespace dynaplat::middleware {

/// Delivered when all fragments of a message have arrived.
using MessageHandler =
    std::function<void(net::NodeId src, std::vector<std::uint8_t> message)>;

class Transport {
 public:
  /// `send_frame` submits one frame towards the medium (the Ecu's send path,
  /// so failure gating applies). Incoming frames are fed via on_frame().
  Transport(std::function<void(net::Frame)> send_frame,
            std::size_t max_frame_payload);

  /// Fragments and sends a message. flow_id groups fragments of one logical
  /// flow for media-level arbitration (e.g. the CAN id).
  void send(net::NodeId dst, net::Priority priority, std::uint32_t flow_id,
            const std::vector<std::uint8_t>& message);

  /// Feeds a received frame into reassembly.
  void on_frame(const net::Frame& frame);

  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  /// Number of frames one message of `size` bytes costs on this medium.
  std::size_t fragments_for(std::size_t size) const;

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t reassembly_failures() const { return reassembly_failures_; }

  static constexpr std::size_t kFragmentHeader = 6;

 private:
  struct PartialMessage {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t received = 0;
  };

  std::function<void(net::Frame)> send_frame_;
  std::size_t max_frame_payload_;
  MessageHandler handler_;
  std::uint16_t next_message_id_ = 1;
  // Keyed by (src node, message id). Stale partials are evicted when the
  // same sender reuses an id (16-bit wrap) — bounded memory.
  std::map<std::pair<net::NodeId, std::uint16_t>, PartialMessage> partial_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t reassembly_failures_ = 0;
};

}  // namespace dynaplat::middleware
