// Segmentation/reassembly transport over any net::Medium.
//
// Media have maximum frame payloads (CAN: 8 B, Ethernet: 1500 B); middleware
// messages can be larger. The Transport fragments a message into numbered
// segments and reassembles on the far side, preserving the frame priority
// so urgent control messages keep their precedence per fragment.
//
// Fragment wire format (6-byte header per fragment):
//   [u16 message id][u16 fragment index][u16 fragment count] payload...
// A fragment count of 0 marks a control frame; index 0 is an ACK for
// message id (empty payload).
//
// Zero-copy data path (ISSUE 6): a message is a net::Payload slice chain.
// Fragmentation is scatter-gather — each fragment frame carries a 6-byte
// header block from the transport's BufferArena plus a *view* into the
// message chain, so no payload byte is copied on send. Reassembly collects
// fragment-body views and delivers them as an ordered chain (adjacent views
// of one block coalesce back into the original slice). Reliable-mode
// retransmission pins the message chain by refcount instead of duplicating
// it; the CRC32 walks the chain in place. Multi-fragment messages are
// submitted to the medium as one burst (send_batch) so the enqueue /
// arbitration setup cost is paid once. The wire bytes are identical to the
// historical copying path — only the ownership model changed.
//
// Two robustness layers ride on top (fault campaigns, ISSUE 3):
//  * Stale-reassembly TTL: a partial message that stops receiving fragments
//    (loss, sender death) is evicted after `reassembly_ttl` instead of
//    stranding buffer memory forever. Evictions count as reassembly
//    failures. The periodic sweep timer armed in the constructor is the
//    only eviction driver when a simulator is present; sim-less transports
//    fall back to sweeping on frame arrival.
//  * Reliable mode (opt-in, unicast only): the sender appends a CRC32 over
//    the whole message, the receiver acks CRC-valid reassembly, and the
//    sender retries on ack timeout with capped exponential backoff.
//    Duplicate deliveries created by retries are suppressed via a bounded
//    per-peer window of recently delivered ids; exhausted retries surface
//    through an error callback and a counter. Broadcast traffic (service
//    discovery) stays fire-and-forget — ack implosion is worse than a lost
//    Offer, which discovery already repairs with Find retries.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/buffer.hpp"
#include "net/frame.hpp"
#include "net/medium.hpp"
#include "obs/context.hpp"
#include "obs/coverage.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace dynaplat::middleware {

/// Delivered when all fragments of a message have arrived (legacy
/// linearizing form; prefer ChainHandler on hot paths).
using MessageHandler =
    std::function<void(net::NodeId src, std::vector<std::uint8_t> message)>;

/// Zero-copy delivery: the message arrives as an ordered slice chain.
using ChainHandler =
    std::function<void(net::NodeId src, net::Payload message)>;

/// Zero-copy delivery with the causal trace context that rode the wire
/// (inactive for untraced messages).
using TracedHandler = std::function<void(net::NodeId src, net::Payload message,
                                         const obs::TraceContext& ctx)>;

/// Invoked when a reliable message exhausts its retries.
using DeliveryFailureHandler =
    std::function<void(net::NodeId dst, std::uint16_t message_id)>;

struct TransportConfig {
  /// Evict a partial reassembly untouched for this long (0 = never).
  sim::Duration reassembly_ttl = 500 * sim::kMillisecond;
  /// Reliable unicast: CRC32 + ack + retry.
  bool reliable = false;
  sim::Duration ack_timeout = 20 * sim::kMillisecond;
  int max_retries = 5;
  double backoff_factor = 2.0;
  sim::Duration max_backoff = 200 * sim::kMillisecond;
  /// Symmetric jitter applied to each armed retransmit delay: the timer
  /// fires after backoff * (1 ± retry_jitter * u), u uniform in [0, 1).
  /// Without it every peer that lost frames in the same partition window
  /// retries in lockstep after heal and the retry burst collides again.
  /// The exponential base (`ack_timeout`, `backoff_factor`, `max_backoff`)
  /// is unchanged — only the scheduled delay is perturbed. 0 disables
  /// (exact legacy timing). Draws come from
  /// sim::Random::stream(jitter_seed, jitter_stream), so runs are
  /// bit-reproducible; give each transport a distinct stream (the runtime
  /// wires the ECU's node id) or peers jitter in lockstep anyway.
  double retry_jitter = 0.1;
  std::uint64_t jitter_seed = 0x7261'6E64'6A69'7474ULL;  // "randjitt"
  std::uint64_t jitter_stream = 0;
  /// Recently delivered message ids remembered per peer (duplicate
  /// suppression window).
  std::size_t dedup_window = 64;
};

/// IEEE 802.3 CRC32 (reflected, 0xEDB88320), the end-to-end integrity check
/// of the reliable transport. Exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
/// Same CRC over the first `length` bytes of a slice chain, computed in
/// place (no linearization).
std::uint32_t crc32(const net::Payload& payload, std::size_t length);

class Transport {
 public:
  /// `send_frame` submits one frame towards the medium (the Ecu's send path,
  /// so failure gating applies). Incoming frames are fed via on_frame().
  /// `simulator` powers TTL eviction and retry timers; without one (legacy
  /// unit-test construction) both features are inert.
  Transport(std::function<void(net::Frame)> send_frame,
            std::size_t max_frame_payload, sim::Simulator* simulator = nullptr,
            TransportConfig config = {});
  ~Transport();

  /// Optional burst submission path: a fragmented message's frames are
  /// handed over in one call (the vector comes back empty, capacity
  /// retained). Falls back to per-frame send_frame when unset.
  void set_batch_sender(std::function<void(std::vector<net::Frame>&)> sender) {
    send_batch_ = std::move(sender);
  }

  /// Fragments and sends a message (slice chain; no payload bytes are
  /// copied). flow_id groups fragments of one logical flow for media-level
  /// arbitration (e.g. the CAN id).
  /// (net::Payload converts implicitly from std::vector<uint8_t> — legacy
  /// vector callers adopt into a single-slice chain, one wrap, no byte copy
  /// for rvalues.)
  /// An active `ctx` is stamped with the send time and prepended to the
  /// message on the wire (the fragment count's high bit marks it); it
  /// survives retransmission and is stripped before delivery.
  void send(net::NodeId dst, net::Priority priority, std::uint32_t flow_id,
            net::Payload message, obs::TraceContext ctx = {});

  /// Feeds a received frame into reassembly.
  void on_frame(const net::Frame& frame);

  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }
  /// Zero-copy delivery; takes precedence over set_handler when both set.
  void set_chain_handler(ChainHandler handler) {
    chain_handler_ = std::move(handler);
  }
  /// Context-aware delivery; takes precedence over both other handlers.
  void set_traced_handler(TracedHandler handler) {
    traced_handler_ = std::move(handler);
  }
  void set_delivery_failure_handler(DeliveryFailureHandler handler) {
    on_delivery_failure_ = std::move(handler);
  }

  /// Chain tracer notified of send/receive hops for sampled contexts (both
  /// directions use this transport's tracer — it is the local ECU's).
  void set_tracer(obs::ChainTracer* tracer) { tracer_ = tracer; }

  /// Coverage map recording transport edge paths (retransmit, dup-drop,
  /// TTL eviction, fragment coalesce). Keys are pre-resolved here so the
  /// hot paths only index.
  void set_coverage(obs::CoverageMap* coverage);

  /// Registers obs counters under `prefix` (e.g. "mw.EcuA.transport.").
  void set_metrics(obs::MetricsRegistry& metrics, const std::string& prefix);

  /// Number of frames one message of `size` bytes costs on this medium.
  std::size_t fragments_for(std::size_t size) const;

  /// The buffer arena this transport allocates fragment headers (and CRC
  /// trailers) from. Callers on the same thread may use it to build
  /// outbound message chains without their own arena.
  net::BufferArena& arena() { return arena_; }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t reassembly_failures() const { return reassembly_failures_; }
  std::uint64_t reassembly_evictions() const { return reassembly_evictions_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  std::uint64_t delivery_failures() const { return delivery_failures_; }
  /// In-flight reliable messages awaiting ack.
  std::size_t pending_reliable() const { return pending_reliable_.size(); }
  /// Partial reassemblies currently buffered (0 after TTL sweeps when all
  /// traffic completed or aged out — the "no stranded memory" invariant).
  std::size_t partial_count() const { return partial_.size(); }

  const TransportConfig& config() const { return config_; }

  static constexpr std::size_t kFragmentHeader = 6;
  static constexpr std::size_t kCrcTrailer = 4;
  /// High bit of the fragment-count field: the message body starts with an
  /// encoded obs::TraceContext. Caps fragment counts at 0x7FFF.
  static constexpr std::uint16_t kTracedFlag = 0x8000;

 private:
  struct PartialMessage {
    // Fragment bodies as views into the arriving frames' buffers; for
    // count >= 2 every body is non-empty, so empty() doubles as "absent".
    std::vector<net::Payload> fragments;
    std::size_t received = 0;
    sim::Time last_update = 0;
    sim::Time first_arrival = 0;  // bus-vs-reassembly attribution boundary
    bool unicast = false;  // candidate for CRC check + ack in reliable mode
    bool traced = false;   // body carries a TraceContext prefix
  };

  struct PendingReliable {
    net::NodeId dst = 0;
    net::Priority priority = net::kPriorityLowest;
    std::uint32_t flow_id = 0;
    net::Payload message;  // original chain + CRC slice, pinned by refcount
    bool traced = false;   // chain starts with an encoded TraceContext
    int retries = 0;
    sim::Duration backoff = 0;
    sim::EventId timer;
  };

  /// Duplicate-suppression window: a bitmap over the 16-bit message-id
  /// space answers membership in O(1), a fixed ring of window ids drives
  /// eviction. remember_delivery allocates nothing after first contact
  /// with a peer.
  struct PeerHistory {
    static constexpr std::size_t kBitmapWords = 65536 / 64;
    std::unique_ptr<std::uint64_t[]> seen;  // 8 KiB, lazily allocated
    std::vector<std::uint16_t> ring;        // sized to dedup_window
    std::size_t head = 0;
    std::size_t count = 0;
  };

  void send_fragments(std::uint16_t id, net::NodeId dst,
                      net::Priority priority, std::uint32_t flow_id,
                      const net::Payload& message, bool traced);
  net::BufferRef make_fragment_header(std::uint16_t id, std::uint16_t index,
                                      std::uint16_t count);
  /// Prepends the encoded context in front of the message chain — into the
  /// first block's headroom when available, else via an arena block.
  net::Payload prepend_context(const obs::TraceContext& ctx,
                               net::Payload message);
  void send_ack(net::NodeId dst, std::uint16_t id);
  void on_ack(std::uint16_t id);
  void arm_retry(std::uint16_t id);
  void complete(net::NodeId src, std::uint16_t id, bool unicast, bool traced,
                sim::Time first_arrival, net::Payload message);
  void deliver(net::NodeId src, net::Payload message,
               const obs::TraceContext& ctx);
  void evict_stale();
  bool remember_delivery(net::NodeId src, std::uint16_t id);

  // Declared first so it outlives every member holding arena-backed
  // payloads (pending_reliable_, partial_, burst_) during destruction.
  net::BufferArena arena_;
  std::function<void(net::Frame)> send_frame_;
  std::function<void(std::vector<net::Frame>&)> send_batch_;
  std::size_t max_frame_payload_;
  sim::Simulator* sim_;
  TransportConfig config_;
  sim::Random retry_rng_;  // seeded jitter stream for retransmit delays
  MessageHandler handler_;
  ChainHandler chain_handler_;
  TracedHandler traced_handler_;
  DeliveryFailureHandler on_delivery_failure_;
  obs::ChainTracer* tracer_ = nullptr;
  obs::CoverageMap* coverage_ = nullptr;
  std::uint32_t cov_retransmit_ = 0;
  std::uint32_t cov_dup_drop_ = 0;
  std::uint32_t cov_ttl_evict_ = 0;
  std::uint32_t cov_coalesce_ = 0;
  std::uint16_t next_message_id_ = 1;
  // Reused burst scratch for multi-fragment sends (capacity persists).
  std::vector<net::Frame> burst_;
  // Keyed by (src node, message id). Stale partials are evicted when the
  // same sender reuses an id (16-bit wrap) or when the TTL expires.
  std::map<std::pair<net::NodeId, std::uint16_t>, PartialMessage> partial_;
  std::map<std::uint16_t, PendingReliable> pending_reliable_;
  std::map<net::NodeId, PeerHistory> delivered_history_;
  // Periodic TTL sweep (sole eviction driver when a simulator is present —
  // the per-frame sweep would be redundant O(partials) hot-path work).
  sim::EventId sweep_timer_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t reassembly_failures_ = 0;
  std::uint64_t reassembly_evictions_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t delivery_failures_ = 0;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* crc_failures_counter_ = nullptr;
  obs::Counter* duplicates_counter_ = nullptr;
  obs::Counter* delivery_failures_counter_ = nullptr;
};

}  // namespace dynaplat::middleware
